//! Failure injection: malformed programs and configurations must fail
//! loudly and legibly, never hang silently or corrupt state.

use pipe_repro::core::{interpret, run_program, FetchStrategy, InterpError, SimConfig, SimError};
use pipe_repro::icache::{CacheConfig, PipeFetchConfig};
use pipe_repro::isa::{Assembler, InstrFormat};
use pipe_repro::mem::MemConfig;

fn asm(src: &str) -> pipe_repro::isa::Program {
    Assembler::new(InstrFormat::Fixed32).assemble(src).unwrap()
}

fn quick(src: &str, fetch: FetchStrategy) -> Result<pipe_repro::core::SimStats, SimError> {
    let cfg = SimConfig {
        fetch,
        mem: MemConfig::default(),
        max_cycles: 20_000,
        ..SimConfig::default()
    };
    run_program(&asm(src), &cfg)
}

#[test]
fn unpaired_store_address_times_out() {
    // A store address with no data can never drain.
    let err = quick("lim r1, 0x100\nsta r1, 0\nhalt\n", FetchStrategy::Perfect).unwrap_err();
    assert!(matches!(err, SimError::Timeout { .. }));
}

#[test]
fn queue_read_without_producer_times_out_on_every_engine() {
    for fetch in [
        FetchStrategy::Perfect,
        FetchStrategy::conventional(CacheConfig::new(32, 16)),
        FetchStrategy::Pipe(PipeFetchConfig::table2(32, 16, 16, 16)),
    ] {
        let err = quick("or r1, r7, r7\nhalt\n", fetch).unwrap_err();
        assert!(matches!(err, SimError::Timeout { .. }), "under {fetch}");
    }
}

#[test]
fn interpreter_reports_the_same_bugs_precisely() {
    // The interpreter diagnoses the root cause rather than timing out.
    let e = interpret(&asm("or r1, r7, r7\nhalt\n"), 1000).unwrap_err();
    assert!(matches!(e, InterpError::QueueUnderflow { pc: 0 }));

    let e = interpret(&asm("nop\nnop\n"), 1000).unwrap_err();
    assert!(matches!(e, InterpError::PcOutOfRange { .. }));
}

#[test]
fn running_off_the_image_times_out_not_panics() {
    // No halt: engines run out of instructions and the processor stalls
    // forever — a timeout, never a panic.
    for fetch in [
        FetchStrategy::Perfect,
        FetchStrategy::conventional(CacheConfig::new(32, 16)),
        FetchStrategy::Pipe(PipeFetchConfig::table2(32, 16, 16, 16)),
    ] {
        let err = quick("nop\nnop\nnop\n", fetch).unwrap_err();
        assert!(matches!(err, SimError::Timeout { .. }), "under {fetch}");
    }
}

#[test]
fn invalid_configurations_rejected_up_front() {
    let program = asm("halt\n");
    let bad_cache = SimConfig {
        fetch: FetchStrategy::conventional(CacheConfig::new(24, 16)),
        ..SimConfig::default()
    };
    assert!(matches!(
        run_program(&program, &bad_cache),
        Err(SimError::Config(_))
    ));

    let bad_mem = SimConfig {
        mem: MemConfig {
            access_cycles: 0,
            ..MemConfig::default()
        },
        ..SimConfig::default()
    };
    assert!(matches!(
        run_program(&program, &bad_mem),
        Err(SimError::Config(_))
    ));
}

#[test]
fn branch_to_garbage_is_a_timeout() {
    // Branch register never loaded: the branch goes to address 0... which
    // re-executes from the top forever (no counter change) until the
    // budget runs out. Must be a timeout, not a hang or panic.
    let src = "lim r1, 1\npbr b0, r1, 0\nhalt\n";
    let err = quick(
        src,
        FetchStrategy::Pipe(PipeFetchConfig::table2(32, 16, 16, 16)),
    );
    assert!(matches!(err, Err(SimError::Timeout { .. })));
}

#[test]
fn error_messages_are_legible() {
    let err = quick("sta r0, 0\nhalt\n", FetchStrategy::Perfect).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("did not complete"), "{msg}");
    let e = interpret(&asm("or r1, r7, r7\nhalt\n"), 10).unwrap_err();
    assert!(e.to_string().contains("empty load queue"), "{e}");
}
