//! The paper's qualitative claims, checked on a trip-scaled Livermore
//! suite (fast enough for the test suite; the full-scale numbers come from
//! the `repro` binary and match these orderings).

use pipe_repro::core::{run_program, FetchStrategy, SimConfig};
use pipe_repro::icache::{CacheConfig, PipeFetchConfig, PrefetchPolicy};
use pipe_repro::isa::InstrFormat;
use pipe_repro::mem::MemConfig;
use pipe_repro::workloads::LivermoreSuite;

fn suite() -> LivermoreSuite {
    LivermoreSuite::build_scaled(InstrFormat::Fixed32, 8).expect("builds")
}

fn cycles(suite: &LivermoreSuite, fetch: FetchStrategy, mem: MemConfig) -> u64 {
    let cfg = SimConfig {
        fetch,
        mem,
        max_cycles: 500_000_000,
        ..SimConfig::default()
    };
    run_program(suite.program(), &cfg).expect("runs").cycles
}

fn mem(access: u32, bus: u32, pipelined: bool) -> MemConfig {
    MemConfig {
        access_cycles: access,
        in_bus_bytes: bus,
        pipelined,
        ..MemConfig::default()
    }
}

fn pipe(cache: u32, line: u32, iq: u32, iqb: u32) -> FetchStrategy {
    FetchStrategy::Pipe(PipeFetchConfig::table2(cache, line, iq, iqb))
}

fn conventional(cache: u32) -> FetchStrategy {
    FetchStrategy::conventional(CacheConfig::new(cache, 16))
}

/// §6: "For a memory access time larger than 1 clock cycle, all PIPE
/// configurations always perform better than the conventional cache."
#[test]
fn pipe_beats_conventional_for_slow_memory() {
    let s = suite();
    for access in [2, 6] {
        for cache in [32u32, 128] {
            let conv = cycles(&s, conventional(cache), mem(access, 4, false));
            for (line, iq, iqb) in [(8, 8, 8), (16, 16, 16), (32, 16, 32), (32, 32, 32)] {
                let p = cycles(&s, pipe(cache, line, iq, iqb), mem(access, 4, false));
                assert!(
                    p < conv,
                    "access {access}, cache {cache}: pipe {line}-{iq}/{iqb} = {p} !< conv {conv}"
                );
            }
        }
    }
}

/// §6: the processor with IQ/IQB "performs up to twice as fast" than the
/// conventional cache at small cache sizes.
#[test]
fn small_cache_speedup_approaches_two() {
    let s = suite();
    let conv = cycles(&s, conventional(16), mem(6, 8, false));
    let best = [(8u32, 8u32, 8u32), (16, 16, 16)]
        .iter()
        .map(|&(l, q, b)| cycles(&s, pipe(16, l, q, b), mem(6, 8, false)))
        .min()
        .unwrap();
    let speedup = conv as f64 / best as f64;
    assert!(speedup > 1.6, "speedup {speedup:.2} too small");
}

/// §6 / Figure 4: bus width has a dramatic impact below 128 bytes, little
/// above 256 bytes.
#[test]
fn bus_width_matters_mainly_for_small_caches() {
    let s = suite();
    let small_narrow = cycles(&s, pipe(32, 16, 16, 16), mem(6, 4, false));
    let small_wide = cycles(&s, pipe(32, 16, 16, 16), mem(6, 8, false));
    let big_narrow = cycles(&s, pipe(512, 16, 16, 16), mem(6, 4, false));
    let big_wide = cycles(&s, pipe(512, 16, 16, 16), mem(6, 8, false));
    let small_gain = small_narrow as f64 / small_wide as f64;
    let big_gain = big_narrow as f64 / big_wide as f64;
    assert!(
        small_gain > big_gain,
        "small {small_gain:.3} !> big {big_gain:.3}"
    );
    assert!(big_gain < 1.05, "large caches barely care: {big_gain:.3}");
}

/// §6 / Figure 6: pipelined memory shifts the curves down.
#[test]
fn pipelined_memory_helps_everyone() {
    let s = suite();
    for fetch in [conventional(64), pipe(64, 16, 16, 16)] {
        let np = cycles(&s, fetch, mem(6, 8, false));
        let p = cycles(&s, fetch, mem(6, 8, true));
        assert!(p < np, "{fetch}: pipelined {p} !< non-pipelined {np}");
    }
}

/// §6 / Figures 4 vs 6: small lines (8 B) win with fast memory; larger
/// lines (16–32 B) win with slow memory — the paper's observed reversal.
#[test]
fn best_line_size_reverses_with_memory_speed() {
    let s = suite();
    // Fast memory, narrow bus: 8-8 at least matches the 32-byte lines.
    let fast_8 = cycles(&s, pipe(64, 8, 8, 8), mem(1, 4, false));
    let fast_32 = cycles(&s, pipe(64, 32, 32, 32), mem(1, 4, false));
    assert!(fast_8 < fast_32, "fast: 8-8 {fast_8} !< 32-32 {fast_32}");
    // Slow memory, wide bus: the 32-byte-line configurations win.
    let slow_8 = cycles(&s, pipe(64, 8, 8, 8), mem(6, 8, false));
    let slow_32 = cycles(&s, pipe(64, 32, 32, 32), mem(6, 8, false));
    assert!(slow_32 < slow_8, "slow: 32-32 {slow_32} !< 8-8 {slow_8}");
}

/// §6, second paragraph: the chip's guaranteed-execution-only policy pays
/// a penalty relative to true prefetch.
#[test]
fn true_prefetch_at_least_matches_guaranteed_only() {
    let s = suite();
    for cache in [32u32, 128] {
        let mut true_cfg = PipeFetchConfig::table2(cache, 16, 16, 16);
        true_cfg.policy = PrefetchPolicy::TruePrefetch;
        let mut guarded = true_cfg;
        guarded.policy = PrefetchPolicy::GuaranteedOnly;
        let t = cycles(&s, FetchStrategy::Pipe(true_cfg), mem(6, 8, false));
        let g = cycles(&s, FetchStrategy::Pipe(guarded), mem(6, 8, false));
        assert!(t <= g, "cache {cache}: true {t} !<= guaranteed {g}");
    }
}

/// §2.1: "a small TIB can provide better performance than a simple small
/// instruction cache [but] the use of a TIB implies large amounts of
/// off-chip accessing".
#[test]
fn tib_beats_small_cache_but_floods_the_bus() {
    use pipe_repro::icache::TibConfig;
    let s = suite();
    let m = mem(6, 8, false);

    let run = |fetch: FetchStrategy| {
        let cfg = SimConfig {
            fetch,
            mem: m,
            max_cycles: 500_000_000,
            ..SimConfig::default()
        };
        run_program(s.program(), &cfg).expect("runs")
    };

    let conv = run(conventional(16));
    let tib = run(FetchStrategy::Tib(TibConfig::with_budget(16, 16)));
    assert!(
        tib.cycles < conv.cycles,
        "tib {} !< conventional {}",
        tib.cycles,
        conv.cycles
    );

    // The traffic cost: against a conventional cache big enough to hold
    // the hot loops, the TIB requests far more instruction bytes.
    let conv_big = run(conventional(256));
    assert!(
        tib.fetch.bytes_requested > conv_big.fetch.bytes_requested * 3,
        "tib bytes {} not >> cache bytes {}",
        tib.fetch.bytes_requested,
        conv_big.fetch.bytes_requested
    );
}

/// §6: "The knee of the curve corresponds to the size of most of the
/// inner loops" — half the loops fit in 128 bytes, so the conventional
/// cache's largest per-doubling gain comes when crossing from 128 to
/// 256 bytes.
#[test]
fn knee_sits_at_the_inner_loop_sizes() {
    let s = suite();
    let m = mem(6, 8, false);
    let sizes = [16u32, 32, 64, 128, 256, 512];
    let curve: Vec<u64> = sizes
        .iter()
        .map(|&size| cycles(&s, conventional(size), m))
        .collect();
    let gains: Vec<f64> = curve
        .windows(2)
        .map(|w| w[0] as f64 / w[1] as f64)
        .collect();
    let knee = gains
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| sizes[i + 1])
        .expect("gains nonempty");
    assert_eq!(
        knee, 256,
        "largest gain crossing into 256B; gains {gains:?}"
    );
}

/// §6: growing the cache helps both strategies (monotone curves), and a
/// small PIPE cache rivals a much larger conventional one.
#[test]
fn small_pipe_cache_rivals_large_conventional() {
    let s = suite();
    let pipe_32 = cycles(&s, pipe(32, 16, 16, 16), mem(6, 8, false));
    let conv_256 = cycles(&s, conventional(256), mem(6, 8, false));
    assert!(
        (pipe_32 as f64) < conv_256 as f64 * 1.35,
        "pipe 32B {pipe_32} not within 1.35x of conventional 256B {conv_256}"
    );
}
