//! The bundled assembly programs run correctly on every fetch engine,
//! with and without the on-chip D-cache, in both instruction formats.

use pipe_repro::prelude::*;

fn engines() -> Vec<FetchStrategy> {
    vec![
        FetchStrategy::Perfect,
        FetchStrategy::conventional(CacheConfig::new(64, 16)),
        FetchStrategy::Pipe(PipeFetchConfig::table2(64, 16, 16, 16)),
    ]
}

fn run(
    program: &Program,
    fetch: FetchStrategy,
    dcache: Option<pipe_repro::mem::DCacheConfig>,
) -> Processor {
    let cfg = SimConfig {
        fetch,
        mem: pipe_repro::mem::MemConfig {
            access_cycles: 4,
            d_cache: dcache,
            ..Default::default()
        },
        ..SimConfig::default()
    };
    let mut proc = Processor::new(program, &cfg).expect("valid config");
    proc.run().expect("program runs to halt");
    proc
}

fn assemble(name: &str, format: InstrFormat) -> Program {
    let lib = pipe_repro::asm::find_program(name).expect("bundled program");
    AsmAssembler::new(format)
        .assemble(lib.source)
        .unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn words(proc: &Processor, base: u32, count: u32) -> Vec<u32> {
    (0..count)
        .map(|i| proc.mem().data().read(base + 4 * i))
        .collect()
}

fn dcache_cfg() -> Option<pipe_repro::mem::DCacheConfig> {
    Some(pipe_repro::mem::DCacheConfig {
        size_bytes: 64,
        line_bytes: 16,
        ways: 2,
    })
}

#[test]
fn matmul_computes_identity_product_everywhere() {
    for format in [InstrFormat::Fixed32, InstrFormat::Mixed] {
        let program = assemble("matmul", format);
        let a = program.symbols()["amat"];
        let c = program.symbols()["cmat"];
        for fetch in engines() {
            for dc in [None, dcache_cfg()] {
                let proc = run(&program, fetch, dc);
                let expect = words(&proc, a, 16);
                let got = words(&proc, c, 16);
                assert_eq!(got, expect, "C = A * I under {fetch} ({format:?})");
                assert_eq!(got[0], 0x3f80_0000, "C[0][0] is 1.0f32");
            }
        }
    }
}

#[test]
fn sort_orders_the_array_everywhere() {
    for format in [InstrFormat::Fixed32, InstrFormat::Mixed] {
        let program = assemble("sort", format);
        let base = program.symbols()["values"];
        for fetch in engines() {
            for dc in [None, dcache_cfg()] {
                let proc = run(&program, fetch, dc);
                assert_eq!(
                    words(&proc, base, 8),
                    vec![1, 2, 3, 4, 5, 6, 7, 8],
                    "sorted under {fetch} ({format:?})"
                );
            }
        }
    }
}

#[test]
fn memcpy_copies_all_words_everywhere() {
    for format in [InstrFormat::Fixed32, InstrFormat::Mixed] {
        let program = assemble("memcpy", format);
        let src = program.symbols()["src"];
        let dst = program.symbols()["dst"];
        for fetch in engines() {
            for dc in [None, dcache_cfg()] {
                let proc = run(&program, fetch, dc);
                assert_eq!(
                    words(&proc, dst, 16),
                    words(&proc, src, 16),
                    "copied under {fetch} ({format:?})"
                );
                assert_eq!(proc.mem().data().read(dst), 0x101);
            }
        }
    }
}

#[test]
fn dcache_speeds_up_sort_without_changing_results() {
    let program = assemble("sort", InstrFormat::Fixed32);
    let fetch = FetchStrategy::conventional(CacheConfig::new(64, 16));
    let plain = run(&program, fetch, None);
    let cached = run(&program, fetch, dcache_cfg());
    assert_eq!(
        words(&plain, 0x400, 8),
        words(&cached, 0x400, 8),
        "architectural state must not depend on the D-cache"
    );
    let stats = cached.mem().stats();
    assert!(stats.d_hits > 0, "re-read neighbours should hit");
    assert!(
        cached.stats().cycles < plain.stats().cycles,
        "D-cache hits must shorten the run: {} vs {}",
        cached.stats().cycles,
        plain.stats().cycles
    );
}

#[test]
fn assembled_binaries_survive_the_binfmt_round_trip() {
    for lib in LIBRARY {
        let program = AsmAssembler::new(InstrFormat::Fixed32)
            .assemble(lib.source)
            .unwrap();
        let bytes = pipe_repro::isa::write_program(&program);
        let back = pipe_repro::isa::read_program(&bytes).expect("reads back");
        assert_eq!(back.parcels(), program.parcels(), "{}", lib.name);
        assert_eq!(back.data(), program.data());
        assert_eq!(back.symbols(), program.symbols());
    }
}
