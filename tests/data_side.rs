//! The D-cache data side: backward compatibility and the joint I/D sweep.
//!
//! The data cache is strictly opt-in. The first test is the regression
//! gate for that claim: with `d_cache: None` (the default), timing and
//! statistics are bit-identical to the seed simulator — pinned against
//! the same golden Livermore number `tests/golden_stats.rs` records —
//! and the store/JSON surfaces emit no new key material, so every
//! pre-D-cache store entry and coalescing key stays valid.
//!
//! The remaining tests cover the enabled path: hits bypass the shared
//! memory port, misses compete with instruction fetch (contended
//! cycles), and the joint I/D figure sweeps both dimensions on an
//! assembled program and round-trips its new statistics through the
//! result store.

use std::sync::Arc;

use pipe_repro::core::{run_decoded, run_program, SimConfig};
use pipe_repro::experiments::{
    figure_mem, mem_key, try_joint_id_figure_with, ResultStore, StrategyKind, SweepRunner,
    JOINT_ID_FIGURE,
};
use pipe_repro::icache::PrefetchPolicy;
use pipe_repro::isa::{DecodedProgram, InstrFormat};
use pipe_repro::mem::{DCacheConfig, MemConfig};

fn matmul_program() -> pipe_repro::isa::Program {
    let lib = pipe_repro::asm::find_program("matmul").expect("matmul is bundled");
    pipe_repro::asm::Assembler::new(InstrFormat::Fixed32)
        .assemble(lib.source)
        .expect("bundled matmul assembles")
}

#[test]
fn disabled_d_cache_is_bit_identical_to_the_seed() {
    // The default configuration carries no data cache...
    assert!(MemConfig::default().d_cache.is_none());
    let (mem, _) = figure_mem("4a");
    assert!(mem.d_cache.is_none(), "paper figures run without a D-cache");

    // ...and produces the exact golden cycle count the seed recorded
    // (conventional engine, 128-byte cache, Livermore; see
    // tests/golden_stats.rs).
    let suite = pipe_repro::workloads::livermore_benchmark();
    let decoded = Arc::new(DecodedProgram::new(suite.program().clone()));
    let fetch = StrategyKind::Conventional
        .fetch_for(128, PrefetchPolicy::TruePrefetch)
        .expect("conventional supports 128B");
    let cfg = SimConfig {
        fetch,
        mem: MemConfig {
            d_cache: None,
            ..mem
        },
        max_cycles: 2_000_000_000,
        ..SimConfig::default()
    };
    let stats = run_decoded(&decoded, &cfg).expect("livermore runs to halt");
    assert_eq!(stats.cycles, 303_006, "seed golden cycles");
    assert_eq!(stats.mem.d_hits, 0);
    assert_eq!(stats.mem.d_misses, 0);
    assert_eq!(stats.mem.d_store_hits, 0);
}

#[test]
fn mem_key_without_d_cache_is_unchanged() {
    // Pre-D-cache store entries and request-coalescing keys must remain
    // byte-identical, so the dcache fragment only appears when set.
    let base = figure_mem("4a").0;
    assert!(!mem_key(&base).contains("dcache"));
    let with = MemConfig {
        d_cache: Some(DCacheConfig {
            size_bytes: 128,
            line_bytes: 16,
            ways: 2,
        }),
        ..base
    };
    let key = mem_key(&with);
    assert!(
        key.contains("dcache=size=128,line=16,ways=2"),
        "dcache fragment present: {key}"
    );
    assert!(
        key.starts_with(&mem_key(&base)),
        "dcache fragment strictly appends: {key}"
    );
}

#[test]
fn d_cache_hits_bypass_the_port_and_change_timing() {
    let program = matmul_program();
    // Slow, narrow memory: every data access that misses competes with
    // instruction fetch for the single port.
    let (base, _) = figure_mem("5a");
    let fetch = StrategyKind::Pipe16x16
        .fetch_for(128, PrefetchPolicy::TruePrefetch)
        .expect("pipe 16-16 supports 128B");
    let run = |d_cache| {
        let cfg = SimConfig {
            fetch,
            mem: MemConfig { d_cache, ..base },
            max_cycles: 2_000_000_000,
            ..SimConfig::default()
        };
        run_program(&program, &cfg).expect("matmul runs to halt")
    };
    let without = run(None);
    let with = run(Some(DCacheConfig {
        size_bytes: 256,
        line_bytes: 16,
        ways: 2,
    }));

    // Same architectural work either way.
    assert_eq!(with.instructions_issued, without.instructions_issued);
    assert_eq!(with.loads, without.loads);
    assert_eq!(with.stores, without.stores);

    // The enabled run observes data locality and relieves the port.
    assert!(with.mem.d_hits > 0, "matmul has data locality");
    assert!(with.mem.d_misses > 0, "cold lines still miss");
    assert!(
        with.cycles < without.cycles,
        "d-cache hits relieve port contention: {} !< {}",
        with.cycles,
        without.cycles
    );
    assert_eq!(without.mem.d_hits, 0, "disabled run counts nothing");
}

#[test]
fn joint_id_figure_sweeps_both_dimensions_and_round_trips_the_store() {
    let dir = std::env::temp_dir().join(format!("pipe-joint-id-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let runner = SweepRunner::new()
        .store(ResultStore::open(&dir).unwrap())
        .resume(true);
    let run = try_joint_id_figure_with(&runner).expect("joint sweep completes");
    assert!(run.outcome.is_complete());
    assert_eq!(run.figure.id, format!("fig{JOINT_ID_FIGURE}"));

    // 2 strategies x 4 D-cache settings, 6 I-cache sizes each.
    assert_eq!(run.figure.series.len(), 8);
    for s in &run.figure.series {
        assert_eq!(s.points.len(), 6, "{}: full I-size sweep", s.label);
    }
    assert_eq!(
        run.figure
            .series
            .iter()
            .filter(|s| !s.label.contains("no-d$"))
            .count(),
        6,
        "three D-cache settings per strategy"
    );

    // D-cache series observe hits; the baseline series observe none.
    for s in &run.figure.series {
        let hits: u64 = s.points.iter().map(|p| p.stats.mem.d_hits).sum();
        if s.label.contains("no-d$") {
            assert_eq!(hits, 0, "{}: no D-cache, no hits", s.label);
        } else {
            assert!(hits > 0, "{}: D-cache sees matmul's locality", s.label);
        }
    }

    // A second run resolves entirely from the store, with the new
    // counters intact — the extended schema round-trips.
    let rerun = try_joint_id_figure_with(
        &SweepRunner::new()
            .store(ResultStore::open(&dir).unwrap())
            .resume(true),
    )
    .expect("cached joint sweep completes");
    assert_eq!(rerun.outcome.computed, 0, "everything cached");
    assert_eq!(
        rerun.outcome.cached,
        run.outcome.cached + run.outcome.computed
    );
    for (a, b) in run.figure.series.iter().zip(&rerun.figure.series) {
        assert_eq!(a.label, b.label);
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.cycles, pb.cycles, "{}: cycles round-trip", a.label);
            assert_eq!(
                pa.stats.mem.d_hits, pb.stats.mem.d_hits,
                "{}: d_hits round-trip",
                a.label
            );
            assert_eq!(
                pa.stats.mem.d_misses, pb.stats.mem.d_misses,
                "{}: d_misses round-trip",
                a.label
            );
            assert_eq!(
                pa.stats.mem.contended_cycles, pb.stats.mem.contended_cycles,
                "{}: contended_cycles round-trip",
                a.label
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
