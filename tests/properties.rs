//! Property-style tests over core data structures and cross-engine
//! architectural equivalence.
//!
//! Inputs are generated with a small deterministic PRNG (SplitMix64)
//! rather than an external property-testing crate, so the suite runs with
//! no registry dependencies and every failure is reproducible from the
//! fixed seeds below.

use pipe_repro::core::{FetchStrategy, Processor, SimConfig};
use pipe_repro::icache::{CacheConfig, InstructionCache, PipeFetchConfig};
use pipe_repro::isa::{
    decode, encode, AluOp, BranchReg, Cond, InstrFormat, Instruction, ProgramBuilder, Reg,
};
use pipe_repro::mem::{MemConfig, MemRequest, MemorySystem, ReqClass};

// ---------------------------------------------------------------------
// Deterministic generation.
// ---------------------------------------------------------------------

/// SplitMix64: tiny, seedable, and statistically good enough for test
/// input generation.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn range_u32(&mut self, lo: u32, hi_exclusive: u32) -> u32 {
        lo + self.below((hi_exclusive - lo) as u64) as u32
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }

    fn i16(&mut self) -> i16 {
        self.next() as i16
    }

    fn u16(&mut self) -> u16 {
        self.next() as u16
    }

    fn reg(&mut self) -> Reg {
        Reg::new(self.below(8) as u8)
    }

    fn breg(&mut self) -> BranchReg {
        BranchReg::new(self.below(8) as u8)
    }

    fn alu_op(&mut self) -> AluOp {
        const OPS: [AluOp; 8] = [
            AluOp::Add,
            AluOp::Sub,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Sll,
            AluOp::Srl,
            AluOp::Sra,
        ];
        OPS[self.below(8) as usize]
    }

    fn cond(&mut self) -> Cond {
        const CONDS: [Cond; 6] = [
            Cond::Always,
            Cond::Eqz,
            Cond::Nez,
            Cond::Gtz,
            Cond::Ltz,
            Cond::Never,
        ];
        CONDS[self.below(6) as usize]
    }

    fn instruction(&mut self) -> Instruction {
        match self.below(12) {
            0 => Instruction::Nop,
            1 => Instruction::Halt,
            2 => Instruction::Xchg,
            3 => Instruction::Alu {
                op: self.alu_op(),
                rd: self.reg(),
                rs1: self.reg(),
                rs2: self.reg(),
            },
            4 => Instruction::AluImm {
                op: self.alu_op(),
                rd: self.reg(),
                rs1: self.reg(),
                imm: self.i16(),
            },
            5 => Instruction::Lim {
                rd: self.reg(),
                imm: self.i16(),
            },
            6 => Instruction::Lui {
                rd: self.reg(),
                imm: self.u16(),
            },
            7 => Instruction::Load {
                base: self.reg(),
                disp: self.i16(),
            },
            8 => Instruction::StoreAddr {
                base: self.reg(),
                disp: self.i16(),
            },
            9 => Instruction::Lbr {
                br: self.breg(),
                target_parcel: self.u16(),
            },
            10 => Instruction::LbrReg {
                br: self.breg(),
                rs1: self.reg(),
            },
            _ => Instruction::Pbr {
                cond: self.cond(),
                br: self.breg(),
                rs: self.reg(),
                delay: self.below(8) as u8,
            },
        }
    }

    fn instructions(&mut self, lo: usize, hi: usize) -> Vec<Instruction> {
        let n = lo + self.below((hi - lo) as u64) as usize;
        (0..n).map(|_| self.instruction()).collect()
    }

    fn format(&mut self) -> InstrFormat {
        if self.bool() {
            InstrFormat::Fixed32
        } else {
            InstrFormat::Mixed
        }
    }
}

// ---------------------------------------------------------------------
// ISA: encode/decode round-trip over the full instruction space.
// ---------------------------------------------------------------------

/// Ties the whole ISA toolchain together: the `Display` form of any
/// instruction is valid assembler syntax that round-trips through the
/// text assembler, the encoder, and the decoder.
#[test]
fn display_assembles_back_to_the_same_instruction() {
    let mut rng = Rng::new(0x1501);
    for _ in 0..256 {
        let instrs = rng.instructions(1, 40);
        let format = rng.format();
        let source: String = instrs.iter().map(|i| format!("{i}\n")).collect();
        let program = pipe_repro::isa::Assembler::new(format)
            .assemble(&source)
            .expect("display output assembles");
        let decoded: Vec<Instruction> = program.instructions().map(|(_, i)| i).collect();
        assert_eq!(decoded, instrs, "source:\n{source}");
    }
}

#[test]
fn binfmt_roundtrips_any_program() {
    let mut rng = Rng::new(0x1502);
    for _ in 0..256 {
        let instrs = rng.instructions(1, 60);
        let format = rng.format();
        let mut b = ProgramBuilder::new(format);
        b.extend(instrs.iter().copied());
        let n_data = rng.below(10);
        for _ in 0..n_data {
            b.data_word(rng.next() as u32, rng.next() as u32);
        }
        b.label("end");
        let program = b.build().expect("builds");
        let bytes = pipe_repro::isa::write_program(&program);
        let loaded = pipe_repro::isa::read_program(&bytes).expect("loads");
        assert_eq!(loaded.parcels(), program.parcels());
        assert_eq!(loaded.symbols(), program.symbols());
        assert_eq!(loaded.data(), program.data());
        assert_eq!(loaded.format(), program.format());
    }
}

#[test]
fn encode_decode_roundtrip() {
    let mut rng = Rng::new(0x1503);
    for _ in 0..2048 {
        let instr = rng.instruction();
        let format = rng.format();
        let e = encode(&instr, format);
        let p = e.parcels();
        let decoded = decode(p[0], p.get(1).copied()).expect("decodes");
        assert_eq!(decoded, instr);
    }
}

#[test]
fn encoded_size_matches_declared_size() {
    let mut rng = Rng::new(0x1504);
    for _ in 0..2048 {
        let instr = rng.instruction();
        for format in InstrFormat::ALL {
            let e = encode(&instr, format);
            assert_eq!(e.len() as u32, instr.size_parcels(format), "{instr}");
        }
    }
}

#[test]
fn branch_bit_iff_pbr() {
    let mut rng = Rng::new(0x1505);
    for _ in 0..2048 {
        let instr = rng.instruction();
        let e = encode(&instr, InstrFormat::Fixed32);
        assert_eq!(
            pipe_repro::isa::encode::parcel_is_branch(e.parcels()[0]),
            instr.is_branch(),
            "{instr}"
        );
    }
}

// ---------------------------------------------------------------------
// Cache: model equivalence against a naive reference.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum CacheOp {
    Fill { addr: u32, bytes: u32 },
    Check { addr: u32, bytes: u32 },
}

/// Naive reference: per 4-byte sub-block, remember which tag is valid.
#[derive(Default)]
struct RefCache {
    // line index -> (tag, set of valid sub-block offsets)
    lines: std::collections::HashMap<u32, (u32, std::collections::HashSet<u32>)>,
}

impl RefCache {
    fn fill(&mut self, cfg: &CacheConfig, addr: u32, bytes: u32) {
        let mut a = addr & !3;
        while a < addr + bytes {
            let idx = cfg.line_index(a);
            let tag = cfg.tag_of(a);
            let entry = self.lines.entry(idx).or_insert((tag, Default::default()));
            if entry.0 != tag {
                *entry = (tag, Default::default());
            }
            entry.1.insert((a - cfg.line_base(a)) / 4);
            a += 4;
        }
    }

    fn contains(&self, cfg: &CacheConfig, addr: u32, bytes: u32) -> bool {
        let mut a = addr & !3;
        let end = addr + bytes;
        while a < end {
            let idx = cfg.line_index(a);
            match self.lines.get(&idx) {
                Some((tag, subs))
                    if *tag == cfg.tag_of(a) && subs.contains(&((a - cfg.line_base(a)) / 4)) => {}
                _ => return false,
            }
            a += 4;
        }
        true
    }
}

#[test]
fn cache_matches_reference_model() {
    let mut rng = Rng::new(0x1506);
    for _ in 0..64 {
        let size = 1u32 << rng.range_u32(4, 10);
        let line = (1u32 << rng.range_u32(3, 6)).min(size);
        let cfg = CacheConfig::new(size, line);
        let mut cache = InstructionCache::new(cfg);
        let mut reference = RefCache::default();
        let ops: Vec<CacheOp> = (0..rng.range_u32(1, 200))
            .map(|_| {
                if rng.bool() {
                    CacheOp::Fill {
                        addr: rng.range_u32(0, 1024) * 2,
                        bytes: rng.range_u32(1, 4) * 4,
                    }
                } else {
                    CacheOp::Check {
                        addr: rng.range_u32(0, 1024) * 2,
                        bytes: rng.range_u32(1, 3) * 2,
                    }
                }
            })
            .collect();
        for op in &ops {
            match *op {
                CacheOp::Fill { addr, bytes } => {
                    cache.fill(addr, bytes);
                    reference.fill(&cfg, addr, bytes);
                }
                CacheOp::Check { addr, bytes } => {
                    // Keep the probe within one line, as the cache requires.
                    let line_end = cfg.line_base(addr) + cfg.line_bytes;
                    let bytes = bytes.min(line_end - addr);
                    assert_eq!(
                        cache.contains(addr, bytes),
                        reference.contains(&cfg, addr, bytes),
                        "at {addr:#x}+{bytes} ({size}B cache, {line}B lines)"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Memory system: conservation and completeness of responses.
// ---------------------------------------------------------------------

#[test]
fn every_accepted_read_is_fully_delivered() {
    let mut rng = Rng::new(0x1507);
    for _ in 0..64 {
        let access = rng.range_u32(1, 7);
        let pipelined = rng.bool();
        let wide_bus = rng.bool();
        let sizes: Vec<u32> = (0..rng.range_u32(1, 20))
            .map(|_| rng.range_u32(1, 9))
            .collect();

        let mut mem = MemorySystem::new(MemConfig {
            access_cycles: access,
            pipelined,
            in_bus_bytes: if wide_bus { 8 } else { 4 },
            ..MemConfig::default()
        });
        let mut queue: Vec<(u64, u32)> = Vec::new();
        for (i, &parcels) in sizes.iter().enumerate() {
            let tag = mem.new_tag();
            queue.push((tag, parcels * 2));
            // Re-offer until accepted.
            let mut accepted = false;
            for _ in 0..200 {
                mem.offer(MemRequest::load(
                    ReqClass::IFetch,
                    (i as u32) * 64,
                    parcels * 2,
                    tag,
                ));
                let out = mem.tick();
                if out.accepted == Some(tag) {
                    accepted = true;
                }
                if let Some(b) = &out.beats {
                    if let Some(entry) = queue.iter_mut().find(|(t, _)| *t == b.tag) {
                        entry.1 = entry.1.saturating_sub(b.bytes);
                        if b.last {
                            assert_eq!(entry.1, 0, "last beat must complete the transfer");
                        }
                    }
                }
                if accepted {
                    break;
                }
            }
            assert!(accepted, "request {i} never accepted");
        }
        // Drain everything.
        for _ in 0..2000 {
            if mem.is_idle() {
                break;
            }
            let out = mem.tick();
            if let Some(b) = &out.beats {
                if let Some(entry) = queue.iter_mut().find(|(t, _)| *t == b.tag) {
                    entry.1 = entry.1.saturating_sub(b.bytes);
                }
            }
        }
        assert!(mem.is_idle(), "memory never drained");
        for (tag, remaining) in queue {
            assert_eq!(remaining, 0, "tag {tag} shorted");
        }
    }
}

// ---------------------------------------------------------------------
// Random queue-disciplined kernels: interpreter vs timed processor.
// ---------------------------------------------------------------------

use pipe_repro::core::interpret;
use pipe_repro::workloads::{kernel_program, FpKind, Kernel, KernelOp, Src};

/// Balanced op groups: each leaves the LDQ empty, so any concatenation
/// satisfies the queue discipline by construction.
fn kernel_group(rng: &mut Rng) -> Vec<KernelOp> {
    let load = |s: u32, off: i16| KernelOp::Load {
        stream: s,
        elem_off: off,
    };
    match rng.below(6) {
        // load; acc op; store result
        0 => {
            let s = rng.range_u32(0, 7);
            let off = rng.below(4) as i16;
            vec![
                load(s, off),
                KernelOp::Fp {
                    kind: FpKind::Add,
                    a: Src::Queue,
                    b: Src::Acc,
                },
                KernelOp::Store {
                    stream: (s + 1) % 7,
                },
            ]
        }
        // two loads; multiply; store
        1 => {
            let a = rng.range_u32(0, 6);
            let b = rng.range_u32(0, 6);
            vec![
                load(a, 0),
                load(b, 1),
                KernelOp::Fp {
                    kind: FpKind::Mul,
                    a: Src::Queue,
                    b: Src::Queue,
                },
                KernelOp::Store { stream: 6 },
            ]
        }
        // multiply-accumulate
        2 => {
            let a = rng.range_u32(0, 6);
            vec![
                load(a, 0),
                load((a + 2) % 6, 0),
                KernelOp::Fp {
                    kind: FpKind::Sub,
                    a: Src::Queue,
                    b: Src::Queue,
                },
                KernelOp::Fp {
                    kind: FpKind::Add,
                    a: Src::Acc,
                    b: Src::Queue,
                },
                KernelOp::PopAcc,
            ]
        }
        // constant consumption
        3 => vec![
            KernelOp::LoadConst {
                idx: rng.below(4) as u16,
            },
            KernelOp::PopAcc,
        ],
        // store the accumulator
        4 => vec![KernelOp::StoreAcc {
            stream: rng.range_u32(0, 7),
        }],
        _ => vec![KernelOp::Pad],
    }
}

#[test]
fn random_kernels_agree_between_interpreter_and_processor() {
    let mut rng = Rng::new(0x1508);
    for _ in 0..24 {
        let groups = rng.range_u32(1, 8);
        let ops: Vec<KernelOp> = (0..groups).flat_map(|_| kernel_group(&mut rng)).collect();
        let trips = rng.range_u32(2, 8);
        let pads = rng.range_u32(3, 8);
        let access = rng.range_u32(1, 7);
        let cost: u32 = ops.iter().map(|o| o.cost()).sum();
        let kernel = Kernel {
            index: 99,
            name: "fuzz",
            ops,
            target_instructions: cost + 3 + pads,
        };
        let program = kernel_program(&kernel, trips, InstrFormat::Fixed32)
            .expect("balanced groups satisfy the discipline");

        let reference = interpret(&program, 1_000_000).expect("interprets");
        for fetch in [
            FetchStrategy::Pipe(PipeFetchConfig::table2(32, 16, 16, 16)),
            FetchStrategy::conventional(CacheConfig::new(32, 16)),
        ] {
            let cfg = SimConfig {
                fetch,
                mem: MemConfig {
                    access_cycles: access,
                    ..MemConfig::default()
                },
                max_cycles: 50_000_000,
                ..SimConfig::default()
            };
            let mut proc = Processor::new(&program, &cfg).expect("valid");
            proc.run().expect("runs");
            let stats = proc.stats();
            assert_eq!(stats.instructions_issued, reference.instructions);
            assert_eq!(stats.fpu_ops, reference.fpu_ops);
            assert_eq!(stats.loads, reference.loads);
            assert!(proc.mem().data() == &reference.memory, "memory diverged");
        }
    }
}

// ---------------------------------------------------------------------
// Cross-engine architectural equivalence on random ALU programs.
// ---------------------------------------------------------------------

fn branchless_instruction(rng: &mut Rng) -> Instruction {
    match rng.below(6) {
        0 => Instruction::Nop,
        1 => Instruction::Xchg,
        2 => Instruction::Alu {
            op: rng.alu_op(),
            rd: Reg::new(rng.below(7) as u8),
            rs1: Reg::new(rng.below(7) as u8),
            rs2: Reg::new(rng.below(7) as u8),
        },
        3 => Instruction::AluImm {
            op: rng.alu_op(),
            rd: Reg::new(rng.below(7) as u8),
            rs1: Reg::new(rng.below(7) as u8),
            imm: rng.i16(),
        },
        4 => Instruction::Lim {
            rd: Reg::new(rng.below(7) as u8),
            imm: rng.i16(),
        },
        _ => Instruction::Lui {
            rd: Reg::new(rng.below(7) as u8),
            imm: rng.u16(),
        },
    }
}

#[test]
fn engines_agree_on_random_alu_programs() {
    let mut rng = Rng::new(0x1509);
    for _ in 0..48 {
        let n = rng.range_u32(1, 120) as usize;
        let instrs: Vec<Instruction> = (0..n).map(|_| branchless_instruction(&mut rng)).collect();
        let access = rng.range_u32(1, 7);
        let mut b = ProgramBuilder::new(InstrFormat::Fixed32);
        b.extend(instrs.iter().copied());
        b.push(Instruction::Halt);
        let program = b.build().expect("builds");

        let mut results: Vec<Vec<u32>> = Vec::new();
        for fetch in [
            FetchStrategy::Perfect,
            FetchStrategy::conventional(CacheConfig::new(64, 16)),
            FetchStrategy::Pipe(PipeFetchConfig::table2(64, 16, 16, 16)),
        ] {
            let cfg = SimConfig {
                fetch,
                mem: MemConfig {
                    access_cycles: access,
                    ..MemConfig::default()
                },
                max_cycles: 10_000_000,
                ..SimConfig::default()
            };
            let mut proc = Processor::new(&program, &cfg).expect("valid");
            proc.run().expect("runs");
            let stats = proc.stats();
            assert_eq!(stats.instructions_issued, instrs.len() as u64 + 1);
            results.push((0..7).map(|i| proc.regs().read(Reg::new(i))).collect());
        }
        assert_eq!(&results[0], &results[1]);
        assert_eq!(&results[0], &results[2]);
    }
}

// ---------------------------------------------------------------------
// Predecode / raw-decode parity.
// ---------------------------------------------------------------------

/// The predecoded fast path and the raw-word fallback (used by trace
/// replay and non-image-backed engines) must be cycle-for-cycle
/// indistinguishable: identical full statistics and architectural state
/// over randomized programs, engines, and memory timings.
#[test]
fn predecode_matches_raw_decode_on_random_programs() {
    let mut rng = Rng::new(0x150a);
    for trial in 0..24 {
        // Alternate between straight-line ALU programs and branchy
        // load/store/FPU kernels so both control-flow shapes are covered.
        let program = if trial % 2 == 0 {
            let n = rng.range_u32(1, 120) as usize;
            let mut b = ProgramBuilder::new(InstrFormat::Fixed32);
            b.extend((0..n).map(|_| branchless_instruction(&mut rng)));
            b.push(Instruction::Halt);
            b.build().expect("builds")
        } else {
            let groups = rng.range_u32(1, 8);
            let ops: Vec<KernelOp> = (0..groups).flat_map(|_| kernel_group(&mut rng)).collect();
            let cost: u32 = ops.iter().map(|o| o.cost()).sum();
            let pads = rng.range_u32(3, 8);
            let kernel = Kernel {
                index: 98,
                name: "parity",
                ops,
                target_instructions: cost + 3 + pads,
            };
            kernel_program(&kernel, rng.range_u32(2, 8), InstrFormat::Fixed32)
                .expect("balanced groups satisfy the discipline")
        };
        let access = rng.range_u32(1, 7);
        for fetch in [
            FetchStrategy::Perfect,
            FetchStrategy::conventional(CacheConfig::new(32, 16)),
            FetchStrategy::Pipe(PipeFetchConfig::table2(32, 16, 16, 16)),
        ] {
            let cfg = SimConfig {
                fetch,
                mem: MemConfig {
                    access_cycles: access,
                    ..MemConfig::default()
                },
                max_cycles: 50_000_000,
                ..SimConfig::default()
            };
            let mut fast = Processor::new(&program, &cfg).expect("valid");
            fast.run().expect("runs");
            let mut raw = Processor::new(&program, &cfg).expect("valid");
            raw.set_force_raw_decode(true);
            raw.run().expect("runs");
            assert_eq!(fast.stats(), raw.stats(), "stats diverged under {fetch}");
            for i in 0..7u8 {
                assert_eq!(
                    fast.regs().read(Reg::new(i)),
                    raw.regs().read(Reg::new(i)),
                    "r{i} diverged under {fetch}"
                );
            }
            assert!(
                fast.mem().data() == raw.mem().data(),
                "memory diverged under {fetch}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Batched kernel: bit-identical to the scalar path.
// ---------------------------------------------------------------------

use std::sync::Arc;

use pipe_repro::core::{run_batch, run_decoded};
use pipe_repro::icache::TibConfig;
use pipe_repro::isa::DecodedProgram;

/// A random lane configuration: any engine, any cache size, any memory
/// timing — including a deliberately tiny cycle budget now and then so
/// timeout errors are covered too.
fn random_lane(rng: &mut Rng) -> SimConfig {
    let cache_bytes = 1u32 << rng.range_u32(5, 10);
    let fetch = match rng.below(4) {
        0 => FetchStrategy::Perfect,
        1 => FetchStrategy::conventional(CacheConfig::new(cache_bytes, 16)),
        2 => FetchStrategy::Pipe(PipeFetchConfig::table2(cache_bytes, 16, 16, 16)),
        _ => FetchStrategy::Tib(TibConfig::with_budget(cache_bytes, 16)),
    };
    SimConfig {
        fetch,
        mem: MemConfig {
            access_cycles: rng.range_u32(1, 10),
            pipelined: rng.bool(),
            in_bus_bytes: if rng.bool() { 8 } else { 4 },
            ..MemConfig::default()
        },
        max_cycles: if rng.below(8) == 0 {
            u64::from(rng.range_u32(50, 400))
        } else {
            50_000_000
        },
        ..SimConfig::default()
    }
}

/// The contract of `run_batch`: every lane's outcome — statistics on
/// success, error on timeout — is bit-identical to `run_decoded` with
/// the same configuration, over random programs and random lane mixes.
/// This exercises the lockstep scheduler and the stall fast-forward
/// against the plain cycle loop, which never fast-forwards.
#[test]
fn batched_lanes_match_scalar_on_random_programs() {
    let mut rng = Rng::new(0x150b);
    for trial in 0..24 {
        let program = if trial % 2 == 0 {
            let n = rng.range_u32(1, 120) as usize;
            let mut b = ProgramBuilder::new(InstrFormat::Fixed32);
            b.extend((0..n).map(|_| branchless_instruction(&mut rng)));
            b.push(Instruction::Halt);
            b.build().expect("builds")
        } else {
            let groups = rng.range_u32(1, 8);
            let ops: Vec<KernelOp> = (0..groups).flat_map(|_| kernel_group(&mut rng)).collect();
            let cost: u32 = ops.iter().map(|o| o.cost()).sum();
            let pads = rng.range_u32(3, 8);
            let kernel = Kernel {
                index: 97,
                name: "batch-parity",
                ops,
                target_instructions: cost + 3 + pads,
            };
            kernel_program(&kernel, rng.range_u32(2, 8), InstrFormat::Fixed32)
                .expect("balanced groups satisfy the discipline")
        };
        let decoded = Arc::new(DecodedProgram::new(program));
        let lanes: Vec<SimConfig> = (0..rng.range_u32(2, 9))
            .map(|_| random_lane(&mut rng))
            .collect();
        let batched = run_batch(&decoded, &lanes);
        assert_eq!(batched.len(), lanes.len());
        for (lane, (config, batched)) in lanes.iter().zip(&batched).enumerate() {
            let scalar = run_decoded(&decoded, config);
            assert_eq!(
                &scalar, batched,
                "trial {trial} lane {lane} diverged under {:?}",
                config.fetch
            );
        }
    }
}
