//! Property-based tests over core data structures and cross-engine
//! architectural equivalence.

use proptest::prelude::*;

use pipe_repro::core::{FetchStrategy, Processor, SimConfig};
use pipe_repro::icache::{CacheConfig, InstructionCache, PipeFetchConfig};
use pipe_repro::isa::{
    decode, encode, AluOp, BranchReg, Cond, InstrFormat, Instruction, ProgramBuilder, Reg,
};
use pipe_repro::mem::{MemConfig, MemRequest, MemorySystem, ReqClass};

// ---------------------------------------------------------------------
// ISA: encode/decode round-trip over the full instruction space.
// ---------------------------------------------------------------------

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..8).prop_map(Reg::new)
}

fn arb_breg() -> impl Strategy<Value = BranchReg> {
    (0u8..8).prop_map(BranchReg::new)
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Always),
        Just(Cond::Eqz),
        Just(Cond::Nez),
        Just(Cond::Gtz),
        Just(Cond::Ltz),
        Just(Cond::Never),
    ]
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        Just(Instruction::Nop),
        Just(Instruction::Halt),
        Just(Instruction::Xchg),
        (arb_alu_op(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instruction::Alu { op, rd, rs1, rs2 }),
        (arb_alu_op(), arb_reg(), arb_reg(), any::<i16>())
            .prop_map(|(op, rd, rs1, imm)| Instruction::AluImm { op, rd, rs1, imm }),
        (arb_reg(), any::<i16>()).prop_map(|(rd, imm)| Instruction::Lim { rd, imm }),
        (arb_reg(), any::<u16>()).prop_map(|(rd, imm)| Instruction::Lui { rd, imm }),
        (arb_reg(), any::<i16>()).prop_map(|(base, disp)| Instruction::Load { base, disp }),
        (arb_reg(), any::<i16>()).prop_map(|(base, disp)| Instruction::StoreAddr { base, disp }),
        (arb_breg(), any::<u16>())
            .prop_map(|(br, target_parcel)| Instruction::Lbr { br, target_parcel }),
        (arb_breg(), arb_reg()).prop_map(|(br, rs1)| Instruction::LbrReg { br, rs1 }),
        (arb_cond(), arb_breg(), arb_reg(), 0u8..8).prop_map(|(cond, br, rs, delay)| {
            Instruction::Pbr {
                cond,
                br,
                rs,
                delay,
            }
        }),
    ]
}

proptest! {
    /// Ties the whole ISA toolchain together: the `Display` form of any
    /// instruction is valid assembler syntax that round-trips through the
    /// text assembler, the encoder, and the decoder.
    #[test]
    fn display_assembles_back_to_the_same_instruction(
        instrs in proptest::collection::vec(arb_instruction(), 1..40),
        fixed in any::<bool>(),
    ) {
        let format = if fixed { InstrFormat::Fixed32 } else { InstrFormat::Mixed };
        let source: String = instrs
            .iter()
            .map(|i| format!("{i}\n"))
            .collect();
        let program = pipe_repro::isa::Assembler::new(format)
            .assemble(&source)
            .expect("display output assembles");
        let decoded: Vec<Instruction> = program.instructions().map(|(_, i)| i).collect();
        prop_assert_eq!(decoded, instrs);
    }

    #[test]
    fn binfmt_roundtrips_any_program(
        instrs in proptest::collection::vec(arb_instruction(), 1..60),
        data in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..10),
        fixed in any::<bool>(),
    ) {
        let format = if fixed { InstrFormat::Fixed32 } else { InstrFormat::Mixed };
        let mut b = ProgramBuilder::new(format);
        b.extend(instrs.iter().copied());
        for &(addr, value) in &data {
            b.data_word(addr, value);
        }
        b.label("end");
        let program = b.build().expect("builds");
        let bytes = pipe_repro::isa::write_program(&program);
        let loaded = pipe_repro::isa::read_program(&bytes).expect("loads");
        prop_assert_eq!(loaded.parcels(), program.parcels());
        prop_assert_eq!(loaded.symbols(), program.symbols());
        prop_assert_eq!(loaded.data(), program.data());
        prop_assert_eq!(loaded.format(), program.format());
    }

    #[test]
    fn encode_decode_roundtrip(instr in arb_instruction(), fixed in any::<bool>()) {
        let format = if fixed { InstrFormat::Fixed32 } else { InstrFormat::Mixed };
        let e = encode(&instr, format);
        let p = e.parcels();
        let decoded = decode(p[0], p.get(1).copied()).expect("decodes");
        prop_assert_eq!(decoded, instr);
    }

    #[test]
    fn encoded_size_matches_declared_size(instr in arb_instruction()) {
        for format in InstrFormat::ALL {
            let e = encode(&instr, format);
            prop_assert_eq!(e.len() as u32, instr.size_parcels(format));
        }
    }

    #[test]
    fn branch_bit_iff_pbr(instr in arb_instruction()) {
        let e = encode(&instr, InstrFormat::Fixed32);
        prop_assert_eq!(
            pipe_repro::isa::encode::parcel_is_branch(e.parcels()[0]),
            instr.is_branch()
        );
    }
}

// ---------------------------------------------------------------------
// Cache: model equivalence against a naive reference.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum CacheOp {
    Fill { addr: u32, bytes: u32 },
    Check { addr: u32, bytes: u32 },
}

fn arb_cache_ops() -> impl Strategy<Value = Vec<CacheOp>> {
    let op = prop_oneof![
        ((0u32..1024), (1u32..=3)).prop_map(|(a, w)| CacheOp::Fill {
            addr: a * 2,
            bytes: w * 4
        }),
        ((0u32..1024), (1u32..=2)).prop_map(|(a, w)| CacheOp::Check {
            addr: a * 2,
            bytes: w * 2
        }),
    ];
    proptest::collection::vec(op, 1..200)
}

/// Naive reference: per 4-byte sub-block, remember which tag is valid.
#[derive(Default)]
struct RefCache {
    // line index -> (tag, set of valid sub-block offsets)
    lines: std::collections::HashMap<u32, (u32, std::collections::HashSet<u32>)>,
}

impl RefCache {
    fn fill(&mut self, cfg: &CacheConfig, addr: u32, bytes: u32) {
        let mut a = addr & !3;
        while a < addr + bytes {
            let idx = cfg.line_index(a);
            let tag = cfg.tag_of(a);
            let entry = self.lines.entry(idx).or_insert((tag, Default::default()));
            if entry.0 != tag {
                *entry = (tag, Default::default());
            }
            entry.1.insert((a - cfg.line_base(a)) / 4);
            a += 4;
        }
    }

    fn contains(&self, cfg: &CacheConfig, addr: u32, bytes: u32) -> bool {
        let mut a = addr & !3;
        let end = addr + bytes;
        while a < end {
            let idx = cfg.line_index(a);
            match self.lines.get(&idx) {
                Some((tag, subs))
                    if *tag == cfg.tag_of(a) && subs.contains(&((a - cfg.line_base(a)) / 4)) => {}
                _ => return false,
            }
            a += 4;
        }
        true
    }
}

proptest! {
    #[test]
    fn cache_matches_reference_model(ops in arb_cache_ops(), size_pow in 4u32..10, line_pow in 3u32..6) {
        let size = 1u32 << size_pow;
        let line = (1u32 << line_pow).min(size);
        let cfg = CacheConfig::new(size, line);
        let mut cache = InstructionCache::new(cfg);
        let mut reference = RefCache::default();
        for op in &ops {
            match *op {
                CacheOp::Fill { addr, bytes } => {
                    cache.fill(addr, bytes);
                    reference.fill(&cfg, addr, bytes);
                }
                CacheOp::Check { addr, bytes } => {
                    // Keep the probe within one line, as the cache requires.
                    let line_end = cfg.line_base(addr) + cfg.line_bytes;
                    let bytes = bytes.min(line_end - addr);
                    prop_assert_eq!(
                        cache.contains(addr, bytes),
                        reference.contains(&cfg, addr, bytes),
                        "at {:#x}+{}", addr, bytes
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Memory system: conservation and completeness of responses.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn every_accepted_read_is_fully_delivered(
        sizes in proptest::collection::vec(1u32..=8, 1..20),
        access in 1u32..=6,
        pipelined in any::<bool>(),
        wide_bus in any::<bool>(),
    ) {
        let mut mem = MemorySystem::new(MemConfig {
            access_cycles: access,
            pipelined,
            in_bus_bytes: if wide_bus { 8 } else { 4 },
            ..MemConfig::default()
        });
        let mut queue: Vec<(u64, u32)> = Vec::new();
        for (i, &parcels) in sizes.iter().enumerate() {
            let tag = mem.new_tag();
            queue.push((tag, parcels * 2));
            // Re-offer until accepted.
            let mut accepted = false;
            for _ in 0..200 {
                mem.offer(MemRequest::load(ReqClass::IFetch, (i as u32) * 64, parcels * 2, tag));
                let out = mem.tick();
                if out.accepted.contains(&tag) {
                    accepted = true;
                }
                for b in &out.beats {
                    if let Some(entry) = queue.iter_mut().find(|(t, _)| *t == b.tag) {
                        entry.1 = entry.1.saturating_sub(b.bytes);
                        if b.last {
                            prop_assert_eq!(entry.1, 0, "last beat must complete the transfer");
                        }
                    }
                }
                if accepted {
                    break;
                }
            }
            prop_assert!(accepted, "request {i} never accepted");
        }
        // Drain everything.
        for _ in 0..2000 {
            if mem.is_idle() {
                break;
            }
            let out = mem.tick();
            for b in &out.beats {
                if let Some(entry) = queue.iter_mut().find(|(t, _)| *t == b.tag) {
                    entry.1 = entry.1.saturating_sub(b.bytes);
                }
            }
        }
        prop_assert!(mem.is_idle(), "memory never drained");
        for (tag, remaining) in queue {
            prop_assert_eq!(remaining, 0, "tag {} shorted", tag);
        }
    }
}

// ---------------------------------------------------------------------
// Random queue-disciplined kernels: interpreter vs timed processor.
// ---------------------------------------------------------------------

use pipe_repro::core::interpret;
use pipe_repro::workloads::{kernel_program, FpKind, Kernel, KernelOp, Src};

/// Balanced op groups: each leaves the LDQ empty, so any concatenation
/// satisfies the queue discipline by construction.
fn arb_kernel_group() -> impl Strategy<Value = Vec<KernelOp>> {
    let load = |s: u32, off: i16| KernelOp::Load {
        stream: s,
        elem_off: off,
    };
    prop_oneof![
        // load; acc op; store result
        ((0u32..7), (0i16..4)).prop_map(move |(s, off)| vec![
            load(s, off),
            KernelOp::Fp {
                kind: FpKind::Add,
                a: Src::Queue,
                b: Src::Acc
            },
            KernelOp::Store { stream: (s + 1) % 7 },
        ]),
        // two loads; multiply; store
        ((0u32..6), (0u32..6)).prop_map(move |(a, b)| vec![
            load(a, 0),
            load(b, 1),
            KernelOp::Fp {
                kind: FpKind::Mul,
                a: Src::Queue,
                b: Src::Queue
            },
            KernelOp::Store { stream: 6 },
        ]),
        // multiply-accumulate
        ((0u32..6),).prop_map(move |(a,)| vec![
            load(a, 0),
            load((a + 2) % 6, 0),
            KernelOp::Fp {
                kind: FpKind::Sub,
                a: Src::Queue,
                b: Src::Queue
            },
            KernelOp::Fp {
                kind: FpKind::Add,
                a: Src::Acc,
                b: Src::Queue
            },
            KernelOp::PopAcc,
        ]),
        // constant consumption
        ((0u16..4),).prop_map(|(c,)| vec![
            KernelOp::LoadConst { idx: c },
            KernelOp::PopAcc,
        ]),
        // store the accumulator
        ((0u32..7),).prop_map(|(s,)| vec![KernelOp::StoreAcc { stream: s }]),
        Just(vec![KernelOp::Pad]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn random_kernels_agree_between_interpreter_and_processor(
        groups in proptest::collection::vec(arb_kernel_group(), 1..8),
        trips in 2u32..8,
        pads in 3u32..8,
        access in 1u32..=6,
    ) {
        let ops: Vec<KernelOp> = groups.into_iter().flatten().collect();
        let cost: u32 = ops.iter().map(|o| o.cost()).sum();
        let kernel = Kernel {
            index: 99,
            name: "fuzz",
            ops,
            target_instructions: cost + 3 + pads,
        };
        let program = kernel_program(&kernel, trips, InstrFormat::Fixed32)
            .expect("balanced groups satisfy the discipline");

        let reference = interpret(&program, 1_000_000).expect("interprets");
        for fetch in [
            FetchStrategy::Pipe(PipeFetchConfig::table2(32, 16, 16, 16)),
            FetchStrategy::Conventional(CacheConfig::new(32, 16)),
        ] {
            let cfg = SimConfig {
                fetch,
                mem: MemConfig { access_cycles: access, ..MemConfig::default() },
                max_cycles: 50_000_000,
                ..SimConfig::default()
            };
            let mut proc = Processor::new(&program, &cfg).expect("valid");
            let stats = proc.run().expect("runs");
            prop_assert_eq!(stats.instructions_issued, reference.instructions);
            prop_assert_eq!(stats.fpu_ops, reference.fpu_ops);
            prop_assert_eq!(stats.loads, reference.loads);
            prop_assert!(proc.mem().data() == &reference.memory, "memory diverged");
        }
    }
}

// ---------------------------------------------------------------------
// Cross-engine architectural equivalence on random ALU programs.
// ---------------------------------------------------------------------

fn arb_branchless_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        Just(Instruction::Nop),
        Just(Instruction::Xchg),
        (arb_alu_op(), 0u8..7, 0u8..7, 0u8..7).prop_map(|(op, rd, rs1, rs2)| Instruction::Alu {
            op,
            rd: Reg::new(rd),
            rs1: Reg::new(rs1),
            rs2: Reg::new(rs2)
        }),
        (arb_alu_op(), 0u8..7, 0u8..7, any::<i16>()).prop_map(|(op, rd, rs1, imm)| {
            Instruction::AluImm {
                op,
                rd: Reg::new(rd),
                rs1: Reg::new(rs1),
                imm,
            }
        }),
        (0u8..7, any::<i16>()).prop_map(|(rd, imm)| Instruction::Lim {
            rd: Reg::new(rd),
            imm
        }),
        (0u8..7, any::<u16>()).prop_map(|(rd, imm)| Instruction::Lui {
            rd: Reg::new(rd),
            imm
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn engines_agree_on_random_alu_programs(
        instrs in proptest::collection::vec(arb_branchless_instruction(), 1..120),
        access in 1u32..=6,
    ) {
        let mut b = ProgramBuilder::new(InstrFormat::Fixed32);
        b.extend(instrs.iter().copied());
        b.push(Instruction::Halt);
        let program = b.build().expect("builds");

        let mut results: Vec<Vec<u32>> = Vec::new();
        for fetch in [
            FetchStrategy::Perfect,
            FetchStrategy::Conventional(CacheConfig::new(64, 16)),
            FetchStrategy::Pipe(PipeFetchConfig::table2(64, 16, 16, 16)),
        ] {
            let cfg = SimConfig {
                fetch,
                mem: MemConfig { access_cycles: access, ..MemConfig::default() },
                max_cycles: 10_000_000,
                ..SimConfig::default()
            };
            let mut proc = Processor::new(&program, &cfg).expect("valid");
            let stats = proc.run().expect("runs");
            prop_assert_eq!(stats.instructions_issued, instrs.len() as u64 + 1);
            results.push((0..7).map(|i| proc.regs().read(Reg::new(i))).collect());
        }
        prop_assert_eq!(&results[0], &results[1]);
        prop_assert_eq!(&results[0], &results[2]);
    }
}
