//! End-to-end tests across crates: assembly → simulation → architectural
//! state, on every fetch engine.

use pipe_repro::prelude::*;

fn engines_for(cache_bytes: u32) -> Vec<FetchStrategy> {
    vec![
        FetchStrategy::Perfect,
        FetchStrategy::conventional(CacheConfig::new(cache_bytes, 16)),
        FetchStrategy::Pipe(PipeFetchConfig::table2(cache_bytes, 8, 8, 8)),
        FetchStrategy::Pipe(PipeFetchConfig::table2(cache_bytes, 16, 16, 16)),
        FetchStrategy::Pipe(PipeFetchConfig::table2(cache_bytes, 32, 16, 32)),
    ]
}

fn run_on(program: &Program, fetch: FetchStrategy, access: u32) -> (SimStats, Vec<u32>, Vec<u32>) {
    let cfg = SimConfig {
        fetch,
        mem: pipe_repro::mem::MemConfig {
            access_cycles: access,
            in_bus_bytes: 4,
            ..Default::default()
        },
        ..SimConfig::default()
    };
    let mut proc = pipe_repro::core::Processor::new(program, &cfg).expect("valid");
    proc.run().expect("runs");
    let stats = proc.stats().clone();
    let regs = (0..7).map(|i| proc.regs().read(Reg::new(i))).collect();
    let mem = (0..16)
        .map(|i| proc.mem().data().read(0x0010_0000 + i * 4))
        .collect();
    (stats, regs, mem)
}

#[test]
fn fibonacci_program_agrees_everywhere() {
    let source = r#"
        lim  r1, 10
        lim  r2, 0          ; fib(0)
        lim  r3, 1          ; fib(1)
        lbr  b0, top
    top:
        add  r4, r2, r3
        or   r2, r3, r3
        or   r3, r4, r4
        subi r1, r1, 1
        pbr.nez b0, r1, 1
        nop
        halt
    "#;
    let program = Assembler::new(InstrFormat::Fixed32)
        .assemble(source)
        .unwrap();
    let mut all = Vec::new();
    for fetch in engines_for(64) {
        for access in [1, 6] {
            let (stats, regs, _) = run_on(&program, fetch, access);
            assert_eq!(regs[3], 89, "fib(11) under {fetch}, access {access}");
            all.push(stats.instructions_issued);
        }
    }
    assert!(
        all.windows(2).all(|w| w[0] == w[1]),
        "same instruction count"
    );
}

#[test]
fn store_stream_agrees_everywhere() {
    let source = r#"
        lim  r1, 16
        lim  r2, 0
        lui  r2, 0x10
        lim  r3, 0
        lbr  b0, top
    top:
        sta  r2, 0
        or   r7, r3, r3
        addi r3, r3, 7
        addi r2, r2, 4
        subi r1, r1, 1
        pbr.nez b0, r1, 2
        nop
        nop
        halt
    "#;
    let program = Assembler::new(InstrFormat::Fixed32)
        .assemble(source)
        .unwrap();
    let expect: Vec<u32> = (0..16).map(|i| i * 7).collect();
    for fetch in engines_for(32) {
        let (_, _, mem) = run_on(&program, fetch, 3);
        assert_eq!(mem, expect, "under {fetch}");
    }
}

#[test]
fn mixed_format_programs_run_on_all_engines() {
    let source =
        "lim r1, 8\nlbr b0, top\ntop: add r2, r2, r1\nsubi r1, r1, 1\npbr.nez b0, r1, 0\nhalt\n";
    let program = Assembler::new(InstrFormat::Mixed).assemble(source).unwrap();
    for fetch in engines_for(32) {
        let (stats, regs, _) = run_on(&program, fetch, 2);
        assert_eq!(regs[2], 8 + 7 + 6 + 5 + 4 + 3 + 2 + 1, "under {fetch}");
        assert_eq!(stats.instructions_issued, 2 + 8 * 3 + 1);
    }
}

#[test]
fn deep_delay_slots_execute_exactly_once_per_iteration() {
    // 7 delay slots — the architectural maximum.
    let source = r#"
        lim  r1, 5
        lim  r2, 0
        lbr  b0, top
    top:
        subi r1, r1, 1
        pbr.nez b0, r1, 7
        addi r2, r2, 1
        addi r2, r2, 1
        addi r2, r2, 1
        addi r2, r2, 1
        addi r2, r2, 1
        addi r2, r2, 1
        addi r2, r2, 1
        halt
    "#;
    let program = Assembler::new(InstrFormat::Fixed32)
        .assemble(source)
        .unwrap();
    for fetch in engines_for(64) {
        let (_, regs, _) = run_on(&program, fetch, 6);
        assert_eq!(regs[2], 5 * 7, "under {fetch}");
    }
}

#[test]
fn disassembler_round_trips_the_livermore_suite() {
    let suite = livermore_benchmark();
    let text = pipe_repro::isa::disassemble(suite.program());
    assert!(text.contains("loop1:"));
    assert!(text.contains("loop14:"));
    assert!(text.contains("pbr.nez"));
    // Every loop label present.
    for i in 1..=14 {
        assert!(text.contains(&format!("loop{i}:")), "loop{i} missing");
    }
}
