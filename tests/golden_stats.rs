//! Golden statistics for the full Livermore benchmark.
//!
//! These values were captured from the simulator **before** the
//! predecode/allocation-free hot-path overhaul and are asserted
//! verbatim here: any behavioral drift in the fetch engines, memory
//! system, or issue logic — however small — fails this test with the
//! exact field that moved. Performance work must be invisible at this
//! level; only wall-clock time is allowed to change.
//!
//! The configuration mirrors the benchmark harness (`pipe-sim bench`)
//! and the paper's Figure 4a memory system: 1-cycle access, 4-byte
//! buses, non-pipelined, instruction priority.

use std::sync::Arc;

use pipe_repro::core::{run_decoded, SimConfig, SimStats};
use pipe_repro::experiments::{figure_mem, StrategyKind};
use pipe_repro::icache::PrefetchPolicy;
use pipe_repro::isa::DecodedProgram;

/// One pinned measurement: engine, cache size, and the stats fields the
/// run must reproduce bit-for-bit.
struct Golden {
    kind: StrategyKind,
    cache_bytes: u32,
    cycles: u64,
    ifetch_stalls: u64,
    data_wait_stalls: u64,
    demand_requests: u64,
    prefetch_requests: u64,
    bytes_requested: u64,
    cache_hits: u64,
    cache_misses: u64,
    wasted_requests: u64,
}

const GOLDEN: &[Golden] = &[
    Golden {
        kind: StrategyKind::Conventional,
        cache_bytes: 32,
        cycles: 381_803,
        ifetch_stalls: 221_148,
        data_wait_stalls: 10_080,
        demand_requests: 65_747,
        prefetch_requests: 84_828,
        bytes_requested: 602_300,
        cache_hits: 5_040,
        cache_misses: 145_535,
        wasted_requests: 0,
    },
    Golden {
        kind: StrategyKind::Conventional,
        cache_bytes: 128,
        cycles: 303_006,
        ifetch_stalls: 127_931,
        data_wait_stalls: 24_500,
        demand_requests: 40_892,
        prefetch_requests: 41_695,
        bytes_requested: 330_348,
        cache_hits: 71_012,
        cache_misses: 79_563,
        wasted_requests: 7,
    },
    Golden {
        kind: StrategyKind::Conventional,
        cache_bytes: 512,
        cycles: 206_895,
        ifetch_stalls: 10_061,
        data_wait_stalls: 46_259,
        demand_requests: 3_277,
        prefetch_requests: 3_152,
        bytes_requested: 25_716,
        cache_hits: 144_388,
        cache_misses: 6_187,
        wasted_requests: 13,
    },
    Golden {
        kind: StrategyKind::Pipe16x16,
        cache_bytes: 32,
        cycles: 274_747,
        ifetch_stalls: 21_876,
        data_wait_stalls: 102_296,
        demand_requests: 4_565,
        prefetch_requests: 36_548,
        bytes_requested: 657_808,
        cache_hits: 0,
        cache_misses: 41_113,
        wasted_requests: 4_564,
    },
    Golden {
        kind: StrategyKind::Pipe16x16,
        cache_bytes: 128,
        cycles: 243_651,
        ifetch_stalls: 8_217,
        data_wait_stalls: 84_859,
        demand_requests: 1_223,
        prefetch_requests: 20_643,
        bytes_requested: 349_856,
        cache_hits: 19_247,
        cache_misses: 21_866,
        wasted_requests: 1_229,
    },
    Golden {
        kind: StrategyKind::Pipe16x16,
        cache_bytes: 512,
        cycles: 202_316,
        ifetch_stalls: 481,
        data_wait_stalls: 51_260,
        demand_requests: 50,
        prefetch_requests: 1_619,
        bytes_requested: 26_704,
        cache_hits: 39_444,
        cache_misses: 1_669,
        wasted_requests: 62,
    },
    Golden {
        kind: StrategyKind::Tib16,
        cache_bytes: 32,
        cycles: 259_874,
        ifetch_stalls: 28_784,
        data_wait_stalls: 80_515,
        demand_requests: 28_752,
        prefetch_requests: 40_897,
        bytes_requested: 571_376,
        cache_hits: 4_550,
        cache_misses: 14,
        wasted_requests: 4_564,
    },
];

fn run_golden(decoded: &Arc<DecodedProgram>, g: &Golden) -> SimStats {
    let (mem, _) = figure_mem("4a");
    let fetch = g
        .kind
        .fetch_for(g.cache_bytes, PrefetchPolicy::TruePrefetch)
        .expect("strategy supports this size");
    let cfg = SimConfig {
        fetch,
        mem,
        max_cycles: 2_000_000_000,
        ..SimConfig::default()
    };
    run_decoded(decoded, &cfg).expect("livermore runs to halt")
}

#[test]
fn full_livermore_statistics_are_bit_identical_to_the_recorded_golden_runs() {
    let suite = pipe_repro::workloads::livermore_benchmark();
    let decoded = Arc::new(DecodedProgram::new(suite.program().clone()));
    for g in GOLDEN {
        let label = format!("{} @ {}B", g.kind.label(), g.cache_bytes);
        let stats = run_golden(&decoded, g);
        // Architectural counts are engine-independent; pin them once per
        // point so a workload change is reported on every row.
        assert_eq!(stats.instructions_issued, 150_575, "{label}: instructions");
        assert_eq!(stats.loads, 24_232, "{label}: loads");
        assert_eq!(stats.stores, 41_514, "{label}: stores");
        assert_eq!(stats.fpu_ops, 16_535, "{label}: fpu ops");
        assert_eq!(stats.branches_taken, 4_564, "{label}: taken branches");
        assert_eq!(stats.branches_not_taken, 14, "{label}: not-taken branches");
        // Timing and fetch behavior, per engine/size.
        assert_eq!(stats.cycles, g.cycles, "{label}: cycles");
        assert_eq!(
            stats.stalls.ifetch, g.ifetch_stalls,
            "{label}: ifetch stalls"
        );
        assert_eq!(
            stats.stalls.data_wait, g.data_wait_stalls,
            "{label}: data-wait stalls"
        );
        assert_eq!(
            stats.fetch.demand_requests, g.demand_requests,
            "{label}: demand requests"
        );
        assert_eq!(
            stats.fetch.prefetch_requests, g.prefetch_requests,
            "{label}: prefetch requests"
        );
        assert_eq!(
            stats.fetch.bytes_requested, g.bytes_requested,
            "{label}: bytes requested"
        );
        assert_eq!(stats.fetch.cache_hits, g.cache_hits, "{label}: cache hits");
        assert_eq!(
            stats.fetch.cache_misses, g.cache_misses,
            "{label}: cache misses"
        );
        assert_eq!(
            stats.fetch.wasted_requests, g.wasted_requests,
            "{label}: wasted requests"
        );
    }
}
