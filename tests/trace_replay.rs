//! Acceptance tests for the trace record & replay subsystem
//! (`pipe-trace`): recording a run must capture the instruction stream
//! exactly, replaying it under the recorded configuration must reproduce
//! the fetch-side results bit for bit, and damaged or mismatched traces
//! must fail with typed errors rather than panics.

use std::cell::RefCell;
use std::io::Cursor;
use std::rc::Rc;

use pipe_core::{Processor, SimConfig, SimStats};
use pipe_icache::{EngineBuilder, FetchKind, ReplayHarness};
use pipe_isa::{InstrFormat, Program};
use pipe_trace::{
    parse_address_trace, program_fnv, replay_trace, schedule_from_addresses, synthesize_program,
    ReplayTraceError, TraceError, TraceMeta, TraceReader, TraceRecorder, TraceSummary,
};

/// Records `program` running under `config` into an in-memory trace.
fn record(program: &Program, config: &SimConfig) -> (Vec<u8>, SimStats, TraceSummary) {
    let meta = TraceMeta {
        workload: "test:acceptance".into(),
        program_fnv: program_fnv(program),
        entry_pc: program.entry(),
        fetch_key: config.fetch.cache_key(),
        mem_key: pipe_experiments::mem_key(&config.mem),
    };
    let recorder = Rc::new(RefCell::new(
        TraceRecorder::new(Vec::new(), &meta).expect("trace header writes"),
    ));
    let proc = Processor::new(program, config).expect("processor builds");
    let mut proc = proc.with_trace(Rc::clone(&recorder));
    proc.run().expect("program runs to halt");
    let stats = proc.stats().clone();
    let (bytes, summary) = recorder
        .borrow_mut()
        .finish(stats.cycles)
        .expect("trace finishes");
    (bytes, stats, summary)
}

fn scaled_livermore(scale: u32) -> Program {
    pipe_experiments::WorkloadSpec::Livermore {
        format: InstrFormat::Fixed32,
        scale,
    }
    .build()
}

/// The headline guarantee: recording the full 150,575-instruction
/// Livermore benchmark and replaying the trace under the recorded
/// configuration reproduces the fetch-stall cycle count — and every other
/// fetch-side statistic — bit-identically.
#[test]
fn full_livermore_record_replay_is_bit_identical() {
    let suite = pipe_workloads::livermore_benchmark();
    let program = suite.program().clone();
    let config = SimConfig::default();

    let (bytes, stats, summary) = record(&program, &config);
    assert_eq!(summary.instructions, stats.instructions_issued);
    assert_eq!(summary.cycles, stats.cycles);

    let reader = TraceReader::new(Cursor::new(bytes)).expect("trace decodes");
    let outcome =
        replay_trace(reader, &program, &config.fetch, &config.mem).expect("trace replays");
    assert!(outcome.matches_recording());
    assert_eq!(outcome.stats.cycles, stats.cycles);
    assert_eq!(outcome.stats.instructions, stats.instructions_issued);
    assert_eq!(outcome.stats.ifetch_stalls, stats.stalls.ifetch);
    assert_eq!(outcome.stats.fetch, stats.fetch);
}

/// One recording replays through arbitrary fetch engines: all deliver the
/// same instruction stream, and perfect fetch lower-bounds the cycle
/// counts.
#[test]
fn one_recording_replays_through_other_engines() {
    let program = scaled_livermore(20);
    let config = SimConfig::default();
    let (bytes, stats, _) = record(&program, &config);

    let engines = [
        EngineBuilder::new(FetchKind::Perfect).config().unwrap(),
        EngineBuilder::new(FetchKind::Conventional)
            .cache_bytes(64)
            .line_bytes(16)
            .config()
            .unwrap(),
        EngineBuilder::new(FetchKind::Pipe)
            .cache_bytes(128)
            .line_bytes(16)
            .config()
            .unwrap(),
    ];
    let mut cycles = Vec::new();
    for fetch in engines {
        let reader = TraceReader::new(Cursor::new(bytes.clone())).expect("trace decodes");
        let outcome = replay_trace(reader, &program, &fetch, &config.mem).expect("trace replays");
        assert_eq!(outcome.stats.instructions, stats.instructions_issued);
        cycles.push(outcome.stats.cycles);
    }
    let perfect = cycles[0];
    assert!(cycles.iter().all(|&c| c >= perfect));
}

/// A flipped byte inside a payload block is rejected with the typed
/// `CorruptBlock` error — never a panic, never silently wrong data.
#[test]
fn corrupted_trace_block_is_a_typed_error() {
    let program = scaled_livermore(50);
    let config = SimConfig::default();
    let (mut bytes, _, _) = record(&program, &config);

    // Flip a byte well past the header, inside step-block payload.
    let target = bytes.len() / 2;
    bytes[target] ^= 0xff;

    let result = match TraceReader::new(Cursor::new(bytes)) {
        Ok(reader) => replay_trace(reader, &program, &config.fetch, &config.mem).map(|_| ()),
        // A flip landing in a block header can surface at open time.
        Err(e) => Err(ReplayTraceError::Trace(e)),
    };
    match result {
        Err(ReplayTraceError::Trace(
            TraceError::CorruptBlock { .. } | TraceError::Malformed(_) | TraceError::Truncated,
        )) => {}
        other => panic!("expected a typed trace error, got {other:?}"),
    }
}

/// Replaying against the wrong program is caught by the header's program
/// fingerprint before any cycles are simulated.
#[test]
fn wrong_program_is_a_typed_mismatch() {
    let program = scaled_livermore(50);
    let config = SimConfig::default();
    let (bytes, _, _) = record(&program, &config);

    let other = pipe_workloads::synthetic::tight_loop(6, 30, InstrFormat::Fixed32);
    let reader = TraceReader::new(Cursor::new(bytes)).expect("trace decodes");
    match replay_trace(reader, &other, &config.fetch, &config.mem) {
        Err(ReplayTraceError::ProgramMismatch { expected, got }) => {
            assert_eq!(expected, program_fnv(&program));
            assert_eq!(got, program_fnv(&other));
        }
        other => panic!("expected ProgramMismatch, got {other:?}"),
    }
}

/// Plain-text address traces (the `pipe_workloads::traces` generators)
/// drive a fetch engine through the import pipeline: every listed address
/// becomes exactly one replayed instruction.
#[test]
fn address_trace_replays_through_a_fetch_engine() {
    let addrs = pipe_workloads::traces::loop_nest(0, 3, 4, 3);
    let text: String = addrs.iter().map(|a| format!("{a:#x}\n")).collect();

    let parsed = parse_address_trace(&text).expect("addresses parse");
    assert_eq!(parsed, addrs);
    let program = synthesize_program(&parsed).expect("program synthesizes");
    let steps = schedule_from_addresses(&parsed);

    let fetch = EngineBuilder::new(FetchKind::Conventional)
        .cache_bytes(64)
        .line_bytes(16)
        .config()
        .unwrap();
    let engine = fetch.build(&program).expect("engine builds");
    let mem = pipe_mem::MemConfig::default();
    let mut harness = ReplayHarness::new(engine, pipe_mem::MemorySystem::new(mem));
    harness.run(steps).expect("replay completes");
    assert_eq!(harness.stats().instructions, addrs.len() as u64);
    assert!(harness.stats().cycles >= addrs.len() as u64);
}
