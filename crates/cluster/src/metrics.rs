//! Coordinator metrics, rendered in the Prometheus text format on the
//! coordinator's own `/metrics` listener.
//!
//! Reuses the lock-free [`Counter`] primitives of `pipe-server` with
//! per-worker labels: points dispatched, request retries, and failovers
//! for every worker, plus run-level completion counters and a shard
//! imbalance gauge (max − min points assigned across workers, computed
//! from the live counters at render time).

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pipe_server::http::read_request;
use pipe_server::metrics::Counter;
use pipe_server::Response;

/// Per-worker dispatch counters.
#[derive(Debug)]
pub struct WorkerCounters {
    /// The worker's `host:port`, used as the metric label.
    pub addr: String,
    /// Points dispatched to this worker (first assignment or failover).
    pub dispatched: Counter,
    /// Request retries against this worker.
    pub retried: Counter,
    /// Points moved away from this worker after it died.
    pub failed_over: Counter,
}

/// All live counters of one coordinator.
#[derive(Debug)]
pub struct ClusterMetrics {
    /// One counter set per registered worker, ring order.
    pub workers: Vec<WorkerCounters>,
    /// Points answered successfully (any worker).
    pub points_completed: Counter,
    /// Points that failed on every eligible worker.
    pub points_failed: Counter,
    /// Points satisfied from the coordinator's merged store.
    pub points_cached: Counter,
    /// Workers declared dead during the run.
    pub workers_dead: Counter,
}

impl ClusterMetrics {
    /// Fresh counters for the given worker addresses.
    pub fn new(addrs: &[String]) -> ClusterMetrics {
        ClusterMetrics {
            workers: addrs
                .iter()
                .map(|addr| WorkerCounters {
                    addr: addr.clone(),
                    dispatched: Counter::default(),
                    retried: Counter::default(),
                    failed_over: Counter::default(),
                })
                .collect(),
            points_completed: Counter::default(),
            points_failed: Counter::default(),
            points_cached: Counter::default(),
            workers_dead: Counter::default(),
        }
    }

    /// Max − min points dispatched across workers: 0 means a perfectly
    /// even shard.
    pub fn shard_imbalance(&self) -> u64 {
        let counts: Vec<u64> = self.workers.iter().map(|w| w.dispatched.get()).collect();
        match (counts.iter().max(), counts.iter().min()) {
            (Some(max), Some(min)) => max - min,
            _ => 0,
        }
    }

    /// Renders every metric in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("# TYPE pipe_cluster_points_dispatched_total counter\n");
        for w in &self.workers {
            out.push_str(&format!(
                "pipe_cluster_points_dispatched_total{{worker=\"{}\"}} {}\n",
                w.addr,
                w.dispatched.get()
            ));
        }
        out.push_str("# TYPE pipe_cluster_retries_total counter\n");
        for w in &self.workers {
            out.push_str(&format!(
                "pipe_cluster_retries_total{{worker=\"{}\"}} {}\n",
                w.addr,
                w.retried.get()
            ));
        }
        out.push_str("# TYPE pipe_cluster_failovers_total counter\n");
        for w in &self.workers {
            out.push_str(&format!(
                "pipe_cluster_failovers_total{{worker=\"{}\"}} {}\n",
                w.addr,
                w.failed_over.get()
            ));
        }
        out.push_str("# TYPE pipe_cluster_points_total counter\n");
        for (outcome, counter) in [
            ("completed", &self.points_completed),
            ("failed", &self.points_failed),
            ("cached", &self.points_cached),
        ] {
            out.push_str(&format!(
                "pipe_cluster_points_total{{outcome=\"{outcome}\"}} {}\n",
                counter.get()
            ));
        }
        out.push_str("# TYPE pipe_cluster_workers_dead_total counter\n");
        out.push_str(&format!(
            "pipe_cluster_workers_dead_total {}\n",
            self.workers_dead.get()
        ));
        out.push_str("# TYPE pipe_cluster_shard_imbalance gauge\n");
        out.push_str(&format!(
            "pipe_cluster_shard_imbalance {}\n",
            self.shard_imbalance()
        ));
        out
    }
}

/// A minimal metrics listener: `GET /metrics` and `GET /healthz`, one
/// request per connection, same HTTP machinery as the workers.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

impl MetricsServer {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins its thread.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Self-connect to unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        let _ = self.thread.join();
    }
}

/// Binds and serves the coordinator metrics endpoint on a background
/// thread.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve_metrics(addr: &str, metrics: Arc<ClusterMetrics>) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if stop2.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let mut reader = BufReader::new(stream);
            let response = match read_request(&mut reader) {
                Ok(req) => match (req.method.as_str(), req.path.as_str()) {
                    ("GET", "/metrics") => Response::text(200, metrics.render()),
                    ("GET", "/healthz") => Response::json(200, "{\"status\":\"ok\"}".to_string()),
                    (_, path) => Response::error(404, &format!("no such endpoint: {path}")),
                },
                Err(_) => continue,
            };
            let mut stream = reader.into_inner();
            let _ = response.write_to(&mut stream);
        }
    });
    Ok(MetricsServer { addr, stop, thread })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn addrs() -> Vec<String> {
        vec!["10.0.0.1:1".to_string(), "10.0.0.2:2".to_string()]
    }

    #[test]
    fn render_covers_every_family_with_worker_labels() {
        let m = ClusterMetrics::new(&addrs());
        m.workers[0].dispatched.inc();
        m.workers[0].dispatched.inc();
        m.workers[1].retried.inc();
        m.points_completed.inc();
        let text = m.render();
        for needle in [
            "pipe_cluster_points_dispatched_total{worker=\"10.0.0.1:1\"} 2\n",
            "pipe_cluster_points_dispatched_total{worker=\"10.0.0.2:2\"} 0\n",
            "pipe_cluster_retries_total{worker=\"10.0.0.2:2\"} 1\n",
            "pipe_cluster_failovers_total{worker=\"10.0.0.1:1\"} 0\n",
            "pipe_cluster_points_total{outcome=\"completed\"} 1\n",
            "pipe_cluster_points_total{outcome=\"cached\"} 0\n",
            "pipe_cluster_workers_dead_total 0\n",
            "pipe_cluster_shard_imbalance 2\n",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn imbalance_is_max_minus_min() {
        let m = ClusterMetrics::new(&addrs());
        assert_eq!(m.shard_imbalance(), 0);
        for _ in 0..5 {
            m.workers[0].dispatched.inc();
        }
        m.workers[1].dispatched.inc();
        assert_eq!(m.shard_imbalance(), 4);
        assert_eq!(ClusterMetrics::new(&[]).shard_imbalance(), 0);
    }

    #[test]
    fn listener_serves_metrics_and_healthz() {
        let metrics = Arc::new(ClusterMetrics::new(&addrs()));
        metrics.points_completed.inc();
        let server = serve_metrics("127.0.0.1:0", Arc::clone(&metrics)).unwrap();
        let addr = server.addr().to_string();
        let timeout = Duration::from_secs(5);

        let health = pipe_server::http_request(&addr, "GET", "/healthz", None, timeout).unwrap();
        assert_eq!(health.status, 200);
        let scraped = pipe_server::http_request(&addr, "GET", "/metrics", None, timeout).unwrap();
        assert_eq!(scraped.status, 200);
        assert!(scraped
            .body_text()
            .contains("pipe_cluster_points_total{outcome=\"completed\"} 1\n"));
        let missing = pipe_server::http_request(&addr, "GET", "/nope", None, timeout).unwrap();
        assert_eq!(missing.status, 404);

        server.shutdown();
        assert!(pipe_server::http_request(&addr, "GET", "/healthz", None, timeout).is_err());
    }
}
