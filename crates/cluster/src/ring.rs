//! Consistent hashing of sweep points onto workers.
//!
//! Each worker owns a set of virtual nodes on a 64-bit hash ring: the
//! FNV-1a digests of `"{addr}#{replica}"` for a fixed replica count. A
//! point's canonical store key hashes to a position, and the point
//! belongs to the first *alive* worker clockwise from there. Two
//! properties matter for the cluster:
//!
//! - **Stability**: assignment depends only on the worker address list
//!   and the key, not on registration order or timing, so re-running a
//!   sweep against the same cluster shards it identically.
//! - **Bounded failover movement**: when a worker dies, only the points
//!   it owned move (to the next alive worker clockwise); every other
//!   assignment is unchanged. Virtual nodes spread the dead worker's
//!   share across the survivors instead of dumping it on one neighbour.

use pipe_experiments::fnv1a64;

/// Virtual nodes per worker. Enough to keep shares within a few percent
/// of uniform for small clusters while the ring stays tiny.
pub const DEFAULT_REPLICAS: usize = 64;

/// Finalizing mixer (splitmix64) applied to virtual-node positions.
/// FNV-1a alone clusters badly on short inputs that differ only in
/// trailing digits (`addr#0` … `addr#63`), which skews ring shares; the
/// mixer's avalanche spreads them uniformly.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A consistent-hash ring over worker indices.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(position, worker index)`, sorted by position.
    points: Vec<(u64, usize)>,
    workers: usize,
}

impl HashRing {
    /// Builds the ring for `addrs` with [`DEFAULT_REPLICAS`] virtual
    /// nodes per worker.
    pub fn new(addrs: &[String]) -> HashRing {
        HashRing::with_replicas(addrs, DEFAULT_REPLICAS)
    }

    /// Builds the ring with an explicit virtual-node count (≥ 1).
    pub fn with_replicas(addrs: &[String], replicas: usize) -> HashRing {
        let replicas = replicas.max(1);
        let mut points = Vec::with_capacity(addrs.len() * replicas);
        for (index, addr) in addrs.iter().enumerate() {
            for replica in 0..replicas {
                points.push((mix64(fnv1a64(&format!("{addr}#{replica}"))), index));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            workers: addrs.len(),
        }
    }

    /// Number of workers the ring was built over.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The worker owning `key_hash`: the first virtual node clockwise
    /// whose worker satisfies `eligible`. Returns `None` when the ring
    /// is empty or no worker is eligible.
    pub fn assign(&self, key_hash: u64, eligible: impl Fn(usize) -> bool) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.points.partition_point(|&(pos, _)| pos < key_hash);
        // Walk clockwise (wrapping) until an eligible worker appears.
        // Consecutive virtual nodes of ineligible workers are skipped;
        // a full lap means nobody is eligible.
        self.points
            .iter()
            .cycle()
            .skip(start)
            .take(self.points.len())
            .map(|&(_, worker)| worker)
            .find(|&worker| eligible(worker))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn assignment_is_deterministic_and_total() {
        let ring = HashRing::new(&addrs(4));
        for i in 0..1000u64 {
            let hash = fnv1a64(&format!("key-{i}"));
            let a = ring.assign(hash, |_| true).unwrap();
            let b = ring.assign(hash, |_| true).unwrap();
            assert_eq!(a, b);
            assert!(a < 4);
        }
    }

    #[test]
    fn shares_are_roughly_uniform() {
        let ring = HashRing::new(&addrs(4));
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for i in 0..4000u64 {
            let worker = ring.assign(fnv1a64(&format!("key-{i}")), |_| true).unwrap();
            *counts.entry(worker).or_default() += 1;
        }
        for worker in 0..4 {
            let share = counts[&worker];
            // Perfectly uniform would be 1000 each; virtual nodes keep
            // the spread well inside 2:1.
            assert!((500..2000).contains(&share), "worker {worker}: {share}");
        }
    }

    #[test]
    fn dead_worker_moves_only_its_own_points() {
        let ring = HashRing::new(&addrs(4));
        let dead = 2usize;
        for i in 0..1000u64 {
            let hash = fnv1a64(&format!("key-{i}"));
            let before = ring.assign(hash, |_| true).unwrap();
            let after = ring.assign(hash, |w| w != dead).unwrap();
            if before != dead {
                assert_eq!(before, after, "surviving assignments must not move");
            } else {
                assert_ne!(after, dead);
            }
        }
    }

    #[test]
    fn empty_and_fully_dead_rings_assign_none() {
        let ring = HashRing::new(&[]);
        assert_eq!(ring.assign(42, |_| true), None);
        let ring = HashRing::new(&addrs(3));
        assert_eq!(ring.assign(42, |_| false), None);
    }

    #[test]
    fn assignment_ignores_worker_order() {
        // The same addresses in a different order shard identically
        // (worker indices differ, but the owning *address* is the same).
        let fwd = addrs(4);
        let mut rev = fwd.clone();
        rev.reverse();
        let ring_fwd = HashRing::new(&fwd);
        let ring_rev = HashRing::new(&rev);
        for i in 0..500u64 {
            let hash = fnv1a64(&format!("key-{i}"));
            let a = &fwd[ring_fwd.assign(hash, |_| true).unwrap()];
            let b = &rev[ring_rev.assign(hash, |_| true).unwrap()];
            assert_eq!(a, b);
        }
    }
}
