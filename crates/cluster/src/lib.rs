//! # pipe-cluster
//!
//! A distributed sweep fabric over `pipe-serve` workers: one
//! [`Coordinator`] decomposes a [`SweepSpec`](pipe_experiments::SweepSpec)
//! into points, consistent-hashes each point's canonical store key onto
//! the registered workers, dispatches over the workers' existing HTTP
//! API, and merges the responses into a single
//! [`ResultStore`](pipe_experiments::ResultStore) — so any node's work
//! is a byte-identical cache hit everywhere.
//!
//! | layer | module |
//! |---|---|
//! | consistent-hash ring (virtual nodes, failover walk) | [`ring`] |
//! | worker registration, health checks, accounting | [`worker`] |
//! | shard / dispatch / retry / fail over / merge | [`coordinator`] |
//! | Prometheus counters + `/metrics` listener | [`metrics`] |
//!
//! Robustness is first-class: workers are health-checked against
//! `/healthz` and version-checked against `/v1/info` before dispatch,
//! every request retries with the shared
//! [`BackoffPolicy`](pipe_experiments::BackoffPolicy) (honouring
//! `Retry-After`), and a worker that dies mid-sweep has its shard
//! rehashed onto the survivors. A degraded run reports a typed partial
//! [`ClusterOutcome`] instead of aborting.
//!
//! The `pipe-sim cluster` subcommands drive this from the command line;
//! `docs/CLUSTER.md` describes the topology and failure semantics.

pub mod coordinator;
pub mod metrics;
pub mod ring;
pub mod worker;

pub use coordinator::{ClusterError, ClusterOutcome, Coordinator, FailedPoint};
pub use metrics::{serve_metrics, ClusterMetrics, MetricsServer};
pub use ring::HashRing;
pub use worker::{check_worker, WorkerError, WorkerInfo, WorkerReport, WorkerState};
