//! Worker registration, health checking, and per-worker accounting.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use pipe_experiments::json::{field_str, field_u64};
use pipe_experiments::store::STORE_VERSION;
use pipe_server::http_request;

/// What `GET /v1/info` reports about one worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerInfo {
    /// The worker's crate version string.
    pub version: String,
    /// The result-store layout version the worker speaks.
    pub store_version: u64,
    /// Request-handling threads on the worker.
    pub workers: usize,
    /// Entries in the worker's local result store.
    pub store_keys: u64,
}

/// Why a worker failed its registration checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerError {
    /// `/healthz` or `/v1/info` could not be reached.
    Unreachable(String),
    /// The worker answered, but not with a compatible `/v1/info` — an
    /// older server build, or a different store layout version.
    Incompatible(String),
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::Unreachable(m) => write!(f, "unreachable: {m}"),
            WorkerError::Incompatible(m) => write!(f, "incompatible: {m}"),
        }
    }
}

impl std::error::Error for WorkerError {}

/// Probes one worker: `/healthz` for liveness, then `/v1/info` for
/// compatibility (the endpoint must exist and report the coordinator's
/// store layout version, or merged results would not be byte-compatible).
///
/// # Errors
///
/// [`WorkerError::Unreachable`] when either endpoint cannot be fetched,
/// [`WorkerError::Incompatible`] when `/v1/info` is missing or reports a
/// different store version.
pub fn check_worker(addr: &str, timeout: Duration) -> Result<WorkerInfo, WorkerError> {
    let health = http_request(addr, "GET", "/healthz", None, timeout)
        .map_err(|e| WorkerError::Unreachable(e.to_string()))?;
    if health.status != 200 {
        return Err(WorkerError::Unreachable(format!(
            "/healthz returned {}",
            health.status
        )));
    }
    let info = http_request(addr, "GET", "/v1/info", None, timeout)
        .map_err(|e| WorkerError::Unreachable(e.to_string()))?;
    if info.status != 200 {
        return Err(WorkerError::Incompatible(format!(
            "/v1/info returned {} (pre-cluster server build?)",
            info.status
        )));
    }
    let body = info.body_text();
    let store_version = field_u64(&body, "store_version").ok_or_else(|| {
        WorkerError::Incompatible("/v1/info body lacks store_version".to_string())
    })?;
    if store_version != u64::from(STORE_VERSION) {
        return Err(WorkerError::Incompatible(format!(
            "store layout v{store_version}, coordinator speaks v{STORE_VERSION}"
        )));
    }
    Ok(WorkerInfo {
        version: field_str(&body, "version").unwrap_or_default(),
        store_version,
        workers: field_u64(&body, "workers").unwrap_or(0) as usize,
        store_keys: field_u64(&body, "store_keys").unwrap_or(0),
    })
}

/// Live per-worker accounting, updated lock-free by the dispatch
/// threads.
#[derive(Debug)]
pub struct WorkerState {
    /// The worker's `host:port` address.
    pub addr: String,
    alive: AtomicBool,
    /// Points first assigned to this worker by the ring.
    pub assigned: AtomicU64,
    /// Points this worker answered successfully.
    pub completed: AtomicU64,
    /// Retries of individual requests against this worker.
    pub retried: AtomicU64,
    /// Points re-hashed *away* from this worker after it died.
    pub failed_over: AtomicU64,
    /// Total request latency (successful requests), milliseconds.
    pub total_ms: AtomicU64,
    /// Worst successful request latency, milliseconds.
    pub max_ms: AtomicU64,
}

impl WorkerState {
    /// A fresh, alive worker.
    pub fn new(addr: String) -> WorkerState {
        WorkerState {
            addr,
            alive: AtomicBool::new(true),
            assigned: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            failed_over: AtomicU64::new(0),
            total_ms: AtomicU64::new(0),
            max_ms: AtomicU64::new(0),
        }
    }

    /// Whether the worker is still taking assignments.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Relaxed)
    }

    /// Marks the worker dead; returns whether this call was the one that
    /// killed it (for counting each death once).
    pub fn mark_dead(&self) -> bool {
        self.alive.swap(false, Ordering::Relaxed)
    }

    /// Records one successful request of `ms` milliseconds.
    pub fn record_success(&self, ms: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.total_ms.fetch_add(ms, Ordering::Relaxed);
        self.max_ms.fetch_max(ms, Ordering::Relaxed);
    }

    /// Snapshot for reports.
    pub fn report(&self) -> WorkerReport {
        WorkerReport {
            addr: self.addr.clone(),
            alive: self.is_alive(),
            assigned: self.assigned.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            failed_over: self.failed_over.load(Ordering::Relaxed),
            total_ms: self.total_ms.load(Ordering::Relaxed),
            max_ms: self.max_ms.load(Ordering::Relaxed),
        }
    }
}

/// One worker's shard and latency statistics after a cluster run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// The worker's `host:port` address.
    pub addr: String,
    /// Whether the worker was still alive at the end of the run.
    pub alive: bool,
    /// Points the ring first assigned to this worker.
    pub assigned: u64,
    /// Points this worker answered successfully.
    pub completed: u64,
    /// Request retries against this worker.
    pub retried: u64,
    /// Points re-hashed away after this worker died.
    pub failed_over: u64,
    /// Total successful-request latency, milliseconds.
    pub total_ms: u64,
    /// Worst successful-request latency, milliseconds.
    pub max_ms: u64,
}

impl WorkerReport {
    /// Mean successful-request latency in milliseconds (0 when idle).
    pub fn mean_ms(&self) -> u64 {
        self.total_ms.checked_div(self.completed).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_counts_and_reports() {
        let w = WorkerState::new("127.0.0.1:9999".to_string());
        assert!(w.is_alive());
        w.assigned.fetch_add(3, Ordering::Relaxed);
        w.record_success(10);
        w.record_success(30);
        assert!(w.mark_dead(), "first kill observes the worker alive");
        let report = w.report();
        assert_eq!(report.assigned, 3);
        assert_eq!(report.completed, 2);
        assert_eq!(report.mean_ms(), 20);
        assert_eq!(report.max_ms, 30);
        assert!(!report.alive);
    }

    #[test]
    fn mark_dead_reports_the_first_kill_once() {
        let w = WorkerState::new("x".to_string());
        // swap returns the previous value: true exactly once.
        assert!(w.mark_dead());
        assert!(!w.mark_dead());
        assert!(!w.is_alive());
    }

    #[test]
    fn unreachable_worker_is_a_typed_error() {
        // Nothing listens on this port (reserved, unroutable quickly on
        // loopback refused connection).
        let err = check_worker("127.0.0.1:1", Duration::from_millis(500)).unwrap_err();
        assert!(matches!(err, WorkerError::Unreachable(_)), "{err}");
    }
}
