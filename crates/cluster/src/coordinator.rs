//! The sweep coordinator: shard, dispatch, retry, fail over, merge.
//!
//! A [`Coordinator`] takes a [`SweepSpec`], expands it into points with
//! the same expansion the local engine uses, and hashes each point's
//! canonical store key onto the registered workers via the
//! [`HashRing`](crate::ring::HashRing). Points are dispatched over the
//! workers' existing HTTP API (`POST /v1/simulate`) and the responses
//! merged into one [`ResultStore`].
//!
//! **Byte-identical merging.** The coordinator writes every merged entry
//! itself — key, the sweep strategy label, and `wall_ms: 0` — rather
//! than copying worker store files, so the merged store depends only on
//! the spec: a 4-worker run, a 1-worker run, and a re-run after a
//! mid-sweep worker death all produce identical bytes. (Worker-side
//! stores record per-request wall time and the engine's own strategy
//! label; neither is deterministic across topologies.)
//!
//! **Robustness.** Each request retries with the shared
//! [`BackoffPolicy`], honouring `Retry-After` on 503/504. A worker whose
//! retries exhaust on transport errors is declared dead; its points
//! rehash to the next live worker clockwise (bounded by the worker
//! count, since each point tries a worker at most once). A typed
//! rejection (HTTP 400/500) fails the point alone — re-sending a
//! deterministic simulation error elsewhere cannot succeed. The run
//! completes degraded, never aborts: the [`ClusterOutcome`] lists every
//! failed point and per-worker shard statistics.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pipe_core::SimStats;
use pipe_experiments::backoff::{BackoffPolicy, Retry};
use pipe_experiments::json::{field_str, field_u64};
use pipe_experiments::{
    fnv1a64, ResultStore, StoredPoint, StrategyKind, SweepJob, SweepSpec, WorkloadSpec,
};
use pipe_icache::PrefetchPolicy;
use pipe_isa::InstrFormat;
use pipe_mem::{MemConfig, PriorityPolicy};
use pipe_server::http_request;

use crate::metrics::ClusterMetrics;
use crate::ring::HashRing;
use crate::worker::{check_worker, WorkerError, WorkerReport, WorkerState};

/// Why a cluster run could not start (mid-run failures degrade the
/// [`ClusterOutcome`] instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// No worker addresses were registered.
    NoWorkers,
    /// Every registered worker failed its health check.
    AllUnreachable(Vec<(String, WorkerError)>),
    /// A worker answered its health check but is not compatible with
    /// this coordinator (wrong store layout, pre-cluster build).
    Incompatible {
        /// The worker's address.
        addr: String,
        /// What the compatibility probe found.
        reason: String,
    },
    /// The spec cannot be expressed over the workers' HTTP API.
    Unsupported(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoWorkers => write!(f, "no workers registered"),
            ClusterError::AllUnreachable(errors) => {
                write!(f, "all {} worker(s) unreachable", errors.len())?;
                if let Some((addr, e)) = errors.first() {
                    write!(f, "; first: {addr}: {e}")?;
                }
                Ok(())
            }
            ClusterError::Incompatible { addr, reason } => {
                write!(f, "worker {addr} is incompatible: {reason}")
            }
            ClusterError::Unsupported(reason) => {
                write!(f, "spec not expressible over the worker API: {reason}")
            }
        }
    }
}

impl Error for ClusterError {}

/// One point that no worker could answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedPoint {
    /// Position in the sweep expansion.
    pub index: usize,
    /// The strategy the point belongs to.
    pub kind: StrategyKind,
    /// Cache size in bytes.
    pub cache_bytes: u32,
    /// The canonical configuration key of the point.
    pub key: String,
    /// The last error seen while dispatching it.
    pub error: String,
}

impl fmt::Display for FailedPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {}B (point {}): {}",
            self.kind.label(),
            self.cache_bytes,
            self.index,
            self.error
        )
    }
}

/// The (possibly partial) result of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Points answered by a worker this run.
    pub completed: usize,
    /// Points satisfied from the coordinator's merged store (resume).
    pub cached: usize,
    /// Of the completed points, how many the answering worker served
    /// from its own cache layers (`X-Pipe-Cache: hit`).
    pub worker_cache_hits: usize,
    /// Points no worker could answer, in expansion order.
    pub failed: Vec<FailedPoint>,
    /// Per-worker shard and latency statistics, registration order.
    pub workers: Vec<WorkerReport>,
    /// Whether merged-store writes failed persistently and the run
    /// degraded to store-less dispatch.
    pub store_degraded: bool,
    /// Total wall-clock time of the run.
    pub wall: Duration,
}

impl ClusterOutcome {
    /// Whether every expanded point produced a result.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }
}

/// How one dispatched request failed, which decides what happens next.
enum PointError {
    /// The worker rejected the point (HTTP 400/500) or answered
    /// nonsense; re-sending elsewhere cannot help.
    Fatal(String),
    /// The worker could not be reached; exhausting retries on this
    /// declares it dead and fails the point over.
    Down(String),
    /// The worker is alive but saturated (503/504); the point fails
    /// over without killing the worker.
    Busy {
        message: String,
        retry_after: Option<Duration>,
    },
}

impl PointError {
    fn message(&self) -> &str {
        match self {
            PointError::Fatal(m) | PointError::Down(m) => m,
            PointError::Busy { message, .. } => message,
        }
    }
}

/// Dispatches [`SweepSpec`]s across a cluster of `pipe-serve` workers.
/// Builder-style, like the local
/// [`SweepRunner`](pipe_experiments::SweepRunner).
#[derive(Debug)]
pub struct Coordinator {
    workers: Vec<String>,
    metrics: Arc<ClusterMetrics>,
    jobs: usize,
    retries: u32,
    backoff: Duration,
    timeout: Duration,
    store: Option<ResultStore>,
    resume: bool,
    progress: bool,
}

impl Coordinator {
    /// A coordinator over the given worker addresses: 4 dispatch
    /// threads, 3 attempts per worker with 50 ms initial backoff, 30 s
    /// request timeout, no store.
    pub fn new(workers: Vec<String>) -> Coordinator {
        let metrics = Arc::new(ClusterMetrics::new(&workers));
        Coordinator {
            workers,
            metrics,
            jobs: 4,
            retries: 3,
            backoff: Duration::from_millis(50),
            timeout: Duration::from_secs(30),
            store: None,
            resume: false,
            progress: false,
        }
    }

    /// Sets the dispatch-thread count (0 is treated as 1).
    pub fn jobs(mut self, jobs: usize) -> Coordinator {
        self.jobs = jobs.max(1);
        self
    }

    /// Sets the per-worker retry budget and initial backoff delay.
    pub fn retry(mut self, attempts: u32, backoff: Duration) -> Coordinator {
        self.retries = attempts.max(1);
        self.backoff = backoff;
        self
    }

    /// Sets the per-request timeout (also used by the health checks).
    pub fn timeout(mut self, timeout: Duration) -> Coordinator {
        self.timeout = timeout;
        self
    }

    /// Attaches the merged result store.
    pub fn store(mut self, store: ResultStore) -> Coordinator {
        self.store = Some(store);
        self
    }

    /// When a store is attached, skip points it already holds.
    pub fn resume(mut self, resume: bool) -> Coordinator {
        self.resume = resume;
        self
    }

    /// Emit per-point progress lines to stderr.
    pub fn progress(mut self, progress: bool) -> Coordinator {
        self.progress = progress;
        self
    }

    /// The live metric counters (for serving on a `/metrics` listener).
    pub fn metrics(&self) -> Arc<ClusterMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Runs the sweep across the cluster.
    ///
    /// # Errors
    ///
    /// [`ClusterError`] when the run cannot start: no workers, every
    /// worker unreachable, an incompatible worker, or a spec the HTTP
    /// API cannot express. Mid-run failures (dead workers, rejected
    /// points) degrade the outcome instead of erroring.
    pub fn run(&self, spec: &SweepSpec) -> Result<ClusterOutcome, ClusterError> {
        let started = Instant::now();
        if self.workers.is_empty() {
            return Err(ClusterError::NoWorkers);
        }
        let common = common_fields(spec)?;

        // Register: probe every worker before dispatching anything. An
        // incompatible worker is a configuration error worth aborting
        // for; an unreachable one starts dead and its shard rehashes.
        let states: Vec<WorkerState> = self
            .workers
            .iter()
            .map(|addr| WorkerState::new(addr.clone()))
            .collect();
        let mut unreachable = Vec::new();
        for (index, addr) in self.workers.iter().enumerate() {
            match check_worker(addr, self.timeout) {
                Ok(_) => {}
                Err(WorkerError::Incompatible(reason)) => {
                    return Err(ClusterError::Incompatible {
                        addr: addr.clone(),
                        reason,
                    })
                }
                Err(e) => {
                    states[index].mark_dead();
                    self.metrics.workers_dead.inc();
                    eprintln!("[cluster] warning: worker {addr} is down at registration: {e}");
                    unreachable.push((addr.clone(), e));
                }
            }
        }
        if states.iter().all(|s| !s.is_alive()) {
            return Err(ClusterError::AllUnreachable(unreachable));
        }

        let ring = HashRing::new(&self.workers);
        let jobs = spec.expand();
        let total = jobs.len();

        // Resume against the merged store first.
        let mut pending: Vec<&SweepJob> = Vec::new();
        let mut cached = 0usize;
        for job in &jobs {
            if self.cached_in_store(job) {
                cached += 1;
                self.metrics.points_cached.inc();
            } else {
                pending.push(job);
            }
        }

        let store_ok = AtomicBool::new(true);
        let mut completed = 0usize;
        let mut worker_cache_hits = 0usize;
        let mut failed: Vec<FailedPoint> = Vec::new();

        let threads = self.jobs.min(pending.len().max(1));
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<Result<bool, FailedPoint>>();
        let (pending_ref, states_ref, ring_ref, common_ref, store_ok_ref) =
            (&pending, &states, &ring, common.as_str(), &store_ok);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let next = &next;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = pending_ref.get(i) else { break };
                    let result =
                        self.run_point(job, ring_ref, states_ref, common_ref, store_ok_ref, total);
                    if tx.send(result).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for result in rx {
                match result {
                    Ok(hit) => {
                        completed += 1;
                        if hit {
                            worker_cache_hits += 1;
                        }
                    }
                    Err(point) => failed.push(point),
                }
            }
        });
        failed.sort_by_key(|f| f.index);

        Ok(ClusterOutcome {
            completed,
            cached,
            worker_cache_hits,
            failed,
            workers: states.iter().map(WorkerState::report).collect(),
            store_degraded: !store_ok.load(Ordering::Relaxed),
            wall: started.elapsed(),
        })
    }

    /// Whether the merged store already holds this point (resume). A
    /// key-mismatched entry warns and reads as absent, like the local
    /// engine.
    fn cached_in_store(&self, job: &SweepJob) -> bool {
        if !self.resume {
            return false;
        }
        let Some(store) = &self.store else {
            return false;
        };
        match store.load(job.key()) {
            Ok(entry) => entry.is_some(),
            Err(e) => {
                eprintln!(
                    "[cluster] warning: {e}; redispatching {} @ {}B",
                    job.kind.label(),
                    job.cache_bytes
                );
                false
            }
        }
    }

    /// Dispatches one point: hash, assign, request with retry, and on a
    /// dead worker rehash to the next live one. Each worker is tried at
    /// most once per point, so the loop is bounded by the worker count.
    fn run_point(
        &self,
        job: &SweepJob,
        ring: &HashRing,
        states: &[WorkerState],
        common: &str,
        store_ok: &AtomicBool,
        total: usize,
    ) -> Result<bool, FailedPoint> {
        let hash = fnv1a64(job.key());
        let body = point_body(job, common);
        let mut attempted = vec![false; states.len()];
        let mut first = true;
        let mut last_error = "no live workers remaining".to_string();
        loop {
            let Some(w) = ring.assign(hash, |i| !attempted[i] && states[i].is_alive()) else {
                return Err(FailedPoint {
                    index: job.index,
                    kind: job.kind,
                    cache_bytes: job.cache_bytes,
                    key: job.key().to_string(),
                    error: last_error,
                });
            };
            attempted[w] = true;
            if first {
                states[w].assigned.fetch_add(1, Ordering::Relaxed);
                first = false;
            }
            self.metrics.workers[w].dispatched.inc();

            let t0 = Instant::now();
            match self.request_point(&states[w], w, &body) {
                Ok((response_body, hit)) => {
                    return self.accept_point(
                        job,
                        &states[w],
                        &response_body,
                        hit,
                        t0.elapsed(),
                        store_ok,
                        total,
                    )
                }
                Err(PointError::Fatal(message)) => {
                    return Err(FailedPoint {
                        index: job.index,
                        kind: job.kind,
                        cache_bytes: job.cache_bytes,
                        key: job.key().to_string(),
                        error: message,
                    })
                }
                Err(e) => {
                    if matches!(e, PointError::Down(_)) && states[w].mark_dead() {
                        self.metrics.workers_dead.inc();
                        eprintln!(
                            "[cluster] worker {} died mid-sweep ({}); failing its shard over",
                            states[w].addr,
                            e.message()
                        );
                    }
                    states[w].failed_over.fetch_add(1, Ordering::Relaxed);
                    self.metrics.workers[w].failed_over.inc();
                    last_error = format!("{} (last worker {})", e.message(), states[w].addr);
                }
            }
        }
    }

    /// One request against one worker, with the shared backoff policy.
    /// Transport errors and 503/504 retry (the latter honouring
    /// `Retry-After`); any other status aborts as fatal. On success,
    /// returns the body plus whether the worker served it from cache.
    fn request_point(
        &self,
        state: &WorkerState,
        index: usize,
        body: &str,
    ) -> Result<(String, bool), PointError> {
        let policy = BackoffPolicy::new(self.retries, self.backoff);
        policy.run(
            |_attempt| {
                let resp = http_request(
                    &state.addr,
                    "POST",
                    "/v1/simulate",
                    Some(body),
                    self.timeout,
                )
                .map_err(|e| PointError::Down(format!("transport: {e}")))?;
                match resp.status {
                    200 => Ok((resp.body_text(), resp.header("x-pipe-cache") == Some("hit"))),
                    503 | 504 => Err(PointError::Busy {
                        message: format!(
                            "worker busy ({}): {}",
                            resp.status,
                            resp.body_text().trim()
                        ),
                        retry_after: resp
                            .header("retry-after")
                            .and_then(|v| v.trim().parse::<u64>().ok())
                            .map(Duration::from_secs),
                    }),
                    status => Err(PointError::Fatal(format!(
                        "worker {} rejected the point ({status}): {}",
                        state.addr,
                        resp.body_text().trim()
                    ))),
                }
            },
            |_attempt, e| match e {
                PointError::Fatal(_) => Retry::Abort,
                PointError::Down(_) => {
                    state.retried.fetch_add(1, Ordering::Relaxed);
                    self.metrics.workers[index].retried.inc();
                    Retry::After(None)
                }
                PointError::Busy { retry_after, .. } => {
                    state.retried.fetch_add(1, Ordering::Relaxed);
                    self.metrics.workers[index].retried.inc();
                    Retry::After(*retry_after)
                }
            },
        )
    }

    /// Validates and merges one successful response: the echoed key must
    /// match the dispatched point (a mismatch means the worker simulated
    /// something else — a point-fatal protocol error), the stats are
    /// re-parsed, and the entry is written to the merged store under the
    /// sweep's own strategy label with `wall_ms: 0` (see module docs).
    #[allow(clippy::too_many_arguments)]
    fn accept_point(
        &self,
        job: &SweepJob,
        state: &WorkerState,
        response: &str,
        hit: bool,
        wall: Duration,
        store_ok: &AtomicBool,
        total: usize,
    ) -> Result<bool, FailedPoint> {
        let fail = |error: String| FailedPoint {
            index: job.index,
            kind: job.kind,
            cache_bytes: job.cache_bytes,
            key: job.key().to_string(),
            error,
        };
        let echoed = field_str(response, "key");
        if echoed.as_deref() != Some(job.key()) {
            return Err(fail(format!(
                "worker {} answered for key {:?}, expected {:?}",
                state.addr,
                echoed.unwrap_or_default(),
                job.key()
            )));
        }
        let Some(stats) = stats_from_response(response) else {
            return Err(fail(format!(
                "worker {} returned an incomplete stats object",
                state.addr
            )));
        };
        let ms = wall.as_millis() as u64;
        state.record_success(ms);
        self.metrics.points_completed.inc();

        if self.progress {
            eprintln!(
                "[cluster {}/{}] {} @ {}B <- {}: {} cycles ({}ms{})",
                job.index + 1,
                total,
                job.kind.label(),
                job.cache_bytes,
                state.addr,
                stats.cycles,
                ms,
                if hit { ", worker cache hit" } else { "" },
            );
        }

        if let Some(store) = &self.store {
            if store_ok.load(Ordering::Relaxed) {
                let entry = StoredPoint {
                    key: job.key().to_string(),
                    strategy: job.kind.label().to_string(),
                    cache_bytes: job.cache_bytes,
                    // Constant, so merged stores are byte-identical
                    // across topologies and re-runs.
                    wall_ms: 0,
                    stats,
                };
                let policy = BackoffPolicy::store_default();
                let result = policy.run(|_| store.save(&entry), |_, _| Retry::After(None));
                if let Err(e) = result {
                    eprintln!(
                        "[cluster] warning: merged-store write failed {} times ({e}); \
                         continuing without the store",
                        policy.attempts()
                    );
                    store_ok.store(false, Ordering::Relaxed);
                }
            }
        }
        Ok(hit)
    }
}

/// The request-body fields shared by every point of a spec: workload and
/// memory timing. Returns the fragment (leading comma included) or a
/// typed [`ClusterError::Unsupported`] when the spec cannot be expressed
/// over the HTTP API.
fn common_fields(spec: &SweepSpec) -> Result<String, ClusterError> {
    if !matches!(spec.policy, PrefetchPolicy::TruePrefetch) {
        return Err(ClusterError::Unsupported(
            "the worker API fixes the PIPE prefetch policy to true-prefetch".to_string(),
        ));
    }
    let workload = match &spec.workload {
        WorkloadSpec::Livermore { format, scale } => format!(
            ",\"workload\":\"livermore\",\"scale\":{scale},\"format\":\"{}\"",
            format_field(*format)
        ),
        WorkloadSpec::TightLoop {
            body,
            trips,
            format,
        } => format!(
            ",\"workload\":\"tight-loop\",\"body\":{body},\"trips\":{trips},\"format\":\"{}\"",
            format_field(*format)
        ),
        // The name alone crosses the wire; the worker re-assembles its own
        // bundled copy, and the key echo (which includes the content hash)
        // rejects a worker whose library drifted from the coordinator's.
        WorkloadSpec::Asm { name, format, .. } => format!(
            ",\"workload\":\"asm\",\"program\":\"{name}\",\"format\":\"{}\"",
            format_field(*format)
        ),
        WorkloadSpec::Trace { .. } => {
            return Err(ClusterError::Unsupported(
                "trace workloads replay local files the HTTP API cannot ship".to_string(),
            ))
        }
    };
    let mem = mem_fields(&spec.mem)?;
    Ok(format!("{workload}{mem}"))
}

/// The server-side body value for an instruction format (the wire names
/// differ from the format's `Display` rendering).
fn format_field(format: InstrFormat) -> &'static str {
    match format {
        InstrFormat::Fixed32 => "fixed32",
        InstrFormat::Mixed => "mixed",
    }
}

/// The memory-timing fields, or `Unsupported` for parameters the
/// simulate body cannot carry (they would silently fall back to worker
/// defaults and poison the merged store with mis-keyed results — except
/// the key echo would catch it; failing early is friendlier).
fn mem_fields(mem: &MemConfig) -> Result<String, ClusterError> {
    let defaults = MemConfig::default();
    if mem.out_bus_bytes != defaults.out_bus_bytes {
        return Err(ClusterError::Unsupported(format!(
            "out-bus width {}B: the worker API has no field for it",
            mem.out_bus_bytes
        )));
    }
    if mem.fpu_latency != defaults.fpu_latency {
        return Err(ClusterError::Unsupported(format!(
            "FPU latency {}: the worker API has no field for it",
            mem.fpu_latency
        )));
    }
    if mem.external_cache.is_some() {
        return Err(ClusterError::Unsupported(
            "external cache models have no worker API fields".to_string(),
        ));
    }
    // Absent when no D-cache is configured, so pre-D-cache request
    // bodies stay byte-identical (coalescing and store keys unchanged).
    let dcache = match &mem.d_cache {
        Some(d) => format!(
            ",\"dcache\":{},\"dline\":{},\"dways\":{}",
            d.size_bytes, d.line_bytes, d.ways
        ),
        None => String::new(),
    };
    Ok(format!(
        ",\"access\":{},\"bus\":{},\"pipelined\":{},\"data_first\":{}{dcache}",
        mem.access_cycles,
        mem.in_bus_bytes,
        mem.pipelined,
        matches!(mem.priority, PriorityPolicy::DataFirst),
    ))
}

/// The full `/v1/simulate` body for one point: strategy fields plus the
/// spec-wide common fragment.
fn point_body(job: &SweepJob, common: &str) -> String {
    let strategy = match job.kind {
        StrategyKind::Conventional => format!(
            "\"fetch\":\"conventional\",\"cache\":{},\"line\":{}",
            job.cache_bytes,
            job.kind.line_bytes()
        ),
        StrategyKind::Tib16 => format!(
            "\"fetch\":\"tib\",\"cache\":{},\"line\":{}",
            job.cache_bytes,
            job.kind.line_bytes()
        ),
        _ => {
            let (iq, iqb) = job.kind.queue_bytes().expect("pipe strategy has queues");
            format!(
                "\"fetch\":\"pipe\",\"cache\":{},\"line\":{},\"iq\":{iq},\"iqb\":{iqb}",
                job.cache_bytes,
                job.kind.line_bytes()
            )
        }
    };
    format!("{{{strategy}{common}}}")
}

/// Reconstructs the persisted statistics surface from a simulate
/// response body (the `stats` object of [`stats_json`] — every field the
/// store round-trips). `None` when any field is missing.
///
/// [`stats_json`]: pipe_experiments::stats_json
fn stats_from_response(body: &str) -> Option<SimStats> {
    let mut stats = SimStats {
        cycles: field_u64(body, "cycles")?,
        instructions_issued: field_u64(body, "instructions")?,
        loads: field_u64(body, "loads")?,
        stores: field_u64(body, "stores")?,
        fpu_ops: field_u64(body, "fpu_ops")?,
        branches_taken: field_u64(body, "branches_taken")?,
        branches_not_taken: field_u64(body, "branches_not_taken")?,
        ..SimStats::default()
    };
    stats.stalls.ifetch = field_u64(body, "ifetch")?;
    stats.stalls.data_wait = field_u64(body, "data_wait")?;
    stats.stalls.queue_full = field_u64(body, "queue_full")?;
    stats.stalls.branch = field_u64(body, "branch")?;
    stats.fetch.demand_requests = field_u64(body, "demand_requests")?;
    stats.fetch.prefetch_requests = field_u64(body, "prefetch_requests")?;
    stats.fetch.bytes_requested = field_u64(body, "bytes_requested")?;
    stats.fetch.cache_hits = field_u64(body, "cache_hits")?;
    stats.fetch.cache_misses = field_u64(body, "cache_misses")?;
    stats.fetch.redirects = field_u64(body, "redirects")?;
    stats.fetch.wasted_requests = field_u64(body, "wasted_requests")?;
    Some(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipe_experiments::json::stats_json;
    use pipe_mem::MemConfig;

    fn spec() -> SweepSpec {
        SweepSpec {
            id: "cluster-test".to_string(),
            strategies: vec![StrategyKind::Conventional, StrategyKind::Pipe16x32],
            cache_sizes: vec![64],
            mem: MemConfig {
                access_cycles: 6,
                in_bus_bytes: 8,
                pipelined: true,
                ..MemConfig::default()
            },
            policy: PrefetchPolicy::TruePrefetch,
            workload: WorkloadSpec::TightLoop {
                body: 6,
                trips: 30,
                format: InstrFormat::Fixed32,
            },
        }
    }

    #[test]
    fn bodies_mirror_the_cli_fields() {
        let spec = spec();
        let common = common_fields(&spec).unwrap();
        let jobs = spec.expand();
        let conventional = point_body(&jobs[0], &common);
        assert!(conventional.contains("\"fetch\":\"conventional\""));
        assert!(conventional.contains("\"cache\":64"));
        assert!(conventional.contains("\"line\":16"));
        assert!(conventional.contains("\"workload\":\"tight-loop\""));
        assert!(conventional.contains("\"format\":\"fixed32\""));
        assert!(conventional.contains("\"access\":6"));
        assert!(conventional.contains("\"bus\":8"));
        assert!(conventional.contains("\"pipelined\":true"));
        assert!(conventional.contains("\"data_first\":false"));
        let pipe = point_body(&jobs[1], &common);
        assert!(pipe.contains("\"fetch\":\"pipe\""));
        assert!(pipe.contains("\"line\":32"));
        assert!(pipe.contains("\"iq\":16"));
        assert!(pipe.contains("\"iqb\":32"));
        for body in [&conventional, &pipe] {
            assert!(body.starts_with('{') && body.ends_with('}'));
        }
    }

    #[test]
    fn mixed_format_uses_the_wire_name() {
        // InstrFormat's Display renders "mixed-16/32"; the wire field
        // must be the server's accepted name instead.
        let mut spec = spec();
        spec.workload = WorkloadSpec::Livermore {
            format: InstrFormat::Mixed,
            scale: 20,
        };
        let common = common_fields(&spec).unwrap();
        assert!(common.contains("\"workload\":\"livermore\""));
        assert!(common.contains("\"scale\":20"));
        assert!(common.contains("\"format\":\"mixed\""));
    }

    #[test]
    fn unsupported_specs_fail_typed() {
        let mut trace = spec();
        trace.workload = WorkloadSpec::Trace {
            path: "/tmp/x.ptr".to_string(),
            fnv: 1,
        };
        assert!(matches!(
            common_fields(&trace),
            Err(ClusterError::Unsupported(_))
        ));

        let mut wide = spec();
        wide.mem.out_bus_bytes = 8;
        assert!(matches!(
            common_fields(&wide),
            Err(ClusterError::Unsupported(_))
        ));

        let mut fpu = spec();
        fpu.mem.fpu_latency = 9;
        assert!(matches!(
            common_fields(&fpu),
            Err(ClusterError::Unsupported(_))
        ));
    }

    #[test]
    fn stats_round_trip_through_the_response_shape() {
        let mut stats = SimStats {
            cycles: 12345,
            instructions_issued: 678,
            loads: 9,
            stores: 8,
            fpu_ops: 7,
            branches_taken: 6,
            branches_not_taken: 5,
            ..SimStats::default()
        };
        stats.stalls.ifetch = 44;
        stats.stalls.data_wait = 33;
        stats.stalls.queue_full = 22;
        stats.stalls.branch = 11;
        stats.fetch.demand_requests = 101;
        stats.fetch.prefetch_requests = 102;
        stats.fetch.bytes_requested = 103;
        stats.fetch.cache_hits = 104;
        stats.fetch.cache_misses = 105;
        stats.fetch.redirects = 106;
        stats.fetch.wasted_requests = 107;
        let response = format!(
            "{{\"key\":\"k\",\"strategy\":\"16-16\",\"cache_bytes\":64,\"stats\":{}}}",
            stats_json(&stats)
        );
        let parsed = stats_from_response(&response).unwrap();
        assert_eq!(parsed, stats);
        // A truncated response reads as absent, never as zeros.
        assert!(stats_from_response(&response[..response.len() / 2]).is_none());
    }

    #[test]
    fn startup_errors_are_typed() {
        let spec = spec();
        let err = Coordinator::new(Vec::new()).run(&spec).unwrap_err();
        assert_eq!(err, ClusterError::NoWorkers);

        // Nothing listens on port 1; both workers start dead.
        let dead = Coordinator::new(vec!["127.0.0.1:1".to_string(), "127.0.0.1:1".to_string()])
            .timeout(Duration::from_millis(500));
        let err = dead.run(&spec).unwrap_err();
        assert!(
            matches!(err, ClusterError::AllUnreachable(ref e) if e.len() == 2),
            "{err}"
        );
        assert!(err.to_string().contains("unreachable"));
    }
}
