//! End-to-end cluster tests: real `pipe-serve` workers on ephemeral
//! ports, a coordinator sharding a sweep across them, and byte-level
//! comparison of the merged stores.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

use pipe_cluster::Coordinator;
use pipe_experiments::{ResultStore, StrategyKind, SweepSpec, WorkloadSpec};
use pipe_icache::PrefetchPolicy;
use pipe_isa::InstrFormat;
use pipe_mem::{MemConfig, PriorityPolicy};
use pipe_server::{spawn, ServerConfig, ServerHandle};

fn spawn_worker(compute_delay: Duration) -> ServerHandle {
    spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        compute_delay,
        ..ServerConfig::default()
    })
    .expect("worker binds an ephemeral port")
}

fn temp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pipe-cluster-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every store entry under `root`, file name -> bytes.
fn snapshot(root: &Path) -> BTreeMap<String, Vec<u8>> {
    let dir = root.join("store").join("v1");
    let mut entries = BTreeMap::new();
    for entry in std::fs::read_dir(&dir).expect("store directory exists") {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        entries.insert(name, std::fs::read(entry.path()).unwrap());
    }
    entries
}

/// A sweep covering every strategy mapping (conventional, PIPE, TIB)
/// and the expressible memory fields (access, bus, pipelined,
/// data-first) over a fast synthetic workload.
fn spec() -> SweepSpec {
    SweepSpec {
        id: "cluster-e2e".to_string(),
        strategies: vec![
            StrategyKind::Conventional,
            StrategyKind::Pipe8x8,
            StrategyKind::Pipe16x16,
            StrategyKind::Pipe16x32,
            StrategyKind::Tib16,
        ],
        cache_sizes: vec![16, 32, 64, 128, 256, 512],
        mem: MemConfig {
            access_cycles: 6,
            in_bus_bytes: 8,
            pipelined: true,
            priority: PriorityPolicy::DataFirst,
            ..MemConfig::default()
        },
        policy: PrefetchPolicy::TruePrefetch,
        workload: WorkloadSpec::TightLoop {
            body: 6,
            trips: 30,
            format: InstrFormat::Fixed32,
        },
    }
}

#[test]
fn four_worker_store_is_byte_identical_to_single_node() {
    let spec = spec();
    let total = spec.expand().len();
    let timeout = Duration::from_secs(10);

    // 4-worker cluster run.
    let workers: Vec<ServerHandle> = (0..4).map(|_| spawn_worker(Duration::ZERO)).collect();
    let addrs: Vec<String> = workers.iter().map(|w| w.addr().to_string()).collect();
    let root4 = temp_root("four");
    let outcome = Coordinator::new(addrs)
        .jobs(4)
        .timeout(timeout)
        .store(ResultStore::open(&root4).unwrap())
        .run(&spec)
        .unwrap();
    assert!(outcome.is_complete(), "failed: {:?}", outcome.failed);
    assert_eq!(outcome.completed, total);
    assert_eq!(outcome.cached, 0);
    assert!(!outcome.store_degraded);
    // Every point was first-assigned exactly once, and with 64 virtual
    // nodes each worker owns a share.
    let assigned: u64 = outcome.workers.iter().map(|w| w.assigned).sum();
    assert_eq!(assigned, total as u64);
    assert!(
        outcome.workers.iter().all(|w| w.assigned > 0),
        "shard shares: {:?}",
        outcome.workers
    );

    // Single-node run into a fresh store.
    let single = spawn_worker(Duration::ZERO);
    let root1 = temp_root("one");
    let outcome1 = Coordinator::new(vec![single.addr().to_string()])
        .jobs(4)
        .timeout(timeout)
        .store(ResultStore::open(&root1).unwrap())
        .run(&spec)
        .unwrap();
    assert!(outcome1.is_complete());

    let four = snapshot(&root4);
    let one = snapshot(&root1);
    assert_eq!(four.len(), total);
    assert_eq!(
        four, one,
        "merged store must not depend on cluster topology"
    );

    // Any node's work is a cache hit everywhere: a resumed run against
    // the merged store dispatches nothing.
    let resumed = Coordinator::new(vec![single.addr().to_string()])
        .timeout(timeout)
        .store(ResultStore::open(&root4).unwrap())
        .resume(true)
        .run(&spec)
        .unwrap();
    assert_eq!(resumed.cached, total);
    assert_eq!(resumed.completed, 0);

    for worker in workers {
        worker.shutdown(timeout).unwrap();
    }
    single.shutdown(timeout).unwrap();
    let _ = std::fs::remove_dir_all(&root4);
    let _ = std::fs::remove_dir_all(&root1);
}

#[test]
fn worker_killed_mid_sweep_fails_over_and_merges_identically() {
    let spec = spec();
    let total = spec.expand().len();
    let timeout = Duration::from_secs(10);

    // Slow workers so the run is still in flight when the victim dies.
    let mut workers: Vec<ServerHandle> = (0..4)
        .map(|_| spawn_worker(Duration::from_millis(50)))
        .collect();
    let addrs: Vec<String> = workers.iter().map(|w| w.addr().to_string()).collect();
    let victim = workers.remove(2);
    let victim_addr = addrs[2].clone();

    let root = temp_root("failover");
    let coordinator = Coordinator::new(addrs)
        .jobs(4)
        .retry(2, Duration::from_millis(10))
        .timeout(timeout)
        .store(ResultStore::open(&root).unwrap());
    let store_dir = root.join("store").join("v1");

    let outcome = std::thread::scope(|scope| {
        let run = scope.spawn(|| coordinator.run(&spec).unwrap());
        // Wait until the sweep has visibly started (a few entries
        // merged), then kill the victim mid-run.
        for _ in 0..1000 {
            let merged = std::fs::read_dir(&store_dir)
                .map(|d| d.count())
                .unwrap_or(0);
            if merged >= 4 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        victim.shutdown(timeout).unwrap();
        run.join().unwrap()
    });

    assert!(
        outcome.is_complete(),
        "sweep must survive a worker death: {:?}",
        outcome.failed
    );
    assert_eq!(outcome.completed + outcome.cached, total);
    let victim_report = outcome
        .workers
        .iter()
        .find(|w| w.addr == victim_addr)
        .unwrap();
    assert!(
        !victim_report.alive,
        "the killed worker is reported dead: {victim_report:?}"
    );

    // The degraded run's merged store still matches a clean single-node
    // run byte for byte.
    let single = spawn_worker(Duration::ZERO);
    let baseline = temp_root("failover-baseline");
    Coordinator::new(vec![single.addr().to_string()])
        .timeout(timeout)
        .store(ResultStore::open(&baseline).unwrap())
        .run(&spec)
        .unwrap();
    assert_eq!(
        snapshot(&root),
        snapshot(&baseline),
        "failover must not change the merged bytes"
    );

    for worker in workers {
        worker.shutdown(timeout).unwrap();
    }
    single.shutdown(timeout).unwrap();
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&baseline);
}
