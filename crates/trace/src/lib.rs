//! # pipe-trace
//!
//! Instruction-trace capture and replay for the PIPE simulation.
//!
//! The paper's evaluation drives each fetch engine through the full
//! functional core on a single Livermore run. This crate decouples the
//! two: a run is **recorded** once into a compact binary trace, then
//! **replayed** directly through any [`FetchEngine`] — conventional,
//! PIPE IQ/IQB, perfect — without the functional core, the way modern
//! instruction-supply studies are evaluated trace-driven.
//!
//! Three layers:
//!
//! * **Format** ([`TraceWriter`] / [`TraceReader`]) — a versioned `.ptr`
//!   container: varint delta-encoded per-instruction records grouped
//!   into CRC-32-protected blocks, streamed in both directions so a
//!   trace of any length needs constant memory. Corruption surfaces as
//!   a typed [`TraceError`], never a panic.
//! * **Capture** ([`TraceRecorder`]) — a `pipe_core::TraceSink` that
//!   records fetch addresses, non-fetch stall gaps, data-side memory
//!   operations, and branch/PBR resolutions from a live simulation.
//! * **Replay** ([`replay_trace`], [`import`]) — feeds recorded traces
//!   (or imported plain-text address traces) through
//!   `pipe_icache::ReplayHarness`. Replaying a trace under its recorded
//!   engine and memory configuration reproduces the original run's
//!   fetch-stall cycle count bit-identically; replaying under a
//!   different front-end is the subsystem's purpose.
//!
//! ```
//! use pipe_core::{Processor, SimConfig};
//! use pipe_trace::{
//!     program_fnv, replay_trace, TraceMeta, TraceReader, TraceRecorder,
//! };
//! use pipe_isa::{Assembler, InstrFormat};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let program = Assembler::new(InstrFormat::Fixed32)
//!     .assemble("lim r1, 3\ntop: subi r1, r1, 1\nlbr b0, top\npbr.nez b0, r1, 0\nhalt\n")
//!     .unwrap();
//! let config = SimConfig::default();
//!
//! // Record a run.
//! let meta = TraceMeta {
//!     workload: "example".into(),
//!     program_fnv: program_fnv(&program),
//!     entry_pc: program.entry(),
//!     fetch_key: config.fetch.cache_key(),
//!     mem_key: "default".into(),
//! };
//! let rec = Rc::new(RefCell::new(TraceRecorder::new(Vec::new(), &meta).unwrap()));
//! let mut proc = Processor::new(&program, &config).unwrap().with_trace(Rc::clone(&rec));
//! proc.run().unwrap();
//! let (bytes, _) = rec.borrow_mut().finish(proc.stats().cycles).unwrap();
//!
//! // Replay it through the same front-end: bit-identical fetch stalls.
//! let outcome = replay_trace(
//!     TraceReader::new(&bytes[..]).unwrap(),
//!     &program,
//!     &config.fetch,
//!     &config.mem,
//! )
//! .unwrap();
//! assert!(outcome.matches_recording());
//! assert_eq!(outcome.stats.ifetch_stalls, proc.stats().stalls.ifetch);
//! ```
//!
//! [`FetchEngine`]: pipe_icache::FetchEngine

pub mod crc32;
pub mod format;
pub mod import;
pub mod reader;
pub mod recorder;
pub mod replay;
pub mod varint;
pub mod writer;

pub use format::{
    fnv1a64, program_fnv, Fnv64, TraceError, TraceMeta, TraceSummary, FORMAT_VERSION, MAGIC,
};
pub use import::{parse_address_trace, schedule_from_addresses, synthesize_program, ImportError};
pub use reader::TraceReader;
pub use recorder::TraceRecorder;
pub use replay::{file_fnv, replay_trace, ReplayOutcome, ReplayTraceError};
pub use writer::TraceWriter;
