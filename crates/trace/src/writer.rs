//! Streaming trace writer.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use pipe_icache::ReplayStep;

use crate::crc32::crc32;
use crate::format::{
    encode_meta, encode_summary, Codec, TraceMeta, TraceSummary, BLOCK_TARGET_BYTES,
    FORMAT_VERSION, MAGIC, MARKER_BLOCK, MARKER_END, MARKER_HEADER,
};
use crate::varint;

pub(crate) fn write_block<W: Write>(out: &mut W, marker: u8, payload: &[u8]) -> io::Result<()> {
    out.write_all(&[marker])?;
    let mut len = Vec::with_capacity(5);
    varint::write_u64(&mut len, payload.len() as u64);
    out.write_all(&len)?;
    out.write_all(&crc32(payload).to_le_bytes())?;
    out.write_all(payload)
}

/// Writes a `.ptr` trace incrementally: steps are delta-encoded into a
/// block buffer that is flushed (with its CRC-32) every
/// [`BLOCK_TARGET_BYTES`], so memory use is constant regardless of trace
/// length.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    codec: Codec,
    block: Vec<u8>,
    steps: u64,
    wait_cycles: u64,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates `path` and writes the header for `meta`.
    ///
    /// # Errors
    ///
    /// Any file-creation or write failure.
    pub fn create(path: &Path, meta: &TraceMeta) -> io::Result<TraceWriter<BufWriter<File>>> {
        TraceWriter::new(BufWriter::new(File::create(path)?), meta)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Writes the magic, version, and header block for `meta`.
    ///
    /// # Errors
    ///
    /// Any write failure on `out`.
    pub fn new(mut out: W, meta: &TraceMeta) -> io::Result<TraceWriter<W>> {
        out.write_all(&MAGIC)?;
        out.write_all(&FORMAT_VERSION.to_le_bytes())?;
        write_block(&mut out, MARKER_HEADER, &encode_meta(meta))?;
        Ok(TraceWriter {
            out,
            codec: Codec::default(),
            block: Vec::with_capacity(BLOCK_TARGET_BYTES + 64),
            steps: 0,
            wait_cycles: 0,
        })
    }

    /// Appends one instruction step.
    ///
    /// # Errors
    ///
    /// Any write failure while flushing a full block.
    pub fn write_step(&mut self, step: &ReplayStep) -> io::Result<()> {
        self.codec.encode_step(&mut self.block, step);
        self.steps += 1;
        self.wait_cycles += u64::from(step.waits);
        if self.block.len() >= BLOCK_TARGET_BYTES {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> io::Result<()> {
        if !self.block.is_empty() {
            write_block(&mut self.out, MARKER_BLOCK, &self.block)?;
            self.block.clear();
        }
        Ok(())
    }

    /// Steps written so far.
    pub fn steps_written(&self) -> u64 {
        self.steps
    }

    /// Flushes the final block, writes the end summary, and returns the
    /// underlying writer plus the summary. `cycles` and `ifetch_stalls`
    /// come from the recorded run's statistics (the writer cannot see
    /// the post-halt drain).
    ///
    /// # Errors
    ///
    /// Any write or flush failure.
    pub fn finish(mut self, cycles: u64, ifetch_stalls: u64) -> io::Result<(W, TraceSummary)> {
        self.flush_block()?;
        let summary = TraceSummary {
            instructions: self.steps,
            cycles,
            ifetch_stalls,
            wait_cycles: self.wait_cycles,
        };
        write_block(&mut self.out, MARKER_END, &encode_summary(&summary))?;
        self.out.flush()?;
        Ok((self.out, summary))
    }
}
