//! The `.ptr` binary trace format: constants, metadata, typed errors,
//! and the per-record codec shared by the writer and reader.
//!
//! ## Layout
//!
//! ```text
//! "PTRC"  u16 version (LE)
//! 'H' block — trace metadata (workload, program fingerprint, entry pc,
//!             fetch/memory configuration keys)
//! 'B' block*  — consecutive step records
//! 'E' block — end summary (instructions, cycles, fetch stalls, waits)
//! ```
//!
//! Every block is `marker, varint payload-length, u32 CRC-32 (LE),
//! payload`; a corrupted payload is detected by the CRC and reported as
//! [`TraceError::CorruptBlock`] — never a panic. Records use varint
//! fields with zigzag delta encoding for addresses (sequential code and
//! strided data streams make most deltas one byte); records never span a
//! block boundary, but the delta predictors run across blocks, so blocks
//! can only be decoded in order.

use std::error::Error;
use std::fmt;
use std::io;

use pipe_icache::{ReplayBranch, ReplayOp, ReplayStep};
use pipe_isa::Program;

use crate::varint;

/// File magic: "PTRC" (Pipe TRaCe).
pub const MAGIC: [u8; 4] = *b"PTRC";
/// Current format version.
pub const FORMAT_VERSION: u16 = 1;
/// Target payload size at which the writer cuts a block.
pub const BLOCK_TARGET_BYTES: usize = 32 * 1024;
/// Upper bound accepted for a block payload when reading (guards against
/// absurd allocations from corrupted length fields).
pub const MAX_BLOCK_BYTES: usize = 1 << 24;

pub(crate) const MARKER_HEADER: u8 = b'H';
pub(crate) const MARKER_BLOCK: u8 = b'B';
pub(crate) const MARKER_END: u8 = b'E';

const FLAG_ADDR: u8 = 1 << 0;
const FLAG_GAP: u8 = 1 << 1;
const FLAG_OPS: u8 = 1 << 2;
const FLAG_RESOLVE: u8 = 1 << 3;
const FLAG_TAKEN: u8 = 1 << 4;

const OP_LOAD: u8 = 0;
const OP_STORE: u8 = 1;
const OP_STORE_DATA: u8 = 2;

/// Metadata identifying what a trace was recorded from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Workload key, e.g. `livermore:format=fixed-32,scale=1` for
    /// workloads the experiment harness can rebuild, or `file:<name>` /
    /// `address` for external programs and imported address traces.
    pub workload: String,
    /// FNV-1a fingerprint of the program image (base + parcels); replay
    /// verifies the supplied program against it.
    pub program_fnv: u64,
    /// Entry byte address of the recorded program.
    pub entry_pc: u32,
    /// Fetch-engine configuration key at record time (informational —
    /// replay may use any engine).
    pub fetch_key: String,
    /// Memory configuration key at record time (informational).
    pub mem_key: String,
}

/// Totals written by the recorder, used by replay verification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Instructions recorded.
    pub instructions: u64,
    /// Total cycles of the recorded run, including the post-halt drain.
    pub cycles: u64,
    /// Instruction-fetch stall cycles of the recorded run.
    pub ifetch_stalls: u64,
    /// Non-fetch stall cycles (branch/data/queue) of the recorded run.
    pub wait_cycles: u64,
}

/// A typed trace-format error. Corruption and truncation are ordinary
/// error values, never panics.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the `PTRC` magic.
    BadMagic,
    /// The file's format version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// A block's payload failed its CRC-32 check.
    CorruptBlock {
        /// Zero-based index of the failing block.
        index: u64,
    },
    /// The file ended before the end-summary block.
    Truncated,
    /// A structurally invalid record or field.
    Malformed(&'static str),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not a pipe trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace format version {v} (reader supports {FORMAT_VERSION})"
                )
            }
            TraceError::CorruptBlock { index } => {
                write!(
                    f,
                    "trace block {index} failed its CRC-32 check (corrupted file)"
                )
            }
            TraceError::Truncated => write!(f, "trace file truncated before end summary"),
            TraceError::Malformed(what) => write!(f, "malformed trace: {what}"),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Streaming FNV-1a 64-bit hasher (for hashing trace files of any size
/// without loading them).
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The hash value so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

/// Fingerprint of a program image: FNV-1a over the base address and every
/// parcel, little-endian. Stored in the trace header so replay can detect
/// a program/trace mismatch.
pub fn program_fnv(program: &Program) -> u64 {
    let mut h = Fnv64::new();
    h.update(&program.base().to_le_bytes());
    h.update(&program.entry().to_le_bytes());
    for &parcel in program.parcels() {
        h.update(&parcel.to_le_bytes());
    }
    h.finish()
}

pub(crate) fn write_string(buf: &mut Vec<u8>, s: &str) {
    varint::write_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

pub(crate) fn read_string(buf: &[u8], pos: &mut usize) -> Result<String, TraceError> {
    let len = varint::read_u64(buf, pos).ok_or(TraceError::Malformed("string length"))? as usize;
    if len > MAX_BLOCK_BYTES || *pos + len > buf.len() {
        return Err(TraceError::Malformed("string length out of range"));
    }
    let s = std::str::from_utf8(&buf[*pos..*pos + len])
        .map_err(|_| TraceError::Malformed("string not utf-8"))?;
    *pos += len;
    Ok(s.to_owned())
}

pub(crate) fn encode_meta(meta: &TraceMeta) -> Vec<u8> {
    let mut buf = Vec::new();
    write_string(&mut buf, &meta.workload);
    buf.extend_from_slice(&meta.program_fnv.to_le_bytes());
    buf.extend_from_slice(&meta.entry_pc.to_le_bytes());
    write_string(&mut buf, &meta.fetch_key);
    write_string(&mut buf, &meta.mem_key);
    buf
}

pub(crate) fn decode_meta(buf: &[u8]) -> Result<TraceMeta, TraceError> {
    let mut pos = 0;
    let workload = read_string(buf, &mut pos)?;
    if pos + 12 > buf.len() {
        return Err(TraceError::Malformed("header too short"));
    }
    let program_fnv = u64::from_le_bytes(buf[pos..pos + 8].try_into().expect("length checked"));
    pos += 8;
    let entry_pc = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("length checked"));
    pos += 4;
    let fetch_key = read_string(buf, &mut pos)?;
    let mem_key = read_string(buf, &mut pos)?;
    Ok(TraceMeta {
        workload,
        program_fnv,
        entry_pc,
        fetch_key,
        mem_key,
    })
}

pub(crate) fn encode_summary(s: &TraceSummary) -> Vec<u8> {
    let mut buf = Vec::new();
    varint::write_u64(&mut buf, s.instructions);
    varint::write_u64(&mut buf, s.cycles);
    varint::write_u64(&mut buf, s.ifetch_stalls);
    varint::write_u64(&mut buf, s.wait_cycles);
    buf
}

pub(crate) fn decode_summary(buf: &[u8]) -> Result<TraceSummary, TraceError> {
    let mut pos = 0;
    let mut next = || varint::read_u64(buf, &mut pos).ok_or(TraceError::Malformed("end summary"));
    Ok(TraceSummary {
        instructions: next()?,
        cycles: next()?,
        ifetch_stalls: next()?,
        wait_cycles: next()?,
    })
}

/// Delta-predictor state threaded through consecutive records. The
/// writer and reader each keep one; predictors persist across block
/// boundaries.
#[derive(Debug, Clone, Default)]
pub(crate) struct Codec {
    prev_addr: u32,
    last_data_addr: u32,
}

impl Codec {
    /// Encodes `step` onto `buf`.
    pub(crate) fn encode_step(&mut self, buf: &mut Vec<u8>, step: &ReplayStep) {
        let mut flags = 0u8;
        if step.addr.is_some() {
            flags |= FLAG_ADDR;
        }
        if step.waits > 0 {
            flags |= FLAG_GAP;
        }
        if !step.ops.is_empty() {
            flags |= FLAG_OPS;
        }
        if let Some(r) = &step.resolve {
            flags |= FLAG_RESOLVE;
            if r.taken {
                flags |= FLAG_TAKEN;
            }
        }
        buf.push(flags);
        if let Some(addr) = step.addr {
            let predicted = self.prev_addr.wrapping_add(4);
            let delta = addr.wrapping_sub(predicted) as i32;
            varint::write_u64(buf, varint::zigzag(i64::from(delta)));
            self.prev_addr = addr;
        }
        if step.waits > 0 {
            varint::write_u64(buf, u64::from(step.waits));
        }
        if !step.ops.is_empty() {
            varint::write_u64(buf, step.ops.len() as u64);
            for op in &step.ops {
                match *op {
                    ReplayOp::Load { addr } => {
                        buf.push(OP_LOAD);
                        self.encode_data_addr(buf, addr);
                    }
                    ReplayOp::StoreAddr { addr } => {
                        buf.push(OP_STORE);
                        self.encode_data_addr(buf, addr);
                    }
                    ReplayOp::StoreData { value } => {
                        buf.push(OP_STORE_DATA);
                        varint::write_u64(buf, u64::from(value));
                    }
                }
            }
        }
        if let Some(r) = &step.resolve {
            varint::write_u64(buf, u64::from(r.remaining));
            varint::write_u64(buf, u64::from(r.target));
        }
    }

    fn encode_data_addr(&mut self, buf: &mut Vec<u8>, addr: u32) {
        let delta = addr.wrapping_sub(self.last_data_addr) as i32;
        varint::write_u64(buf, varint::zigzag(i64::from(delta)));
        self.last_data_addr = addr;
    }

    fn decode_data_addr(&mut self, buf: &[u8], pos: &mut usize) -> Result<u32, TraceError> {
        let raw = varint::read_u64(buf, pos).ok_or(TraceError::Malformed("data address"))?;
        let addr = self
            .last_data_addr
            .wrapping_add(varint::unzigzag(raw) as u32);
        self.last_data_addr = addr;
        Ok(addr)
    }

    /// Decodes one step from `buf` at `*pos`.
    pub(crate) fn decode_step(
        &mut self,
        buf: &[u8],
        pos: &mut usize,
    ) -> Result<ReplayStep, TraceError> {
        let flags = *buf.get(*pos).ok_or(TraceError::Malformed("step flags"))?;
        *pos += 1;
        if flags & !(FLAG_ADDR | FLAG_GAP | FLAG_OPS | FLAG_RESOLVE | FLAG_TAKEN) != 0 {
            return Err(TraceError::Malformed("unknown step flags"));
        }
        let mut step = ReplayStep::default();
        if flags & FLAG_ADDR != 0 {
            let raw = varint::read_u64(buf, pos).ok_or(TraceError::Malformed("step address"))?;
            let predicted = self.prev_addr.wrapping_add(4);
            let addr = predicted.wrapping_add(varint::unzigzag(raw) as u32);
            self.prev_addr = addr;
            step.addr = Some(addr);
        }
        if flags & FLAG_GAP != 0 {
            let waits = varint::read_u64(buf, pos).ok_or(TraceError::Malformed("step waits"))?;
            step.waits = u32::try_from(waits).map_err(|_| TraceError::Malformed("step waits"))?;
        }
        if flags & FLAG_OPS != 0 {
            let count = varint::read_u64(buf, pos).ok_or(TraceError::Malformed("op count"))?;
            if count == 0 || count > 4096 {
                return Err(TraceError::Malformed("op count out of range"));
            }
            for _ in 0..count {
                let tag = *buf.get(*pos).ok_or(TraceError::Malformed("op tag"))?;
                *pos += 1;
                let op = match tag {
                    OP_LOAD => ReplayOp::Load {
                        addr: self.decode_data_addr(buf, pos)?,
                    },
                    OP_STORE => ReplayOp::StoreAddr {
                        addr: self.decode_data_addr(buf, pos)?,
                    },
                    OP_STORE_DATA => {
                        let v = varint::read_u64(buf, pos)
                            .ok_or(TraceError::Malformed("store value"))?;
                        ReplayOp::StoreData {
                            value: u32::try_from(v)
                                .map_err(|_| TraceError::Malformed("store value"))?,
                        }
                    }
                    _ => return Err(TraceError::Malformed("unknown op tag")),
                };
                step.ops.push(op);
            }
        }
        if flags & FLAG_RESOLVE != 0 {
            let remaining =
                varint::read_u64(buf, pos).ok_or(TraceError::Malformed("resolve remaining"))?;
            let target =
                varint::read_u64(buf, pos).ok_or(TraceError::Malformed("resolve target"))?;
            step.resolve = Some(ReplayBranch {
                taken: flags & FLAG_TAKEN != 0,
                remaining: u32::try_from(remaining)
                    .map_err(|_| TraceError::Malformed("resolve remaining"))?,
                target: u32::try_from(target)
                    .map_err(|_| TraceError::Malformed("resolve target"))?,
            });
        }
        Ok(step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_codec_roundtrip() {
        let steps = vec![
            ReplayStep::at(0x100),
            ReplayStep::at(0x104),
            ReplayStep {
                waits: 7,
                ops: vec![
                    ReplayOp::Load { addr: 0x2000 },
                    ReplayOp::StoreAddr { addr: 0x2004 },
                    ReplayOp::StoreData { value: 0xDEAD_BEEF },
                ],
                ..ReplayStep::at(0x108)
            },
            ReplayStep {
                resolve: Some(ReplayBranch {
                    taken: true,
                    remaining: 2,
                    target: 0x100,
                }),
                ..ReplayStep::at(0x10C)
            },
            // An engine that cannot attribute an address.
            ReplayStep::default(),
        ];
        let mut enc = Codec::default();
        let mut buf = Vec::new();
        for s in &steps {
            enc.encode_step(&mut buf, s);
        }
        let mut dec = Codec::default();
        let mut pos = 0;
        for want in &steps {
            let got = dec.decode_step(&buf, &mut pos).expect("decodes");
            assert_eq!(&got, want);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn sequential_steps_are_two_bytes() {
        let mut enc = Codec::default();
        let mut buf = Vec::new();
        enc.encode_step(&mut buf, &ReplayStep::at(0x40));
        let first = buf.len();
        enc.encode_step(&mut buf, &ReplayStep::at(0x44));
        assert_eq!(buf.len() - first, 2, "flags + one-byte zero delta");
    }

    #[test]
    fn malformed_step_is_typed() {
        let mut dec = Codec::default();
        let mut pos = 0;
        let buf = [0x80u8]; // unknown flag bit
        assert!(matches!(
            dec.decode_step(&buf, &mut pos),
            Err(TraceError::Malformed(_))
        ));
    }

    #[test]
    fn fnv_matches_reference() {
        // FNV-1a 64 reference values.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
