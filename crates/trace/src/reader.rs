//! Streaming trace reader.

use std::fs::File;
use std::io::{self, BufReader, Read};
use std::path::Path;

use pipe_icache::ReplayStep;

use crate::crc32::crc32;
use crate::format::{
    decode_meta, decode_summary, Codec, TraceError, TraceMeta, TraceSummary, FORMAT_VERSION, MAGIC,
    MARKER_BLOCK, MARKER_END, MARKER_HEADER, MAX_BLOCK_BYTES,
};

/// Reads a `.ptr` trace one block at a time: the current block is held
/// in memory and CRC-verified before any record in it is decoded, so a
/// flipped bit anywhere surfaces as [`TraceError::CorruptBlock`] before
/// a single damaged step is replayed. Memory use is one block regardless
/// of trace length.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    meta: TraceMeta,
    codec: Codec,
    block: Vec<u8>,
    pos: usize,
    blocks_read: u64,
    summary: Option<TraceSummary>,
    finished: bool,
}

impl TraceReader<BufReader<File>> {
    /// Opens `path` and parses the header.
    ///
    /// # Errors
    ///
    /// I/O failures and any header-level [`TraceError`].
    pub fn open(path: &Path) -> Result<TraceReader<BufReader<File>>, TraceError> {
        TraceReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> TraceReader<R> {
    /// Parses the magic, version, and header block from `input`.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadMagic`] / [`TraceError::UnsupportedVersion`] for
    /// foreign files, plus I/O and structural errors.
    pub fn new(mut input: R) -> Result<TraceReader<R>, TraceError> {
        let mut magic = [0u8; 4];
        read_exact_or(&mut input, &mut magic, TraceError::BadMagic)?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut version = [0u8; 2];
        read_exact_or(&mut input, &mut version, TraceError::Truncated)?;
        let version = u16::from_le_bytes(version);
        if version != FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let mut blocks_read = 0;
        let (marker, payload) = read_block(&mut input, &mut blocks_read)?;
        if marker != MARKER_HEADER {
            return Err(TraceError::Malformed("missing header block"));
        }
        let meta = decode_meta(&payload)?;
        Ok(TraceReader {
            input,
            meta,
            codec: Codec::default(),
            block: Vec::new(),
            pos: 0,
            blocks_read,
            summary: None,
            finished: false,
        })
    }

    /// The trace's metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// The end summary — available once every step has been read.
    pub fn summary(&self) -> Option<&TraceSummary> {
        self.summary.as_ref()
    }

    /// Reads the next step, or `None` at the end of the trace. After any
    /// `Some(Err(..))` the reader yields `None` forever.
    #[allow(clippy::should_implement_trait)] // Iterator is also implemented, delegating here
    pub fn next_step(&mut self) -> Option<Result<ReplayStep, TraceError>> {
        if self.finished {
            return None;
        }
        while self.pos == self.block.len() {
            match read_block(&mut self.input, &mut self.blocks_read) {
                Ok((MARKER_BLOCK, payload)) => {
                    self.block = payload;
                    self.pos = 0;
                }
                Ok((MARKER_END, payload)) => {
                    self.finished = true;
                    return match decode_summary(&payload) {
                        Ok(s) => {
                            self.summary = Some(s);
                            None
                        }
                        Err(e) => Some(Err(e)),
                    };
                }
                Ok(_) => {
                    self.finished = true;
                    return Some(Err(TraceError::Malformed("unexpected block marker")));
                }
                Err(e) => {
                    self.finished = true;
                    return Some(Err(e));
                }
            }
        }
        match self.codec.decode_step(&self.block, &mut self.pos) {
            Ok(step) => Some(Ok(step)),
            Err(e) => {
                self.finished = true;
                Some(Err(e))
            }
        }
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<ReplayStep, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_step()
    }
}

fn read_exact_or<R: Read>(
    input: &mut R,
    buf: &mut [u8],
    on_eof: TraceError,
) -> Result<(), TraceError> {
    match input.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(on_eof),
        Err(e) => Err(TraceError::Io(e)),
    }
}

fn read_byte<R: Read>(input: &mut R) -> Result<Option<u8>, TraceError> {
    let mut b = [0u8; 1];
    match input.read_exact(&mut b) {
        Ok(()) => Ok(Some(b[0])),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(None),
        Err(e) => Err(TraceError::Io(e)),
    }
}

fn read_varint_stream<R: Read>(input: &mut R) -> Result<u64, TraceError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = read_byte(input)?.ok_or(TraceError::Truncated)?;
        if shift >= 64 {
            return Err(TraceError::Malformed("oversized varint"));
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn read_block<R: Read>(input: &mut R, blocks_read: &mut u64) -> Result<(u8, Vec<u8>), TraceError> {
    let marker = read_byte(input)?.ok_or(TraceError::Truncated)?;
    let len = read_varint_stream(input)?;
    if len as usize > MAX_BLOCK_BYTES {
        return Err(TraceError::Malformed("block length out of range"));
    }
    let mut crc = [0u8; 4];
    read_exact_or(input, &mut crc, TraceError::Truncated)?;
    let crc = u32::from_le_bytes(crc);
    let mut payload = vec![0u8; len as usize];
    read_exact_or(input, &mut payload, TraceError::Truncated)?;
    let index = *blocks_read;
    *blocks_read += 1;
    if crc32(&payload) != crc {
        return Err(TraceError::CorruptBlock { index });
    }
    Ok((marker, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceMeta;
    use crate::writer::TraceWriter;
    use pipe_icache::{ReplayBranch, ReplayOp};

    fn meta() -> TraceMeta {
        TraceMeta {
            workload: "test".into(),
            program_fnv: 0x1234_5678_9ABC_DEF0,
            entry_pc: 0x40,
            fetch_key: "fetch=test".into(),
            mem_key: "mem=test".into(),
        }
    }

    fn sample_steps(n: u32) -> Vec<ReplayStep> {
        (0..n)
            .map(|i| {
                let mut s = ReplayStep::at(0x40 + i * 4);
                if i % 7 == 3 {
                    s.waits = i % 5;
                    s.ops.push(ReplayOp::Load { addr: 0x1000 + i });
                }
                if i % 11 == 5 {
                    s.resolve = Some(ReplayBranch {
                        taken: i % 2 == 0,
                        remaining: i % 3,
                        target: 0x40,
                    });
                }
                s
            })
            .collect()
    }

    fn write_trace(steps: &[ReplayStep]) -> Vec<u8> {
        let mut w = TraceWriter::new(Vec::new(), &meta()).expect("header writes");
        for s in steps {
            w.write_step(s).expect("step writes");
        }
        let (bytes, _) = w.finish(123, 45).expect("finishes");
        bytes
    }

    #[test]
    fn roundtrip_preserves_steps_and_summary() {
        let steps = sample_steps(500);
        let bytes = write_trace(&steps);
        let mut r = TraceReader::new(&bytes[..]).expect("header parses");
        assert_eq!(r.meta(), &meta());
        let mut got = Vec::new();
        while let Some(s) = r.next_step() {
            got.push(s.expect("step decodes"));
        }
        assert_eq!(got, steps);
        let summary = r.summary().expect("summary present");
        assert_eq!(summary.instructions, 500);
        assert_eq!(summary.cycles, 123);
        assert_eq!(summary.ifetch_stalls, 45);
    }

    #[test]
    fn compact_encoding() {
        // Straight-line code: ~2 bytes per instruction plus framing.
        let steps: Vec<_> = (0..10_000).map(|i| ReplayStep::at(i * 4)).collect();
        let bytes = write_trace(&steps);
        assert!(
            bytes.len() < 3 * steps.len(),
            "10k sequential steps took {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn corrupted_block_is_typed_error() {
        let steps = sample_steps(400);
        let mut bytes = write_trace(&steps);
        // Flip a bit well inside the (single) data block payload.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let mut r = TraceReader::new(&bytes[..]).expect("header still parses");
        let err = r
            .find_map(|s| s.err())
            .expect("corruption must surface as an error");
        assert!(
            matches!(err, TraceError::CorruptBlock { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn truncated_file_is_typed_error() {
        let steps = sample_steps(100);
        let bytes = write_trace(&steps);
        let cut = &bytes[..bytes.len() - 10];
        let mut r = TraceReader::new(cut).expect("header parses");
        let err = r.find_map(|s| s.err()).expect("truncation surfaces");
        assert!(
            matches!(err, TraceError::Truncated | TraceError::CorruptBlock { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn foreign_file_is_bad_magic() {
        let err = TraceReader::new(&b"not a trace file"[..]).unwrap_err();
        assert!(matches!(err, TraceError::BadMagic));
    }

    #[test]
    fn future_version_is_rejected() {
        let steps = sample_steps(3);
        let mut bytes = write_trace(&steps);
        bytes[4] = 0xFF; // version low byte
        let err = TraceReader::new(&bytes[..]).unwrap_err();
        assert!(matches!(err, TraceError::UnsupportedVersion(_)));
    }
}
