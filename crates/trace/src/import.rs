//! Importing plain-text address traces.
//!
//! An address trace is one fetch address per line (decimal or `0x` hex;
//! `#` starts a comment). It carries no data-side traffic, stall counts,
//! or delay-slot structure, so replay uses an approximate model: a
//! synthetic all-`nop` program spans the trace's address range, and
//! every non-sequential step is modelled as a taken branch with zero
//! remaining delay slots, resolving one cycle after the preceding
//! instruction issues. This measures pure instruction-supply behaviour —
//! see `docs/MODEL.md` for the model's scope.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use pipe_icache::{ReplayBranch, ReplayStep};
use pipe_isa::{encode, InstrFormat, Instruction, Program};

/// Instruction granule of the synthetic replay model (fixed-32 `nop`s).
pub const SYNTH_INSTR_BYTES: u32 = 4;

/// Largest address span a synthetic program may cover (1 MiB), guarding
/// against a stray address exploding the program image.
pub const MAX_SYNTH_SPAN_BYTES: u32 = 1 << 20;

/// A rejected address-trace import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportError {
    /// A line failed to parse as an address.
    BadLine {
        /// One-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// An address is not aligned to [`SYNTH_INSTR_BYTES`].
    Misaligned {
        /// One-based line number.
        line: usize,
        /// The offending address.
        addr: u32,
    },
    /// The trace contains no addresses.
    Empty,
    /// The address range exceeds [`MAX_SYNTH_SPAN_BYTES`].
    SpanTooLarge {
        /// The span the trace would require.
        span: u64,
    },
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::BadLine { line, text } => {
                write!(f, "address trace line {line}: cannot parse `{text}`")
            }
            ImportError::Misaligned { line, addr } => write!(
                f,
                "address trace line {line}: {addr:#x} is not {SYNTH_INSTR_BYTES}-byte aligned"
            ),
            ImportError::Empty => write!(f, "address trace contains no addresses"),
            ImportError::SpanTooLarge { span } => write!(
                f,
                "address trace spans {span} bytes (limit {MAX_SYNTH_SPAN_BYTES})"
            ),
        }
    }
}

impl Error for ImportError {}

/// Parses a plain-text address trace: one address per line, decimal or
/// `0x`-prefixed hex, with `#` comments and blank lines ignored.
///
/// # Errors
///
/// [`ImportError::BadLine`] / [`ImportError::Misaligned`] with the
/// offending line number; [`ImportError::Empty`] for a trace with no
/// addresses.
pub fn parse_address_trace(text: &str) -> Result<Vec<u32>, ImportError> {
    let mut addrs = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let entry = raw.split('#').next().unwrap_or("").trim();
        if entry.is_empty() {
            continue;
        }
        let parsed = match entry
            .strip_prefix("0x")
            .or_else(|| entry.strip_prefix("0X"))
        {
            Some(hex) => u32::from_str_radix(hex, 16),
            None => entry.parse::<u32>(),
        };
        let addr = parsed.map_err(|_| ImportError::BadLine {
            line,
            text: entry.to_owned(),
        })?;
        if addr % SYNTH_INSTR_BYTES != 0 {
            return Err(ImportError::Misaligned { line, addr });
        }
        addrs.push(addr);
    }
    if addrs.is_empty() {
        return Err(ImportError::Empty);
    }
    Ok(addrs)
}

/// Builds the synthetic all-`nop` program backing an address trace: a
/// fixed-32 image spanning the trace's address range, with entry at the
/// first address.
///
/// # Errors
///
/// [`ImportError::Empty`] and [`ImportError::SpanTooLarge`].
pub fn synthesize_program(addrs: &[u32]) -> Result<Program, ImportError> {
    let first = *addrs.first().ok_or(ImportError::Empty)?;
    let min = addrs.iter().copied().min().expect("non-empty");
    let max = addrs.iter().copied().max().expect("non-empty");
    let span = u64::from(max - min) + u64::from(SYNTH_INSTR_BYTES);
    if span > u64::from(MAX_SYNTH_SPAN_BYTES) {
        return Err(ImportError::SpanTooLarge { span });
    }
    let nop = encode::encode(&Instruction::Nop, InstrFormat::Fixed32);
    let nop_parcels = nop.parcels();
    let count = (span as u32 / SYNTH_INSTR_BYTES) as usize;
    let mut parcels = Vec::with_capacity(count * nop_parcels.len());
    for _ in 0..count {
        parcels.extend_from_slice(nop_parcels);
    }
    Ok(Program::from_raw(
        parcels,
        min,
        first,
        InstrFormat::Fixed32,
        HashMap::new(),
        Vec::new(),
    ))
}

/// Converts an address sequence into a replay schedule: sequential flow
/// issues back to back; every discontinuity becomes a taken branch with
/// zero remaining delay slots, resolving one cycle after the preceding
/// instruction issues.
pub fn schedule_from_addresses(addrs: &[u32]) -> Vec<ReplayStep> {
    addrs
        .iter()
        .enumerate()
        .map(|(i, &addr)| {
            let mut step = ReplayStep::at(addr);
            if let Some(&next) = addrs.get(i + 1) {
                if next != addr.wrapping_add(SYNTH_INSTR_BYTES) {
                    step.resolve = Some(ReplayBranch {
                        taken: true,
                        remaining: 0,
                        target: next,
                    });
                }
            }
            step
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_hex_decimal_comments() {
        let text = "# a comment\n0x40\n68  # inline\n\n0X48\n";
        assert_eq!(parse_address_trace(text).unwrap(), vec![0x40, 68, 0x48]);
    }

    #[test]
    fn parse_rejects_garbage_with_line_number() {
        let err = parse_address_trace("0x40\nbogus\n").unwrap_err();
        assert_eq!(
            err,
            ImportError::BadLine {
                line: 2,
                text: "bogus".into()
            }
        );
    }

    #[test]
    fn parse_rejects_misaligned() {
        let err = parse_address_trace("0x42\n").unwrap_err();
        assert!(matches!(err, ImportError::Misaligned { line: 1, .. }));
    }

    #[test]
    fn synthesized_program_covers_range() {
        let p = synthesize_program(&[0x100, 0x104, 0x80, 0x180]).unwrap();
        assert_eq!(p.base(), 0x80);
        assert_eq!(p.entry(), 0x100);
        assert!(p.parcel_at(0x180).is_some());
        assert!(p.parcel_at(0x182).is_some());
    }

    #[test]
    fn huge_span_rejected() {
        let err = synthesize_program(&[0, 0x7FFF_FFFC]).unwrap_err();
        assert!(matches!(err, ImportError::SpanTooLarge { .. }));
    }

    #[test]
    fn discontinuities_become_taken_branches() {
        let steps = schedule_from_addresses(&[0x40, 0x44, 0x100, 0x104]);
        assert!(steps[0].resolve.is_none());
        assert_eq!(
            steps[1].resolve,
            Some(ReplayBranch {
                taken: true,
                remaining: 0,
                target: 0x100
            })
        );
        assert!(steps[2].resolve.is_none());
    }
}
