//! LEB128 variable-length integers and zigzag signed mapping.
//!
//! Trace records are dominated by small deltas (sequential code advances
//! by one instruction; data streams advance by one stride), so varint +
//! zigzag encoding shrinks the common record to two or three bytes.

/// Appends `v` to `buf` as an unsigned LEB128 varint (1–10 bytes).
pub fn write_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint from `buf` at `*pos`, advancing it.
/// Returns `None` on truncation or a value wider than 64 bits.
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return None;
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Maps a signed value onto an unsigned one with small magnitudes staying
/// small: 0, -1, 1, -2, ... → 0, 1, 2, 3, ...
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_unsigned() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn roundtrip_signed() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            1 << 20,
            -(1 << 20),
            i64::MAX,
            i64::MIN,
        ] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn small_deltas_are_one_byte() {
        for v in -63i64..=63 {
            let mut buf = Vec::new();
            write_u64(&mut buf, zigzag(v));
            assert_eq!(buf.len(), 1, "delta {v}");
        }
    }

    #[test]
    fn truncated_input_is_none() {
        let buf = [0x80u8, 0x80];
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), None);
    }

    #[test]
    fn overlong_input_is_none() {
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), None);
    }
}
