//! Recording a live simulation into a trace file.

use std::io::{self, Write};

use pipe_core::{DataOp, StallReason, TraceEvent, TraceSink};
use pipe_icache::{ReplayBranch, ReplayOp, ReplayStep};

use crate::format::{TraceMeta, TraceSummary};
use crate::writer::TraceWriter;

/// A [`TraceSink`] that converts the processor's event stream into trace
/// steps and writes them through a [`TraceWriter`] as the run proceeds.
///
/// Attach with `Processor::with_trace` (via an `Rc<RefCell<..>>` clone to
/// keep a handle), run the simulation, then call
/// [`finish`](TraceRecorder::finish) with the run's final cycle count.
/// Write errors are latched and reported by `finish` — the sink API has
/// no error channel.
#[derive(Debug)]
pub struct TraceRecorder<W: Write> {
    writer: Option<TraceWriter<W>>,
    pending: Option<ReplayStep>,
    next_waits: u32,
    ifetch_stalls: u64,
    halted: bool,
    error: Option<io::Error>,
}

impl TraceRecorder<std::io::BufWriter<std::fs::File>> {
    /// Creates a recorder writing to a buffered file at `path`.
    ///
    /// # Errors
    ///
    /// Any failure creating the file or writing the header.
    pub fn create(
        path: &std::path::Path,
        meta: &TraceMeta,
    ) -> io::Result<TraceRecorder<std::io::BufWriter<std::fs::File>>> {
        Ok(TraceRecorder::from_writer(TraceWriter::create(path, meta)?))
    }
}

impl<W: Write> TraceRecorder<W> {
    /// Creates a recorder writing the trace header for `meta` to `out`.
    ///
    /// # Errors
    ///
    /// Any write failure while emitting the header.
    pub fn new(out: W, meta: &TraceMeta) -> io::Result<TraceRecorder<W>> {
        Ok(TraceRecorder::from_writer(TraceWriter::new(out, meta)?))
    }

    fn from_writer(writer: TraceWriter<W>) -> TraceRecorder<W> {
        TraceRecorder {
            writer: Some(writer),
            pending: None,
            next_waits: 0,
            ifetch_stalls: 0,
            halted: false,
            error: None,
        }
    }

    /// `true` once a `Halted` event has been observed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    fn write(&mut self, step: &ReplayStep) {
        if self.error.is_some() {
            return;
        }
        if let Some(w) = &mut self.writer {
            if let Err(e) = w.write_step(step) {
                self.error = Some(e);
            }
        }
    }

    fn flush_pending(&mut self) {
        if let Some(step) = self.pending.take() {
            self.write(&step);
        }
    }

    /// Writes the final block and end summary. `total_cycles` is the
    /// completed run's cycle count (`SimStats::cycles`), which includes
    /// the post-halt drain the sink cannot observe.
    ///
    /// # Errors
    ///
    /// The first latched write error, or any failure while finishing.
    pub fn finish(&mut self, total_cycles: u64) -> io::Result<(W, TraceSummary)> {
        self.flush_pending();
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let writer = self
            .writer
            .take()
            .ok_or_else(|| io::Error::other("trace recorder already finished"))?;
        writer.finish(total_cycles, self.ifetch_stalls)
    }
}

impl<W: Write> TraceSink for TraceRecorder<W> {
    fn event(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::Stall { reason, .. } => {
                if *reason == StallReason::IFetch {
                    self.ifetch_stalls += 1;
                } else {
                    self.next_waits += 1;
                }
            }
            TraceEvent::Issue { addr, .. } => {
                self.flush_pending();
                self.pending = Some(ReplayStep {
                    addr: *addr,
                    waits: std::mem::take(&mut self.next_waits),
                    ops: Vec::new(),
                    resolve: None,
                });
            }
            TraceEvent::DataIssue { op, .. } => {
                if let Some(step) = &mut self.pending {
                    step.ops.push(match *op {
                        DataOp::Load { addr } => ReplayOp::Load { addr },
                        DataOp::StoreAddr { addr } => ReplayOp::StoreAddr { addr },
                        DataOp::StoreData { value } => ReplayOp::StoreData { value },
                    });
                }
            }
            TraceEvent::BranchResolved {
                taken,
                target,
                remaining,
                ..
            } => {
                // Resolution always lands one cycle after the PBR issued,
                // before the next issue — so `pending` is the PBR step.
                if let Some(step) = &mut self.pending {
                    step.resolve = Some(ReplayBranch {
                        taken: *taken,
                        remaining: *remaining,
                        target: *target,
                    });
                }
            }
            TraceEvent::Halted { .. } => self.halted = true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::program_fnv;
    use crate::reader::TraceReader;
    use pipe_core::{FetchStrategy, Processor, SimConfig};
    use pipe_isa::{Assembler, InstrFormat};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn recorder_captures_a_run() {
        let program = Assembler::new(InstrFormat::Fixed32)
            .assemble(
                "lim r1, 0x100\nlim r2, 42\nsta r1, 0\nor r7, r2, r2\nldw r1, 0\n\
                 or r3, r7, r7\nhalt\n",
            )
            .expect("assembles");
        let meta = TraceMeta {
            workload: "test".into(),
            program_fnv: program_fnv(&program),
            entry_pc: program.entry(),
            fetch_key: "perfect".into(),
            mem_key: "default".into(),
        };
        let recorder = Rc::new(RefCell::new(
            TraceRecorder::new(Vec::new(), &meta).expect("creates"),
        ));
        let config = SimConfig {
            fetch: FetchStrategy::Perfect,
            ..SimConfig::default()
        };
        let proc = Processor::new(&program, &config).expect("builds");
        let mut proc = proc.with_trace(Rc::clone(&recorder));
        proc.run().expect("runs");
        let stats = proc.stats();
        let (bytes, summary) = recorder
            .borrow_mut()
            .finish(stats.cycles)
            .expect("finishes");

        assert_eq!(summary.instructions, stats.instructions_issued);
        assert_eq!(summary.cycles, stats.cycles);
        assert_eq!(summary.ifetch_stalls, stats.stalls.ifetch);

        let steps: Vec<_> = TraceReader::new(&bytes[..])
            .expect("parses")
            .collect::<Result<_, _>>()
            .expect("decodes");
        assert_eq!(steps.len() as u64, stats.instructions_issued);
        // The sta/or pair recorded a store address and a store value; the
        // ldw recorded a load.
        let ops: Vec<_> = steps.iter().flat_map(|s| s.ops.iter()).collect();
        assert!(ops
            .iter()
            .any(|o| matches!(o, ReplayOp::StoreAddr { addr: 0x100 })));
        assert!(ops
            .iter()
            .any(|o| matches!(o, ReplayOp::StoreData { value: 42 })));
        assert!(ops
            .iter()
            .any(|o| matches!(o, ReplayOp::Load { addr: 0x100 })));
        // The r7-reading `or` waited on the load.
        assert!(steps.iter().any(|s| s.waits > 0));
    }
}
