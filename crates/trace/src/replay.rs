//! High-level replay entry points: feed a trace (binary or address-only)
//! through any fetch-engine configuration.

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

use pipe_icache::{ConfigError, FetchConfig, ReplayHarness, ReplayStats};
use pipe_isa::Program;
use pipe_mem::{MemConfig, MemorySystem};

use crate::format::{program_fnv, Fnv64, TraceError, TraceMeta, TraceSummary};
use crate::reader::TraceReader;

/// An error while replaying a trace.
#[derive(Debug)]
pub enum ReplayTraceError {
    /// The trace file could not be read or decoded.
    Trace(TraceError),
    /// The replay itself stopped making progress.
    Replay(pipe_icache::ReplayError),
    /// The fetch-engine configuration failed validation.
    Config(ConfigError),
    /// The supplied program does not match the trace header's program
    /// fingerprint — the trace was recorded from a different binary.
    ProgramMismatch {
        /// Fingerprint in the trace header.
        expected: u64,
        /// Fingerprint of the supplied program.
        got: u64,
    },
}

impl fmt::Display for ReplayTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayTraceError::Trace(e) => write!(f, "{e}"),
            ReplayTraceError::Replay(e) => write!(f, "{e}"),
            ReplayTraceError::Config(e) => write!(f, "invalid replay configuration: {e}"),
            ReplayTraceError::ProgramMismatch { expected, got } => write!(
                f,
                "program does not match trace (trace was recorded from program \
                 {expected:#018x}, supplied program is {got:#018x})"
            ),
        }
    }
}

impl Error for ReplayTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReplayTraceError::Trace(e) => Some(e),
            ReplayTraceError::Replay(e) => Some(e),
            ReplayTraceError::Config(e) => Some(e),
            ReplayTraceError::ProgramMismatch { .. } => None,
        }
    }
}

impl From<TraceError> for ReplayTraceError {
    fn from(e: TraceError) -> ReplayTraceError {
        ReplayTraceError::Trace(e)
    }
}

impl From<pipe_icache::ReplayError> for ReplayTraceError {
    fn from(e: pipe_icache::ReplayError) -> ReplayTraceError {
        ReplayTraceError::Replay(e)
    }
}

impl From<ConfigError> for ReplayTraceError {
    fn from(e: ConfigError) -> ReplayTraceError {
        ReplayTraceError::Config(e)
    }
}

/// The result of replaying a trace.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Fetch-side statistics of the replay.
    pub stats: ReplayStats,
    /// The totals recorded at capture time, for determinism checks.
    pub recorded: Option<TraceSummary>,
    /// The trace's metadata.
    pub meta: TraceMeta,
}

impl ReplayOutcome {
    /// `true` when the replay reproduced the recorded run exactly:
    /// same instruction count, total cycles, and fetch-stall cycles.
    /// Only meaningful when the replay used the recorded configuration.
    pub fn matches_recording(&self) -> bool {
        match &self.recorded {
            Some(r) => {
                r.instructions == self.stats.instructions
                    && r.cycles == self.stats.cycles
                    && r.ifetch_stalls == self.stats.ifetch_stalls
            }
            None => false,
        }
    }
}

/// Replays every step of `reader` through a fetch engine built from
/// `fetch` over `program`, against a fresh memory system from `mem`.
///
/// Streams: only one trace block is in memory at a time.
///
/// # Errors
///
/// Trace decoding errors (including CRC failures), configuration errors,
/// a program/trace fingerprint mismatch, and stuck replays.
pub fn replay_trace<R: Read>(
    mut reader: TraceReader<R>,
    program: &Program,
    fetch: &FetchConfig,
    mem: &MemConfig,
) -> Result<ReplayOutcome, ReplayTraceError> {
    let got = program_fnv(program);
    if reader.meta().program_fnv != got {
        return Err(ReplayTraceError::ProgramMismatch {
            expected: reader.meta().program_fnv,
            got,
        });
    }
    let engine = fetch.build(program)?;
    let mut harness = ReplayHarness::new(engine, MemorySystem::new(*mem));
    while let Some(step) = reader.next_step() {
        harness.step_instruction(&step?)?;
    }
    harness.drain()?;
    Ok(ReplayOutcome {
        stats: harness.stats(),
        recorded: reader.summary().copied(),
        meta: reader.meta().clone(),
    })
}

/// FNV-1a 64 hash of a file's raw bytes, streamed in 64 KiB chunks.
/// Used to content-address trace-driven sweep results.
///
/// # Errors
///
/// Any read failure.
pub fn file_fnv(path: &Path) -> io::Result<u64> {
    let mut f = File::open(path)?;
    let mut h = Fnv64::new();
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let n = f.read(&mut buf)?;
        if n == 0 {
            return Ok(h.finish());
        }
        h.update(&buf[..n]);
    }
}
