//! Property tests: randomly generated programs survive the
//! assemble → disassemble → reassemble round trip byte-identically, and
//! malformed sources produce typed errors pointing at the right line.

use pipe_asm::{disassemble, AsmErrorKind, Assembler};
use pipe_isa::{write_program, InstrFormat};

/// A small deterministic PRNG (64-bit LCG, high bits).
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

const ALU_OPS: &[&str] = &["add", "sub", "and", "or", "xor", "sll", "srl", "sra"];
const CONDS: &[&str] = &["", ".eqz", ".nez", ".gtz", ".ltz", ".never"];

/// Emits one random instruction line; `labels` are all label names that
/// will exist in the finished program (forward references included).
fn random_instr(rng: &mut Lcg, labels: &[String]) -> String {
    let r = |rng: &mut Lcg| format!("r{}", rng.below(8));
    let b = |rng: &mut Lcg| format!("b{}", rng.below(8));
    match rng.below(12) {
        0 => format!(
            "    {} {}, {}, {}",
            ALU_OPS[rng.below(8) as usize],
            r(rng),
            r(rng),
            r(rng)
        ),
        1 => format!(
            "    {}i {}, {}, {}",
            ALU_OPS[rng.below(8) as usize],
            r(rng),
            r(rng),
            rng.below(0x10000) as i64 - 0x8000
        ),
        2 => format!("    lim {}, {}", r(rng), rng.below(0x10000) as i64 - 0x8000),
        3 => format!("    lui {}, {:#x}", r(rng), rng.below(0x10000)),
        4 => format!("    ldw {}, {}", r(rng), rng.below(0x1000) as i64 - 0x800),
        5 => format!("    sta {}, {}", r(rng), rng.below(0x1000) as i64 - 0x800),
        6 if !labels.is_empty() => {
            let target = &labels[rng.below(labels.len() as u64) as usize];
            format!("    lbr {}, {}", b(rng), target)
        }
        6 => format!("    lbr {}, {:#x}", b(rng), rng.below(0x8000) * 2),
        7 => format!("    lbrr {}, {}", b(rng), r(rng)),
        8 => format!(
            "    pbr{} {}, {}, {}",
            CONDS[rng.below(6) as usize],
            b(rng),
            r(rng),
            rng.below(8)
        ),
        9 => format!("    li32 {}, {:#x}", r(rng), rng.next() as u32),
        10 => ["    nop", "    halt", "    xchg"][rng.below(3) as usize].to_string(),
        _ => ["    mov r1, r2", "    push r3", "    pop r4"][rng.below(3) as usize].to_string(),
    }
}

/// Builds a random but valid program: labelled code, optional alignment,
/// and a `.word` data tail that may reference labels.
fn random_program(rng: &mut Lcg) -> String {
    let n_instr = 5 + rng.below(36) as usize;
    let n_labels = 1 + rng.below(4) as usize;
    let labels: Vec<String> = (0..n_labels).map(|i| format!("l{i}")).collect();
    let mut label_at: Vec<usize> = (0..n_labels)
        .map(|_| rng.below(n_instr as u64 + 1) as usize)
        .collect();
    label_at.sort_unstable();

    let mut src = String::new();
    if rng.chance(30) {
        src.push_str(&format!(".org {:#x}\n", rng.below(64) * 4));
    }
    let mut next_label = 0;
    for i in 0..n_instr {
        while next_label < n_labels && label_at[next_label] == i {
            src.push_str(&labels[next_label]);
            src.push_str(":\n");
            next_label += 1;
        }
        src.push_str(&random_instr(rng, &labels));
        src.push('\n');
        if rng.chance(5) {
            src.push_str(&format!(".align {}\n", 1 << (2 + rng.below(3))));
        }
    }
    while next_label < n_labels {
        src.push_str(&labels[next_label]);
        src.push_str(":\n");
        next_label += 1;
    }
    let n_words = rng.below(6);
    if n_words > 0 {
        // Mixed-format code can end on a half-word boundary.
        src.push_str(".align 4\n");
    }
    for _ in 0..n_words {
        if rng.chance(25) && !labels.is_empty() {
            let target = &labels[rng.below(labels.len() as u64) as usize];
            src.push_str(&format!(".word {target}\n"));
        } else {
            src.push_str(&format!(".word {:#x}\n", rng.next() as u32));
        }
    }
    src
}

#[test]
fn random_programs_round_trip_byte_identically() {
    for seed in 0..200u64 {
        let mut rng = Lcg::new(seed);
        let src = random_program(&mut rng);
        for format in [InstrFormat::Fixed32, InstrFormat::Mixed] {
            let first = Assembler::new(format)
                .assemble(&src)
                .unwrap_or_else(|e| panic!("seed {seed} ({format:?}): {e}\n{src}"));
            let text = disassemble(&first);
            let second = Assembler::new(format).assemble(&text).unwrap_or_else(|e| {
                panic!("seed {seed} ({format:?}) reassembly: {e}\n--- disasm ---\n{text}")
            });
            assert_eq!(
                write_program(&first),
                write_program(&second),
                "seed {seed} ({format:?}) drifted\n--- source ---\n{src}\n--- disasm ---\n{text}"
            );
        }
    }
}

#[test]
fn random_programs_match_between_assembler_and_seed_grammar_subset() {
    // Programs without the new directives must assemble identically to
    // the seed assembler in pipe-isa.
    for seed in 0..50u64 {
        let mut rng = Lcg::new(seed.wrapping_add(777));
        let n = 4 + rng.below(20) as usize;
        let labels: Vec<String> = vec!["top".into()];
        let mut src = String::from("top:\n");
        for _ in 0..n {
            src.push_str(&random_instr(&mut rng, &labels));
            src.push('\n');
        }
        for format in [InstrFormat::Fixed32, InstrFormat::Mixed] {
            let new = Assembler::new(format).assemble(&src).unwrap();
            let seed_prog = pipe_isa::Assembler::new(format).assemble(&src).unwrap();
            assert_eq!(new.parcels(), seed_prog.parcels(), "{src}");
            assert_eq!(new.symbols(), seed_prog.symbols());
        }
    }
}

#[test]
fn corrupted_line_is_reported_at_the_right_position() {
    let base = "start: lim r1, 3\nloop: subi r1, r1, 1\nlbr b0, loop\npbr.nez b0, r1, 0\nhalt\n";
    let bad_lines = [
        (
            "frobnicate r1, r2",
            AsmErrorKind::UnknownMnemonic("frobnicate".into()),
        ),
        (".sect text", AsmErrorKind::UnknownDirective(".sect".into())),
        (
            "add r1, r2",
            AsmErrorKind::BadOperands("`add` expects 3 operands, got 2".into()),
        ),
        ("lim r12, 4", AsmErrorKind::BadRegister("r12".into())),
        ("lim r1, 99999", AsmErrorKind::BadImmediate("99999".into())),
        (
            "lbr b0, nowhere",
            AsmErrorKind::UndefinedLabel("nowhere".into()),
        ),
        ("start: nop", AsmErrorKind::DuplicateLabel("start".into())),
    ];
    let lines: Vec<&str> = base.lines().collect();
    for (bad, want_kind) in &bad_lines {
        // Insertion starts at 1 so the duplicate-label case always comes
        // after the original definition (the second site is reported).
        for at in 1..=lines.len() {
            let mut patched: Vec<&str> = lines.clone();
            patched.insert(at, bad);
            let src = patched.join("\n");
            let err = Assembler::new(InstrFormat::Fixed32)
                .assemble(&src)
                .expect_err("patched source must fail");
            assert_eq!(err.line(), at + 1, "{bad} inserted at {at}");
            assert_eq!(err.kind(), want_kind, "{bad}");
        }
    }
}

#[test]
fn layout_errors_carry_positions() {
    let err = Assembler::new(InstrFormat::Fixed32)
        .assemble("nop\nnop\n.org 0x4\n")
        .expect_err("backward org");
    assert_eq!(err.line(), 3);
    assert!(matches!(
        err.kind(),
        AsmErrorKind::OrgBackwards { at: 8, to: 4 }
    ));

    let err = Assembler::new(InstrFormat::Fixed32)
        .assemble("halt\n.word 1\n  nop\n")
        .expect_err("code after data");
    assert_eq!((err.line(), err.col()), (3, 3));
    assert!(matches!(err.kind(), AsmErrorKind::CodeAfterData));
}
