//! # pipe-asm
//!
//! The assembler front end for the PIPE simulator.
//!
//! The seed assembler in [`pipe_isa::asm`] is a minimal line parser kept
//! for the ISA crate's own tests and doctests. This crate is the
//! full-featured front end used by the command-line tools, the workload
//! registry, and the experiment harness:
//!
//! * a two-pass [`Assembler`] with forward label references, layout
//!   directives (`.org`, `.word`, `.align`, plus the seed-compatible
//!   `.data` and `.equ`), and label-valued `li32`/`.word` operands;
//! * typed [`AsmError`] diagnostics carrying the 1-based source line
//!   *and column* of the offending token;
//! * a round-trippable [`disassemble`] that emits reassemblable source
//!   (the seed's [`pipe_isa::disassemble`] is a human-facing listing);
//! * the bundled [`library`] of real programs from `programs/`
//!   (matrix multiply, sort, memcpy) that exercise the data side of the
//!   shared memory port.
//!
//! ```
//! use pipe_asm::{Assembler, disassemble};
//! use pipe_isa::InstrFormat;
//!
//! let program = Assembler::new(InstrFormat::Fixed32)
//!     .assemble("start: lim r1, 3\nloop: subi r1, r1, 1\nlbr b0, loop\npbr.nez b0, r1, 0\nhalt\n")
//!     .unwrap();
//! let source = disassemble(&program);
//! let again = Assembler::new(InstrFormat::Fixed32).assemble(&source).unwrap();
//! assert_eq!(program.parcels(), again.parcels());
//! ```

pub mod assemble;
pub mod disasm;
pub mod error;
pub mod library;

pub use assemble::Assembler;
pub use disasm::disassemble;
pub use error::{AsmError, AsmErrorKind};
pub use library::{find as find_program, LibraryProgram, LIBRARY};
