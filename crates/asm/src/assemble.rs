//! The two-pass assembler.
//!
//! Pass 1 parses the source line by line, tracking a single location
//! counter, defining labels, and collecting instructions (possibly with
//! unresolved label references) plus section data. Pass 2 resolves every
//! label, encodes the parcel image, and builds the final
//! [`pipe_isa::Program`].
//!
//! The grammar is a superset of the seed assembler in
//! [`pipe_isa::asm`]: every mnemonic, pseudo-instruction, and directive
//! accepted there is accepted here with identical meaning, plus:
//!
//! * `.org addr` — place subsequent code/data at `addr` (forward only;
//!   gaps inside the code section are filled with `nop`s),
//! * `.word value[, value...]` — emit initial data words at the location
//!   counter; values may be labels,
//! * `li32 rd, label` — load a label's 32-bit byte address,
//! * column-precise [`AsmError`] diagnostics.
//!
//! The image is laid out as one contiguous code section followed by data:
//! the first `.word` closes the code section, and instructions after it
//! are an error ([`AsmErrorKind::CodeAfterData`]).

use std::collections::HashMap;

use pipe_isa::encode::encode;
use pipe_isa::instruction::{AluOp, Cond, Instruction};
use pipe_isa::program::Program;
use pipe_isa::reg::{BranchReg, Reg};
use pipe_isa::InstrFormat;

use crate::error::{AsmError, AsmErrorKind};

/// Assembles PIPE assembly text into a [`Program`].
///
/// ```
/// use pipe_asm::Assembler;
/// use pipe_isa::InstrFormat;
///
/// let p = Assembler::new(InstrFormat::Fixed32)
///     .assemble(".org 0x40\nstart: lim r1, 3\nhalt\n.word 7, 9\n")
///     .unwrap();
/// assert_eq!(p.base(), 0x40);
/// assert_eq!(p.symbols()["start"], 0x40);
/// assert_eq!(p.data(), &[(0x48, 7), (0x4c, 9)]);
/// ```
#[derive(Debug, Clone)]
pub struct Assembler {
    format: InstrFormat,
    base: u32,
}

impl Assembler {
    /// Creates an assembler targeting `format`, with code based at 0.
    pub fn new(format: InstrFormat) -> Assembler {
        Assembler { format, base: 0 }
    }

    /// Sets the default code base address (parcel-aligned), used when the
    /// source has no leading `.org`.
    pub fn base(mut self, base: u32) -> Assembler {
        self.base = base;
        self
    }

    /// Assembles `source` into a program.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] identifying the offending source line and
    /// column.
    pub fn assemble(&self, source: &str) -> Result<Program, AsmError> {
        let mut pass = Pass1::new(self.format, self.base);
        for (idx, raw) in source.lines().enumerate() {
            pass.parse_line(strip_comment(raw), idx + 1)?;
        }
        pass.finish()
    }
}

/// An instruction collected in pass 1, possibly awaiting label resolution.
#[derive(Debug, Clone)]
enum PendingInstr {
    Ready(Instruction),
    LbrLabel {
        br: BranchReg,
        label: String,
        line: usize,
        col: usize,
    },
    /// Low half of `li32 rd, label` (`lim`).
    LabelLo {
        rd: Reg,
        label: String,
        line: usize,
        col: usize,
    },
    /// High half of `li32 rd, label` (`lui`).
    LabelHi {
        rd: Reg,
        label: String,
        line: usize,
        col: usize,
    },
}

impl PendingInstr {
    fn size_bytes(&self, format: InstrFormat) -> u32 {
        match self {
            // `lbr`, `lim`, and `lui` all carry immediates: two parcels
            // in both formats.
            PendingInstr::LbrLabel { .. }
            | PendingInstr::LabelLo { .. }
            | PendingInstr::LabelHi { .. } => 2 * pipe_isa::PARCEL_BYTES,
            PendingInstr::Ready(i) => i.size_bytes(format),
        }
    }
}

/// A data item collected in pass 1.
#[derive(Debug, Clone)]
enum DataItem {
    /// A `.word` at the location counter; the value may be a label.
    Word { addr: u32, value: WordExpr },
    /// A verbatim `.data addr, value` pair (kept in source order).
    Pair { addr: u32, value: u32 },
}

#[derive(Debug, Clone)]
enum WordExpr {
    Value(u32),
    Label {
        name: String,
        line: usize,
        col: usize,
    },
}

/// A single operand with its source column.
#[derive(Debug, Clone, Copy)]
struct Operand<'a> {
    text: &'a str,
    col: usize,
}

struct Pass1 {
    format: InstrFormat,
    base: u32,
    lc: u32,
    /// Whether any code or `.word` has pinned the layout (a leading
    /// `.org` may still move the base before this).
    placed: bool,
    code: Vec<PendingInstr>,
    /// `Some(end)` once the first `.word` closed the code section.
    code_end: Option<u32>,
    data: Vec<DataItem>,
    symbols: HashMap<String, u32>,
    equs: HashMap<String, i64>,
}

impl Pass1 {
    fn new(format: InstrFormat, base: u32) -> Pass1 {
        Pass1 {
            format,
            base,
            lc: base,
            placed: false,
            code: Vec::new(),
            code_end: None,
            data: Vec::new(),
            symbols: HashMap::new(),
            equs: HashMap::new(),
        }
    }

    fn nop_bytes(&self) -> u32 {
        Instruction::Nop.size_bytes(self.format)
    }

    fn define_label(&mut self, name: &str, no: usize, col: usize) -> Result<(), AsmError> {
        if self.symbols.contains_key(name) {
            return Err(AsmError::new(
                no,
                col,
                AsmErrorKind::DuplicateLabel(name.to_string()),
            ));
        }
        self.symbols.insert(name.to_string(), self.lc);
        Ok(())
    }

    fn emit(&mut self, instr: PendingInstr, no: usize, col: usize) -> Result<(), AsmError> {
        if self.code_end.is_some() {
            return Err(AsmError::new(no, col, AsmErrorKind::CodeAfterData));
        }
        self.placed = true;
        self.lc += instr.size_bytes(self.format);
        self.code.push(instr);
        Ok(())
    }

    fn push(&mut self, instr: Instruction, no: usize, col: usize) -> Result<(), AsmError> {
        self.emit(PendingInstr::Ready(instr), no, col)
    }

    /// Advances the location counter to `to` inside the code section by
    /// emitting `nop` padding.
    fn pad_code_to(
        &mut self,
        to: u32,
        no: usize,
        col: usize,
        align_err: bool,
    ) -> Result<(), AsmError> {
        let gap = to - self.lc;
        let nop = self.nop_bytes();
        if !gap.is_multiple_of(nop) {
            let kind = if align_err {
                AsmErrorKind::BadAlignment(gap)
            } else {
                AsmErrorKind::Misaligned {
                    addr: to,
                    need: nop,
                }
            };
            return Err(AsmError::new(no, col, kind));
        }
        for _ in 0..gap / nop {
            self.push(Instruction::Nop, no, col)?;
        }
        Ok(())
    }

    fn parse_line(&mut self, line: &str, no: usize) -> Result<(), AsmError> {
        let mut rest = line;
        let mut off = 0usize;
        // Leading labels (there may be several on one line).
        while let Some(colon) = rest.find(':') {
            let before = &rest[..colon];
            let label = before.trim();
            if label.is_empty() || !is_ident(label) {
                break;
            }
            let col = off + (before.len() - before.trim_start().len()) + 1;
            self.define_label(label, no, col)?;
            off += colon + 1;
            rest = &rest[colon + 1..];
        }
        let body = rest.trim_start();
        if body.is_empty() {
            return Ok(());
        }
        let lead = rest.len() - body.len();
        let mcol = off + lead + 1;
        let (mnemonic, ops_str, ops_off) = match body.find(char::is_whitespace) {
            Some(p) => (&body[..p], &body[p..], off + lead + p),
            None => (body, "", off + lead + body.len()),
        };
        let ops = split_operands(ops_str, ops_off);
        self.parse_instr(mnemonic, mcol, &ops, no)
    }

    fn parse_instr(
        &mut self,
        mnemonic: &str,
        mcol: usize,
        ops: &[Operand<'_>],
        no: usize,
    ) -> Result<(), AsmError> {
        let m = mnemonic.to_ascii_lowercase();

        // pbr and its condition suffixes.
        if let Some(suffix) = m.strip_prefix("pbr") {
            let cond = match suffix {
                "" => Cond::Always,
                ".eqz" => Cond::Eqz,
                ".nez" => Cond::Nez,
                ".gtz" => Cond::Gtz,
                ".ltz" => Cond::Ltz,
                ".never" => Cond::Never,
                _ => {
                    return Err(AsmError::new(
                        no,
                        mcol,
                        AsmErrorKind::UnknownMnemonic(mnemonic.to_string()),
                    ))
                }
            };
            want(ops, 3, mnemonic, no, mcol)?;
            let br = self.parse_breg(&ops[0], no)?;
            let rs = self.parse_reg(&ops[1], no)?;
            let delay = self.parse_int(&ops[2], no)?;
            if !(0..8).contains(&delay) {
                return Err(bad_imm(&ops[2], no));
            }
            return self.push(
                Instruction::Pbr {
                    cond,
                    br,
                    rs,
                    delay: delay as u8,
                },
                no,
                mcol,
            );
        }

        if m.starts_with('.') {
            return self.parse_directive(&m, mnemonic, mcol, ops, no);
        }

        // Pseudo-instructions.
        match m.as_str() {
            // `mov rd, rs` → `or rd, rs, rs`
            "mov" => {
                want(ops, 2, mnemonic, no, mcol)?;
                let rd = self.parse_reg(&ops[0], no)?;
                let rs = self.parse_reg(&ops[1], no)?;
                return self.push(
                    Instruction::Alu {
                        op: AluOp::Or,
                        rd,
                        rs1: rs,
                        rs2: rs,
                    },
                    no,
                    mcol,
                );
            }
            // `li32 rd, imm32|label` → `lim rd, low16` ; `lui rd, high16`
            "li32" => {
                want(ops, 2, mnemonic, no, mcol)?;
                let rd = self.parse_reg(&ops[0], no)?;
                let arg = &ops[1];
                if !self.equs.contains_key(arg.text)
                    && !arg
                        .text
                        .starts_with(|c: char| c.is_ascii_digit() || c == '-')
                    && is_ident(arg.text)
                {
                    let label = arg.text.to_string();
                    self.emit(
                        PendingInstr::LabelLo {
                            rd,
                            label: label.clone(),
                            line: no,
                            col: arg.col,
                        },
                        no,
                        mcol,
                    )?;
                    return self.emit(
                        PendingInstr::LabelHi {
                            rd,
                            label,
                            line: no,
                            col: arg.col,
                        },
                        no,
                        mcol,
                    );
                }
                let v = self.parse_int(arg, no)?;
                if !(i64::from(i32::MIN)..=i64::from(u32::MAX)).contains(&v) {
                    return Err(bad_imm(arg, no));
                }
                let v = v as u32;
                self.push(
                    Instruction::Lim {
                        rd,
                        imm: (v & 0xFFFF) as u16 as i16,
                    },
                    no,
                    mcol,
                )?;
                return self.push(
                    Instruction::Lui {
                        rd,
                        imm: (v >> 16) as u16,
                    },
                    no,
                    mcol,
                );
            }
            // `push rs` → `or r7, rs, rs` (SDQ push)
            "push" => {
                want(ops, 1, mnemonic, no, mcol)?;
                let rs = self.parse_reg(&ops[0], no)?;
                return self.push(
                    Instruction::Alu {
                        op: AluOp::Or,
                        rd: Reg::QUEUE,
                        rs1: rs,
                        rs2: rs,
                    },
                    no,
                    mcol,
                );
            }
            // `pop rd` → `or rd, r7, r7` (LDQ pop)
            "pop" => {
                want(ops, 1, mnemonic, no, mcol)?;
                let rd = self.parse_reg(&ops[0], no)?;
                return self.push(
                    Instruction::Alu {
                        op: AluOp::Or,
                        rd,
                        rs1: Reg::QUEUE,
                        rs2: Reg::QUEUE,
                    },
                    no,
                    mcol,
                );
            }
            _ => {}
        }

        // Immediate ALU forms (addi, subi, ... but not the register forms).
        if let Some(stem) = m.strip_suffix('i') {
            if let Some(op) = alu_op(stem) {
                want(ops, 3, mnemonic, no, mcol)?;
                let rd = self.parse_reg(&ops[0], no)?;
                let rs1 = self.parse_reg(&ops[1], no)?;
                let imm = self.parse_i16(&ops[2], no)?;
                return self.push(Instruction::AluImm { op, rd, rs1, imm }, no, mcol);
            }
        }

        if let Some(op) = alu_op(&m) {
            want(ops, 3, mnemonic, no, mcol)?;
            let rd = self.parse_reg(&ops[0], no)?;
            let rs1 = self.parse_reg(&ops[1], no)?;
            let rs2 = self.parse_reg(&ops[2], no)?;
            return self.push(Instruction::Alu { op, rd, rs1, rs2 }, no, mcol);
        }

        match m.as_str() {
            "nop" => {
                want(ops, 0, mnemonic, no, mcol)?;
                self.push(Instruction::Nop, no, mcol)
            }
            "halt" => {
                want(ops, 0, mnemonic, no, mcol)?;
                self.push(Instruction::Halt, no, mcol)
            }
            "xchg" => {
                want(ops, 0, mnemonic, no, mcol)?;
                self.push(Instruction::Xchg, no, mcol)
            }
            "lim" => {
                want(ops, 2, mnemonic, no, mcol)?;
                let rd = self.parse_reg(&ops[0], no)?;
                let imm = self.parse_i16(&ops[1], no)?;
                self.push(Instruction::Lim { rd, imm }, no, mcol)
            }
            "lui" => {
                want(ops, 2, mnemonic, no, mcol)?;
                let rd = self.parse_reg(&ops[0], no)?;
                let imm = self.parse_u16(&ops[1], no)?;
                self.push(Instruction::Lui { rd, imm }, no, mcol)
            }
            "ldw" => {
                want(ops, 2, mnemonic, no, mcol)?;
                let base = self.parse_reg(&ops[0], no)?;
                let disp = self.parse_i16(&ops[1], no)?;
                self.push(Instruction::Load { base, disp }, no, mcol)
            }
            "sta" => {
                want(ops, 2, mnemonic, no, mcol)?;
                let base = self.parse_reg(&ops[0], no)?;
                let disp = self.parse_i16(&ops[1], no)?;
                self.push(Instruction::StoreAddr { base, disp }, no, mcol)
            }
            "lbr" => {
                want(ops, 2, mnemonic, no, mcol)?;
                let br = self.parse_breg(&ops[0], no)?;
                let target = &ops[1];
                // Numeric operand = absolute byte address; otherwise a label.
                if target
                    .text
                    .starts_with(|c: char| c.is_ascii_digit() || c == '-')
                {
                    let addr = self.parse_int(target, no)? as u32;
                    self.push(
                        Instruction::Lbr {
                            br,
                            target_parcel: (addr / 2) as u16,
                        },
                        no,
                        mcol,
                    )
                } else if is_ident(target.text) {
                    self.emit(
                        PendingInstr::LbrLabel {
                            br,
                            label: target.text.to_string(),
                            line: no,
                            col: target.col,
                        },
                        no,
                        mcol,
                    )
                } else {
                    Err(bad_imm(target, no))
                }
            }
            "lbrr" => {
                want(ops, 2, mnemonic, no, mcol)?;
                let br = self.parse_breg(&ops[0], no)?;
                let rs1 = self.parse_reg(&ops[1], no)?;
                self.push(Instruction::LbrReg { br, rs1 }, no, mcol)
            }
            _ => Err(AsmError::new(
                no,
                mcol,
                AsmErrorKind::UnknownMnemonic(mnemonic.to_string()),
            )),
        }
    }

    fn parse_directive(
        &mut self,
        m: &str,
        mnemonic: &str,
        mcol: usize,
        ops: &[Operand<'_>],
        no: usize,
    ) -> Result<(), AsmError> {
        match m {
            // `.org addr` — place subsequent code/data at `addr`.
            ".org" => {
                want(ops, 1, mnemonic, no, mcol)?;
                let to = self.parse_int(&ops[0], no)?;
                let to = u32::try_from(to).map_err(|_| bad_imm(&ops[0], no))?;
                if to % pipe_isa::PARCEL_BYTES != 0 {
                    return Err(AsmError::new(
                        no,
                        ops[0].col,
                        AsmErrorKind::Misaligned {
                            addr: to,
                            need: pipe_isa::PARCEL_BYTES,
                        },
                    ));
                }
                if !self.placed {
                    self.base = to;
                    self.lc = to;
                } else {
                    if to < self.lc {
                        return Err(AsmError::new(
                            no,
                            ops[0].col,
                            AsmErrorKind::OrgBackwards { at: self.lc, to },
                        ));
                    }
                    if self.code_end.is_none() {
                        self.pad_code_to(to, no, ops[0].col, false)?;
                    } else {
                        self.lc = to;
                    }
                }
                Ok(())
            }
            // `.word value[, value...]` — initial data words at the
            // location counter; closes the code section.
            ".word" => {
                if ops.is_empty() {
                    return Err(AsmError::new(
                        no,
                        mcol,
                        AsmErrorKind::BadOperands("expected at least 1 operand, got 0".into()),
                    ));
                }
                if self.code_end.is_none() {
                    self.code_end = Some(self.lc);
                    self.placed = true;
                }
                for op in ops {
                    if !self.lc.is_multiple_of(4) {
                        return Err(AsmError::new(
                            no,
                            op.col,
                            AsmErrorKind::Misaligned {
                                addr: self.lc,
                                need: 4,
                            },
                        ));
                    }
                    let value = if !self.equs.contains_key(op.text)
                        && !op
                            .text
                            .starts_with(|c: char| c.is_ascii_digit() || c == '-')
                        && is_ident(op.text)
                    {
                        WordExpr::Label {
                            name: op.text.to_string(),
                            line: no,
                            col: op.col,
                        }
                    } else {
                        let v = self.parse_int(op, no)?;
                        if !(i64::from(i32::MIN)..=i64::from(u32::MAX)).contains(&v) {
                            return Err(bad_imm(op, no));
                        }
                        WordExpr::Value(v as u32)
                    };
                    self.data.push(DataItem::Word {
                        addr: self.lc,
                        value,
                    });
                    self.lc += 4;
                }
                Ok(())
            }
            // `.data addr, value` — a verbatim initial data word,
            // independent of the location counter (seed-compatible).
            ".data" => {
                want(ops, 2, mnemonic, no, mcol)?;
                let addr = self.parse_int(&ops[0], no)? as u32;
                let value = self.parse_int(&ops[1], no)? as u32;
                self.data.push(DataItem::Pair { addr, value });
                Ok(())
            }
            // `.equ NAME, value` — a named constant usable as any immediate.
            ".equ" => {
                want(ops, 2, mnemonic, no, mcol)?;
                if !is_ident(ops[0].text) {
                    return Err(AsmError::new(
                        no,
                        ops[0].col,
                        AsmErrorKind::BadOperands(format!(
                            "`{}` is not a valid constant name",
                            ops[0].text
                        )),
                    ));
                }
                let value = self.parse_int(&ops[1], no)?;
                self.equs.insert(ops[0].text.to_string(), value);
                Ok(())
            }
            // `.align bytes` — pad to a power-of-two boundary.
            ".align" => {
                want(ops, 1, mnemonic, no, mcol)?;
                let align = self.parse_int(&ops[0], no)?;
                let align = u32::try_from(align).map_err(|_| bad_imm(&ops[0], no))?;
                if align == 0 || !align.is_power_of_two() {
                    return Err(AsmError::new(
                        no,
                        ops[0].col,
                        AsmErrorKind::BadAlignment(align),
                    ));
                }
                let to = self.lc.next_multiple_of(align);
                if self.code_end.is_none() {
                    self.pad_code_to(to, no, ops[0].col, true)?;
                } else {
                    self.lc = to;
                }
                Ok(())
            }
            _ => Err(AsmError::new(
                no,
                mcol,
                AsmErrorKind::UnknownDirective(mnemonic.to_string()),
            )),
        }
    }

    fn parse_reg(&self, op: &Operand<'_>, no: usize) -> Result<Reg, AsmError> {
        op.text
            .strip_prefix(['r', 'R'])
            .and_then(|n| n.parse::<u8>().ok())
            .and_then(Reg::try_new)
            .ok_or_else(|| {
                AsmError::new(no, op.col, AsmErrorKind::BadRegister(op.text.to_string()))
            })
    }

    fn parse_breg(&self, op: &Operand<'_>, no: usize) -> Result<BranchReg, AsmError> {
        op.text
            .strip_prefix(['b', 'B'])
            .and_then(|n| n.parse::<u8>().ok())
            .and_then(BranchReg::try_new)
            .ok_or_else(|| {
                AsmError::new(no, op.col, AsmErrorKind::BadRegister(op.text.to_string()))
            })
    }

    fn parse_int(&self, op: &Operand<'_>, no: usize) -> Result<i64, AsmError> {
        if let Some(&v) = self.equs.get(op.text) {
            return Ok(v);
        }
        let (neg, body) = match op.text.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, op.text),
        };
        let value =
            if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
                i64::from_str_radix(hex, 16)
            } else {
                body.parse::<i64>()
            }
            .map_err(|_| bad_imm(op, no))?;
        Ok(if neg { -value } else { value })
    }

    fn parse_i16(&self, op: &Operand<'_>, no: usize) -> Result<i16, AsmError> {
        let v = self.parse_int(op, no)?;
        // Accept both signed and unsigned 16-bit spellings (e.g. 0xFFFF).
        if (-(1 << 15)..(1 << 16)).contains(&v) {
            Ok(v as u16 as i16)
        } else {
            Err(bad_imm(op, no))
        }
    }

    fn parse_u16(&self, op: &Operand<'_>, no: usize) -> Result<u16, AsmError> {
        let v = self.parse_int(op, no)?;
        u16::try_from(v).map_err(|_| bad_imm(op, no))
    }

    fn resolve(&self, label: &str, line: usize, col: usize) -> Result<u32, AsmError> {
        self.symbols.get(label).copied().ok_or_else(|| {
            AsmError::new(line, col, AsmErrorKind::UndefinedLabel(label.to_string()))
        })
    }

    fn finish(self) -> Result<Program, AsmError> {
        let mut parcels = Vec::new();
        for item in &self.code {
            let instr = match item {
                PendingInstr::Ready(i) => *i,
                PendingInstr::LbrLabel {
                    br,
                    label,
                    line,
                    col,
                } => {
                    let addr = self.resolve(label, *line, *col)?;
                    let target_parcel =
                        u16::try_from(addr / pipe_isa::PARCEL_BYTES).map_err(|_| {
                            AsmError::new(
                                *line,
                                *col,
                                AsmErrorKind::LabelOutOfRange {
                                    label: label.clone(),
                                    addr,
                                },
                            )
                        })?;
                    Instruction::Lbr {
                        br: *br,
                        target_parcel,
                    }
                }
                PendingInstr::LabelLo {
                    rd,
                    label,
                    line,
                    col,
                } => {
                    let addr = self.resolve(label, *line, *col)?;
                    Instruction::Lim {
                        rd: *rd,
                        imm: (addr & 0xFFFF) as u16 as i16,
                    }
                }
                PendingInstr::LabelHi {
                    rd,
                    label,
                    line,
                    col,
                } => {
                    let addr = self.resolve(label, *line, *col)?;
                    Instruction::Lui {
                        rd: *rd,
                        imm: (addr >> 16) as u16,
                    }
                }
            };
            parcels.extend_from_slice(encode(&instr, self.format).parcels());
        }
        let mut data = Vec::with_capacity(self.data.len());
        for item in &self.data {
            match item {
                DataItem::Word { addr, value } => {
                    let v = match value {
                        WordExpr::Value(v) => *v,
                        WordExpr::Label { name, line, col } => self.resolve(name, *line, *col)?,
                    };
                    data.push((*addr, v));
                }
                DataItem::Pair { addr, value } => data.push((*addr, *value)),
            }
        }
        Ok(Program::from_raw(
            parcels,
            self.base,
            self.base,
            self.format,
            self.symbols,
            data,
        ))
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn alu_op(stem: &str) -> Option<AluOp> {
    Some(match stem {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        _ => return None,
    })
}

fn bad_imm(op: &Operand<'_>, no: usize) -> AsmError {
    AsmError::new(no, op.col, AsmErrorKind::BadImmediate(op.text.to_string()))
}

fn want(
    ops: &[Operand<'_>],
    n: usize,
    mnemonic: &str,
    no: usize,
    mcol: usize,
) -> Result<(), AsmError> {
    if ops.len() == n {
        Ok(())
    } else {
        Err(AsmError::new(
            no,
            mcol,
            AsmErrorKind::BadOperands(format!(
                "`{mnemonic}` expects {n} operands, got {}",
                ops.len()
            )),
        ))
    }
}

fn split_operands(s: &str, base_off: usize) -> Vec<Operand<'_>> {
    if s.trim().is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut start = 0usize;
    loop {
        let end = s[start..].find(',').map(|p| start + p);
        let seg = &s[start..end.unwrap_or(s.len())];
        let lead = seg.len() - seg.trim_start().len();
        out.push(Operand {
            text: seg.trim(),
            col: base_off + start + lead + 1,
        });
        match end {
            Some(e) => start = e + 1,
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asm(src: &str) -> Program {
        Assembler::new(InstrFormat::Fixed32)
            .assemble(src)
            .unwrap_or_else(|e| panic!("assembly failed: {e}"))
    }

    fn asm_err(src: &str) -> AsmError {
        Assembler::new(InstrFormat::Fixed32)
            .assemble(src)
            .expect_err("source should not assemble")
    }

    #[test]
    fn accepts_the_seed_grammar() {
        let p = asm(r#"
            nop
            halt
            xchg
            add  r1, r2, r3
            addi r1, r2, -5
            lim  r1, -100
            lui  r1, 0xABCD
            ldw  r2, 16
            sta  r3, -16
            lbr  b0, 0x40
            lbrr b1, r4
            pbr.nez b2, r2, 2
            mov  r1, r2
            li32 r3, 0x12345678
            push r1
            pop  r4
        "#);
        assert_eq!(p.static_count(), 17, "li32 expands to two instructions");
    }

    #[test]
    fn org_sets_base_and_entry() {
        let p = asm(".org 0x100\nstart: halt\n");
        assert_eq!(p.base(), 0x100);
        assert_eq!(p.entry(), 0x100);
        assert_eq!(p.symbols()["start"], 0x100);
    }

    #[test]
    fn org_pads_code_with_nops() {
        let p = asm("nop\n.org 0x10\nhere: halt\n");
        assert_eq!(p.symbols()["here"], 0x10);
        assert_eq!(p.static_count(), 5, "three pad nops inserted");
    }

    #[test]
    fn org_backwards_is_rejected() {
        let e = asm_err("nop\nnop\n.org 0x4\nhalt\n");
        assert!(matches!(e.kind(), AsmErrorKind::OrgBackwards { .. }), "{e}");
        assert_eq!(e.line(), 3);
    }

    #[test]
    fn org_must_be_parcel_aligned() {
        let e = asm_err(".org 0x3\n");
        assert!(matches!(e.kind(), AsmErrorKind::Misaligned { need: 2, .. }));
    }

    #[test]
    fn word_emits_data_at_the_location_counter() {
        let p = asm("halt\n.word 7\nvals: .word 0x22, 9\n");
        assert_eq!(p.data(), &[(4, 7), (8, 0x22), (12, 9)]);
        assert_eq!(p.symbols()["vals"], 8);
        assert_eq!(p.end(), 4, "code section is just the halt");
    }

    #[test]
    fn word_accepts_label_values() {
        let p = asm("start: halt\n.word start\n");
        assert_eq!(p.data(), &[(4, 0)]);
    }

    #[test]
    fn word_requires_alignment() {
        // A Mixed-format single-parcel instruction leaves lc at 2.
        let e = Assembler::new(InstrFormat::Mixed)
            .assemble("nop\n.word 1\n")
            .expect_err("misaligned word");
        assert!(matches!(e.kind(), AsmErrorKind::Misaligned { need: 4, .. }));
    }

    #[test]
    fn code_after_word_is_rejected() {
        let e = asm_err("halt\n.word 1\nnop\n");
        assert!(matches!(e.kind(), AsmErrorKind::CodeAfterData));
        assert_eq!(e.line(), 3);
        assert_eq!(e.col(), 1);
    }

    #[test]
    fn org_in_data_section_moves_forward_without_padding() {
        let p = asm("halt\n.word 1\n.org 0x40\n.word 2\n");
        assert_eq!(p.data(), &[(4, 1), (0x40, 2)]);
        assert_eq!(p.end(), 4);
    }

    #[test]
    fn li32_label_loads_an_address() {
        let p = asm("li32 r1, buf\nhalt\n.org 0x40\nbuf: .word 5\n");
        let instrs: Vec<_> = p.instructions().map(|(_, i)| i).collect();
        assert_eq!(
            instrs[0],
            Instruction::Lim {
                rd: Reg::new(1),
                imm: 0x40
            }
        );
        assert_eq!(
            instrs[1],
            Instruction::Lui {
                rd: Reg::new(1),
                imm: 0
            }
        );
    }

    #[test]
    fn lbr_forward_reference_resolves() {
        let p = asm("lbr b0, fwd\nnop\nfwd: halt\n");
        let instrs: Vec<_> = p.instructions().map(|(_, i)| i).collect();
        assert_eq!(
            instrs[0],
            Instruction::Lbr {
                br: BranchReg::new(0),
                target_parcel: 4
            }
        );
    }

    #[test]
    fn duplicate_label_reported_with_position() {
        let e = asm_err("a: nop\na: halt\n");
        assert!(matches!(e.kind(), AsmErrorKind::DuplicateLabel(_)));
        assert_eq!(e.line(), 2);
        assert_eq!(e.col(), 1);
    }

    #[test]
    fn undefined_label_reports_the_reference_site() {
        let e = asm_err("nop\n  lbr b0, missing\n");
        assert!(matches!(e.kind(), AsmErrorKind::UndefinedLabel(_)));
        assert_eq!(e.line(), 2);
        assert_eq!(e.col(), 11, "points at the label operand");
    }

    #[test]
    fn bad_register_column_points_at_operand() {
        let e = asm_err("add r1, r9, r2\n");
        assert!(matches!(e.kind(), AsmErrorKind::BadRegister(_)));
        assert_eq!(e.line(), 1);
        assert_eq!(e.col(), 9);
    }

    #[test]
    fn unknown_mnemonic_column_points_at_mnemonic() {
        let e = asm_err("nop\n   frobnicate r1\n");
        assert!(matches!(e.kind(), AsmErrorKind::UnknownMnemonic(_)));
        assert_eq!(e.line(), 2);
        assert_eq!(e.col(), 4);
    }

    #[test]
    fn unknown_directive_reported() {
        let e = asm_err(".bogus 1\n");
        assert!(matches!(e.kind(), AsmErrorKind::UnknownDirective(_)));
    }

    #[test]
    fn equ_constants_substitute() {
        let p = asm(".equ FPU, -4096\nlim r5, FPU\nhalt\n");
        let instrs: Vec<_> = p.instructions().map(|(_, i)| i).collect();
        assert_eq!(
            instrs[0],
            Instruction::Lim {
                rd: Reg::new(5),
                imm: -4096
            }
        );
    }

    #[test]
    fn align_pads_with_nops() {
        let p = asm("nop\n.align 16\nhere: halt\n");
        assert_eq!(p.symbols()["here"], 16);
        assert_eq!(p.static_count(), 5);
    }

    #[test]
    fn align_rejects_non_power_of_two() {
        let e = asm_err("nop\n.align 6\nhalt\n");
        assert!(matches!(e.kind(), AsmErrorKind::BadAlignment(6)));
        assert_eq!(e.line(), 2);
    }

    #[test]
    fn data_directive_is_seed_compatible() {
        let p = asm(".data 0x1000, 7\nhalt\n");
        assert_eq!(p.data(), &[(0x1000, 7)]);
    }

    #[test]
    fn delay_out_of_range() {
        let e = asm_err("pbr b0, r0, 8\n");
        assert!(matches!(e.kind(), AsmErrorKind::BadImmediate(_)));
        assert_eq!(e.col(), 13);
    }

    #[test]
    fn hex_immediates_accept_u16_range() {
        let p = asm("lim r0, 0xFFFF\n");
        match p.instructions().next().unwrap().1 {
            Instruction::Lim { imm, .. } => assert_eq!(imm, -1),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn matches_the_seed_assembler_output() {
        let src = "start: lim r1, 3\nloop: subi r1, r1, 1\nlbr b0, loop\npbr.nez b0, r1, 0\nhalt\n.data 0x800, 42\n";
        for format in [InstrFormat::Fixed32, InstrFormat::Mixed] {
            let new = Assembler::new(format).assemble(src).unwrap();
            let seed = pipe_isa::Assembler::new(format).assemble(src).unwrap();
            assert_eq!(new.parcels(), seed.parcels(), "{format:?}");
            assert_eq!(new.data(), seed.data());
            assert_eq!(new.symbols(), seed.symbols());
        }
    }
}
