//! The bundled program library.
//!
//! Small, self-verifying PIPE assembly programs shipped with the
//! repository under `programs/`. They are compiled into the binary with
//! `include_str!`, so workloads built from them need no filesystem
//! access and hash reproducibly.

/// A named assembly program from `programs/`.
#[derive(Debug, Clone, Copy)]
pub struct LibraryProgram {
    /// Short name used on the command line and in workload keys.
    pub name: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// The assembly source text.
    pub source: &'static str,
}

/// Every bundled program, in display order.
pub const LIBRARY: &[LibraryProgram] = &[
    LibraryProgram {
        name: "matmul",
        title: "4x4 f32 matrix multiply via the memory-mapped FPU",
        source: include_str!("../../../programs/matmul.s"),
    },
    LibraryProgram {
        name: "sort",
        title: "bubble sort of eight words (store-heavy inner loop)",
        source: include_str!("../../../programs/sort.s"),
    },
    LibraryProgram {
        name: "memcpy",
        title: "16-word copy through the load/store queues",
        source: include_str!("../../../programs/memcpy.s"),
    },
];

/// Looks up a bundled program by name.
pub fn find(name: &str) -> Option<&'static LibraryProgram> {
    LIBRARY.iter().find(|p| p.name == name)
}

/// The names of every bundled program.
pub fn names() -> impl Iterator<Item = &'static str> {
    LIBRARY.iter().map(|p| p.name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::Assembler;
    use crate::disasm::disassemble;
    use pipe_isa::{write_program, InstrFormat};

    #[test]
    fn find_is_exact() {
        assert!(find("matmul").is_some());
        assert!(find("matmull").is_none());
        assert_eq!(names().count(), LIBRARY.len());
    }

    #[test]
    fn every_program_assembles_in_both_formats() {
        for prog in LIBRARY {
            for format in [InstrFormat::Fixed32, InstrFormat::Mixed] {
                let p = Assembler::new(format)
                    .assemble(prog.source)
                    .unwrap_or_else(|e| panic!("{}: {e}", prog.name));
                assert!(p.static_count() > 0, "{}", prog.name);
            }
        }
    }

    #[test]
    fn every_program_round_trips_through_the_disassembler() {
        for prog in LIBRARY {
            let first = Assembler::new(InstrFormat::Fixed32)
                .assemble(prog.source)
                .unwrap();
            let text = disassemble(&first);
            let second = Assembler::new(InstrFormat::Fixed32)
                .assemble(&text)
                .unwrap_or_else(|e| panic!("{}: {e}", prog.name));
            assert_eq!(
                write_program(&first),
                write_program(&second),
                "{} drifted through the disassembler",
                prog.name
            );
        }
    }
}
