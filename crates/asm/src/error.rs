//! Typed assembler diagnostics with source positions.

use std::error::Error;
use std::fmt;

/// An assembly diagnostic, located at a 1-based line and column of the
/// source text.
///
/// The column points at the offending token (the operand, label, or
/// mnemonic), not at the start of the line, so editors can underline the
/// exact problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: usize,
    col: usize,
    kind: AsmErrorKind,
}

impl AsmError {
    pub(crate) fn new(line: usize, col: usize, kind: AsmErrorKind) -> AsmError {
        AsmError { line, col, kind }
    }

    /// 1-based source line of the error.
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based source column of the offending token.
    pub fn col(&self) -> usize {
        self.col
    }

    /// The error category.
    pub fn kind(&self) -> &AsmErrorKind {
        &self.kind
    }
}

/// The category of an assembly error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmErrorKind {
    /// Unknown mnemonic.
    UnknownMnemonic(String),
    /// Unknown `.`-directive.
    UnknownDirective(String),
    /// Wrong operand count or malformed operand.
    BadOperands(String),
    /// An immediate failed to parse or was out of range.
    BadImmediate(String),
    /// A register name failed to parse.
    BadRegister(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label address does not fit the 16-bit parcel field of `lbr`.
    LabelOutOfRange {
        /// The offending label.
        label: String,
        /// Its byte address.
        addr: u32,
    },
    /// An `.align` value was not a power of two, or the required padding
    /// cannot be expressed as whole `nop`s under the chosen format.
    BadAlignment(u32),
    /// An `.org` directive tried to move the location counter backwards.
    OrgBackwards {
        /// The location counter at the directive.
        at: u32,
        /// The requested (smaller) address.
        to: u32,
    },
    /// An address violated an alignment requirement (`.org` targets must
    /// be parcel-aligned; `.word` data must be 4-byte aligned).
    Misaligned {
        /// The offending address.
        addr: u32,
        /// The required alignment in bytes.
        need: u32,
    },
    /// An instruction appeared after the first `.word`: the code section
    /// is laid out contiguously and must precede all section data.
    CodeAfterData,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}: ", self.line, self.col)?;
        match &self.kind {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::UnknownDirective(d) => write!(f, "unknown directive `{d}`"),
            AsmErrorKind::BadOperands(s) => write!(f, "bad operands: {s}"),
            AsmErrorKind::BadImmediate(s) => write!(f, "bad immediate `{s}`"),
            AsmErrorKind::BadRegister(s) => write!(f, "bad register `{s}`"),
            AsmErrorKind::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmErrorKind::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmErrorKind::LabelOutOfRange { label, addr } => {
                write!(f, "label `{label}` at {addr:#x} exceeds the lbr range")
            }
            AsmErrorKind::BadAlignment(a) => write!(f, "bad alignment {a}"),
            AsmErrorKind::OrgBackwards { at, to } => {
                write!(f, ".org cannot move backwards from {at:#x} to {to:#x}")
            }
            AsmErrorKind::Misaligned { addr, need } => {
                write!(f, "address {addr:#x} is not {need}-byte aligned")
            }
            AsmErrorKind::CodeAfterData => {
                write!(f, "instructions cannot follow `.word` data")
            }
        }
    }
}

impl Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_and_col() {
        let e = AsmError::new(3, 9, AsmErrorKind::UnknownMnemonic("frob".into()));
        assert_eq!(e.to_string(), "line 3, col 9: unknown mnemonic `frob`");
        assert_eq!(e.line(), 3);
        assert_eq!(e.col(), 9);
    }

    #[test]
    fn display_covers_layout_kinds() {
        let e = AsmError::new(1, 1, AsmErrorKind::OrgBackwards { at: 8, to: 4 });
        assert!(e.to_string().contains("backwards"));
        let e = AsmError::new(1, 1, AsmErrorKind::Misaligned { addr: 6, need: 4 });
        assert!(e.to_string().contains("aligned"));
        let e = AsmError::new(1, 1, AsmErrorKind::CodeAfterData);
        assert!(e.to_string().contains(".word"));
    }
}
