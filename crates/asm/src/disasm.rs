//! A round-trippable disassembler.
//!
//! Unlike [`pipe_isa::disassemble`], which annotates every line with its
//! byte address for human consumption, this disassembler emits valid
//! assembly source: reassembling its output with [`crate::Assembler`]
//! reproduces the original image exactly (parcels, base, entry, symbols,
//! and data, in order), for any program produced by the assembler.
//!
//! Programs built by other means round-trip on a best-effort basis:
//! symbols that do not sit on an instruction boundary or in the data
//! region are dropped, and an entry point different from the base cannot
//! be expressed.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use pipe_isa::program::Program;

/// Disassembles `program` into reassemblable source text.
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    let mut labels: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
    for (name, addr) in program.symbols() {
        labels.entry(*addr).or_default().push(name.as_str());
    }
    for names in labels.values_mut() {
        names.sort_unstable();
    }

    let _ = writeln!(out, ".org {:#x}", program.base());
    for (addr, instr) in program.instructions() {
        emit_labels_at(&mut out, &mut labels, addr);
        let _ = writeln!(out, "    {instr}");
    }

    // Data section. Words at or past the code end replay through the
    // location counter (`.org` + `.word`), which keeps labels attached.
    // An `.org` is only legal once a `.word` has closed the code section
    // (before that, the reassembler would pad the gap with nops), so until
    // then only words landing exactly at the location counter use the
    // `.word` form; everything else (backward or unaligned addresses)
    // falls back to the order-preserving `.data` form.
    let mut lc = program.end();
    let mut closed = false;
    for &(addr, value) in program.data() {
        let placeable = addr >= lc && addr % 4 == 0;
        if placeable && closed {
            drain_labels_through(&mut out, &mut labels, &mut lc, addr);
            if addr > lc {
                let _ = writeln!(out, ".org {addr:#x}");
                lc = addr;
            }
            let _ = writeln!(out, ".word {value:#x}");
            lc += 4;
        } else if placeable && addr == lc {
            emit_labels_at(&mut out, &mut labels, addr);
            let _ = writeln!(out, ".word {value:#x}");
            lc += 4;
            closed = true;
        } else {
            let _ = writeln!(out, ".data {addr:#x}, {value:#x}");
        }
    }

    // Labels past the last data word (e.g. an end-of-image marker).
    if closed {
        let trailing: Vec<u32> = labels.range(lc..).map(|(a, _)| *a).collect();
        for addr in trailing {
            if addr > lc {
                let _ = writeln!(out, ".org {addr:#x}");
                lc = addr;
            }
            emit_labels_at(&mut out, &mut labels, addr);
        }
    } else {
        // Without data the section is never closed; only labels sitting
        // exactly at the end of the image can be expressed.
        emit_labels_at(&mut out, &mut labels, lc);
    }
    out
}

fn emit_labels_at(out: &mut String, labels: &mut BTreeMap<u32, Vec<&str>>, addr: u32) {
    if let Some(names) = labels.remove(&addr) {
        for name in names {
            let _ = writeln!(out, "{name}:");
        }
    }
}

/// Emits every pending label in `lc..=addr`, advancing the location
/// counter with `.org` as needed.
fn drain_labels_through(
    out: &mut String,
    labels: &mut BTreeMap<u32, Vec<&str>>,
    lc: &mut u32,
    addr: u32,
) {
    let pending: Vec<u32> = labels.range(*lc..=addr).map(|(a, _)| *a).collect();
    for at in pending {
        if at > *lc {
            let _ = writeln!(out, ".org {at:#x}");
            *lc = at;
        }
        emit_labels_at(out, labels, at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::Assembler;
    use pipe_isa::{write_program, InstrFormat};

    fn round_trip(src: &str, format: InstrFormat) {
        let first = Assembler::new(format).assemble(src).unwrap();
        let text = disassemble(&first);
        let second = Assembler::new(format)
            .assemble(&text)
            .unwrap_or_else(|e| panic!("round-trip failed: {e}\n--- source ---\n{text}"));
        assert_eq!(
            write_program(&first),
            write_program(&second),
            "--- disassembly ---\n{text}"
        );
    }

    #[test]
    fn code_round_trips_in_both_formats() {
        let src = "start: lim r1, 3\nloop: subi r1, r1, 1\nlbr b0, loop\npbr.nez b0, r1, 0\nhalt\n";
        round_trip(src, InstrFormat::Fixed32);
        round_trip(src, InstrFormat::Mixed);
    }

    #[test]
    fn data_words_and_labels_round_trip() {
        round_trip(
            "halt\nvals: .word 1, 2, 3\n.org 0x100\nmore: .word 0xdeadbeef\nend_marker:\n",
            InstrFormat::Fixed32,
        );
    }

    #[test]
    fn legacy_data_pairs_round_trip() {
        round_trip(
            "halt\n.data 0x1000, 7\n.data 0x2, 9\n",
            InstrFormat::Fixed32,
        );
    }

    #[test]
    fn org_base_round_trips() {
        round_trip(
            ".org 0x200\nstart: nop\nhalt\n.word 5\n",
            InstrFormat::Mixed,
        );
    }

    #[test]
    fn every_mnemonic_round_trips() {
        round_trip(
            r#"
            nop
            halt
            xchg
            add  r1, r2, r3
            sub  r4, r5, r6
            and  r1, r2, r3
            or   r7, r7, r7
            xor  r1, r2, r3
            sll  r1, r2, r3
            srl  r1, r2, r3
            sra  r1, r2, r3
            addi r1, r2, -5
            andi r1, r2, 0xff
            lim  r1, -100
            lui  r1, 0xABCD
            ldw  r2, 16
            sta  r3, -16
            lbr  b0, 0x40
            lbrr b1, r4
            pbr  b0, r0, 0
            pbr.eqz b1, r1, 1
            pbr.nez b2, r2, 2
            pbr.gtz b3, r3, 3
            pbr.ltz b4, r4, 4
            pbr.never b5, r5, 5
            "#,
            InstrFormat::Fixed32,
        );
    }

    #[test]
    fn interleaved_word_and_data_round_trip() {
        // The backward `.word 2` (address 8 after lc has advanced past it)
        // falls back to `.data`, preserving the pair order.
        let p = Assembler::new(InstrFormat::Fixed32)
            .assemble("halt\n.word 1\n.data 0x1000, 7\n")
            .unwrap();
        let text = disassemble(&p);
        let again = Assembler::new(InstrFormat::Fixed32)
            .assemble(&text)
            .unwrap();
        assert_eq!(p.data(), again.data());
    }
}
