//! Figure 5 benchmark: 6-cycle memory, non-pipelined, 4- vs 8-byte bus —
//! the regime where every PIPE configuration beats the conventional cache.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use pipe_bench::{bench_suite, figure_mem, run_figure_point};
use pipe_experiments::ALL_STRATEGIES;
use std::hint::black_box;

fn fig5(c: &mut Criterion) {
    let suite = bench_suite();
    for panel in ["5a", "5b"] {
        let mem = figure_mem(panel);
        let mut group = c.benchmark_group(format!("fig{panel}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(2));
        for kind in ALL_STRATEGIES {
            for size in [32u32, 128] {
                group.bench_function(format!("{kind}/{size}B"), |b| {
                    b.iter(|| black_box(run_figure_point(&suite, kind, size, &mem)))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, fig5);
criterion_main!(benches);
