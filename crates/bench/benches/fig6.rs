//! Figure 6 benchmark: 6-cycle memory, 8-byte bus, non-pipelined (6a)
//! versus pipelined (6b) external memory.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use pipe_bench::{bench_suite, figure_mem, run_figure_point};
use pipe_experiments::ALL_STRATEGIES;
use std::hint::black_box;

fn fig6(c: &mut Criterion) {
    let suite = bench_suite();
    for panel in ["6a", "6b"] {
        let mem = figure_mem(panel);
        let mut group = c.benchmark_group(format!("fig{panel}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(2));
        for kind in ALL_STRATEGIES {
            for size in [32u32, 128] {
                group.bench_function(format!("{kind}/{size}B"), |b| {
                    b.iter(|| black_box(run_figure_point(&suite, kind, size, &mem)))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, fig6);
criterion_main!(benches);
