//! Ablation benchmarks: the design-space axes DESIGN.md calls out —
//! prefetch policy, arbitration priority, instruction format, and
//! intermediate memory access times.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use pipe_bench::{bench_suite, BENCH_SCALE};
use pipe_core::{run_program, SimConfig};
use pipe_experiments::StrategyKind;
use pipe_icache::PrefetchPolicy;
use pipe_isa::InstrFormat;
use pipe_mem::{MemConfig, PriorityPolicy};
use pipe_workloads::LivermoreSuite;
use std::hint::black_box;

fn slow_mem() -> MemConfig {
    MemConfig {
        access_cycles: 6,
        in_bus_bytes: 8,
        ..MemConfig::default()
    }
}

fn run(suite: &LivermoreSuite, fetch: pipe_core::FetchStrategy, mem: MemConfig) -> u64 {
    let cfg = SimConfig {
        fetch,
        mem,
        max_cycles: 500_000_000,
        ..SimConfig::default()
    };
    run_program(suite.program(), &cfg).expect("run succeeds").cycles
}

fn ablations(c: &mut Criterion) {
    let suite = bench_suite();
    let mut group = c.benchmark_group("ablations");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Prefetch policy (PIPE 16-16 at 32 B — the paper's §6 observation
    // that the chip's guaranteed-only policy is non-optimal).
    for (policy, name) in [
        (PrefetchPolicy::TruePrefetch, "true-prefetch"),
        (PrefetchPolicy::GuaranteedOnly, "guaranteed-only"),
    ] {
        let fetch = StrategyKind::Pipe16x16.fetch_for(32, policy).unwrap();
        group.bench_function(format!("policy/{name}"), |b| {
            b.iter(|| black_box(run(&suite, fetch, slow_mem())))
        });
    }

    // Arbitration priority (paper §5 selectable priority).
    for priority in [PriorityPolicy::InstructionFirst, PriorityPolicy::DataFirst] {
        let fetch = StrategyKind::Pipe16x16
            .fetch_for(32, PrefetchPolicy::TruePrefetch)
            .unwrap();
        let mem = MemConfig {
            priority,
            ..slow_mem()
        };
        group.bench_function(format!("priority/{priority}"), |b| {
            b.iter(|| black_box(run(&suite, fetch, mem.clone())))
        });
    }

    // Access times 2 and 3 ("similar results" claim).
    for access in [2u32, 3] {
        let fetch = StrategyKind::Pipe16x16
            .fetch_for(32, PrefetchPolicy::TruePrefetch)
            .unwrap();
        let mem = MemConfig {
            access_cycles: access,
            ..slow_mem()
        };
        group.bench_function(format!("access/{access}-cycle"), |b| {
            b.iter(|| black_box(run(&suite, fetch, mem.clone())))
        });
    }

    // Instruction format (paper parameter 1).
    for format in [InstrFormat::Fixed32, InstrFormat::Mixed] {
        let fsuite = LivermoreSuite::build_scaled(format, BENCH_SCALE).unwrap();
        let fetch = StrategyKind::Pipe16x16
            .fetch_for(32, PrefetchPolicy::TruePrefetch)
            .unwrap();
        group.bench_function(format!("format/{format}"), |b| {
            b.iter(|| black_box(run(&fsuite, fetch, slow_mem())))
        });
    }

    // Section 2.1 engines at a 32-byte hardware budget.
    for kind in [StrategyKind::Conventional, StrategyKind::Tib16, StrategyKind::Pipe16x16] {
        let fetch = kind.fetch_for(32, PrefetchPolicy::TruePrefetch).unwrap();
        group.bench_function(format!("engine/{kind}"), |b| {
            b.iter(|| black_box(run(&suite, fetch, slow_mem())))
        });
    }
    for buffers in [1u32, 4] {
        let fetch = pipe_core::FetchStrategy::Buffers(pipe_icache::BufferConfig {
            buffers,
            cache: None,
        });
        let mem = pipe_mem::MemConfig {
            pipelined: true,
            ..slow_mem()
        };
        group.bench_function(format!("engine/buffers-{buffers}"), |b| {
            b.iter(|| black_box(run(&suite, fetch, mem.clone())))
        });
    }

    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
