//! Component micro-benchmarks: the building blocks under the simulator.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use pipe_icache::{CacheConfig, InstructionCache, ParcelQueue};
use pipe_isa::{decode, encode, AluOp, InstrFormat, Instruction, Reg};
use pipe_mem::{MemConfig, MemRequest, MemorySystem, ReqClass};
use std::hint::black_box;

fn components(c: &mut Criterion) {
    let mut group = c.benchmark_group("components");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // ISA encode/decode round-trip throughput.
    let instr = Instruction::AluImm {
        op: AluOp::Add,
        rd: Reg::new(3),
        rs1: Reg::new(4),
        imm: 1234,
    };
    group.bench_function("isa/encode-decode", |b| {
        b.iter(|| {
            let e = encode(black_box(&instr), InstrFormat::Fixed32);
            let p = e.parcels();
            black_box(decode(p[0], p.get(1).copied()).unwrap())
        })
    });

    // Cache probe+fill on a hot loop footprint.
    group.bench_function("cache/probe-fill", |b| {
        let mut cache = InstructionCache::new(CacheConfig::new(128, 16));
        b.iter(|| {
            for addr in (0u32..256).step_by(4) {
                if !cache.contains(addr, 4) {
                    cache.fill(addr, 4);
                }
                black_box(cache.contains(addr, 4));
            }
        })
    });

    // Parcel queue transfer (the IQB→IQ path).
    group.bench_function("queue/take-from", |b| {
        b.iter(|| {
            let mut iq = ParcelQueue::new(16);
            let mut iqb = ParcelQueue::new(16);
            for i in 0..8u32 {
                iqb.push(i * 2, i as u16);
            }
            let room = iq.room();
            black_box(iq.take_from(&mut iqb, room));
        })
    });

    // Memory system: sustained load stream, non-pipelined vs pipelined.
    for pipelined in [false, true] {
        let name = if pipelined { "pipelined" } else { "non-pipelined" };
        group.bench_function(format!("mem/tick-{name}"), |b| {
            b.iter(|| {
                let mut mem = MemorySystem::new(MemConfig {
                    access_cycles: 6,
                    pipelined,
                    ..MemConfig::default()
                });
                for i in 0..200u32 {
                    let tag = mem.new_tag();
                    mem.offer(MemRequest::load(ReqClass::DataLoad, i * 4, 4, tag));
                    black_box(mem.tick());
                }
            })
        });
    }

    group.finish();
}

criterion_group!(benches, components);
criterion_main!(benches);
