//! Table I benchmark: building the calibrated Livermore suite and running
//! individual kernels on the default (PIPE chip) configuration.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use pipe_core::{run_program, FetchStrategy, SimConfig};
use pipe_icache::PipeFetchConfig;
use pipe_isa::InstrFormat;
use pipe_workloads::livermore::single_kernel_program;
use pipe_workloads::LivermoreSuite;
use std::hint::black_box;

fn table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("build-calibrated-suite", |b| {
        b.iter(|| black_box(LivermoreSuite::build(InstrFormat::Fixed32).unwrap()))
    });

    // Run each kernel for a fixed trip count on the as-built PIPE chip
    // configuration (128 B cache, 8 B lines/IQ/IQB).
    let cfg = SimConfig {
        fetch: FetchStrategy::Pipe(PipeFetchConfig::table2(128, 8, 8, 8)),
        ..SimConfig::default()
    };
    for index in 1..=14usize {
        let program = single_kernel_program(index, 50, InstrFormat::Fixed32).unwrap();
        group.bench_function(format!("kernel-{index:02}"), |b| {
            b.iter(|| black_box(run_program(&program, &cfg).unwrap().cycles))
        });
    }
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
