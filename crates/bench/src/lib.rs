//! # pipe-bench
//!
//! Criterion benchmarks regenerating the paper's tables and figures (see
//! `benches/`), plus shared helpers.
//!
//! Each figure bench sweeps the five Table II strategies at representative
//! cache sizes under that figure's memory parameters, using a trip-scaled
//! Livermore suite so a single Criterion iteration stays in the tens of
//! milliseconds. The *shapes* (who wins, by what factor) match the full
//! runs produced by the `repro` binary; absolute cycle counts scale with
//! the trip divisor.

use pipe_core::{run_program, FetchStrategy, SimConfig};
use pipe_experiments::StrategyKind;
use pipe_icache::PrefetchPolicy;
use pipe_isa::InstrFormat;
use pipe_mem::MemConfig;
use pipe_workloads::LivermoreSuite;

/// Trip divisor for bench iterations.
pub const BENCH_SCALE: u32 = 10;

/// Builds the trip-scaled Livermore suite used by the benches.
pub fn bench_suite() -> LivermoreSuite {
    LivermoreSuite::build_scaled(InstrFormat::Fixed32, BENCH_SCALE).expect("suite builds")
}

/// Runs one strategy/cache-size point of a figure and returns total
/// cycles (the value Criterion's iterations time).
pub fn run_figure_point(
    suite: &LivermoreSuite,
    kind: StrategyKind,
    cache_bytes: u32,
    mem: &MemConfig,
) -> u64 {
    let fetch: FetchStrategy = kind
        .fetch_for(cache_bytes, PrefetchPolicy::TruePrefetch)
        .expect("valid point");
    let cfg = SimConfig {
        fetch,
        mem: mem.clone(),
        max_cycles: 500_000_000,
        ..SimConfig::default()
    };
    run_program(suite.program(), &cfg)
        .expect("run succeeds")
        .cycles
}

/// The memory configuration of a paper figure panel (re-exported from the
/// experiments crate for bench use).
pub fn figure_mem(id: &str) -> MemConfig {
    pipe_experiments::figures::figure_mem(id).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_points_run() {
        let suite = bench_suite();
        let mem = figure_mem("4a");
        let cycles = run_figure_point(&suite, StrategyKind::Pipe16x16, 64, &mem);
        assert!(cycles > 0);
    }
}
