//! Kernel intermediate representation and PIPE code generation.
//!
//! A [`Kernel`] is a per-iteration list of [`KernelOp`]s plus loop
//! bookkeeping. Code generation lowers it to PIPE instructions under a
//! fixed register convention:
//!
//! | register | role |
//! |---|---|
//! | `r1` | trip counter |
//! | `r2` | walking array pointer (one per loop, +4 bytes per iteration) |
//! | `r3` | constants base (fixed) |
//! | `r4` | integer scratch for padding work |
//! | `r5` | FPU base (`FPU_BASE`) |
//! | `r6` | floating-point accumulator (bit pattern) |
//! | `r7` | the queue register |
//!
//! Array streams live at `r2 + stream * 0x1000`; loop constants at
//! `r3 + idx * 4`. Floating-point operations ship operands to the
//! memory-mapped FPU: `sta r5, 0` + data push for operand A, then
//! `sta r5, <op>` + data push for operand B; the result returns into the
//! LDQ.
//!
//! [`Kernel::check_queue_discipline`] symbolically executes one iteration
//! and verifies the LDQ FIFO is consumed in order and balanced, catching
//! kernel-spec bugs before they become simulator deadlocks.

use pipe_isa::{AluOp, BranchReg, Cond, Instruction, Reg};

/// Byte spacing between array streams within a loop's data region.
pub const STREAM_STRIDE: i32 = 0x1000;
/// Offset of the constants area within a loop's data region.
pub const CONST_AREA: i16 = 0x7000;

/// The floating-point operation kinds the kernels use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpKind {
    /// Multiplication (store offset 4).
    Mul,
    /// Addition (store offset 8).
    Add,
    /// Subtraction (store offset 12).
    Sub,
}

impl FpKind {
    /// Byte offset of the operation-trigger address in the FPU window.
    pub fn store_offset(self) -> i16 {
        match self {
            FpKind::Mul => 4,
            FpKind::Add => 8,
            FpKind::Sub => 12,
        }
    }
}

/// Where a floating-point operand comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// The head of the load queue (`r7`): pops one LDQ entry.
    Queue,
    /// The accumulator register `r6`.
    Acc,
}

/// One step of a kernel iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelOp {
    /// Load `stream[i + elem_off]`: pushes one LDQ entry. (1 instruction)
    Load {
        /// Stream index (0..=6).
        stream: u32,
        /// Element offset within the stream, in 4-byte elements.
        elem_off: i16,
    },
    /// Load a loop constant: pushes one LDQ entry. (1 instruction)
    LoadConst {
        /// Constant index.
        idx: u16,
    },
    /// Floating-point operation via the memory-mapped FPU: consumes its
    /// `Queue` operands from the LDQ **in order (a, then result slot, then
    /// b)** and pushes the result into the LDQ. (4 instructions)
    Fp {
        /// Operation kind.
        kind: FpKind,
        /// First operand.
        a: Src,
        /// Second operand.
        b: Src,
    },
    /// Pop the LDQ head into the accumulator `r6`. (1 instruction)
    PopAcc,
    /// Store the LDQ head to `stream[i]`: pops one LDQ entry.
    /// (2 instructions)
    Store {
        /// Stream index.
        stream: u32,
    },
    /// Store the accumulator to `stream[i]`. (2 instructions)
    StoreAcc {
        /// Stream index.
        stream: u32,
    },
    /// Integer scratch work (index arithmetic / padding). (1 instruction)
    Pad,
}

impl KernelOp {
    /// Number of PIPE instructions this op lowers to.
    pub fn cost(&self) -> u32 {
        match self {
            KernelOp::Load { .. } | KernelOp::LoadConst { .. } => 1,
            KernelOp::Fp { .. } => 4,
            KernelOp::PopAcc => 1,
            KernelOp::Store { .. } | KernelOp::StoreAcc { .. } => 2,
            KernelOp::Pad => 1,
        }
    }
}

/// Per-iteration instruction mix of a kernel (see [`Kernel::mix`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelMix {
    /// Data loads issued per iteration (array + constant loads).
    pub loads: u32,
    /// Floating-point operations per iteration.
    pub fp_ops: u32,
    /// Data stores to memory per iteration (excluding FPU operand
    /// shipping).
    pub stores: u32,
    /// Stores shipping FPU operands per iteration (2 per FP op).
    pub fpu_operand_stores: u32,
    /// Queue-move instructions (`r7` reads/writes) per iteration.
    pub queue_moves: u32,
    /// Integer/padding instructions per iteration (excluding loop control).
    pub integer: u32,
}

impl KernelMix {
    /// Total memory requests per iteration (loads + all stores) — the
    /// "data requests per inner loop" the paper's §5 highlights.
    pub fn memory_requests(&self) -> u32 {
        self.loads + self.stores + self.fpu_operand_stores
    }
}

/// A kernel: one loop's per-iteration body plus bookkeeping.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// 1-based kernel number (1..=14 for the Livermore loops).
    pub index: usize,
    /// Human-readable name.
    pub name: &'static str,
    /// The per-iteration operations, excluding loop control.
    pub ops: Vec<KernelOp>,
    /// Target inner-loop size in instructions (Table I bytes / 4).
    pub target_instructions: u32,
}

/// Instructions of fixed loop overhead: pointer increment, counter
/// decrement, and the prepare-to-branch.
pub const LOOP_OVERHEAD: u32 = 3;

impl Kernel {
    /// Instruction cost of the kernel ops alone.
    pub fn ops_cost(&self) -> u32 {
        self.ops.iter().map(KernelOp::cost).sum()
    }

    /// The per-iteration instruction mix, including padding.
    pub fn mix(&self) -> KernelMix {
        let mut m = KernelMix::default();
        for op in &self.ops {
            match op {
                KernelOp::Load { .. } | KernelOp::LoadConst { .. } => m.loads += 1,
                KernelOp::Fp { .. } => {
                    m.fp_ops += 1;
                    m.fpu_operand_stores += 2;
                    m.queue_moves += 2;
                }
                KernelOp::PopAcc => m.queue_moves += 1,
                KernelOp::Store { .. } | KernelOp::StoreAcc { .. } => {
                    m.stores += 1;
                    m.queue_moves += 1;
                }
                KernelOp::Pad => m.integer += 1,
            }
        }
        m.integer += self.padding();
        m
    }

    /// Padding instructions needed to reach the target size.
    ///
    /// # Panics
    ///
    /// Panics if the ops plus overhead exceed the target, or leave fewer
    /// than 3 pads (needed to fill the delay slots).
    pub fn padding(&self) -> u32 {
        let used = self.ops_cost() + LOOP_OVERHEAD;
        assert!(
            used + 3 <= self.target_instructions,
            "kernel {} ({}): {} ops + {} overhead leaves fewer than 3 pads for target {}",
            self.index,
            self.name,
            self.ops_cost(),
            LOOP_OVERHEAD,
            self.target_instructions
        );
        self.target_instructions - used
    }

    /// Verifies the LDQ FIFO discipline over one iteration: no pop from an
    /// empty queue, and the queue drains to empty by the end.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn check_queue_discipline(&self) -> Result<(), String> {
        let mut depth: i64 = 0;
        let mut max_depth: i64 = 0;
        let pop = |depth: &mut i64, what: &str, i: usize| -> Result<(), String> {
            if *depth == 0 {
                return Err(format!(
                    "kernel {} ({}): op {i} pops an empty LDQ ({what})",
                    self.index, self.name
                ));
            }
            *depth -= 1;
            Ok(())
        };
        for (i, op) in self.ops.iter().enumerate() {
            match op {
                KernelOp::Load { .. } | KernelOp::LoadConst { .. } => depth += 1,
                KernelOp::Fp { a, b, .. } => {
                    if *a == Src::Queue {
                        pop(&mut depth, "fp operand a", i)?;
                    }
                    depth += 1; // result slot allocated at the op store
                    if *b == Src::Queue {
                        pop(&mut depth, "fp operand b", i)?;
                    }
                }
                KernelOp::PopAcc => pop(&mut depth, "pop-acc", i)?,
                KernelOp::Store { .. } => pop(&mut depth, "store", i)?,
                KernelOp::StoreAcc { .. } | KernelOp::Pad => {}
            }
            max_depth = max_depth.max(depth);
        }
        if depth != 0 {
            return Err(format!(
                "kernel {} ({}): LDQ not drained at iteration end ({depth} left)",
                self.index, self.name
            ));
        }
        if max_depth > 6 {
            return Err(format!(
                "kernel {} ({}): LDQ depth {max_depth} risks overflowing the 8-entry queue",
                self.index, self.name
            ));
        }
        Ok(())
    }

    /// Lowers the kernel body (one iteration, including loop control and
    /// padding) to instructions. The caller provides the branch register
    /// holding the loop-top address.
    ///
    /// Layout: `[ops..., lead pads..., subi r1, pbr(delay), incr r2,
    /// trailing pads...]` — the pointer increment and trailing pads fill
    /// the delay slots.
    pub fn lower_body(&self, loop_br: BranchReg) -> Vec<Instruction> {
        let r1 = Reg::new(1);
        let r2 = Reg::new(2);
        let r3 = Reg::new(3);
        let r4 = Reg::new(4);
        let r5 = Reg::new(5);
        let r6 = Reg::new(6);
        let r7 = Reg::QUEUE;

        let pads = self.padding();
        // Delay slots: pointer increment + up to 3 trailing pads.
        let delay = (1 + pads.min(3)) as u8;
        let trailing_pads = u32::from(delay) - 1;
        let lead_pads = pads - trailing_pads;

        let pad_instr = Instruction::AluImm {
            op: AluOp::Add,
            rd: r4,
            rs1: r4,
            imm: 1,
        };
        let queue_move = |src: Src| match src {
            // or r7, r7, r7 — move the LDQ head to the SDQ.
            Src::Queue => Instruction::Alu {
                op: AluOp::Or,
                rd: r7,
                rs1: r7,
                rs2: r7,
            },
            // or r7, r6, r6 — push the accumulator onto the SDQ.
            Src::Acc => Instruction::Alu {
                op: AluOp::Or,
                rd: r7,
                rs1: r6,
                rs2: r6,
            },
        };

        let mut out = Vec::with_capacity(self.target_instructions as usize);
        for op in &self.ops {
            match *op {
                KernelOp::Load { stream, elem_off } => {
                    let disp = stream as i32 * STREAM_STRIDE + i32::from(elem_off) * 4;
                    out.push(Instruction::Load {
                        base: r2,
                        disp: i16::try_from(disp).expect("stream displacement fits"),
                    });
                }
                KernelOp::LoadConst { idx } => out.push(Instruction::Load {
                    base: r3,
                    disp: (idx * 4) as i16,
                }),
                KernelOp::Fp { kind, a, b } => {
                    out.push(Instruction::StoreAddr { base: r5, disp: 0 });
                    out.push(queue_move(a));
                    out.push(Instruction::StoreAddr {
                        base: r5,
                        disp: kind.store_offset(),
                    });
                    out.push(queue_move(b));
                }
                KernelOp::PopAcc => out.push(Instruction::Alu {
                    op: AluOp::Or,
                    rd: r6,
                    rs1: r7,
                    rs2: r7,
                }),
                KernelOp::Store { stream } => {
                    let disp = stream as i32 * STREAM_STRIDE;
                    out.push(Instruction::StoreAddr {
                        base: r2,
                        disp: i16::try_from(disp).expect("stream displacement fits"),
                    });
                    out.push(queue_move(Src::Queue));
                }
                KernelOp::StoreAcc { stream } => {
                    let disp = stream as i32 * STREAM_STRIDE;
                    out.push(Instruction::StoreAddr {
                        base: r2,
                        disp: i16::try_from(disp).expect("stream displacement fits"),
                    });
                    out.push(queue_move(Src::Acc));
                }
                KernelOp::Pad => out.push(pad_instr),
            }
        }
        for _ in 0..lead_pads {
            out.push(pad_instr);
        }
        out.push(Instruction::AluImm {
            op: AluOp::Sub,
            rd: r1,
            rs1: r1,
            imm: 1,
        });
        out.push(Instruction::Pbr {
            cond: Cond::Nez,
            br: loop_br,
            rs: r1,
            delay,
        });
        out.push(Instruction::AluImm {
            op: AluOp::Add,
            rd: r2,
            rs1: r2,
            imm: 4,
        });
        for _ in 0..trailing_pads {
            out.push(pad_instr);
        }
        debug_assert_eq!(out.len() as u32, self.target_instructions);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_kernel() -> Kernel {
        Kernel {
            index: 99,
            name: "demo",
            ops: vec![
                KernelOp::Load {
                    stream: 0,
                    elem_off: 0,
                },
                KernelOp::Load {
                    stream: 1,
                    elem_off: 0,
                },
                KernelOp::Fp {
                    kind: FpKind::Mul,
                    a: Src::Queue,
                    b: Src::Queue,
                },
                KernelOp::Store { stream: 2 },
            ],
            target_instructions: 16,
        }
    }

    #[test]
    fn cost_accounting() {
        let k = demo_kernel();
        assert_eq!(k.ops_cost(), 1 + 1 + 4 + 2);
        assert_eq!(k.padding(), 16 - 8 - 3);
    }

    #[test]
    fn mix_accounting() {
        let k = demo_kernel();
        let m = k.mix();
        assert_eq!(m.loads, 2);
        assert_eq!(m.fp_ops, 1);
        assert_eq!(m.stores, 1);
        assert_eq!(m.fpu_operand_stores, 2);
        assert_eq!(m.queue_moves, 3);
        assert_eq!(m.integer, k.padding());
        assert_eq!(m.memory_requests(), 5);
    }

    #[test]
    fn queue_discipline_ok() {
        demo_kernel().check_queue_discipline().unwrap();
    }

    #[test]
    fn queue_discipline_detects_underflow() {
        let k = Kernel {
            ops: vec![KernelOp::PopAcc],
            ..demo_kernel()
        };
        assert!(k.check_queue_discipline().is_err());
    }

    #[test]
    fn queue_discipline_detects_leftover() {
        let k = Kernel {
            ops: vec![KernelOp::Load {
                stream: 0,
                elem_off: 0,
            }],
            ..demo_kernel()
        };
        assert!(k.check_queue_discipline().is_err());
    }

    #[test]
    fn queue_discipline_models_fp_result_slot_order() {
        // Fp(Queue, Queue) on [a, b]: pop a, push result, pop b — pops b,
        // not the freshly pushed result.
        let k = Kernel {
            ops: vec![
                KernelOp::Load {
                    stream: 0,
                    elem_off: 0,
                },
                KernelOp::Fp {
                    kind: FpKind::Add,
                    a: Src::Queue,
                    b: Src::Acc,
                },
                KernelOp::Store { stream: 1 },
            ],
            ..demo_kernel()
        };
        k.check_queue_discipline().unwrap();
    }

    #[test]
    fn lowered_body_matches_target() {
        let k = demo_kernel();
        let body = k.lower_body(BranchReg::new(0));
        assert_eq!(body.len() as u32, k.target_instructions);
        // Exactly one PBR, with the pointer increment in its delay slots.
        let pbrs: Vec<_> = body
            .iter()
            .enumerate()
            .filter(|(_, i)| i.is_branch())
            .collect();
        assert_eq!(pbrs.len(), 1);
        let (pbr_pos, pbr) = pbrs[0];
        if let Instruction::Pbr { delay, .. } = pbr {
            assert_eq!(body.len() - pbr_pos - 1, usize::from(*delay));
        } else {
            unreachable!()
        }
    }

    #[test]
    #[should_panic(expected = "fewer than 3 pads")]
    fn oversized_kernel_panics() {
        let k = Kernel {
            target_instructions: 10,
            ..demo_kernel()
        };
        let _ = k.padding();
    }

    #[test]
    fn fp_offsets() {
        assert_eq!(FpKind::Mul.store_offset(), 4);
        assert_eq!(FpKind::Add.store_offset(), 8);
        assert_eq!(FpKind::Sub.store_offset(), 12);
    }
}
