//! The first 14 Lawrence Livermore kernels, compiled for PIPE.
//!
//! Kernel bodies are modeled on the real LFK computations (hydro fragment,
//! ICCG, inner product, tridiagonal elimination, ...) at the level that
//! matters for the paper's experiments: loads per iteration, FPU
//! operations (each shipping two operands off-chip and returning a result
//! into the LDQ), stores, integer index work, and one backward
//! prepare-to-branch per iteration. Each inner loop is padded to exactly
//! the byte size reported in Table I of the paper, and trip counts are
//! calibrated so one run of the combined benchmark executes exactly
//! 150,575 instructions (the paper's §5 figure).

use pipe_isa::{BranchReg, InstrFormat, Instruction, Program, ProgramBuilder, Reg};

use crate::calibrate::calibrate_trips;
use crate::codegen::{FpKind, Kernel, KernelOp, Src, CONST_AREA};

/// Inner-loop sizes in bytes from Table I of the paper.
pub const TABLE1_INNER_LOOP_BYTES: [u32; 14] = [
    116, 204, 64, 80, 76, 72, 288, 732, 272, 260, 56, 56, 328, 224,
];

/// Total instructions executed by one run of the benchmark (paper §5).
pub const PAPER_TOTAL_INSTRUCTIONS: u64 = 150_575;

/// Base byte address of the first loop's data region.
pub const DATA_BASE: u32 = 0x0010_0000;
/// Byte spacing between per-loop data regions.
pub const LOOP_REGION: u32 = 0x0001_0000;

/// Kernel names, for reports.
pub const KERNEL_NAMES: [&str; 14] = [
    "hydro fragment",
    "incomplete cholesky (ICCG)",
    "inner product",
    "banded linear equations",
    "tridiagonal elimination",
    "general linear recurrence",
    "equation of state",
    "ADI integration",
    "numerical integration",
    "numerical differentiation",
    "first sum",
    "first difference",
    "2-D particle in cell",
    "1-D particle in cell",
];

/// Loop lengths of the real LFK kernels, used (scaled) as base trip
/// counts before calibration.
const LFK_LOOP_LENGTHS: [u32; 14] = [
    1001, 101, 1001, 1001, 1001, 64, 995, 100, 101, 101, 1001, 1000, 64, 1001,
];

fn l(stream: u32, elem_off: i16) -> KernelOp {
    KernelOp::Load { stream, elem_off }
}

fn lc(idx: u16) -> KernelOp {
    KernelOp::LoadConst { idx }
}

fn fp(kind: FpKind, a: Src, b: Src) -> KernelOp {
    KernelOp::Fp { kind, a, b }
}

/// `d[i] = a[i] * b[i]` — load, load, multiply, store. Cost 8.
fn mul_store(a: u32, b: u32, d: u32) -> Vec<KernelOp> {
    vec![
        l(a, 0),
        l(b, 0),
        fp(FpKind::Mul, Src::Queue, Src::Queue),
        KernelOp::Store { stream: d },
    ]
}

/// `acc += a[i] * b[i]` — multiply-accumulate into `r6`. Cost 11.
fn mul_acc(a: u32, b: u32) -> Vec<KernelOp> {
    vec![
        l(a, 0),
        l(b, 0),
        fp(FpKind::Mul, Src::Queue, Src::Queue),
        fp(FpKind::Add, Src::Acc, Src::Queue),
        KernelOp::PopAcc,
    ]
}

/// Builds the per-iteration op list for kernel `index` (1-based).
fn kernel_ops(index: usize) -> Vec<KernelOp> {
    match index {
        // LL1 hydro: x[k] = q + y[k] * (r*z[k+10] + t*z[k+11]).
        1 => vec![
            l(2, 10),
            l(2, 11),
            fp(FpKind::Add, Src::Queue, Src::Queue),
            l(1, 0),
            fp(FpKind::Mul, Src::Queue, Src::Queue),
            lc(0),
            fp(FpKind::Add, Src::Queue, Src::Queue),
            KernelOp::Store { stream: 0 },
        ],
        // LL2 ICCG: products of off-diagonal bands plus a correction term.
        2 => {
            let mut ops = Vec::new();
            ops.extend(mul_store(0, 1, 2));
            ops.extend(mul_store(3, 4, 5));
            ops.extend(mul_store(0, 4, 6));
            ops.extend(mul_store(3, 1, 2));
            ops.extend(vec![
                lc(0),
                l(5, 0),
                fp(FpKind::Sub, Src::Queue, Src::Queue),
                KernelOp::PopAcc,
            ]);
            ops
        }
        // LL3 inner product: q += z[k] * x[k].
        3 => vec![
            l(0, 0),
            l(1, 0),
            fp(FpKind::Mul, Src::Queue, Src::Queue),
            KernelOp::PopAcc,
        ],
        // LL4 banded linear equations.
        4 => vec![
            l(0, 0),
            l(1, 0),
            fp(FpKind::Mul, Src::Queue, Src::Queue),
            KernelOp::PopAcc,
            l(2, 0),
            fp(FpKind::Sub, Src::Acc, Src::Queue),
            KernelOp::Store { stream: 3 },
        ],
        // LL5 tridiagonal: x[i] = z[i] * (y[i] - x[i-1]), recurrence in r6.
        5 => vec![
            l(1, 0),
            l(2, 0),
            fp(FpKind::Sub, Src::Queue, Src::Acc),
            fp(FpKind::Mul, Src::Queue, Src::Queue),
            KernelOp::PopAcc,
            KernelOp::StoreAcc { stream: 0 },
        ],
        // LL6 general linear recurrence (accumulating band product).
        6 => mul_acc(0, 1),
        // LL7 equation of state: long multiply/add chains over u, z, y.
        7 => {
            let mut ops = Vec::new();
            ops.extend(mul_acc(0, 1));
            ops.extend(mul_acc(2, 3));
            ops.extend(mul_acc(4, 5));
            ops.extend(mul_store(0, 2, 6));
            ops.extend(mul_store(1, 3, 6));
            ops.extend(mul_store(4, 0, 5));
            ops.extend(vec![
                lc(0),
                l(6, 3),
                fp(FpKind::Mul, Src::Queue, Src::Queue),
                KernelOp::Store { stream: 6 },
            ]);
            ops
        }
        // LL8 ADI integration: the largest kernel — many band products.
        8 => {
            let mut ops = Vec::new();
            for g in 0..12u32 {
                ops.extend(mul_store(g % 6, (g + 1) % 6, (g + 2) % 6));
            }
            for g in 0..6u32 {
                ops.extend(mul_acc(g % 6, (g + 3) % 6));
            }
            ops.extend(vec![
                lc(1),
                l(6, 2),
                fp(FpKind::Sub, Src::Queue, Src::Queue),
                KernelOp::Store { stream: 6 },
            ]);
            ops
        }
        // LL9 numerical integration.
        9 => {
            let mut ops = Vec::new();
            ops.extend(mul_store(0, 1, 2));
            ops.extend(mul_store(3, 4, 5));
            ops.extend(mul_store(0, 3, 6));
            ops.extend(mul_store(1, 4, 6));
            ops.extend(mul_acc(2, 5));
            ops.extend(mul_acc(0, 4));
            ops.extend(vec![
                lc(0),
                l(5, 1),
                fp(FpKind::Mul, Src::Queue, Src::Queue),
                KernelOp::Store { stream: 5 },
            ]);
            ops
        }
        // LL10 numerical differentiation: cascaded differences, many stores.
        10 => {
            let mut ops = Vec::new();
            for g in 0..7u32 {
                ops.push(l(g % 6, 0));
                ops.push(fp(FpKind::Sub, Src::Queue, Src::Acc));
                ops.push(KernelOp::Store {
                    stream: (g + 1) % 6,
                });
            }
            ops.push(l(0, 1));
            ops.push(KernelOp::PopAcc);
            ops
        }
        // LL11 first sum: x[k] = x[k-1] + y[k], running sum in r6.
        11 => vec![
            l(1, 0),
            fp(FpKind::Add, Src::Queue, Src::Acc),
            KernelOp::PopAcc,
            KernelOp::StoreAcc { stream: 0 },
        ],
        // LL12 first difference: x[k] = y[k+1] - y[k].
        12 => vec![
            l(1, 1),
            l(1, 0),
            fp(FpKind::Sub, Src::Queue, Src::Queue),
            KernelOp::Store { stream: 0 },
        ],
        // LL13 2-D particle in cell: gathers, pushes, and index work.
        13 => {
            let mut ops = Vec::new();
            ops.extend(mul_store(0, 1, 2));
            ops.extend(mul_store(3, 4, 5));
            ops.extend(mul_store(1, 3, 6));
            ops.extend(mul_store(4, 0, 2));
            for s in [5, 6] {
                ops.push(l(s, 0));
                ops.push(fp(FpKind::Add, Src::Queue, Src::Acc));
                ops.push(KernelOp::PopAcc);
            }
            for (a, b, d) in [(0, 2, 3), (1, 5, 4)] {
                ops.push(l(a, 0));
                ops.push(l(b, 0));
                ops.push(fp(FpKind::Add, Src::Queue, Src::Queue));
                ops.push(KernelOp::Store { stream: d });
            }
            ops
        }
        // LL14 1-D particle in cell.
        14 => {
            let mut ops = Vec::new();
            ops.extend(mul_store(0, 1, 2));
            ops.extend(mul_store(3, 4, 5));
            ops.extend(mul_store(0, 4, 6));
            for s in [2, 5] {
                ops.push(l(s, 0));
                ops.push(fp(FpKind::Add, Src::Queue, Src::Acc));
                ops.push(KernelOp::PopAcc);
            }
            ops.push(l(6, 1));
            ops.push(l(6, 0));
            ops.push(fp(FpKind::Sub, Src::Queue, Src::Queue));
            ops.push(KernelOp::Store { stream: 6 });
            ops
        }
        _ => panic!("kernel index {index} out of range 1..=14"),
    }
}

/// Builds kernel `index` (1-based) with its Table I size target.
pub fn kernel(index: usize) -> Kernel {
    Kernel {
        index,
        name: KERNEL_NAMES[index - 1],
        ops: kernel_ops(index),
        target_instructions: TABLE1_INNER_LOOP_BYTES[index - 1] / 4,
    }
}

/// Description of one loop inside a built [`LivermoreSuite`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    /// 1-based kernel number.
    pub index: usize,
    /// Kernel name.
    pub name: &'static str,
    /// Inner-loop size in bytes under the suite's format.
    pub inner_loop_bytes: u32,
    /// Inner-loop size in instructions.
    pub body_instructions: u32,
    /// Calibrated trip count.
    pub trips: u32,
    /// Byte address of the loop top in the program.
    pub top_address: u32,
}

/// The combined 14-kernel benchmark program.
#[derive(Debug, Clone)]
pub struct LivermoreSuite {
    program: Program,
    loops: Vec<LoopInfo>,
    expected_instructions: u64,
}

impl LivermoreSuite {
    /// Builds the benchmark under `format`.
    ///
    /// Under [`InstrFormat::Fixed32`] the result is calibrated to the
    /// paper: inner-loop bytes match Table I and the executed instruction
    /// count is exactly [`PAPER_TOTAL_INSTRUCTIONS`].
    ///
    /// # Errors
    ///
    /// Returns a message if a kernel violates the LDQ queue discipline or
    /// calibration fails — both are construction-time bugs, surfaced as
    /// errors so tests report them legibly.
    pub fn build(format: InstrFormat) -> Result<LivermoreSuite, String> {
        Self::build_with_scale(format, 1)
    }

    /// Builds a reduced version of the benchmark with trip counts divided
    /// by `divisor` (minimum 8 trips per loop). Inner-loop sizes still
    /// match Table I; the executed instruction count shrinks accordingly.
    /// Intended for benchmark harness iterations where the full 150k
    /// instruction run would dominate measurement time.
    ///
    /// # Errors
    ///
    /// As for [`build`](Self::build). `divisor` of zero is an error.
    pub fn build_scaled(format: InstrFormat, divisor: u32) -> Result<LivermoreSuite, String> {
        if divisor == 0 {
            return Err("divisor must be positive".into());
        }
        Self::build_with_scale(format, divisor)
    }

    fn build_with_scale(format: InstrFormat, divisor: u32) -> Result<LivermoreSuite, String> {
        let kernels: Vec<Kernel> = (1..=14).map(kernel).collect();
        for k in &kernels {
            k.check_queue_discipline()?;
        }
        let bodies: Vec<u32> = kernels.iter().map(|k| k.target_instructions).collect();

        // Executed instructions: global prologue (2) + per-loop prologue
        // (6 each) + halt (1) + Σ trips·body.
        let fixed: u64 = 2 + 14 * 6 + 1;
        let base: Vec<u32> = LFK_LOOP_LENGTHS
            .iter()
            .map(|&n| (n / (2 * divisor)).max(8))
            .collect();
        let trips = if divisor == 1 {
            calibrate_trips(&base, &bodies, fixed, PAPER_TOTAL_INSTRUCTIONS, (0, 2), 8)?
        } else {
            base
        };

        let r1 = Reg::new(1);
        let r2 = Reg::new(2);
        let r3 = Reg::new(3);
        let r4 = Reg::new(4);
        let r5 = Reg::new(5);
        let r6 = Reg::new(6);
        let b0 = BranchReg::new(0);

        let mut b = ProgramBuilder::new(format);
        // Global prologue: FPU base and scratch.
        b.push(Instruction::Lim {
            rd: r5,
            imm: -4096, // sign-extends to FPU_BASE = 0xFFFF_F000
        });
        b.push(Instruction::Lim { rd: r4, imm: 0 });

        for (i, k) in kernels.iter().enumerate() {
            let label = format!("loop{}", k.index);
            let region_hi = ((DATA_BASE + i as u32 * LOOP_REGION) >> 16) as u16;
            // Per-loop prologue: trip counter, data-region pointer,
            // constants base, accumulator, loop-top branch register.
            b.push(Instruction::Lim {
                rd: r1,
                imm: i16::try_from(trips[i]).map_err(|_| "trip count exceeds lim range")?,
            });
            b.push(Instruction::Lim { rd: r2, imm: 0 });
            b.push(Instruction::Lui {
                rd: r2,
                imm: region_hi,
            });
            b.push(Instruction::AluImm {
                op: pipe_isa::AluOp::Add,
                rd: r3,
                rs1: r2,
                imm: CONST_AREA,
            });
            b.push(Instruction::Lim { rd: r6, imm: 0 });
            b.lbr_label(b0, label.clone());
            b.label(label);
            b.extend(k.lower_body(b0));
        }
        b.push(Instruction::Halt);

        // Initial data: a few nonzero floats at the head of every stream
        // plus the per-loop constants (the rest of the arrays read as 0.0).
        for i in 0..14u32 {
            let region = DATA_BASE + i * LOOP_REGION;
            for stream in 0..7u32 {
                for e in 0..16u32 {
                    let v = 1.0f32 + (stream as f32) * 0.5 + (e as f32) * 0.25;
                    b.data_word(region + stream * 0x1000 + e * 4, v.to_bits());
                }
            }
            for c in 0..4u32 {
                b.data_word(
                    region + CONST_AREA as u32 + c * 4,
                    (0.5f32 * (c + 1) as f32).to_bits(),
                );
            }
        }

        let program = b.build().map_err(|e| e.to_string())?;

        let mut infos = Vec::with_capacity(14);
        for (i, k) in kernels.iter().enumerate() {
            let top = program.symbols()[&format!("loop{}", k.index)];
            let body = k.lower_body(b0);
            let bytes: u32 = body.iter().map(|ins| ins.size_bytes(format)).sum();
            infos.push(LoopInfo {
                index: k.index,
                name: k.name,
                inner_loop_bytes: bytes,
                body_instructions: k.target_instructions,
                trips: trips[i],
                top_address: top,
            });
        }

        let expected = fixed
            + trips
                .iter()
                .zip(&bodies)
                .map(|(&t, &bi)| u64::from(t) * u64::from(bi))
                .sum::<u64>();

        Ok(LivermoreSuite {
            program,
            loops: infos,
            expected_instructions: expected,
        })
    }

    /// The combined benchmark program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Per-loop metadata (Table I reproduction).
    pub fn loops(&self) -> &[LoopInfo] {
        &self.loops
    }

    /// The exact number of instructions one run executes.
    pub fn expected_instructions(&self) -> u64 {
        self.expected_instructions
    }
}

/// Builds the paper's benchmark: the 14 kernels under the fixed 32-bit
/// format, calibrated to 150,575 executed instructions.
///
/// # Panics
///
/// Panics if suite construction fails — construction is deterministic and
/// covered by tests, so a failure indicates a build-breaking code change.
pub fn livermore_benchmark() -> LivermoreSuite {
    LivermoreSuite::build(InstrFormat::Fixed32).expect("livermore suite builds")
}

/// Builds a single kernel as a standalone program (prologue, `trips`
/// iterations, halt) for focused tests and micro-benchmarks.
///
/// # Errors
///
/// Returns a message for invalid kernels or out-of-range trip counts.
pub fn single_kernel_program(
    index: usize,
    trips: u32,
    format: InstrFormat,
) -> Result<Program, String> {
    kernel_program(&kernel(index), trips, format)
}

/// Builds an arbitrary [`Kernel`] as a standalone program with the
/// standard register conventions and data layout. Useful for fuzzing the
/// simulator with randomly composed (queue-disciplined) kernels.
///
/// # Errors
///
/// Returns a message for invalid kernels or out-of-range trip counts.
pub fn kernel_program(k: &Kernel, trips: u32, format: InstrFormat) -> Result<Program, String> {
    k.check_queue_discipline()?;
    let r1 = Reg::new(1);
    let r2 = Reg::new(2);
    let r3 = Reg::new(3);
    let r4 = Reg::new(4);
    let r5 = Reg::new(5);
    let r6 = Reg::new(6);
    let b0 = BranchReg::new(0);

    let mut b = ProgramBuilder::new(format);
    b.push(Instruction::Lim { rd: r5, imm: -4096 });
    b.push(Instruction::Lim { rd: r4, imm: 0 });
    b.push(Instruction::Lim {
        rd: r1,
        imm: i16::try_from(trips).map_err(|_| "trip count exceeds lim range")?,
    });
    b.push(Instruction::Lim { rd: r2, imm: 0 });
    b.push(Instruction::Lui {
        rd: r2,
        imm: (DATA_BASE >> 16) as u16,
    });
    b.push(Instruction::AluImm {
        op: pipe_isa::AluOp::Add,
        rd: r3,
        rs1: r2,
        imm: CONST_AREA,
    });
    b.push(Instruction::Lim { rd: r6, imm: 0 });
    b.lbr_label(b0, "top");
    b.label("top");
    b.extend(k.lower_body(b0));
    b.push(Instruction::Halt);
    b.build().map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_pass_queue_discipline() {
        for i in 1..=14 {
            kernel(i)
                .check_queue_discipline()
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn inner_loop_sizes_match_table1() {
        let suite = livermore_benchmark();
        for (info, &expect) in suite.loops().iter().zip(&TABLE1_INNER_LOOP_BYTES) {
            assert_eq!(
                info.inner_loop_bytes, expect,
                "loop {} ({})",
                info.index, info.name
            );
        }
    }

    #[test]
    fn calibrated_to_paper_instruction_count() {
        let suite = livermore_benchmark();
        assert_eq!(suite.expected_instructions(), PAPER_TOTAL_INSTRUCTIONS);
    }

    #[test]
    fn loops_fall_through_in_order() {
        let suite = livermore_benchmark();
        let tops: Vec<u32> = suite.loops().iter().map(|l| l.top_address).collect();
        assert!(tops.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn mixed_format_is_denser() {
        let fixed = livermore_benchmark();
        let mixed = LivermoreSuite::build(InstrFormat::Mixed).unwrap();
        for (f, m) in fixed.loops().iter().zip(mixed.loops()) {
            assert!(m.inner_loop_bytes < f.inner_loop_bytes, "loop {}", f.index);
        }
        assert_eq!(
            mixed.expected_instructions(),
            fixed.expected_instructions(),
            "format changes size, not instruction count"
        );
    }

    #[test]
    fn single_kernel_program_builds() {
        for i in 1..=14 {
            let p = single_kernel_program(i, 5, InstrFormat::Fixed32).unwrap();
            assert!(p.static_count() > 0);
        }
    }

    #[test]
    fn scaled_suite_is_smaller_but_same_shape() {
        let full = livermore_benchmark();
        let scaled = LivermoreSuite::build_scaled(InstrFormat::Fixed32, 10).unwrap();
        assert!(scaled.expected_instructions() < full.expected_instructions() / 4);
        for (a, b) in full.loops().iter().zip(scaled.loops()) {
            assert_eq!(a.inner_loop_bytes, b.inner_loop_bytes, "loop {}", a.index);
        }
        assert!(LivermoreSuite::build_scaled(InstrFormat::Fixed32, 0).is_err());
    }

    #[test]
    fn half_the_loops_fit_in_128_bytes() {
        // The paper explains the knee at 128 bytes by half the inner loops
        // fitting in a 128-byte cache.
        let n = TABLE1_INNER_LOOP_BYTES
            .iter()
            .filter(|&&b| b <= 128)
            .count();
        assert_eq!(n, 7);
    }
}
