//! # pipe-workloads
//!
//! Workload generators for the PIPE simulation.
//!
//! The centerpiece is [`LivermoreSuite`]: PIPE-assembly versions of the
//! first 14 Lawrence Livermore kernels, compiled back-to-back into one
//! program, exactly as the paper's benchmark (§5):
//!
//! * each kernel's **inner-loop byte size matches Table I** of the paper
//!   (116, 204, 64, ... bytes under the fixed 32-bit format);
//! * the full run executes **exactly 150,575 instructions**, the paper's
//!   instruction count, via calibrated trip counts;
//! * kernels generate the paper's characteristic memory traffic: streaming
//!   array loads, stores, and floating-point operations performed by
//!   shipping operand pairs to the **off-chip memory-mapped FPU** (a high
//!   data-request rate per inner loop, the property the paper chose the
//!   Livermore loops for);
//! * each loop ends with a prepare-to-branch with compiler-filled delay
//!   slots, and falling through to the next loop guarantees the next
//!   kernel starts cold in the instruction cache.
//!
//! The code generator respects the PIPE load-queue FIFO discipline: every
//! value pushed into the LDQ (by a load or an FPU result) is consumed in
//! allocation order. [`codegen`] contains a symbolic checker that verifies
//! this for every kernel, and the crate's tests run each kernel to
//! completion on the functional simulator.
//!
//! Synthetic workloads ([`synthetic`]) cover unit tests, examples and
//! micro-benchmarks: straight-line code, tight loops, branch-heavy code and
//! load/store stress. [`traces`] generates synthetic instruction-address
//! *traces* (loop nests, call-heavy code, random branching) as stimulus
//! for `pipe-trace`'s trace-driven replay.

pub mod calibrate;
pub mod codegen;
pub mod livermore;
pub mod synthetic;
pub mod traces;

pub use calibrate::calibrate_trips;
pub use codegen::{FpKind, Kernel, KernelOp, Src};
pub use livermore::{
    kernel_program, livermore_benchmark, single_kernel_program, LivermoreSuite, LoopInfo,
    PAPER_TOTAL_INSTRUCTIONS, TABLE1_INNER_LOOP_BYTES,
};
