//! Synthetic instruction-address traces for trace-driven replay.
//!
//! These generators produce fetch-address *sequences* (not programs):
//! the raw stimulus for `pipe-trace`'s address-trace replay path, which
//! backs them with a synthetic `nop` image and models every
//! discontinuity as a taken branch. They exercise fetch-engine
//! behaviours the Livermore benchmark under-represents — deep loop
//! nests, call/return locality, and unpredictable branching — cheaply
//! and at any scale.
//!
//! All addresses are 4-byte aligned (the fixed-32 instruction granule)
//! and generation is fully deterministic: the same parameters (and
//! seed, for [`branch_random`]) always yield the same trace.

/// Instruction granule: fixed-32 instructions are 4 bytes.
const STEP: u32 = 4;

/// A nest of `depth` counted loops, innermost first: each level runs
/// `body` sequential instructions and `trips` iterations per entry of
/// its enclosing level. Models the paper's own workload shape (nested
/// numeric kernels) with controllable depth — high spatial locality,
/// regular backward branches.
///
/// `base` is the first instruction address. The trace length is
/// `body * trips^depth + O(trips^depth)`; keep `trips.pow(depth)`
/// modest.
pub fn loop_nest(base: u32, depth: u32, body: u32, trips: u32) -> Vec<u32> {
    let depth = depth.max(1);
    let body = body.max(1);
    let trips = trips.max(1);
    let mut addrs = Vec::new();
    // Each nesting level occupies its own code range: level 0 (the
    // innermost body) at `base`, each outer level's loop-control code
    // after it.
    let level_bytes = body * STEP;
    emit_level(&mut addrs, base, depth, level_bytes, trips);
    addrs
}

fn emit_level(addrs: &mut Vec<u32>, base: u32, level: u32, level_bytes: u32, trips: u32) {
    let my_base = base + (level - 1) * level_bytes;
    for _ in 0..trips {
        if level == 1 {
            for i in 0..level_bytes / STEP {
                addrs.push(base + i * STEP);
            }
        } else {
            emit_level(addrs, base, level - 1, level_bytes, trips);
        }
        // The level's own loop-control instruction (test + branch back).
        addrs.push(my_base + level_bytes - STEP);
    }
}

/// A call-heavy trace: a main loop that calls `callees` distinct leaf
/// functions in rotation, each `callee_body` instructions long, placed
/// `spread` bytes apart. Models instruction working sets larger than a
/// small cache with frequent transfers of control — the access pattern
/// that punishes cache-less buffer schemes and rewards real caches.
pub fn call_heavy(base: u32, calls: u32, callees: u32, callee_body: u32, spread: u32) -> Vec<u32> {
    let callees = callees.max(1);
    let callee_body = callee_body.max(1);
    let spread = spread.max(callee_body * STEP).next_multiple_of(STEP);
    let mut addrs = Vec::new();
    let caller_len = 4u32; // call site: set up, call, receive, loop back
    let callee_base = base + caller_len * STEP;
    for c in 0..calls {
        // Caller block.
        for i in 0..caller_len {
            addrs.push(base + i * STEP);
        }
        // Callee body.
        let target = callee_base + (c % callees) * spread;
        for i in 0..callee_body {
            addrs.push(target + i * STEP);
        }
    }
    addrs
}

/// A branch-random trace: `blocks` basic blocks of `block_len`
/// instructions each; after every block a deterministic xorshift PRNG
/// (seeded with `seed`) picks the next block. Models the worst case for
/// sequential prefetching — little spatial locality beyond a basic
/// block, every block boundary a potential redirect.
pub fn branch_random(base: u32, blocks: u32, block_len: u32, steps: u32, seed: u64) -> Vec<u32> {
    let blocks = blocks.max(1);
    let block_len = block_len.max(1);
    // xorshift must not start at zero; XOR with a constant keeps
    // distinct seeds distinct (unlike `seed | 1`).
    let mut rng = seed ^ 0x9E37_79B9_7F4A_7C15;
    if rng == 0 {
        rng = 0x9E37_79B9_7F4A_7C15;
    }
    let mut addrs = Vec::new();
    let mut block = 0u32;
    for _ in 0..steps {
        let block_base = base + block * block_len * STEP;
        for i in 0..block_len {
            addrs.push(block_base + i * STEP);
        }
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        block = (rng % u64::from(blocks)) as u32;
    }
    addrs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aligned(addrs: &[u32]) -> bool {
        addrs.iter().all(|a| a % STEP == 0)
    }

    #[test]
    fn loop_nest_shape() {
        let t = loop_nest(0x100, 2, 4, 3);
        // Inner body of 4 instrs runs 3*3 times, plus 3 inner loop-control
        // per outer trip and 3 outer loop-control.
        assert_eq!(t.len(), 4 * 9 + 3 * 3 + 3);
        assert!(aligned(&t));
        assert_eq!(t[0], 0x100);
        // Deterministic.
        assert_eq!(t, loop_nest(0x100, 2, 4, 3));
    }

    #[test]
    fn call_heavy_rotates_callees() {
        let t = call_heavy(0, 6, 3, 8, 64);
        assert!(aligned(&t));
        assert_eq!(t.len() as u32, 6 * (4 + 8));
        // Three distinct callee entry addresses.
        let mut entries: Vec<u32> = t
            .chunks(12)
            .map(|call| call[4]) // first callee instruction
            .collect();
        entries.sort_unstable();
        entries.dedup();
        assert_eq!(entries.len(), 3);
    }

    #[test]
    fn branch_random_is_seeded() {
        let a = branch_random(0, 16, 4, 100, 42);
        let b = branch_random(0, 16, 4, 100, 42);
        let c = branch_random(0, 16, 4, 100, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(aligned(&a));
        assert_eq!(a.len(), 400);
    }
}
