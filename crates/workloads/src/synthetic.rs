//! Synthetic workloads for tests, examples and micro-benchmarks.

use pipe_isa::{AluOp, BranchReg, Cond, InstrFormat, Instruction, Program, ProgramBuilder, Reg};

/// A straight-line program of `n` independent ALU instructions plus a
/// halt. Exercises pure sequential fetch with no branches or memory
/// traffic.
pub fn straight_line(n: u32, format: InstrFormat) -> Program {
    let mut b = ProgramBuilder::new(format);
    for i in 0..n {
        b.push(Instruction::AluImm {
            op: AluOp::Add,
            rd: Reg::new((i % 6) as u8),
            rs1: Reg::new((i % 6) as u8),
            imm: 1,
        });
    }
    b.push(Instruction::Halt);
    b.build().expect("straight_line builds")
}

/// A tight loop with a `body` of filler ALU instructions executed `trips`
/// times. `body` is the number of instructions between the loop top and
/// the prepare-to-branch; total inner-loop size is `body + 2` instructions
/// plus delay slots.
pub fn tight_loop(body: u32, trips: u16, format: InstrFormat) -> Program {
    assert!(trips > 0, "tight_loop needs at least one trip");
    let r1 = Reg::new(1);
    let r2 = Reg::new(2);
    let b0 = BranchReg::new(0);
    let mut b = ProgramBuilder::new(format);
    b.push(Instruction::Lim {
        rd: r1,
        imm: trips as i16,
    });
    b.lbr_label(b0, "top");
    b.label("top");
    for _ in 0..body {
        b.push(Instruction::AluImm {
            op: AluOp::Add,
            rd: r2,
            rs1: r2,
            imm: 1,
        });
    }
    b.push(Instruction::AluImm {
        op: AluOp::Sub,
        rd: r1,
        rs1: r1,
        imm: 1,
    });
    b.push(Instruction::Pbr {
        cond: Cond::Nez,
        br: b0,
        rs: r1,
        delay: 2,
    });
    b.push(Instruction::Nop);
    b.push(Instruction::Nop);
    b.push(Instruction::Halt);
    b.build().expect("tight_loop builds")
}

/// A branch-heavy program: `blocks` short basic blocks, each ending in a
/// taken branch to the next, stressing target fetches.
pub fn branch_heavy(blocks: u16, format: InstrFormat) -> Program {
    assert!(blocks > 0);
    let r0 = Reg::new(0);
    let mut b = ProgramBuilder::new(format);
    for i in 0..blocks {
        let this = format!("blk{i}");
        let next = format!("blk{}", i + 1);
        b.label(this);
        b.lbr_label(BranchReg::new(0), next.clone());
        b.push(Instruction::AluImm {
            op: AluOp::Add,
            rd: r0,
            rs1: r0,
            imm: 1,
        });
        b.push(Instruction::Pbr {
            cond: Cond::Always,
            br: BranchReg::new(0),
            rs: r0,
            delay: 1,
        });
        b.push(Instruction::Nop);
        // Shadow instructions that should be skipped by the branch.
        for _ in 0..4 {
            b.push(Instruction::AluImm {
                op: AluOp::Add,
                rd: Reg::new(5),
                rs1: Reg::new(5),
                imm: 1,
            });
        }
    }
    b.label(format!("blk{blocks}"));
    b.push(Instruction::Halt);
    b.build().expect("branch_heavy builds")
}

/// A load/store stress loop: `trips` iterations each issuing `loads`
/// streaming loads (consumed into `r0`) and one store, saturating the
/// data side of the memory interface.
pub fn memory_stress(loads: u32, trips: u16, format: InstrFormat) -> Program {
    assert!(trips > 0 && loads > 0);
    let r1 = Reg::new(1);
    let r2 = Reg::new(2);
    let b0 = BranchReg::new(0);
    let mut b = ProgramBuilder::new(format);
    b.push(Instruction::Lim {
        rd: r1,
        imm: trips as i16,
    });
    b.push(Instruction::Lim { rd: r2, imm: 0 });
    b.push(Instruction::Lui { rd: r2, imm: 0x10 });
    b.lbr_label(b0, "top");
    b.label("top");
    for i in 0..loads {
        b.push(Instruction::Load {
            base: r2,
            disp: (i * 4) as i16,
        });
    }
    for _ in 0..loads {
        // Consume each returned value.
        b.push(Instruction::Alu {
            op: AluOp::Or,
            rd: Reg::new(0),
            rs1: Reg::QUEUE,
            rs2: Reg::QUEUE,
        });
    }
    b.push(Instruction::StoreAddr { base: r2, disp: 0 });
    b.push(Instruction::Alu {
        op: AluOp::Or,
        rd: Reg::QUEUE,
        rs1: Reg::new(0),
        rs2: Reg::new(0),
    });
    b.push(Instruction::AluImm {
        op: AluOp::Add,
        rd: r2,
        rs1: r2,
        imm: 4,
    });
    b.push(Instruction::AluImm {
        op: AluOp::Sub,
        rd: r1,
        rs1: r1,
        imm: 1,
    });
    b.push(Instruction::Pbr {
        cond: Cond::Nez,
        br: b0,
        rs: r1,
        delay: 0,
    });
    b.push(Instruction::Halt);
    b.build().expect("memory_stress builds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_size() {
        let p = straight_line(10, InstrFormat::Fixed32);
        assert_eq!(p.static_count(), 11);
    }

    #[test]
    fn builders_produce_programs() {
        assert!(tight_loop(4, 3, InstrFormat::Fixed32).static_count() > 0);
        assert!(branch_heavy(3, InstrFormat::Fixed32).static_count() > 0);
        assert!(memory_stress(2, 3, InstrFormat::Fixed32).static_count() > 0);
    }

    #[test]
    #[should_panic]
    fn zero_trips_rejected() {
        let _ = tight_loop(1, 0, InstrFormat::Fixed32);
    }
}
