//! Trip-count calibration to hit the paper's exact instruction count.

/// Solves for trip counts such that
/// `fixed + Σ trips[i] * body[i] == target`, starting from `base` trip
/// counts (scaled from the real Livermore kernel loop lengths) and
/// adjusting the trips of the two kernels whose body sizes are coprime.
///
/// Returns the adjusted trip counts.
///
/// # Errors
///
/// Returns a message if no adjustment keeps every trip count at least
/// `min_trips`.
pub fn calibrate_trips(
    base: &[u32],
    body: &[u32],
    fixed: u64,
    target: u64,
    adjust: (usize, usize),
    min_trips: u32,
) -> Result<Vec<u32>, String> {
    assert_eq!(base.len(), body.len());
    let (ai, bi) = adjust;
    let current: u64 = fixed
        + base
            .iter()
            .zip(body)
            .map(|(&t, &b)| u64::from(t) * u64::from(b))
            .sum::<u64>();
    let delta = target as i64 - current as i64;
    let wa = i64::from(body[ai]);
    let wb = i64::from(body[bi]);

    // Search a in a window around delta/wa for integral b.
    let center = delta / wa;
    for da in 0..=200_000i64 {
        for a in [center - da, center + da] {
            let rem = delta - a * wa;
            if rem % wb != 0 {
                continue;
            }
            let b = rem / wb;
            let ta = i64::from(base[ai]) + a;
            let tb = i64::from(base[bi]) + b;
            if ta >= i64::from(min_trips) && tb >= i64::from(min_trips) {
                let mut out = base.to_vec();
                out[ai] = ta as u32;
                out[bi] = tb as u32;
                return Ok(out);
            }
        }
    }
    Err(format!(
        "no trip-count adjustment found for delta {delta} with bodies {wa}/{wb}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(trips: &[u32], body: &[u32], fixed: u64) -> u64 {
        fixed
            + trips
                .iter()
                .zip(body)
                .map(|(&t, &b)| u64::from(t) * u64::from(b))
                .sum::<u64>()
    }

    #[test]
    fn hits_target_exactly() {
        let base = vec![500, 50, 500];
        let body = vec![29, 51, 16];
        let fixed = 87;
        let target = 60_000;
        let trips = calibrate_trips(&base, &body, fixed, target, (0, 2), 8).unwrap();
        assert_eq!(total(&trips, &body, fixed), target);
        assert!(trips.iter().all(|&t| t >= 8));
        // Untouched loops keep their base trips.
        assert_eq!(trips[1], 50);
    }

    #[test]
    fn coprime_bodies_reach_any_sufficient_target() {
        let base = vec![100, 100];
        let body = vec![29, 16];
        for target in 5000..5050 {
            let trips = calibrate_trips(&base, &body, 0, target, (0, 1), 1).unwrap();
            assert_eq!(total(&trips, &body, 0), target, "target {target}");
        }
    }

    #[test]
    fn impossible_target_errors() {
        // Bodies share a factor; odd residuals are unreachable.
        let base = vec![10, 10];
        let body = vec![4, 8];
        let err = calibrate_trips(&base, &body, 0, 121, (0, 1), 1);
        assert!(err.is_err());
    }
}
