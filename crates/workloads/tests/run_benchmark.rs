//! Integration: the Livermore benchmark runs to completion on the
//! simulator and executes exactly the paper's instruction count.

use pipe_core::{run_program, FetchStrategy, SimConfig};
use pipe_icache::{CacheConfig, PipeFetchConfig};
use pipe_isa::InstrFormat;
use pipe_mem::MemConfig;
use pipe_workloads::livermore::single_kernel_program;
use pipe_workloads::{livermore_benchmark, PAPER_TOTAL_INSTRUCTIONS};

#[test]
fn each_kernel_runs_standalone() {
    for i in 1..=14 {
        let p = single_kernel_program(i, 10, InstrFormat::Fixed32).unwrap();
        let cfg = SimConfig {
            fetch: FetchStrategy::Perfect,
            max_cycles: 5_000_000,
            ..SimConfig::default()
        };
        let stats = run_program(&p, &cfg).unwrap_or_else(|e| panic!("kernel {i}: {e}"));
        assert!(stats.instructions_issued > 0, "kernel {i}");
        assert!(stats.fpu_ops > 0 || i == 0, "kernel {i} exercised the FPU");
    }
}

#[test]
fn full_benchmark_executes_exact_paper_count_perfect_fetch() {
    let suite = livermore_benchmark();
    let cfg = SimConfig {
        fetch: FetchStrategy::Perfect,
        max_cycles: 50_000_000,
        ..SimConfig::default()
    };
    let stats = run_program(suite.program(), &cfg).expect("benchmark completes");
    assert_eq!(stats.instructions_issued, PAPER_TOTAL_INSTRUCTIONS);
    assert_eq!(stats.instructions_issued, suite.expected_instructions());
    assert!(
        stats.fpu_ops > 10_000,
        "heavy FP traffic: {}",
        stats.fpu_ops
    );
    assert!(stats.loads > 20_000, "heavy load traffic: {}", stats.loads);
}

#[test]
fn full_benchmark_on_pipe_and_conventional_engines() {
    let suite = livermore_benchmark();
    let mem = MemConfig {
        access_cycles: 1,
        in_bus_bytes: 8,
        ..MemConfig::default()
    };
    for fetch in [
        FetchStrategy::Pipe(PipeFetchConfig::table2(128, 16, 16, 16)),
        FetchStrategy::conventional(CacheConfig::new(128, 16)),
    ] {
        let cfg = SimConfig {
            fetch,
            mem,
            max_cycles: 100_000_000,
            ..SimConfig::default()
        };
        let stats = run_program(suite.program(), &cfg).unwrap_or_else(|e| panic!("{fetch}: {e}"));
        assert_eq!(
            stats.instructions_issued, PAPER_TOTAL_INSTRUCTIONS,
            "under {fetch}"
        );
    }
}
