//! Differential testing: the timing-free interpreter and the cycle-level
//! processor must agree on all architectural outcomes.

use pipe_core::{interpret, FetchStrategy, Processor, SimConfig};
use pipe_icache::{
    BufferConfig, CacheConfig, ConvPrefetch, ConventionalConfig, PipeFetchConfig, TibConfig,
};
use pipe_isa::{Assembler, InstrFormat, Program, Reg};
use pipe_mem::MemConfig;

fn agree(program: &Program, fetches: &[FetchStrategy], access: u32) {
    let reference = interpret(program, 10_000_000).expect("interprets");
    for &fetch in fetches {
        let cfg = SimConfig {
            fetch,
            mem: MemConfig {
                access_cycles: access,
                ..MemConfig::default()
            },
            max_cycles: 200_000_000,
            ..SimConfig::default()
        };
        let mut proc = Processor::new(program, &cfg).expect("valid");
        proc.run().unwrap_or_else(|e| panic!("{fetch}: {e}"));
        let stats = proc.stats();
        assert_eq!(
            stats.instructions_issued, reference.instructions,
            "instruction count under {fetch}"
        );
        assert_eq!(
            stats.branches_taken, reference.branches_taken,
            "taken branches under {fetch}"
        );
        assert_eq!(stats.loads, reference.loads, "loads under {fetch}");
        assert_eq!(stats.stores, reference.stores, "stores under {fetch}");
        assert_eq!(stats.fpu_ops, reference.fpu_ops, "fpu ops under {fetch}");
        for i in 0..7u8 {
            assert_eq!(
                proc.regs().read(Reg::new(i)),
                reference.regs[i as usize],
                "r{i} under {fetch}"
            );
        }
        assert_eq!(
            *proc.mem().data(),
            reference.memory,
            "data memory under {fetch}"
        );
    }
}

fn all_engines() -> Vec<FetchStrategy> {
    vec![
        FetchStrategy::Perfect,
        FetchStrategy::conventional(CacheConfig::new(32, 16)),
        FetchStrategy::Conventional(ConventionalConfig {
            cache: CacheConfig::new(32, 16),
            prefetch: ConvPrefetch::OnMissOnly,
        }),
        FetchStrategy::Conventional(ConventionalConfig {
            cache: CacheConfig::new(32, 16),
            prefetch: ConvPrefetch::Tagged,
        }),
        FetchStrategy::Pipe(PipeFetchConfig::table2(32, 8, 8, 8)),
        FetchStrategy::Pipe(PipeFetchConfig::table2(64, 32, 16, 32)),
        FetchStrategy::Pipe(PipeFetchConfig {
            partial_lines: true,
            ..PipeFetchConfig::table2(32, 16, 16, 16)
        }),
        FetchStrategy::Tib(TibConfig::with_budget(32, 16)),
        FetchStrategy::Buffers(BufferConfig {
            buffers: 2,
            cache: None,
        }),
        FetchStrategy::Buffers(BufferConfig {
            buffers: 4,
            cache: Some(CacheConfig::new(64, 16)),
        }),
    ]
}

#[test]
fn differential_branchy_program() {
    let src = r#"
        lim  r1, 12
        lim  r2, 0
        lim  r3, 0
        lbr  b0, even
        lbr  b1, done
    even:
        addi r2, r2, 5
        subi r1, r1, 1
        pbr.eqz b1, r1, 2
        addi r3, r3, 1
        nop
        pbr  b0, r0, 1
        nop
        halt
    done:
        halt
    "#;
    let p = Assembler::new(InstrFormat::Fixed32).assemble(src).unwrap();
    agree(&p, &all_engines(), 3);
}

#[test]
fn differential_store_load_fpu_chain() {
    let src = r#"
        lim  r5, -4096
        lim  r1, 0x400
        lui  r2, 0x4080          ; 4.0
        lui  r3, 0x3F00          ; 0.5
        sta  r1, 0
        or   r7, r2, r2          ; mem[0x400] = 4.0
        ldw  r1, 0
        sta  r5, 0
        or   r7, r7, r7          ; FPU A = mem[0x400]
        sta  r5, 4
        or   r7, r3, r3          ; * 0.5
        sta  r1, 4
        or   r7, r7, r7          ; mem[0x404] = product (2.0)
        halt
    "#;
    let p = Assembler::new(InstrFormat::Fixed32).assemble(src).unwrap();
    let reference = interpret(&p, 1000).unwrap();
    assert_eq!(reference.memory.read(0x404), 2.0f32.to_bits());
    agree(&p, &all_engines(), 6);
}

#[test]
fn differential_mixed_format() {
    let src =
        "lim r1, 6\nlbr b0, top\ntop: add r2, r2, r1\nsubi r1, r1, 1\npbr.nez b0, r1, 0\nhalt\n";
    let p = Assembler::new(InstrFormat::Mixed).assemble(src).unwrap();
    agree(&p, &all_engines(), 2);
}

#[test]
fn differential_single_livermore_kernels() {
    for index in [1usize, 5, 8, 11] {
        let p = pipe_workloads::livermore::single_kernel_program(index, 12, InstrFormat::Fixed32)
            .unwrap();
        agree(&p, &all_engines(), 3);
    }
}

#[test]
fn differential_deep_delay_slots_with_tiny_iq() {
    // 7 delay slots = 28 bytes of instructions, far more than an 8-byte
    // IQ can hold: the PIPE engine's early target preparation can never
    // start ("all the instructions guaranteed to execute" never fit in
    // the IQ at once), exercising the trigger-time fallback.
    let src = r#"
        lim  r1, 4
        lim  r2, 0
        lbr  b0, top
    top:
        subi r1, r1, 1
        pbr.nez b0, r1, 7
        addi r2, r2, 1
        addi r2, r2, 1
        addi r2, r2, 1
        addi r2, r2, 1
        addi r2, r2, 1
        addi r2, r2, 1
        addi r2, r2, 1
        halt
    "#;
    let p = Assembler::new(InstrFormat::Fixed32).assemble(src).unwrap();
    let reference = interpret(&p, 100_000).unwrap();
    assert_eq!(reference.regs[2], 4 * 7);
    let engines = vec![
        FetchStrategy::Pipe(PipeFetchConfig::table2(16, 8, 8, 8)),
        FetchStrategy::Pipe(PipeFetchConfig::table2(64, 8, 8, 8)),
        FetchStrategy::Tib(TibConfig {
            entries: 2,
            entry_bytes: 8,
            fetch_queue_bytes: 8,
        }),
        FetchStrategy::Buffers(BufferConfig {
            buffers: 1,
            cache: None,
        }),
    ];
    for access in [1, 6] {
        agree(&p, &engines, access);
    }
}

#[test]
fn differential_full_livermore_benchmark() {
    let suite = pipe_workloads::livermore_benchmark();
    let reference = interpret(suite.program(), 1_000_000).expect("interprets");
    assert_eq!(reference.instructions, suite.expected_instructions());

    // One representative timed configuration (the full engine matrix is
    // covered by the smaller differential programs above).
    let cfg = SimConfig {
        fetch: FetchStrategy::Pipe(PipeFetchConfig::table2(64, 16, 16, 16)),
        mem: MemConfig {
            access_cycles: 6,
            in_bus_bytes: 8,
            ..MemConfig::default()
        },
        max_cycles: 200_000_000,
        ..SimConfig::default()
    };
    let mut proc = Processor::new(suite.program(), &cfg).unwrap();
    proc.run().unwrap();
    let stats = proc.stats();
    assert_eq!(stats.instructions_issued, reference.instructions);
    assert_eq!(stats.branches_taken, reference.branches_taken);
    assert_eq!(stats.fpu_ops, reference.fpu_ops);
    assert_eq!(*proc.mem().data(), reference.memory);
}
