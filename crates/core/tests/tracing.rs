//! Trace-infrastructure integration: events are complete, ordered, and
//! consistent with the statistics.

use std::cell::RefCell;
use std::rc::Rc;

use pipe_core::{
    FetchStrategy, Processor, Region, RegionProfiler, SimConfig, TraceEvent, VecTrace,
};
use pipe_icache::PipeFetchConfig;
use pipe_isa::{Assembler, InstrFormat};
use pipe_mem::MemConfig;

fn traced_run(
    src: &str,
    fetch: FetchStrategy,
    access: u32,
) -> (Vec<TraceEvent>, pipe_core::SimStats) {
    let program = Assembler::new(InstrFormat::Fixed32).assemble(src).unwrap();
    let cfg = SimConfig {
        fetch,
        mem: MemConfig {
            access_cycles: access,
            ..MemConfig::default()
        },
        ..SimConfig::default()
    };
    let sink = Rc::new(RefCell::new(VecTrace::new()));
    let proc = Processor::new(&program, &cfg).unwrap();
    let mut proc = proc.with_trace(Rc::clone(&sink));
    proc.run().unwrap();
    let events = sink.borrow().events().to_vec();
    (events, proc.into_stats())
}

const LOOP_SRC: &str =
    "lim r1, 3\nlbr b0, top\ntop: subi r1, r1, 1\npbr.nez b0, r1, 1\nnop\nhalt\n";

#[test]
fn every_prehalt_cycle_has_an_issue_or_stall() {
    let (events, stats) = traced_run(
        LOOP_SRC,
        FetchStrategy::Pipe(PipeFetchConfig::table2(32, 16, 16, 16)),
        3,
    );
    let halted_at = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::Halted { cycle } => Some(*cycle),
            _ => None,
        })
        .expect("halt event");
    let issue_or_stall = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Issue { .. } | TraceEvent::Stall { .. }))
        .count() as u64;
    assert_eq!(issue_or_stall, halted_at + 1, "one per pre-halt cycle");
    let issues = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Issue { .. }))
        .count() as u64;
    assert_eq!(issues, stats.instructions_issued);
}

#[test]
fn events_are_cycle_ordered_with_addresses() {
    let (events, _) = traced_run(
        LOOP_SRC,
        FetchStrategy::Pipe(PipeFetchConfig::table2(32, 16, 16, 16)),
        1,
    );
    assert!(events.windows(2).all(|w| w[0].cycle() <= w[1].cycle()));
    // Every issue carries an address under the PIPE engine.
    for e in &events {
        if let TraceEvent::Issue { addr, .. } = e {
            assert!(addr.is_some());
        }
    }
    // First issue is at the entry point.
    let first = events.iter().find_map(|e| match e {
        TraceEvent::Issue { addr, .. } => *addr,
        _ => None,
    });
    assert_eq!(first, Some(0));
}

#[test]
fn branch_resolutions_traced() {
    let (events, stats) = traced_run(
        LOOP_SRC,
        FetchStrategy::Pipe(PipeFetchConfig::table2(32, 16, 16, 16)),
        1,
    );
    let taken = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::BranchResolved { taken: true, .. }))
        .count() as u64;
    let not_taken = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::BranchResolved { taken: false, .. }))
        .count() as u64;
    assert_eq!(taken, stats.branches_taken);
    assert_eq!(not_taken, stats.branches_not_taken);
}

#[test]
fn region_profiler_splits_loop_from_prologue() {
    let program = Assembler::new(InstrFormat::Fixed32)
        .assemble(LOOP_SRC)
        .unwrap();
    let top = program.symbols()["top"];
    let cfg = SimConfig {
        fetch: FetchStrategy::Pipe(PipeFetchConfig::table2(32, 16, 16, 16)),
        ..SimConfig::default()
    };
    let profiler = Rc::new(RefCell::new(RegionProfiler::new(vec![
        Region {
            name: "prologue".into(),
            start: 0,
            end: top,
        },
        Region {
            name: "loop".into(),
            start: top,
            end: program.end(),
        },
    ])));
    let proc = Processor::new(&program, &cfg).unwrap();
    let mut proc = proc.with_trace(Rc::clone(&profiler));
    proc.run().unwrap();
    let stats = proc.stats();

    let p = profiler.borrow();
    let results: Vec<_> = p
        .results()
        .map(|(r, c, i)| (r.name.clone(), c, i))
        .collect();
    assert_eq!(results[0].2, 2, "prologue instructions");
    assert_eq!(
        results[0].2 + results[1].2,
        stats.instructions_issued,
        "all instructions attributed"
    );
    assert!(results[1].1 >= results[1].2, "cycles >= instructions");
}
