//! # pipe-core
//!
//! A cycle-level simulator of the PIPE single-chip processor (Goodman et
//! al., ISCA 1985; Farrens & Pleszkun, ISCA 1989).
//!
//! The processor models the architectural features the paper's experiments
//! depend on:
//!
//! * **Decoupled memory access through architectural queues.** A load
//!   pushes its address on the Load Address Queue (LAQ); the value later
//!   arrives on the Load Queue (LDQ), whose head is architecturally visible
//!   as register `r7`. Stores push addresses on the Store Address Queue
//!   (SAQ) and data (any instruction writing `r7`) on the Store Data Queue
//!   (SDQ); address/data pairs are sent to memory together. Multiple
//!   requests can be outstanding; issue blocks only when an instruction
//!   *reads* `r7` before the data has returned.
//! * **Prepare-to-branch (PBR)** with 0–7 compiler-specified delay slots
//!   and eight dedicated branch registers.
//! * **A memory-mapped FPU**: a pair of stores starts an operation whose
//!   result returns into the LDQ after a constant latency.
//! * **Pluggable instruction fetch**: the conventional always-prefetch
//!   cache or the PIPE cache + IQ + IQB strategy (see `pipe-icache`),
//!   selected by [`FetchStrategy`].
//!
//! The performance metric, following the paper, is the total number of
//! cycles to execute a program ([`SimStats::cycles`]).
//!
//! ```
//! use pipe_core::{run_program, SimConfig};
//! use pipe_isa::{Assembler, InstrFormat};
//!
//! let program = Assembler::new(InstrFormat::Fixed32)
//!     .assemble("lim r1, 5\nlbr b0, top\ntop: subi r1, r1, 1\npbr.nez b0, r1, 0\nhalt\n")
//!     .unwrap();
//! let stats = run_program(&program, &SimConfig::default()).unwrap();
//! assert_eq!(stats.instructions_issued, 3 + 5 * 2); // prologue + 5 iterations
//! ```

pub mod batch;
pub mod config;
pub mod interp;
pub mod processor;
pub mod queues;
pub mod regfile;
pub mod stats;
pub mod trace;

pub use batch::run_batch;
pub use config::{FetchStrategy, SimConfig};
pub use interp::{interpret, InterpError, InterpResult, Interpreter};
pub use processor::{run_decoded, run_program, Processor, SimError};
pub use queues::{AddressQueue, LoadQueue};
pub use regfile::{BranchRegFile, RegFile};
pub use stats::{SimStats, StallBreakdown};
pub use trace::{
    DataOp, MultiSink, NoTrace, Region, RegionProfiler, StallReason, TextTrace, TraceEvent,
    TraceSink, VecTrace,
};
