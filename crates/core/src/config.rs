//! Simulation configuration.

use std::fmt;

use pipe_icache::{BufferConfig, CacheConfig, ConvPrefetch, PipeFetchConfig, TibConfig};
use pipe_mem::MemConfig;

/// Which instruction-fetch front-end to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchStrategy {
    /// Perfect fetch: one instruction per cycle, no memory traffic. For
    /// functional testing and upper-bound comparisons.
    Perfect,
    /// Hill's always-prefetch conventional cache (paper §4.1).
    Conventional(CacheConfig),
    /// A conventional cache with one of Hill's alternative prefetch
    /// strategies (on-miss-only, tagged).
    ConventionalPrefetch(CacheConfig, ConvPrefetch),
    /// The PIPE cache + IQ + IQB strategy (paper §4.2).
    Pipe(PipeFetchConfig),
    /// A cache-less Target Instruction Buffer (paper §2.1, AMD29000
    /// style).
    Tib(TibConfig),
    /// Rau & Rossman-style prefetch buffers with an optional instruction
    /// cache (paper §2.1).
    Buffers(BufferConfig),
}

impl FetchStrategy {
    /// A short name for reports.
    pub fn label(&self) -> String {
        match self {
            FetchStrategy::Perfect => "perfect".to_string(),
            FetchStrategy::Conventional(c) => format!("conventional({}B)", c.size_bytes),
            FetchStrategy::ConventionalPrefetch(c, p) => {
                format!("conventional({}B, {p})", c.size_bytes)
            }
            FetchStrategy::Pipe(c) => format!(
                "pipe({}B, line {}, iq {}, iqb {})",
                c.cache.size_bytes, c.cache.line_bytes, c.iq_bytes, c.iqb_bytes
            ),
            FetchStrategy::Tib(c) => {
                format!("tib({}x{}B)", c.entries, c.entry_bytes)
            }
            FetchStrategy::Buffers(c) => match c.cache {
                Some(cache) => format!("buffers({}x4B + {}B cache)", c.buffers, cache.size_bytes),
                None => format!("buffers({}x4B)", c.buffers),
            },
        }
    }
}

impl fmt::Display for FetchStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Full simulation configuration: memory system, fetch strategy, and the
/// architectural queue capacities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// External memory parameters.
    pub mem: MemConfig,
    /// Instruction fetch front-end.
    pub fetch: FetchStrategy,
    /// Load Address Queue entries.
    pub laq_entries: usize,
    /// Load (data) Queue slots.
    pub ldq_entries: usize,
    /// Store Address Queue entries.
    pub saq_entries: usize,
    /// Store Data Queue entries.
    pub sdq_entries: usize,
    /// Abort the run after this many cycles (guards against deadlock bugs).
    pub max_cycles: u64,
}

impl SimConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message for invalid memory/fetch parameters or zero queue
    /// capacities.
    pub fn validate(&self) -> Result<(), String> {
        self.mem.validate()?;
        match &self.fetch {
            FetchStrategy::Perfect => {}
            FetchStrategy::Conventional(c) | FetchStrategy::ConventionalPrefetch(c, _) => {
                c.validate()?
            }
            FetchStrategy::Pipe(c) => c.validate()?,
            FetchStrategy::Tib(c) => c.validate()?,
            FetchStrategy::Buffers(c) => c.validate()?,
        }
        for (name, v) in [
            ("laq_entries", self.laq_entries),
            ("ldq_entries", self.ldq_entries),
            ("saq_entries", self.saq_entries),
            ("sdq_entries", self.sdq_entries),
        ] {
            if v == 0 {
                return Err(format!("{name} must be positive"));
            }
        }
        if self.max_cycles == 0 {
            return Err("max_cycles must be positive".into());
        }
        Ok(())
    }
}

impl Default for SimConfig {
    /// The PIPE chip as built: a 128-byte cache of sixteen 8-byte (4-word)
    /// lines with 8-byte IQ and IQB (paper §3.2), fast external memory,
    /// and 8-entry architectural queues.
    fn default() -> SimConfig {
        SimConfig {
            mem: MemConfig::default(),
            fetch: FetchStrategy::Pipe(PipeFetchConfig::table2(128, 8, 8, 8)),
            laq_entries: 8,
            ldq_entries: 8,
            saq_entries: 8,
            sdq_entries: 8,
            max_cycles: 500_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_chip() {
        let c = SimConfig::default();
        assert!(c.validate().is_ok());
        match c.fetch {
            FetchStrategy::Pipe(p) => {
                assert_eq!(p.cache.size_bytes, 128);
                assert_eq!(p.cache.line_bytes, 8);
                assert_eq!(p.iq_bytes, 8);
                assert_eq!(p.iqb_bytes, 8);
            }
            other => panic!("unexpected default: {other:?}"),
        }
    }

    #[test]
    fn validation_catches_zero_queues() {
        let mut c = SimConfig::default();
        c.ldq_entries = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(FetchStrategy::Perfect.label(), "perfect");
        assert!(FetchStrategy::Conventional(CacheConfig::new(64, 16))
            .label()
            .contains("64"));
    }
}
