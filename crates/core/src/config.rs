//! Simulation configuration.
//!
//! The fetch front-end is described by `pipe-icache`'s unified
//! [`FetchConfig`](pipe_icache::FetchConfig), re-exported here under its
//! historical name [`FetchStrategy`]. All engine construction goes through
//! [`FetchStrategy::build`] (directly or via `pipe_icache::EngineBuilder`);
//! the processor no longer knows the individual engine constructors.

use pipe_icache::PipeFetchConfig;
use pipe_mem::error::require_at_least;
use pipe_mem::{ConfigError, MemConfig};

pub use pipe_icache::FetchConfig as FetchStrategy;

/// Full simulation configuration: memory system, fetch strategy, and the
/// architectural queue capacities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// External memory parameters.
    pub mem: MemConfig,
    /// Instruction fetch front-end.
    pub fetch: FetchStrategy,
    /// Load Address Queue entries.
    pub laq_entries: usize,
    /// Load (data) Queue slots.
    pub ldq_entries: usize,
    /// Store Address Queue entries.
    pub saq_entries: usize,
    /// Store Data Queue entries.
    pub sdq_entries: usize,
    /// Abort the run after this many cycles (guards against deadlock bugs).
    pub max_cycles: u64,
}

impl SimConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid memory/fetch parameters or
    /// zero queue capacities.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.mem.validate()?;
        self.fetch.validate()?;
        for (name, v) in [
            ("laq_entries", self.laq_entries),
            ("ldq_entries", self.ldq_entries),
            ("saq_entries", self.saq_entries),
            ("sdq_entries", self.sdq_entries),
        ] {
            require_at_least(name, v as u64, 1)?;
        }
        require_at_least("max_cycles", self.max_cycles, 1)
    }
}

impl Default for SimConfig {
    /// The PIPE chip as built: a 128-byte cache of sixteen 8-byte (4-word)
    /// lines with 8-byte IQ and IQB (paper §3.2), fast external memory,
    /// and 8-entry architectural queues.
    fn default() -> SimConfig {
        SimConfig {
            mem: MemConfig::default(),
            fetch: FetchStrategy::Pipe(PipeFetchConfig::table2(128, 8, 8, 8)),
            laq_entries: 8,
            ldq_entries: 8,
            saq_entries: 8,
            sdq_entries: 8,
            max_cycles: 500_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipe_icache::CacheConfig;

    #[test]
    fn default_matches_chip() {
        let c = SimConfig::default();
        assert!(c.validate().is_ok());
        match c.fetch {
            FetchStrategy::Pipe(p) => {
                assert_eq!(p.cache.size_bytes, 128);
                assert_eq!(p.cache.line_bytes, 8);
                assert_eq!(p.iq_bytes, 8);
                assert_eq!(p.iqb_bytes, 8);
            }
            other => panic!("unexpected default: {other:?}"),
        }
    }

    #[test]
    fn validation_catches_zero_queues() {
        let c = SimConfig {
            ldq_entries: 0,
            ..SimConfig::default()
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::TooSmall {
                field: "ldq_entries",
                value: 0,
                min: 1,
            })
        );
    }

    #[test]
    fn labels() {
        assert_eq!(FetchStrategy::Perfect.label(), "perfect");
        assert!(FetchStrategy::conventional(CacheConfig::new(64, 16))
            .label()
            .contains("64"));
    }
}
