//! Register files: banked general-purpose registers and branch registers.

use pipe_isa::{BranchReg, Reg};

/// The sixteen 32-bit data registers: a foreground bank of eight (the only
/// visible one) and a background bank, swapped by `xchg`. This banking was
/// added to PIPE "to improve the speed of subroutine calling" (§3.1).
#[derive(Debug, Clone, Default)]
pub struct RegFile {
    banks: [[u32; 8]; 2],
    active: usize,
}

impl RegFile {
    /// Creates a register file with all registers zero.
    pub fn new() -> RegFile {
        RegFile::default()
    }

    /// Reads a foreground register. `r7` reads are intercepted by the
    /// processor (LDQ head) before reaching here; reading `r7` from the
    /// file yields its last latched value.
    pub fn read(&self, r: Reg) -> u32 {
        self.banks[self.active][r.number() as usize]
    }

    /// Writes a foreground register.
    pub fn write(&mut self, r: Reg, value: u32) {
        self.banks[self.active][r.number() as usize] = value;
    }

    /// Swaps foreground and background banks.
    pub fn exchange(&mut self) {
        self.active ^= 1;
    }

    /// Which bank is foreground (0 or 1), for inspection.
    pub fn active_bank(&self) -> usize {
        self.active
    }
}

/// The eight branch registers holding branch-target byte addresses.
#[derive(Debug, Clone, Default)]
pub struct BranchRegFile {
    regs: [u32; 8],
}

impl BranchRegFile {
    /// Creates a branch register file with all targets zero.
    pub fn new() -> BranchRegFile {
        BranchRegFile::default()
    }

    /// Reads a branch register (byte address).
    pub fn read(&self, b: BranchReg) -> u32 {
        self.regs[b.number() as usize]
    }

    /// Writes a branch register (byte address).
    pub fn write(&mut self, b: BranchReg, target: u32) {
        self.regs[b.number() as usize] = target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banks_are_independent() {
        let mut rf = RegFile::new();
        rf.write(Reg::new(1), 10);
        rf.exchange();
        assert_eq!(rf.read(Reg::new(1)), 0);
        rf.write(Reg::new(1), 20);
        rf.exchange();
        assert_eq!(rf.read(Reg::new(1)), 10);
        rf.exchange();
        assert_eq!(rf.read(Reg::new(1)), 20);
    }

    #[test]
    fn active_bank_toggles() {
        let mut rf = RegFile::new();
        assert_eq!(rf.active_bank(), 0);
        rf.exchange();
        assert_eq!(rf.active_bank(), 1);
    }

    #[test]
    fn branch_registers_hold_targets() {
        let mut bf = BranchRegFile::new();
        bf.write(BranchReg::new(3), 0x40);
        assert_eq!(bf.read(BranchReg::new(3)), 0x40);
        assert_eq!(bf.read(BranchReg::new(0)), 0);
    }
}
