//! Cycle-trace infrastructure: structured events from the processor.
//!
//! Attach a [`TraceSink`] to a [`Processor`](crate::Processor) with
//! [`Processor::with_trace`](crate::Processor::with_trace) to observe every
//! issue, stall, branch resolution and redirect as it happens. The sink is
//! a generic parameter of the processor, so the default [`NoTrace`] sink
//! compiles to nothing in the cycle loop; boxed trait objects
//! (`Box<dyn TraceSink>`) remain available when the sink is chosen at
//! run time. The crate ships three concrete sinks:
//!
//! * [`VecTrace`] — collect events into memory for assertions;
//! * [`TextTrace`] — render a human-readable line per event;
//! * [`RegionProfiler`] — attribute cycles to program regions (used by the
//!   experiment harness to produce per-Livermore-loop cycle breakdowns).

use std::fmt;

use pipe_isa::Instruction;

/// Why the issue stage did nothing this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallReason {
    /// No complete instruction available from the fetch engine.
    IFetch,
    /// An `r7` read was waiting on the LDQ head.
    DataWait,
    /// An architectural queue (LAQ/SAQ/SDQ/LDQ) was full.
    QueueFull,
    /// Gated by an unresolved or in-flight prepare-to-branch.
    Branch,
}

impl fmt::Display for StallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StallReason::IFetch => "ifetch",
            StallReason::DataWait => "data-wait",
            StallReason::QueueFull => "queue-full",
            StallReason::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// A data-side operation queued by the instruction that issued this
/// cycle. These events let a trace recorder capture the complete memory
/// "timing skeleton" of a run: replaying them re-creates the data-side
/// bus and memory-array contention that instruction fetches competed
/// with, which is what makes trace replay cycle-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataOp {
    /// A `ldw` pushed this effective address onto the load address queue.
    Load {
        /// Effective byte address.
        addr: u32,
    },
    /// A `sta` pushed this effective address onto the store address queue.
    StoreAddr {
        /// Effective byte address.
        addr: u32,
    },
    /// A write to `r7` pushed this value onto the store data queue.
    StoreData {
        /// The 32-bit value queued.
        value: u32,
    },
}

/// One trace event. Every pre-halt cycle produces exactly one `Issue` or
/// `Stall` event; the others interleave as they occur.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// An instruction issued.
    Issue {
        /// Cycle number.
        cycle: u64,
        /// Byte address of the instruction (as reported by the fetch
        /// engine; `None` if the engine cannot attribute one).
        addr: Option<u32>,
        /// The decoded instruction.
        instr: Instruction,
    },
    /// The issue stage stalled.
    Stall {
        /// Cycle number.
        cycle: u64,
        /// Cause.
        reason: StallReason,
    },
    /// A prepare-to-branch resolved in execution.
    BranchResolved {
        /// Cycle number.
        cycle: u64,
        /// Whether the branch was taken.
        taken: bool,
        /// Target byte address.
        target: u32,
        /// Delay-slot instructions still to issue.
        remaining: u32,
    },
    /// The instruction issued this cycle queued a data-side operation.
    /// Emitted after the corresponding [`TraceEvent::Issue`], one event
    /// per operation, in program order.
    DataIssue {
        /// Cycle number (same as the owning `Issue` event).
        cycle: u64,
        /// The operation queued.
        op: DataOp,
    },
    /// The program halted (issue side; draining may continue).
    Halted {
        /// Cycle number.
        cycle: u64,
    },
}

impl TraceEvent {
    /// The cycle the event occurred on.
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEvent::Issue { cycle, .. }
            | TraceEvent::Stall { cycle, .. }
            | TraceEvent::BranchResolved { cycle, .. }
            | TraceEvent::DataIssue { cycle, .. }
            | TraceEvent::Halted { cycle } => *cycle,
        }
    }
}

/// A consumer of trace events.
pub trait TraceSink {
    /// Receives one event. Called in cycle order.
    fn event(&mut self, event: &TraceEvent);

    /// Whether this sink consumes events at all. The processor is generic
    /// over its sink and checks this before constructing an event, so a
    /// sink returning `false` — notably [`NoTrace`], the default —
    /// monomorphizes the entire trace path to dead code. A provided
    /// method (not an associated const) so the trait stays object-safe.
    fn enabled(&self) -> bool {
        true
    }
}

/// The disabled trace sink: a zero-sized type whose `enabled()` is
/// `false`, letting `Processor<NoTrace>` (the default) compile the trace
/// plumbing out of the hot loop entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTrace;

impl TraceSink for NoTrace {
    fn event(&mut self, _event: &TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Boxed sinks forward, so heterogeneous sinks chosen at runtime (e.g. by
/// the CLI) can drive a `Processor<Box<dyn TraceSink>>`.
impl TraceSink for Box<dyn TraceSink> {
    fn event(&mut self, event: &TraceEvent) {
        (**self).event(event);
    }

    fn enabled(&self) -> bool {
        (**self).enabled()
    }
}

/// Shared sinks: keep an `Rc<RefCell<VecTrace>>` clone and hand the other
/// clone to the processor, then inspect it after the run.
impl<S: TraceSink> TraceSink for std::rc::Rc<std::cell::RefCell<S>> {
    fn event(&mut self, event: &TraceEvent) {
        self.borrow_mut().event(event);
    }

    fn enabled(&self) -> bool {
        self.borrow().enabled()
    }
}

/// Fans every event out to several sinks, in order. Lets a run drive a
/// text trace and a trace recorder (or profiler) at the same time.
#[derive(Default)]
pub struct MultiSink {
    sinks: Vec<Box<dyn TraceSink>>,
}

impl MultiSink {
    /// Creates an empty fan-out sink.
    pub fn new() -> MultiSink {
        MultiSink::default()
    }

    /// Adds a sink; events are delivered in insertion order.
    pub fn push(&mut self, sink: Box<dyn TraceSink>) {
        self.sinks.push(sink);
    }
}

impl TraceSink for MultiSink {
    fn event(&mut self, event: &TraceEvent) {
        for s in &mut self.sinks {
            s.event(event);
        }
    }
}

/// Collects events into a vector.
#[derive(Debug, Default)]
pub struct VecTrace {
    events: Vec<TraceEvent>,
}

impl VecTrace {
    /// Creates an empty collector.
    pub fn new() -> VecTrace {
        VecTrace::default()
    }

    /// The collected events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the collector, returning the events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for VecTrace {
    fn event(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

/// Renders one line per event to a writer.
pub struct TextTrace<W: std::io::Write> {
    out: W,
}

impl<W: std::io::Write> TextTrace<W> {
    /// Creates a text renderer over `out`. A `&mut Vec<u8>` or
    /// `std::io::stderr()` both work.
    pub fn new(out: W) -> TextTrace<W> {
        TextTrace { out }
    }

    /// Returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: std::io::Write> TraceSink for TextTrace<W> {
    fn event(&mut self, event: &TraceEvent) {
        let line = match event {
            TraceEvent::Issue { cycle, addr, instr } => match addr {
                Some(a) => format!("[{cycle:>8}] {a:#08x}  {instr}"),
                None => format!("[{cycle:>8}]           {instr}"),
            },
            TraceEvent::Stall { cycle, reason } => {
                format!("[{cycle:>8}]           -- stall ({reason})")
            }
            TraceEvent::BranchResolved {
                cycle,
                taken,
                target,
                remaining,
            } => format!(
                "[{cycle:>8}]           -- branch {} target {target:#x} ({remaining} slots left)",
                if *taken { "TAKEN" } else { "not taken" }
            ),
            TraceEvent::DataIssue { cycle, op } => {
                let desc = match op {
                    DataOp::Load { addr } => format!("load {addr:#x} -> LAQ"),
                    DataOp::StoreAddr { addr } => format!("store {addr:#x} -> SAQ"),
                    DataOp::StoreData { value } => format!("value {value:#x} -> SDQ"),
                };
                format!("[{cycle:>8}]           -- data {desc}")
            }
            TraceEvent::Halted { cycle } => format!("[{cycle:>8}]           -- halt"),
        };
        let _ = writeln!(self.out, "{line}");
    }
}

/// A named, half-open byte-address region of the program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Display name.
    pub name: String,
    /// First byte address.
    pub start: u32,
    /// One past the last byte address.
    pub end: u32,
}

/// Attributes cycles to program regions: each `Issue`/`Stall` cycle is
/// charged to the region of the most recently issued instruction.
#[derive(Debug)]
pub struct RegionProfiler {
    regions: Vec<Region>,
    cycles: Vec<u64>,
    instructions: Vec<u64>,
    /// Cycles before any region was entered, or issued outside all
    /// regions.
    other_cycles: u64,
    current: Option<usize>,
}

impl RegionProfiler {
    /// Creates a profiler over `regions` (they may not overlap for
    /// meaningful results, but this is not checked).
    pub fn new(regions: Vec<Region>) -> RegionProfiler {
        let n = regions.len();
        RegionProfiler {
            regions,
            cycles: vec![0; n],
            instructions: vec![0; n],
            other_cycles: 0,
            current: None,
        }
    }

    fn region_of(&self, addr: u32) -> Option<usize> {
        self.regions
            .iter()
            .position(|r| (r.start..r.end).contains(&addr))
    }

    /// Per-region results as `(region, cycles, instructions)`.
    pub fn results(&self) -> impl Iterator<Item = (&Region, u64, u64)> {
        self.regions
            .iter()
            .zip(&self.cycles)
            .zip(&self.instructions)
            .map(|((r, &c), &i)| (r, c, i))
    }

    /// Cycles not attributable to any region.
    pub fn other_cycles(&self) -> u64 {
        self.other_cycles
    }

    fn charge(&mut self) {
        match self.current {
            Some(i) => self.cycles[i] += 1,
            None => self.other_cycles += 1,
        }
    }
}

impl TraceSink for RegionProfiler {
    fn event(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::Issue { addr, .. } => {
                if let Some(a) = addr {
                    self.current = self.region_of(*a);
                }
                if let Some(i) = self.current {
                    self.instructions[i] += 1;
                }
                self.charge();
            }
            TraceEvent::Stall { .. } => self.charge(),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipe_isa::Instruction;

    fn issue(cycle: u64, addr: u32) -> TraceEvent {
        TraceEvent::Issue {
            cycle,
            addr: Some(addr),
            instr: Instruction::Nop,
        }
    }

    #[test]
    fn vec_trace_collects() {
        let mut t = VecTrace::new();
        t.event(&issue(0, 0));
        t.event(&TraceEvent::Halted { cycle: 1 });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[1].cycle(), 1);
    }

    #[test]
    fn text_trace_renders() {
        let mut t = TextTrace::new(Vec::new());
        t.event(&issue(3, 0x10));
        t.event(&TraceEvent::Stall {
            cycle: 4,
            reason: StallReason::DataWait,
        });
        let text = String::from_utf8(t.into_inner()).unwrap();
        assert!(text.contains("0x000010"));
        assert!(text.contains("data-wait"));
    }

    #[test]
    fn region_profiler_attributes_cycles() {
        let mut p = RegionProfiler::new(vec![
            Region {
                name: "a".into(),
                start: 0,
                end: 0x20,
            },
            Region {
                name: "b".into(),
                start: 0x20,
                end: 0x40,
            },
        ]);
        p.event(&issue(0, 0x00)); // region a
        p.event(&TraceEvent::Stall {
            cycle: 1,
            reason: StallReason::IFetch,
        }); // still charged to a
        p.event(&issue(2, 0x24)); // region b
        p.event(&issue(3, 0x100)); // outside
        let results: Vec<_> = p
            .results()
            .map(|(r, c, i)| (r.name.clone(), c, i))
            .collect();
        assert_eq!(results[0], ("a".into(), 2, 1));
        assert_eq!(results[1], ("b".into(), 1, 1));
        assert_eq!(p.other_cycles(), 1);
    }
}
