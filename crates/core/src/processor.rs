//! The PIPE processor: issue logic, architectural queues, and the
//! cycle loop connecting the fetch engine and the memory system.
//!
//! ## Cycle structure
//!
//! Each call to [`Processor::step`] simulates one clock:
//!
//! 1. **Offer** — the fetch engine and the load/store queues offer memory
//!    requests for this cycle's arbitration.
//! 2. **Memory tick** — the memory system arbitrates, advances in-flight
//!    accesses, and streams response beats.
//! 3. **Routing** — acceptances pop the LAQ / SAQ+SDQ heads or inform the
//!    fetch engine; beats fill the LDQ (data loads, FPU results) or the
//!    fetch engine (instruction fetches).
//! 4. **Fetch advance** — queue transfers and cache fills inside the
//!    engine.
//! 5. **Issue** — at most one instruction decodes and issues. Reads of
//!    `r7` pop the LDQ head (stalling until filled); writes of `r7` push
//!    the SDQ. A prepare-to-branch records its condition at issue and
//!    resolves at the start of the next cycle, when the engine is told the
//!    outcome so it can begin target preparation while delay slots drain.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use pipe_icache::FetchEngine;
use pipe_isa::decode::DecodeError;
use pipe_isa::{decode, DecodedProgram, Instruction, Program, Reg};
use pipe_mem::{BeatSource, ConfigError, FpOp, MemRequest, MemorySystem, ReqClass};

use crate::config::SimConfig;
use crate::queues::{AddressQueue, LoadQueue};
use crate::regfile::{BranchRegFile, RegFile};
use crate::stats::SimStats;
use crate::trace::{DataOp, NoTrace, StallReason, TraceEvent, TraceSink};

/// An error terminating a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// The fetch stream produced an undecodable instruction.
    Decode(DecodeError),
    /// `max_cycles` elapsed before the program halted and drained — almost
    /// always a deadlocked program (e.g. reading `r7` with no load in
    /// flight) or mismatched SAQ/SDQ pushes.
    Timeout {
        /// Cycles simulated before giving up.
        cycles: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid configuration: {e}"),
            SimError::Decode(e) => write!(f, "instruction decode failed: {e}"),
            SimError::Timeout { cycles } => {
                write!(f, "simulation did not complete within {cycles} cycles")
            }
        }
    }
}

impl Error for SimError {}

impl From<DecodeError> for SimError {
    fn from(e: DecodeError) -> SimError {
        SimError::Decode(e)
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> SimError {
        SimError::Config(e)
    }
}

#[derive(Debug, Clone, Copy)]
struct PbrState {
    resolve_at: u64,
    taken: bool,
    target: u32,
    delay: u8,
    issued_after: u8,
}

/// The issue-stage outcome that will repeat every cycle of a quiet
/// fast-forward window (see [`Processor::fast_forward_stall`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QuietStall {
    /// Halted and draining: issue is skipped entirely.
    Halted,
    Ifetch,
    DataWait,
    QueueFull,
    Branch,
}

/// The simulated PIPE processor.
///
/// Generic over its trace sink: the default [`NoTrace`] monomorphizes the
/// trace path to dead code, so untraced runs (the common case for
/// sweeps) pay nothing for the plumbing. Attach a real sink with
/// [`with_trace`](Processor::with_trace).
pub struct Processor<S: TraceSink = NoTrace> {
    mem: MemorySystem,
    fetch: Box<dyn FetchEngine>,
    /// Predecoded program image: the hot loop looks instructions up by
    /// parcel index instead of calling `decode` every issue attempt.
    decoded: Arc<DecodedProgram>,
    /// Disables the predecoded fast path (parity testing; also set for
    /// fetch engines not backed by the program image).
    force_raw_decode: bool,
    max_cycles: u64,
    ldq_entries: usize,
    sdq_entries: usize,
    regs: RegFile,
    bregs: BranchRegFile,
    laq: AddressQueue,
    saq: AddressQueue,
    sdq: VecDeque<u32>,
    ldq: LoadQueue,
    /// Accepted data loads awaiting their response beat, as
    /// `(memory tag, LDQ sequence)`. Completion order is tag-matched, so
    /// a plain vector with `swap_remove` beats a FIFO here.
    inflight_loads: Vec<(u64, u64)>,
    /// LDQ slots awaiting FPU results, in operation order.
    fpu_result_slots: VecDeque<u64>,
    laq_front_tag: Option<u64>,
    store_front_tag: Option<u64>,
    /// Program-order sequence for data-side operations: the LAQ and SAQ
    /// drain to memory strictly in this order, so a load can never bypass
    /// an older store (the memory-consistency rule of the decoupled
    /// interface).
    data_seq: u64,
    pbr: Option<PbrState>,
    /// Delay slots left before a taken branch's redirect, after resolution.
    redirect_remaining: Option<u32>,
    halted: bool,
    cycle: u64,
    stats: SimStats,
    trace: S,
}

impl<S: TraceSink> fmt::Debug for Processor<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Processor")
            .field("cycle", &self.cycle)
            .field("halted", &self.halted)
            .field("fetch", &self.fetch.name())
            .field("instructions", &self.stats.instructions_issued)
            .finish()
    }
}

impl Processor {
    /// Builds a processor for `program` under `config`, loading the
    /// program's initial data image into memory. Predecodes the program;
    /// to share one predecode across many runs, use
    /// [`from_decoded`](Processor::from_decoded).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the configuration fails validation.
    pub fn new(program: &Program, config: &SimConfig) -> Result<Processor, SimError> {
        Processor::from_decoded(&Arc::new(DecodedProgram::new(program.clone())), config)
    }

    /// Builds a processor over an already-predecoded program, sharing the
    /// decode table instead of recomputing it (sweeps run one predecode
    /// for hundreds of points).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the configuration fails validation.
    pub fn from_decoded(
        decoded: &Arc<DecodedProgram>,
        config: &SimConfig,
    ) -> Result<Processor, SimError> {
        config.validate()?;
        let program = decoded.program();
        let mut mem = MemorySystem::new(config.mem);
        mem.data_mut().extend(program.data().iter().copied());
        let fetch = config.fetch.build(program)?;
        Ok(Processor {
            mem,
            fetch,
            decoded: Arc::clone(decoded),
            force_raw_decode: false,
            max_cycles: config.max_cycles,
            ldq_entries: config.ldq_entries,
            sdq_entries: config.sdq_entries,
            regs: RegFile::new(),
            bregs: BranchRegFile::new(),
            laq: AddressQueue::new(config.laq_entries),
            saq: AddressQueue::new(config.saq_entries),
            sdq: VecDeque::with_capacity(config.sdq_entries),
            ldq: LoadQueue::new(config.ldq_entries),
            inflight_loads: Vec::with_capacity(config.ldq_entries),
            fpu_result_slots: VecDeque::new(),
            laq_front_tag: None,
            store_front_tag: None,
            data_seq: 0,
            pbr: None,
            redirect_remaining: None,
            halted: false,
            cycle: 0,
            stats: SimStats::default(),
            trace: NoTrace,
        })
    }
}

impl<S: TraceSink> Processor<S> {
    /// Attaches a trace sink receiving every issue/stall/branch event,
    /// consuming the processor (the sink type becomes part of the
    /// processor type, so traced and untraced runs monomorphize
    /// separately). To inspect the sink after the run, hand the processor
    /// an `Rc<RefCell<...>>` clone (see [`crate::trace`]).
    pub fn with_trace<T: TraceSink>(self, sink: T) -> Processor<T> {
        Processor {
            mem: self.mem,
            fetch: self.fetch,
            decoded: self.decoded,
            force_raw_decode: self.force_raw_decode,
            max_cycles: self.max_cycles,
            ldq_entries: self.ldq_entries,
            sdq_entries: self.sdq_entries,
            regs: self.regs,
            bregs: self.bregs,
            laq: self.laq,
            saq: self.saq,
            sdq: self.sdq,
            ldq: self.ldq,
            inflight_loads: self.inflight_loads,
            fpu_result_slots: self.fpu_result_slots,
            laq_front_tag: self.laq_front_tag,
            store_front_tag: self.store_front_tag,
            data_seq: self.data_seq,
            pbr: self.pbr,
            redirect_remaining: self.redirect_remaining,
            halted: self.halted,
            cycle: self.cycle,
            stats: self.stats,
            trace: sink,
        }
    }

    /// Disables (or re-enables) the predecoded fast path, forcing every
    /// issue attempt to decode raw parcels like the seed simulator.
    /// Exists so parity tests and the benchmark harness can prove the two
    /// paths produce bit-identical statistics.
    pub fn set_force_raw_decode(&mut self, force: bool) {
        self.force_raw_decode = force;
    }

    fn emit(&mut self, event: TraceEvent) {
        if self.trace.enabled() {
            self.trace.event(&event);
        }
    }

    /// The current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Returns `true` once `halt` has issued and all queues and memory
    /// activity have drained.
    pub fn is_done(&self) -> bool {
        self.halted
            && self.laq.is_empty()
            && self.saq.is_empty()
            && self.sdq.is_empty()
            && self.inflight_loads.is_empty()
            && self.fpu_result_slots.is_empty()
            && !self.fetch.has_outstanding()
            && self.mem.is_idle()
    }

    /// Read access to the register file (for tests and examples).
    pub fn regs(&self) -> &RegFile {
        &self.regs
    }

    /// Read access to the memory system (for inspecting data results).
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Statistics accumulated so far (finalized copies are returned by
    /// [`run`](Self::run)).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Current `(LAQ, LDQ, SAQ, SDQ)` occupancies plus in-flight loads and
    /// pending FPU results — a snapshot for diagnosing stuck simulations.
    pub fn queue_snapshot(&self) -> [usize; 6] {
        [
            self.laq.len(),
            self.ldq.len(),
            self.saq.len(),
            self.sdq.len(),
            self.inflight_loads.len(),
            self.fpu_result_slots.len(),
        ]
    }

    /// Runs to completion, finalizing the statistics in place — read them
    /// with [`stats`](Self::stats) or take them with
    /// [`into_stats`](Self::into_stats) (no clone either way).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Decode`] on an undecodable instruction and
    /// [`SimError::Timeout`] if the program does not halt and drain within
    /// `config.max_cycles`.
    pub fn run(&mut self) -> Result<(), SimError> {
        while !self.is_done() {
            if self.cycle >= self.max_cycles {
                return Err(SimError::Timeout { cycles: self.cycle });
            }
            self.step()?;
        }
        self.finalize_stats();
        Ok(())
    }

    /// Copies the final cycle count and the fetch/memory snapshots into
    /// the statistics — the epilogue [`run`](Self::run) performs after the
    /// loop, shared with the batched kernel.
    pub(crate) fn finalize_stats(&mut self) {
        self.stats.cycles = self.cycle;
        self.stats.fetch = self.fetch.stats().clone();
        self.stats.mem = self.mem.stats().clone();
    }

    /// The configured cycle budget.
    pub(crate) fn max_cycles(&self) -> u64 {
        self.max_cycles
    }

    /// Consumes the processor, returning the accumulated statistics by
    /// move (finalized by [`run`](Self::run)).
    pub fn into_stats(self) -> SimStats {
        self.stats
    }

    /// Simulates one clock cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Decode`] if the fetch stream yields an invalid
    /// encoding.
    pub fn step(&mut self) -> Result<(), SimError> {
        // 1. Offer. Data requests drain in program order: the younger of
        // the LAQ/SAQ heads waits, and a store whose data has not reached
        // the SDQ blocks younger loads rather than letting them bypass it.
        self.fetch.offer_requests(&mut self.mem);
        let laq_head = self.laq.front();
        let saq_head = self.saq.front();
        let load_is_older = match (laq_head, saq_head) {
            (Some(l), Some(s)) => l.seq < s.seq,
            (Some(_), None) => true,
            _ => false,
        };
        if load_is_older {
            let l = laq_head.expect("load head exists");
            let tag = *self.laq_front_tag.get_or_insert_with(|| self.mem.new_tag());
            self.mem
                .offer(MemRequest::load(ReqClass::DataLoad, l.value, 4, tag));
        } else if let (Some(s), Some(&value)) = (saq_head, self.sdq.front()) {
            let tag = *self
                .store_front_tag
                .get_or_insert_with(|| self.mem.new_tag());
            self.mem.offer(MemRequest::store(s.value, value, tag));
        }

        // 2. Memory tick.
        let out = self.mem.tick();

        // 3. Routing. A D-cache hit services the LAQ head on chip; it can
        // coincide with a port acceptance (which is then never a data
        // load — hits are intercepted before arbitration).
        if let Some(tag) = out.d_accepted {
            debug_assert_eq!(self.laq_front_tag, Some(tag));
            let entry = self.laq.pop().expect("laq front hit in d-cache");
            self.inflight_loads.push((tag, entry.tag));
            self.laq_front_tag = None;
        }
        if let Some(beat) = &out.d_beat {
            let pos = self
                .inflight_loads
                .iter()
                .position(|&(t, _)| t == beat.tag)
                .expect("d-cache beat for unknown load");
            let (_, seq) = self.inflight_loads.swap_remove(pos);
            self.ldq
                .fill(seq, beat.value.expect("d-cache beats carry values"));
        }
        if let Some(tag) = out.accepted {
            if self.laq_front_tag == Some(tag) {
                let entry = self.laq.pop().expect("laq front accepted");
                self.inflight_loads.push((tag, entry.tag));
                self.laq_front_tag = None;
            } else if self.store_front_tag == Some(tag) {
                self.saq.pop();
                self.sdq.pop_front();
                self.store_front_tag = None;
            } else {
                self.fetch.on_accepted(tag);
            }
        }
        if let Some(beat) = &out.beats {
            match beat.source {
                BeatSource::DataLoad => {
                    let pos = self
                        .inflight_loads
                        .iter()
                        .position(|&(t, _)| t == beat.tag)
                        .expect("data beat for unknown load");
                    let (_, seq) = self.inflight_loads.swap_remove(pos);
                    self.ldq
                        .fill(seq, beat.value.expect("data beats carry values"));
                }
                BeatSource::FpuResult => {
                    let seq = self
                        .fpu_result_slots
                        .pop_front()
                        .expect("fpu result without a waiting slot");
                    self.ldq
                        .fill(seq, beat.value.expect("fpu beats carry values"));
                }
                BeatSource::IFetch | BeatSource::IPrefetch => self.fetch.on_beat(beat),
            }
        }

        // 4. Fetch-internal advance.
        self.fetch.advance();

        // 5. Issue.
        self.resolve_pbr_if_due();
        if !self.halted {
            self.try_issue()?;
        }

        // Sample queue occupancies.
        self.stats.queues.laq.sample(self.laq.len());
        self.stats.queues.ldq.sample(self.ldq.len());
        self.stats.queues.saq.sample(self.saq.len());
        self.stats.queues.sdq.sample(self.sdq.len());

        self.cycle += 1;
        Ok(())
    }

    /// Classifies the issue-stage outcome the next [`step`](Self::step)
    /// would produce, *assuming no memory event intervenes*: a pure replay
    /// of [`try_issue`](Self::try_issue)'s decision chain with no state
    /// mutation. `None` means the next cycle makes progress (an issue or a
    /// decode error) and must be ticked for real.
    fn quiet_stall_reason(&self) -> Option<QuietStall> {
        if self.halted {
            return Some(QuietStall::Halted);
        }
        let instr = match self.peek_decoded() {
            Some(Ok(instr)) => instr,
            Some(Err(_)) => return None, // surfaces as SimError::Decode
            None => return Some(QuietStall::Ifetch),
        };
        // Callers guarantee `pbr` is `None`, so branch gating reduces to
        // the redirect guard.
        if instr.is_branch() && self.redirect_remaining.is_some() {
            return Some(QuietStall::Branch);
        }
        let reads_q = Self::reads_queue_reg(&instr);
        let queue_value = if reads_q {
            match self.ldq.front_ready() {
                Some(v) => Some(v),
                None => return Some(QuietStall::DataWait),
            }
        } else {
            None
        };
        let ldq_after_pop = self.ldq.len() - usize::from(reads_q);
        let needs_ldq_slot = match &instr {
            Instruction::Load { .. } => true,
            Instruction::StoreAddr { base, disp } => {
                let base_v = if base.is_queue() {
                    queue_value.expect("checked above")
                } else {
                    self.regs.read(*base)
                };
                let addr = base_v.wrapping_add(*disp as i32 as u32);
                Self::fpu_op(addr).is_some()
            }
            _ => false,
        };
        let queue_full = (needs_ldq_slot && ldq_after_pop >= self.ldq_entries)
            || (matches!(instr, Instruction::Load { .. }) && self.laq.is_full())
            || (matches!(instr, Instruction::StoreAddr { .. }) && self.saq.is_full())
            || (Self::writes_queue_reg(&instr) && self.sdq.len() >= self.sdq_entries);
        if queue_full {
            return Some(QuietStall::QueueFull);
        }
        None // would issue: real work next cycle
    }

    /// Fast-forwards over a provably-idle stall window, accumulating the
    /// exact statistics that ticking those cycles one by one would have
    /// produced. Returns the number of cycles skipped (0 when the next
    /// cycle may do real work).
    ///
    /// Must be called between [`step`](Self::step)s. A window exists only
    /// when every per-cycle activity is a provable no-op:
    ///
    /// * tracing is off (a sink observes per-cycle stall events);
    /// * no PBR is awaiting resolution (it resolves on a fixed cycle);
    /// * the fetch engine is [quiescent](FetchEngine::quiescence) — each
    ///   coming cycle is a pure re-offer of `n` requests;
    /// * the issue stage repeats the same stall (nothing it reads can
    ///   change without a memory event); and
    /// * the memory system reports a quiet window: no beat, no
    ///   acceptance, no state transition before the wakeup cycle.
    ///
    /// The window is clamped to `max_cycles` so a deadlocked lane times
    /// out on exactly the same cycle as the scalar path.
    pub(crate) fn fast_forward_stall(&mut self) -> u64 {
        if self.trace.enabled() || self.pbr.is_some() {
            return 0;
        }
        // Cheap bound before the engine queries: standing offers only
        // shrink the quiet window, so a small bound with no offers caps the
        // window at any offer count. This rejects every cycle of an active
        // stream (each delivers a beat) without touching the fetch engine,
        // and windows too short to repay the probe itself — skipping or
        // stepping them produces identical statistics either way.
        if self.mem.quiet_cycles(false) < 4 {
            return 0;
        }
        if self.is_done() {
            return 0;
        }
        let Some(engine_offers) = self.fetch.quiescence() else {
            return 0;
        };
        let Some(reason) = self.quiet_stall_reason() else {
            return 0;
        };
        // The data-side offer the next cycles would repeat (the tag is
        // lazily assigned on the first real offer; its value is unaffected
        // by the skip because no other tag is handed out in the window).
        let laq_head = self.laq.front();
        let saq_head = self.saq.front();
        let load_is_older = match (laq_head, saq_head) {
            (Some(l), Some(s)) => l.seq < s.seq,
            (Some(_), None) => true,
            _ => false,
        };
        let data_offers = u32::from(load_is_older || (saq_head.is_some() && !self.sdq.is_empty()));
        let offered = (engine_offers + data_offers) as usize;
        let n = self
            .mem
            .quiet_cycles(offered > 0)
            .min(self.max_cycles.saturating_sub(self.cycle));
        if n == 0 {
            return 0;
        }
        match reason {
            QuietStall::Halted => {} // issue skipped: no stall counted
            QuietStall::Ifetch => self.stats.stalls.ifetch += n,
            QuietStall::DataWait => self.stats.stalls.data_wait += n,
            QuietStall::QueueFull => self.stats.stalls.queue_full += n,
            QuietStall::Branch => self.stats.stalls.branch += n,
        }
        self.stats.queues.laq.sample_n(self.laq.len(), n);
        self.stats.queues.ldq.sample_n(self.ldq.len(), n);
        self.stats.queues.saq.sample_n(self.saq.len(), n);
        self.stats.queues.sdq.sample_n(self.sdq.len(), n);
        self.mem.skip_quiet(n, offered);
        self.cycle += n;
        n
    }

    fn resolve_pbr_if_due(&mut self) {
        let Some(p) = self.pbr else { return };
        if self.cycle < p.resolve_at {
            return;
        }
        let remaining = u32::from(p.delay - p.issued_after);
        self.fetch.resolve_branch(p.taken, remaining, p.target);
        self.emit(TraceEvent::BranchResolved {
            cycle: self.cycle,
            taken: p.taken,
            target: p.target,
            remaining,
        });
        if p.taken {
            self.stats.branches_taken += 1;
            self.redirect_remaining = (remaining > 0).then_some(remaining);
        } else {
            self.stats.branches_not_taken += 1;
        }
        self.pbr = None;
    }

    /// Counts how many source-operand slots of `instr` read `r7`. All reads
    /// within one instruction see the same LDQ head value, popped once.
    fn reads_queue_reg(instr: &Instruction) -> bool {
        instr.sources().contains(&Reg::QUEUE)
    }

    fn writes_queue_reg(instr: &Instruction) -> bool {
        instr.destination() == Some(Reg::QUEUE)
    }

    /// The decode result at the fetch head: a predecoded-table lookup
    /// when the engine can name the image parcel index it is serving
    /// (the hot path), otherwise a raw decode of the peeked parcels
    /// (trace replay, or `force_raw_decode` parity runs). `None` means no
    /// complete instruction is available this cycle.
    fn peek_decoded(&self) -> Option<Result<Instruction, DecodeError>> {
        if !self.force_raw_decode {
            if let Some(idx) = self.fetch.peek_index() {
                if let Some(slot) = self.decoded.get(idx) {
                    return Some(slot);
                }
            }
        }
        let (first, second) = self.fetch.peek()?;
        Some(decode(first, second))
    }

    fn try_issue(&mut self) -> Result<(), SimError> {
        let instr = match self.peek_decoded() {
            Some(Ok(instr)) => instr,
            Some(Err(e)) => return Err(e.into()),
            None => {
                self.stats.stalls.ifetch += 1;
                self.emit(TraceEvent::Stall {
                    cycle: self.cycle,
                    reason: StallReason::IFetch,
                });
                return Ok(());
            }
        };

        // Branch gating: at most one PBR in flight, and no issue past the
        // delay slots of an unresolved PBR (wrong-path guard).
        let branch_gated = match &self.pbr {
            Some(p) => p.issued_after >= p.delay || instr.is_branch(),
            None => instr.is_branch() && self.redirect_remaining.is_some(),
        };
        if branch_gated {
            self.stats.stalls.branch += 1;
            self.emit(TraceEvent::Stall {
                cycle: self.cycle,
                reason: StallReason::Branch,
            });
            return Ok(());
        }

        // Operand readiness: an `r7` read needs the LDQ head filled.
        let reads_q = Self::reads_queue_reg(&instr);
        let queue_value = if reads_q {
            match self.ldq.front_ready() {
                Some(v) => Some(v),
                None => {
                    self.stats.stalls.data_wait += 1;
                    self.emit(TraceEvent::Stall {
                        cycle: self.cycle,
                        reason: StallReason::DataWait,
                    });
                    return Ok(());
                }
            }
        } else {
            None
        };

        // Resource checks (computed before any state mutation). A
        // same-instruction `r7` pop frees one LDQ slot.
        let ldq_after_pop = self.ldq.len() - usize::from(reads_q);
        let needs_ldq_slot = match &instr {
            Instruction::Load { .. } => true,
            Instruction::StoreAddr { base, disp } => {
                let base_v = if base.is_queue() {
                    queue_value.expect("checked above")
                } else {
                    self.regs.read(*base)
                };
                let addr = base_v.wrapping_add(*disp as i32 as u32);
                Self::fpu_op(addr).is_some()
            }
            _ => false,
        };
        let queue_full = (needs_ldq_slot && ldq_after_pop >= self.ldq_entries)
            || (matches!(instr, Instruction::Load { .. }) && self.laq.is_full())
            || (matches!(instr, Instruction::StoreAddr { .. }) && self.saq.is_full())
            || (Self::writes_queue_reg(&instr) && self.sdq.len() >= self.sdq_entries);
        if queue_full {
            self.stats.stalls.queue_full += 1;
            self.emit(TraceEvent::Stall {
                cycle: self.cycle,
                reason: StallReason::QueueFull,
            });
            return Ok(());
        }

        // Commit: pop the LDQ head (once), execute, consume from fetch.
        if reads_q {
            self.ldq.pop();
        }
        if self.trace.enabled() {
            self.emit(TraceEvent::Issue {
                cycle: self.cycle,
                addr: self.fetch.head_addr(),
                instr,
            });
        }
        let was_pbr = instr.is_branch();
        self.execute(&instr, queue_value);
        self.fetch.consume();
        self.stats.instructions_issued += 1;
        if !was_pbr {
            if let Some(p) = &mut self.pbr {
                p.issued_after += 1;
            }
        }
        if let Some(r) = &mut self.redirect_remaining {
            *r -= 1;
            if *r == 0 {
                self.redirect_remaining = None;
            }
        }
        Ok(())
    }

    fn read(&self, r: Reg, queue_value: Option<u32>) -> u32 {
        if r.is_queue() {
            queue_value.expect("r7 read without LDQ pop")
        } else {
            self.regs.read(r)
        }
    }

    fn write_dest(&mut self, r: Reg, value: u32) {
        if r.is_queue() {
            self.sdq.push_back(value);
            self.emit(TraceEvent::DataIssue {
                cycle: self.cycle,
                op: DataOp::StoreData { value },
            });
        } else {
            self.regs.write(r, value);
        }
    }

    /// Maps a store address onto an FPU operation trigger, if any.
    fn fpu_op(addr: u32) -> Option<FpOp> {
        if pipe_isa::is_fpu_address(addr) {
            FpOp::from_offset(addr - pipe_isa::FPU_BASE)
        } else {
            None
        }
    }

    fn execute(&mut self, instr: &Instruction, queue_value: Option<u32>) {
        match *instr {
            Instruction::Nop => {}
            Instruction::Halt => {
                self.halted = true;
                self.emit(TraceEvent::Halted { cycle: self.cycle });
            }
            Instruction::Xchg => self.regs.exchange(),
            Instruction::Alu { op, rd, rs1, rs2 } => {
                let a = self.read(rs1, queue_value);
                let b = self.read(rs2, queue_value);
                self.write_dest(rd, op.eval(a, b));
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                let a = self.read(rs1, queue_value);
                self.write_dest(rd, op.eval(a, imm as i32 as u32));
            }
            Instruction::Lim { rd, imm } => self.write_dest(rd, imm as i32 as u32),
            Instruction::Lui { rd, imm } => {
                let old = self.read(rd, queue_value);
                self.write_dest(rd, (u32::from(imm) << 16) | (old & 0xFFFF));
            }
            Instruction::Load { base, disp } => {
                let addr = self
                    .read(base, queue_value)
                    .wrapping_add(disp as i32 as u32);
                let seq = self.ldq.alloc().expect("resource-checked");
                self.laq.push(addr, seq, self.data_seq);
                self.data_seq += 1;
                self.stats.loads += 1;
                self.emit(TraceEvent::DataIssue {
                    cycle: self.cycle,
                    op: DataOp::Load { addr },
                });
            }
            Instruction::StoreAddr { base, disp } => {
                let addr = self
                    .read(base, queue_value)
                    .wrapping_add(disp as i32 as u32);
                self.saq.push(addr, 0, self.data_seq);
                self.data_seq += 1;
                self.stats.stores += 1;
                self.emit(TraceEvent::DataIssue {
                    cycle: self.cycle,
                    op: DataOp::StoreAddr { addr },
                });
                if Self::fpu_op(addr).is_some() {
                    let seq = self.ldq.alloc().expect("resource-checked");
                    self.fpu_result_slots.push_back(seq);
                    self.stats.fpu_ops += 1;
                }
            }
            Instruction::Lbr { br, target_parcel } => {
                self.bregs.write(br, u32::from(target_parcel) * 2);
            }
            Instruction::LbrReg { br, rs1 } => {
                let v = self.read(rs1, queue_value);
                self.bregs.write(br, v);
            }
            Instruction::Pbr {
                cond,
                br,
                rs,
                delay,
            } => {
                let v = self.read(rs, queue_value);
                self.pbr = Some(PbrState {
                    resolve_at: self.cycle + 1,
                    taken: cond.eval(v),
                    target: self.bregs.read(br),
                    delay,
                    issued_after: 0,
                });
            }
        }
    }
}

/// Builds a processor and runs `program` to completion under `config`.
///
/// # Errors
///
/// Propagates any [`SimError`] from construction or execution.
pub fn run_program(program: &Program, config: &SimConfig) -> Result<SimStats, SimError> {
    let mut proc = Processor::new(program, config)?;
    proc.run()?;
    Ok(proc.into_stats())
}

/// Builds a processor over a shared predecoded program and runs it to
/// completion under `config`. The predecode is reused, not recomputed —
/// the fast path for sweeps running one workload at many configurations.
///
/// # Errors
///
/// Propagates any [`SimError`] from construction or execution.
pub fn run_decoded(
    decoded: &Arc<DecodedProgram>,
    config: &SimConfig,
) -> Result<SimStats, SimError> {
    let mut proc = Processor::from_decoded(decoded, config)?;
    proc.run()?;
    Ok(proc.into_stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FetchStrategy;
    use pipe_icache::{CacheConfig, PipeFetchConfig};
    use pipe_isa::{Assembler, InstrFormat};
    use pipe_mem::MemConfig;

    fn asm(src: &str) -> Program {
        Assembler::new(InstrFormat::Fixed32)
            .assemble(src)
            .unwrap_or_else(|e| panic!("assembly failed: {e}"))
    }

    fn perfect_config() -> SimConfig {
        SimConfig {
            fetch: FetchStrategy::Perfect,
            ..SimConfig::default()
        }
    }

    fn run(src: &str, config: &SimConfig) -> SimStats {
        run_program(&asm(src), config).expect("run succeeds")
    }

    #[test]
    fn straight_line_alu() {
        let stats = run(
            "lim r1, 6\nlim r2, 7\nadd r3, r1, r2\nhalt\n",
            &perfect_config(),
        );
        assert_eq!(stats.instructions_issued, 4);
    }

    #[test]
    fn register_results_visible() {
        let p = asm("lim r1, 6\nlim r2, 7\nadd r3, r1, r2\nsub r4, r1, r2\nhalt\n");
        let mut proc = Processor::new(&p, &perfect_config()).unwrap();
        proc.run().unwrap();
        assert_eq!(proc.regs().read(Reg::new(3)), 13);
        assert_eq!(proc.regs().read(Reg::new(4)), (-1i32) as u32);
    }

    #[test]
    fn loop_iteration_count() {
        // 10 iterations of a 2-instruction loop + 2 prologue + halt.
        let stats = run(
            "lim r1, 10\nlbr b0, top\ntop: subi r1, r1, 1\npbr.nez b0, r1, 0\nhalt\n",
            &perfect_config(),
        );
        assert_eq!(stats.instructions_issued, 2 + 10 * 2 + 1);
        assert_eq!(stats.branches_taken, 9);
        assert_eq!(stats.branches_not_taken, 1);
    }

    #[test]
    fn delay_slots_execute() {
        // Delay slot increments r2 even though the branch is taken.
        let p = asm(
            "lim r1, 2\nlim r2, 0\nlbr b0, top\ntop: subi r1, r1, 1\npbr.nez b0, r1, 1\naddi r2, r2, 1\nhalt\n",
        );
        let mut proc = Processor::new(&p, &perfect_config()).unwrap();
        proc.run().unwrap();
        // Loop runs twice; delay slot runs on both iterations.
        assert_eq!(proc.regs().read(Reg::new(2)), 2);
    }

    #[test]
    fn store_and_load_roundtrip() {
        let src = r#"
            lim  r1, 0x100
            lim  r2, 42
            sta  r1, 0
            or   r7, r2, r2   ; push 42 onto SDQ
            ldw  r1, 0
            or   r3, r7, r7   ; read it back
            halt
        "#;
        let p = asm(src);
        let mut proc = Processor::new(&p, &perfect_config()).unwrap();
        proc.run().unwrap();
        assert_eq!(proc.mem().data().read(0x100), 42);
        assert_eq!(proc.regs().read(Reg::new(3)), 42);
    }

    #[test]
    fn fpu_multiply_via_stores() {
        // 2.0 * 3.0 via the memory-mapped FPU; result read from r7.
        let src = r#"
            lui  r1, 0xFFFF
            ori  r1, r1, 0xF000   ; r1 = FPU_BASE
            lui  r2, 0x4000       ; 2.0f32
            lui  r3, 0x4040       ; 3.0f32
            sta  r1, 0
            or   r7, r2, r2
            sta  r1, 4            ; multiply
            or   r7, r3, r3
            or   r4, r7, r7       ; wait for and read result
            halt
        "#;
        let p = asm(src);
        let mut proc = Processor::new(&p, &perfect_config()).unwrap();
        proc.run().unwrap();
        assert_eq!(proc.regs().read(Reg::new(4)), 6.0f32.to_bits());
        assert_eq!(proc.stats().fpu_ops, 1);
        assert_eq!(proc.stats().stores, 2);
    }

    #[test]
    fn data_wait_stall_counted() {
        // Slow memory: the r7 read must stall for the load.
        let src = "lim r1, 0x100\nldw r1, 0\nor r2, r7, r7\nhalt\n";
        let cfg = SimConfig {
            fetch: FetchStrategy::Perfect,
            mem: MemConfig {
                access_cycles: 6,
                ..MemConfig::default()
            },
            ..SimConfig::default()
        };
        let stats = run(src, &cfg);
        assert!(stats.stalls.data_wait > 0, "{stats:?}");
    }

    #[test]
    fn queue_register_pops_once_per_instruction() {
        // `add r3, r7, r7` must consume ONE LDQ entry and see the same
        // value on both operands.
        let src = r#"
            lim  r1, 0x100
            lim  r2, 21
            sta  r1, 0
            or   r7, r2, r2
            ldw  r1, 0
            add  r3, r7, r7    ; 21 + 21
            halt
        "#;
        let p = asm(src);
        let mut proc = Processor::new(&p, &perfect_config()).unwrap();
        proc.run().unwrap();
        assert_eq!(proc.regs().read(Reg::new(3)), 42);
    }

    #[test]
    fn xchg_banks() {
        let src = "lim r1, 5\nxchg\nlim r1, 9\nxchg\naddi r2, r1, 0\nhalt\n";
        let p = asm(src);
        let mut proc = Processor::new(&p, &perfect_config()).unwrap();
        proc.run().unwrap();
        assert_eq!(proc.regs().read(Reg::new(2)), 5);
    }

    #[test]
    fn timeout_on_deadlock() {
        // Reading r7 with no load in flight can never complete.
        let src = "or r1, r7, r7\nhalt\n";
        let cfg = SimConfig {
            fetch: FetchStrategy::Perfect,
            max_cycles: 1000,
            ..SimConfig::default()
        };
        let err = run_program(&asm(src), &cfg).unwrap_err();
        assert!(matches!(err, SimError::Timeout { .. }));
    }

    #[test]
    fn runs_on_all_fetch_strategies() {
        let src = "lim r1, 20\nlbr b0, top\ntop: subi r1, r1, 1\nnop\nnop\npbr.nez b0, r1, 2\nnop\nnop\nhalt\n";
        let expected_instrs = 2 + 20 * 6 + 1;
        for fetch in [
            FetchStrategy::Perfect,
            FetchStrategy::conventional(CacheConfig::new(64, 16)),
            FetchStrategy::Pipe(PipeFetchConfig::table2(64, 16, 16, 16)),
            FetchStrategy::Pipe(PipeFetchConfig::table2(32, 32, 16, 32)),
        ] {
            let cfg = SimConfig {
                fetch,
                ..SimConfig::default()
            };
            let stats = run(src, &cfg);
            assert_eq!(
                stats.instructions_issued, expected_instrs,
                "under {fetch}: {stats:?}"
            );
        }
    }

    #[test]
    fn fetch_strategies_agree_on_architectural_state() {
        // The same program must produce identical register/memory results
        // regardless of fetch timing.
        let src = r#"
            lim  r1, 0x200
            lim  r2, 0
            lim  r3, 8
            lbr  b0, loop
            loop: sta r1, 0
            or   r7, r2, r2
            addi r2, r2, 3
            addi r1, r1, 4
            subi r3, r3, 1
            pbr.nez b0, r3, 1
            nop
            halt
        "#;
        let p = asm(src);
        let mut results = Vec::new();
        for fetch in [
            FetchStrategy::Perfect,
            FetchStrategy::conventional(CacheConfig::new(32, 16)),
            FetchStrategy::Pipe(PipeFetchConfig::table2(32, 16, 16, 16)),
        ] {
            let cfg = SimConfig {
                fetch,
                mem: MemConfig {
                    access_cycles: 3,
                    ..MemConfig::default()
                },
                ..SimConfig::default()
            };
            let mut proc = Processor::new(&p, &cfg).unwrap();
            proc.run().unwrap();
            let mem_words: Vec<u32> = (0..8)
                .map(|i| proc.mem().data().read(0x200 + i * 4))
                .collect();
            results.push(mem_words);
        }
        assert_eq!(results[0], vec![0, 3, 6, 9, 12, 15, 18, 21]);
        assert!(results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn pipe_beats_conventional_on_slow_memory() {
        // A loop body larger than the cache with 6-cycle memory: the PIPE
        // strategy's line fetches and lookahead must win (the paper's
        // headline claim).
        let mut body = String::from("lim r1, 50\nlbr b0, top\ntop: subi r1, r1, 1\n");
        for _ in 0..20 {
            body.push_str("addi r2, r2, 1\n");
        }
        body.push_str("pbr.nez b0, r1, 2\nnop\nnop\nhalt\n");
        let p = asm(&body);
        let slow = MemConfig {
            access_cycles: 6,
            in_bus_bytes: 8,
            ..MemConfig::default()
        };
        let conv = run_program(
            &p,
            &SimConfig {
                fetch: FetchStrategy::conventional(CacheConfig::new(32, 16)),
                mem: slow,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let pipe = run_program(
            &p,
            &SimConfig {
                fetch: FetchStrategy::Pipe(PipeFetchConfig::table2(32, 16, 16, 16)),
                mem: slow,
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert!(
            pipe.cycles < conv.cycles,
            "pipe {} !< conventional {}",
            pipe.cycles,
            conv.cycles
        );
    }

    #[test]
    fn lui_on_queue_register_pops_and_pushes() {
        // `lui r7, imm` reads r7 (pops the LDQ) to preserve the low half,
        // then writes r7 (pushes the SDQ) — both queue effects in one
        // instruction.
        let src = r#"
            lim  r1, 0x200
            lim  r2, 0x1234
            sta  r1, 0
            or   r7, r2, r2      ; mem[0x200] = 0x1234
            ldw  r1, 0
            sta  r1, 4
            lui  r7, 0xBEEF      ; pops 0x1234, pushes 0xBEEF1234
            halt
        "#;
        let p = asm(src);
        let mut proc = Processor::new(&p, &perfect_config()).unwrap();
        proc.run().unwrap();
        assert_eq!(proc.mem().data().read(0x204), 0xBEEF_1234);
    }

    #[test]
    fn all_branch_conditions() {
        // One loop per condition, arranged so each takes exactly once.
        for (cond, init, expect_taken) in [
            ("pbr.eqz", 0i16, 1u64),
            ("pbr.nez", 1, 1),
            ("pbr.gtz", 1, 1),
            ("pbr.ltz", -1, 1),
            ("pbr.never", 0, 0),
        ] {
            let src = format!("lim r1, {init}\nlbr b0, out\n{cond} b0, r1, 0\nnop\nout: halt\n");
            let stats = run(&src, &perfect_config());
            assert_eq!(stats.branches_taken, expect_taken, "{cond}");
            // Taken skips the nop; not-taken executes it.
            let expected_instrs = 3 + u64::from(expect_taken == 0) + 1;
            assert_eq!(stats.instructions_issued, expected_instrs, "{cond}");
        }
    }

    #[test]
    fn computed_branch_via_lbrr() {
        // Jump through a register-loaded target (byte address).
        let src = r#"
            lim  r1, 16          ; byte address of `there` (4 instrs * 4)
            lbrr b1, r1
            pbr  b1, r0, 0
            addi r2, r2, 1       ; skipped
            there: halt
        "#;
        let p = asm(src);
        let mut proc = Processor::new(&p, &perfect_config()).unwrap();
        proc.run().unwrap();
        assert_eq!(proc.regs().read(Reg::new(2)), 0, "wrong-path skipped");
        assert_eq!(proc.stats().branches_taken, 1);
    }

    #[test]
    fn queue_occupancy_sampled() {
        let src = "lim r1, 0x100\nldw r1, 0\nldw r1, 4\nor r2, r7, r7\nor r3, r7, r7\nhalt\n";
        let cfg = SimConfig {
            fetch: FetchStrategy::Perfect,
            mem: MemConfig {
                access_cycles: 6,
                ..MemConfig::default()
            },
            ..SimConfig::default()
        };
        let stats = run(src, &cfg);
        assert!(stats.queues.ldq.max >= 2, "{:?}", stats.queues);
        assert!(stats.queues.laq.max >= 1);
        assert!(stats.queues.ldq.average(stats.cycles) > 0.0);
    }

    #[test]
    fn dcache_preserves_results_and_saves_cycles() {
        use pipe_mem::DCacheConfig;
        // Re-read the same word repeatedly under slow memory with a busy
        // instruction side: the D-cache must produce identical
        // architectural state in fewer cycles, with hits counted.
        let src = r#"
            lim  r1, 0x100
            lim  r2, 42
            lim  r3, 16
            sta  r1, 0
            or   r7, r2, r2
            lbr  b0, loop
            loop: ldw r1, 0
            add  r4, r7, r7
            subi r3, r3, 1
            pbr.nez b0, r3, 0
            halt
        "#;
        let p = asm(src);
        let slow = MemConfig {
            access_cycles: 6,
            ..MemConfig::default()
        };
        let run_with = |d_cache| {
            let cfg = SimConfig {
                fetch: FetchStrategy::conventional(CacheConfig::new(32, 16)),
                mem: MemConfig { d_cache, ..slow },
                ..SimConfig::default()
            };
            let mut proc = Processor::new(&p, &cfg).unwrap();
            proc.run().unwrap();
            let r4 = proc.regs().read(Reg::new(4));
            (proc.into_stats(), r4)
        };
        let (base, r4_base) = run_with(None);
        let (cached, r4_cached) = run_with(Some(DCacheConfig {
            size_bytes: 256,
            line_bytes: 16,
            ways: 1,
        }));
        assert_eq!(r4_base, 84);
        assert_eq!(r4_cached, 84);
        assert_eq!(base.instructions_issued, cached.instructions_issued);
        assert_eq!(base.mem.d_hits, 0);
        assert_eq!(cached.mem.d_hits, 15, "first load misses, rest hit");
        assert_eq!(cached.mem.d_misses, 1);
        assert!(
            cached.cycles < base.cycles,
            "d-cache {} !< none {}",
            cached.cycles,
            base.cycles
        );
    }

    #[test]
    fn perfect_fetch_is_lower_bound() {
        let src = "lim r1, 30\nlbr b0, top\ntop: subi r1, r1, 1\nnop\nnop\npbr.nez b0, r1, 2\nnop\nnop\nhalt\n";
        let p = asm(src);
        let perfect = run_program(&p, &perfect_config()).unwrap();
        for fetch in [
            FetchStrategy::conventional(CacheConfig::new(64, 16)),
            FetchStrategy::Pipe(PipeFetchConfig::table2(64, 16, 16, 16)),
        ] {
            let stats = run_program(
                &p,
                &SimConfig {
                    fetch,
                    ..SimConfig::default()
                },
            )
            .unwrap();
            assert!(stats.cycles >= perfect.cycles, "{fetch}");
        }
    }
}
