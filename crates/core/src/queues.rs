//! The architectural queues: LAQ, SAQ, SDQ and the slot-based LDQ.

use std::collections::VecDeque;

/// One LAQ/SAQ entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueEntry {
    /// The queued byte address.
    pub value: u32,
    /// For LAQ entries: the LDQ slot the response will fill.
    pub tag: u64,
    /// Program-order sequence number of the issuing instruction, used to
    /// keep loads and stores in order at the memory interface.
    pub seq: u64,
}

/// A bounded FIFO of addresses, used for the LAQ (addresses waiting to be
/// sent to memory) and SAQ (store addresses).
#[derive(Debug, Clone)]
pub struct AddressQueue {
    entries: VecDeque<QueueEntry>,
    capacity: usize,
}

impl AddressQueue {
    /// Creates an empty queue with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> AddressQueue {
        assert!(capacity > 0, "queue capacity must be positive");
        AddressQueue {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` when no more entries fit.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Appends an entry.
    ///
    /// # Panics
    ///
    /// Panics when full — the issue logic must check [`is_full`](Self::is_full).
    pub fn push(&mut self, value: u32, tag: u64, seq: u64) {
        assert!(!self.is_full(), "architectural queue overflow");
        self.entries.push_back(QueueEntry { value, tag, seq });
    }

    /// The head entry.
    pub fn front(&self) -> Option<QueueEntry> {
        self.entries.front().copied()
    }

    /// Removes and returns the head entry.
    pub fn pop(&mut self) -> Option<QueueEntry> {
        self.entries.pop_front()
    }
}

/// The Load Queue: data returning from memory, readable as `r7`.
///
/// Slots are allocated in program order at issue time (by loads and by
/// FPU-triggering stores) and filled as responses arrive, possibly out of
/// order with respect to FPU latencies; the head is readable only once its
/// slot has been filled, which keeps `r7` reads in program order.
#[derive(Debug, Clone)]
pub struct LoadQueue {
    slots: VecDeque<Option<u32>>,
    /// Sequence number of the slot at the front of `slots`.
    base_seq: u64,
    capacity: usize,
}

impl LoadQueue {
    /// Creates an empty load queue with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> LoadQueue {
        assert!(capacity > 0, "queue capacity must be positive");
        LoadQueue {
            slots: VecDeque::with_capacity(capacity),
            base_seq: 0,
            capacity,
        }
    }

    /// Occupied slots (filled or awaiting data).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` when no slots are allocated.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Returns `true` when no more slots can be allocated.
    pub fn is_full(&self) -> bool {
        self.slots.len() == self.capacity
    }

    /// Allocates the next slot, returning its sequence number, or `None`
    /// when full.
    pub fn alloc(&mut self) -> Option<u64> {
        if self.is_full() {
            return None;
        }
        let seq = self.base_seq + self.slots.len() as u64;
        self.slots.push_back(None);
        Some(seq)
    }

    /// Fills a previously allocated slot with its value.
    ///
    /// # Panics
    ///
    /// Panics if `seq` does not name an allocated, unfilled slot.
    pub fn fill(&mut self, seq: u64, value: u32) {
        let idx = seq
            .checked_sub(self.base_seq)
            .expect("slot already retired") as usize;
        let slot = self.slots.get_mut(idx).expect("slot not allocated");
        assert!(slot.is_none(), "slot filled twice");
        *slot = Some(value);
    }

    /// The value at the head, if its data has arrived.
    pub fn front_ready(&self) -> Option<u32> {
        self.slots.front().copied().flatten()
    }

    /// Pops the head value.
    ///
    /// # Panics
    ///
    /// Panics if the head is missing or unfilled — check
    /// [`front_ready`](Self::front_ready) first.
    pub fn pop(&mut self) -> u32 {
        let v = self
            .slots
            .pop_front()
            .expect("pop from empty load queue")
            .expect("pop of unfilled load queue slot");
        self.base_seq += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_queue_fifo() {
        let mut q = AddressQueue::new(2);
        assert!(q.is_empty());
        q.push(10, 1, 100);
        q.push(20, 2, 101);
        assert!(q.is_full());
        let head = q.front().unwrap();
        assert_eq!((head.value, head.tag, head.seq), (10, 1, 100));
        assert_eq!(q.pop().unwrap().value, 10);
        assert_eq!(q.pop().unwrap().seq, 101);
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn address_queue_overflow_panics() {
        let mut q = AddressQueue::new(1);
        q.push(1, 1, 0);
        q.push(2, 2, 1);
    }

    #[test]
    fn load_queue_in_order_head() {
        let mut q = LoadQueue::new(4);
        let a = q.alloc().unwrap();
        let b = q.alloc().unwrap();
        // Fill out of order: head not ready until its own fill.
        q.fill(b, 200);
        assert_eq!(q.front_ready(), None);
        q.fill(a, 100);
        assert_eq!(q.front_ready(), Some(100));
        assert_eq!(q.pop(), 100);
        assert_eq!(q.pop(), 200);
    }

    #[test]
    fn load_queue_capacity() {
        let mut q = LoadQueue::new(2);
        assert!(q.alloc().is_some());
        assert!(q.alloc().is_some());
        assert!(q.alloc().is_none());
        q.fill(0, 1);
        q.pop();
        assert!(q.alloc().is_some(), "slot freed by pop");
    }

    #[test]
    fn load_queue_seq_numbers_advance() {
        let mut q = LoadQueue::new(2);
        let a = q.alloc().unwrap();
        q.fill(a, 5);
        assert_eq!(q.pop(), 5);
        let b = q.alloc().unwrap();
        assert_eq!(b, a + 1);
        q.fill(b, 6);
        assert_eq!(q.front_ready(), Some(6));
    }

    #[test]
    #[should_panic(expected = "filled twice")]
    fn double_fill_panics() {
        let mut q = LoadQueue::new(2);
        let a = q.alloc().unwrap();
        q.fill(a, 1);
        q.fill(a, 2);
    }
}
