//! Batched multi-configuration simulation.
//!
//! The paper's experiments sweep one workload across dozens of (fetch
//! engine, cache size, memory) points. [`run_batch`] drives N independent
//! [`SimConfig`] lanes over one shared [`DecodedProgram`] in a single
//! pass, instead of N separate [`run_decoded`](crate::run_decoded) calls:
//!
//! * **Lane state as parallel arrays.** Processors, results, and the
//!   active-lane index list are struct-of-arrays keyed by lane index, so
//!   the scheduler touches only compact per-lane slots and the shared
//!   predecode table stays hot across lanes.
//! * **Lockstep quanta.** Active lanes advance round-robin in
//!   [`STRIDE`]-cycle quanta, bounding divergence between lanes so that
//!   all of them keep re-reading the same region of the shared program.
//! * **Stall fast-forwarding.** After every stepped cycle, a lane that is
//!   provably idle — fetch engine quiescent, issue stage repeating the
//!   same stall, memory counting down a known-latency access — jumps
//!   straight to its next wakeup cycle via
//!   `Processor::fast_forward_stall`, accumulating the exact statistics
//!   the skipped ticks would have produced.
//!
//! Correctness is the contract: every lane's [`SimStats`] (and any
//! [`SimError`]) is bit-identical to what the scalar
//! [`run_decoded`](crate::run_decoded) path produces for the same
//! configuration. The fast-forward machinery only ever skips windows in
//! which each constituent cycle is a provable no-op, so the lane replays
//! the scalar cycle loop exactly — including timeout cycles and per-cycle
//! queue-occupancy samples.

use std::sync::Arc;

use pipe_isa::DecodedProgram;

use crate::config::SimConfig;
use crate::processor::{Processor, SimError};
use crate::stats::SimStats;

/// Cycles each active lane advances per scheduling quantum. Large enough
/// to amortize the lane switch, small enough to keep lanes reading the
/// same working set of the shared program.
const STRIDE: u64 = 64;

/// Runs every configuration in `configs` over the shared predecoded
/// program, returning one result per lane, in order.
///
/// Each lane's outcome — statistics on success, [`SimError`] on a config,
/// decode, or timeout failure — is bit-identical to
/// [`run_decoded`](crate::run_decoded) with the same arguments. Lanes are
/// independent: one lane failing does not disturb the others.
pub fn run_batch(
    decoded: &Arc<DecodedProgram>,
    configs: &[SimConfig],
) -> Vec<Result<SimStats, SimError>> {
    let mut lanes: Vec<Option<Processor>> = Vec::with_capacity(configs.len());
    let mut results: Vec<Option<Result<SimStats, SimError>>> = Vec::with_capacity(configs.len());
    for config in configs {
        match Processor::from_decoded(decoded, config) {
            Ok(p) => {
                lanes.push(Some(p));
                results.push(None);
            }
            Err(e) => {
                lanes.push(None);
                results.push(Some(Err(e)));
            }
        }
    }

    let mut active: Vec<usize> = (0..lanes.len()).filter(|&i| lanes[i].is_some()).collect();
    while !active.is_empty() {
        active.retain(|&lane| {
            let proc = lanes[lane].as_mut().expect("active lane has a processor");
            let quantum_end = proc.cycle() + STRIDE;
            let outcome = loop {
                if proc.is_done() {
                    let mut p = lanes[lane].take().expect("checked above");
                    p.finalize_stats();
                    break Some(Ok(p.into_stats()));
                }
                if proc.cycle() >= proc.max_cycles() {
                    break Some(Err(SimError::Timeout {
                        cycles: proc.cycle(),
                    }));
                }
                let issued_before = proc.stats().instructions_issued;
                if let Err(e) = proc.step() {
                    break Some(Err(e));
                }
                // Only probe for a quiet window after a cycle that failed
                // to issue: a window opening right after an issue is caught
                // one (cheap) step later, and skipping the probe on issuing
                // cycles keeps the fast-forward machinery off the kernel's
                // throughput path. Statistics are unaffected either way —
                // the fast-forward is exact whenever it fires.
                if proc.stats().instructions_issued == issued_before {
                    proc.fast_forward_stall();
                }
                if proc.cycle() >= quantum_end {
                    break None; // quantum exhausted, lane stays active
                }
            };
            match outcome {
                Some(result) => {
                    lanes[lane] = None;
                    results[lane] = Some(result);
                    false
                }
                None => true,
            }
        });
    }

    results
        .into_iter()
        .map(|r| r.expect("every lane resolved"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FetchStrategy;
    use crate::processor::run_decoded;
    use pipe_icache::{CacheConfig, PipeFetchConfig, TibConfig};
    use pipe_isa::{Assembler, InstrFormat, Program};
    use pipe_mem::MemConfig;

    fn asm(src: &str) -> Program {
        Assembler::new(InstrFormat::Fixed32)
            .assemble(src)
            .unwrap_or_else(|e| panic!("assembly failed: {e}"))
    }

    fn decoded(src: &str) -> Arc<DecodedProgram> {
        Arc::new(DecodedProgram::new(asm(src)))
    }

    /// A loop with loads, stores, an FPU multiply, and taken branches —
    /// exercises every stall class.
    const WORKLOAD: &str = r#"
        lim  r1, 0x200
        lim  r2, 0
        lim  r3, 6
        lbr  b0, loop
        loop: sta r1, 0
        or   r7, r2, r2
        ldw  r1, 0
        add  r2, r7, r7
        addi r1, r1, 4
        subi r3, r3, 1
        pbr.nez b0, r3, 1
        nop
        halt
    "#;

    fn configs() -> Vec<SimConfig> {
        let slow = MemConfig {
            access_cycles: 6,
            ..MemConfig::default()
        };
        vec![
            SimConfig {
                fetch: FetchStrategy::Perfect,
                mem: slow,
                ..SimConfig::default()
            },
            SimConfig {
                fetch: FetchStrategy::conventional(CacheConfig::new(64, 16)),
                mem: slow,
                ..SimConfig::default()
            },
            SimConfig {
                fetch: FetchStrategy::Pipe(PipeFetchConfig::table2(64, 16, 16, 16)),
                mem: slow,
                ..SimConfig::default()
            },
            SimConfig {
                fetch: FetchStrategy::Tib(TibConfig::with_budget(64, 16)),
                mem: slow,
                ..SimConfig::default()
            },
            SimConfig::default(),
        ]
    }

    #[test]
    fn batch_matches_scalar_across_engines() {
        let program = decoded(WORKLOAD);
        let configs = configs();
        let batched = run_batch(&program, &configs);
        for (config, batched) in configs.iter().zip(&batched) {
            let scalar = run_decoded(&program, config);
            assert_eq!(
                &scalar, batched,
                "lane diverged from scalar under {:?}",
                config.fetch
            );
        }
    }

    #[test]
    fn fast_forward_accounts_identically_to_ticked_cycles() {
        // Slow memory under perfect fetch: long data-wait windows that the
        // fast-forward provably skips. The manually fast-forwarded run
        // must land on bit-identical statistics.
        let program = decoded(WORKLOAD);
        let config = SimConfig {
            fetch: FetchStrategy::Perfect,
            mem: MemConfig {
                access_cycles: 9,
                ..MemConfig::default()
            },
            ..SimConfig::default()
        };
        let scalar = run_decoded(&program, &config).expect("scalar run");

        let mut proc = Processor::from_decoded(&program, &config).expect("config valid");
        let mut skipped = 0;
        while !proc.is_done() {
            proc.step().expect("step");
            skipped += proc.fast_forward_stall();
        }
        proc.finalize_stats();
        assert!(skipped > 0, "slow loads must open fast-forward windows");
        assert_eq!(scalar, proc.into_stats());
    }

    #[test]
    fn timeout_lane_matches_scalar_timeout() {
        // Reading r7 with no load in flight deadlocks; both paths must
        // time out on exactly the same cycle.
        let program = decoded("or r1, r7, r7\nhalt\n");
        let config = SimConfig {
            fetch: FetchStrategy::Perfect,
            max_cycles: 1234,
            ..SimConfig::default()
        };
        let scalar = run_decoded(&program, &config).unwrap_err();
        let batched = run_batch(&program, std::slice::from_ref(&config));
        assert_eq!(batched[0].as_ref().unwrap_err(), &scalar);
        assert!(matches!(scalar, SimError::Timeout { cycles: 1234 }));
    }

    #[test]
    fn invalid_lane_fails_without_disturbing_others() {
        let program = decoded(WORKLOAD);
        let bad = SimConfig {
            ldq_entries: 0,
            ..SimConfig::default()
        };
        let good = SimConfig::default();
        let results = run_batch(&program, &[good.clone(), bad, good.clone()]);
        assert!(matches!(results[1], Err(SimError::Config(_))));
        let scalar = run_decoded(&program, &good).expect("scalar run");
        assert_eq!(results[0].as_ref().unwrap(), &scalar);
        assert_eq!(results[2].as_ref().unwrap(), &scalar);
    }

    #[test]
    fn empty_batch_is_empty() {
        let program = decoded("halt\n");
        assert!(run_batch(&program, &[]).is_empty());
    }
}
