//! Simulation statistics.

use std::fmt;

use pipe_icache::FetchStats;
use pipe_mem::MemStats;

/// Why the issue stage did nothing on a given cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// No complete instruction available from the fetch engine.
    pub ifetch: u64,
    /// An `r7` read was waiting for the LDQ head to fill.
    pub data_wait: u64,
    /// A load/store could not issue because LAQ/SAQ/SDQ/LDQ was full.
    pub queue_full: u64,
    /// Issue was gated by an unresolved prepare-to-branch (wrong-path
    /// guard) or by back-to-back branches.
    pub branch: u64,
}

impl StallBreakdown {
    /// Total stall cycles.
    pub fn total(&self) -> u64 {
        self.ifetch + self.data_wait + self.queue_full + self.branch
    }
}

/// Occupancy tracking for one architectural queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueOccupancy {
    /// Highest occupancy observed.
    pub max: usize,
    /// Sum of per-cycle occupancies (divide by cycles for the average).
    pub total: u64,
}

impl QueueOccupancy {
    /// Samples one cycle's occupancy.
    pub fn sample(&mut self, len: usize) {
        self.max = self.max.max(len);
        self.total += len as u64;
    }

    /// Samples `n` consecutive cycles at the same occupancy — equivalent
    /// to calling [`sample`](Self::sample) `n` times. Used by the batched
    /// kernel when fast-forwarding a stall window during which no queue
    /// length can change.
    pub fn sample_n(&mut self, len: usize, n: u64) {
        self.max = self.max.max(len);
        self.total += len as u64 * n;
    }

    /// Average occupancy over `cycles`.
    pub fn average(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.total as f64 / cycles as f64
        }
    }
}

/// Per-queue occupancy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Load Address Queue.
    pub laq: QueueOccupancy,
    /// Load (data) Queue.
    pub ldq: QueueOccupancy,
    /// Store Address Queue.
    pub saq: QueueOccupancy,
    /// Store Data Queue.
    pub sdq: QueueOccupancy,
}

/// Results of a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total cycles from reset to full drain after `halt` — the paper's
    /// performance metric.
    pub cycles: u64,
    /// Instructions issued (architecturally executed).
    pub instructions_issued: u64,
    /// Data loads issued (LAQ pushes).
    pub loads: u64,
    /// Stores issued (SAQ pushes), including FPU-operand stores.
    pub stores: u64,
    /// Floating-point operations started (FPU-triggering stores issued).
    pub fpu_ops: u64,
    /// Taken branches.
    pub branches_taken: u64,
    /// Not-taken branches.
    pub branches_not_taken: u64,
    /// Issue-stall cycles by cause.
    pub stalls: StallBreakdown,
    /// Architectural queue occupancies sampled every cycle.
    pub queues: QueueStats,
    /// Fetch-engine statistics snapshot.
    pub fetch: FetchStats,
    /// Memory-system statistics snapshot.
    pub mem: MemStats,
}

impl SimStats {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions_issued == 0 {
            f64::NAN
        } else {
            self.cycles as f64 / self.instructions_issued as f64
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "simulation results:")?;
        writeln!(f, "  cycles:        {}", self.cycles)?;
        writeln!(f, "  instructions:  {}", self.instructions_issued)?;
        writeln!(f, "  CPI:           {:.3}", self.cpi())?;
        writeln!(f, "  loads/stores:  {} / {}", self.loads, self.stores)?;
        writeln!(f, "  fpu ops:       {}", self.fpu_ops)?;
        writeln!(
            f,
            "  branches:      {} taken, {} not taken",
            self.branches_taken, self.branches_not_taken
        )?;
        writeln!(
            f,
            "  stalls:        {} ifetch, {} data, {} queue, {} branch",
            self.stalls.ifetch, self.stalls.data_wait, self.stalls.queue_full, self.stalls.branch
        )?;
        writeln!(
            f,
            "  queue peaks:   LAQ {} / LDQ {} / SAQ {} / SDQ {}",
            self.queues.laq.max, self.queues.ldq.max, self.queues.saq.max, self.queues.sdq.max
        )?;
        write!(f, "{}", self.fetch)?;
        writeln!(f)?;
        write!(f, "{}", self.mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_guards_division() {
        assert!(SimStats::default().cpi().is_nan());
        let s = SimStats {
            cycles: 30,
            instructions_issued: 10,
            ..SimStats::default()
        };
        assert_eq!(s.cpi(), 3.0);
    }

    #[test]
    fn stall_totals() {
        let s = StallBreakdown {
            ifetch: 1,
            data_wait: 2,
            queue_full: 3,
            branch: 4,
        };
        assert_eq!(s.total(), 10);
    }

    #[test]
    fn display_includes_cycles() {
        let s = SimStats {
            cycles: 42,
            instructions_issued: 10,
            ..SimStats::default()
        };
        assert!(s.to_string().contains("42"));
    }
}
