//! A timing-free functional reference interpreter.
//!
//! Executes a PIPE program with the same *architectural* semantics as the
//! cycle-level [`Processor`](crate::Processor) — queue-register FIFO
//! discipline, prepare-to-branch delay slots, foreground/background
//! banks, memory-mapped FPU — but with zero-latency memory and no fetch
//! or bus modeling. It serves two purposes:
//!
//! 1. a **differential oracle**: any program must produce identical final
//!    register and data-memory state on the interpreter and on the timed
//!    processor under every fetch engine (tested property);
//! 2. a fast way to functionally validate generated workloads.
//!
//! ```
//! use pipe_core::interpret;
//! use pipe_isa::{Assembler, InstrFormat};
//!
//! let program = Assembler::new(InstrFormat::Fixed32)
//!     .assemble("lim r1, 6\nlim r2, 7\nadd r3, r1, r2\nhalt\n")
//!     .unwrap();
//! let result = interpret(&program, 1_000).unwrap();
//! assert_eq!(result.regs[3], 13);
//! assert_eq!(result.instructions, 4);
//! ```

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use pipe_isa::{Instruction, Program, Reg};
use pipe_mem::{DataMemory, FpOp};

use crate::queues::LoadQueue;
use crate::regfile::{BranchRegFile, RegFile};

/// An error terminating interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The program counter left the program image.
    PcOutOfRange {
        /// The offending byte address.
        pc: u32,
    },
    /// An undecodable encoding was reached.
    Decode(pipe_isa::DecodeError),
    /// An `r7` read popped an empty (or unfilled) load queue: the program
    /// consumes more values than it produces.
    QueueUnderflow {
        /// Byte address of the reading instruction.
        pc: u32,
    },
    /// The instruction budget was exhausted before `halt`.
    InstructionLimit {
        /// The budget that was exceeded.
        limit: u64,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::PcOutOfRange { pc } => write!(f, "pc {pc:#x} outside program"),
            InterpError::Decode(e) => write!(f, "decode failed: {e}"),
            InterpError::QueueUnderflow { pc } => {
                write!(f, "r7 read with empty load queue at {pc:#x}")
            }
            InterpError::InstructionLimit { limit } => {
                write!(f, "instruction limit of {limit} exceeded")
            }
        }
    }
}

impl Error for InterpError {}

impl From<pipe_isa::DecodeError> for InterpError {
    fn from(e: pipe_isa::DecodeError) -> InterpError {
        InterpError::Decode(e)
    }
}

/// The final architectural state after interpretation.
#[derive(Debug, Clone)]
pub struct InterpResult {
    /// Instructions executed (including `halt`).
    pub instructions: u64,
    /// Final foreground register values `r0..=r7` (the `r7` slot holds its
    /// last latched value, matching the processor's register file).
    pub regs: [u32; 8],
    /// Final data memory.
    pub memory: DataMemory,
    /// Taken branches.
    pub branches_taken: u64,
    /// Not-taken branches.
    pub branches_not_taken: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed (including FPU-operand stores).
    pub stores: u64,
    /// FPU operations performed.
    pub fpu_ops: u64,
}

/// Tiny timing-free FPU mirror: operand-A latch only (results return
/// synchronously when the operation store drains).
#[derive(Debug, Default)]
struct InstantFpu {
    operand_a: u32,
}

/// The timing-free interpreter. See the [module docs](self).
#[derive(Debug)]
pub struct Interpreter {
    program: Program,
    pc: u32,
    regs: RegFile,
    bregs: BranchRegFile,
    memory: DataMemory,
    /// LDQ slots: allocated at loads and at FPU-op stores (program order),
    /// exactly like the timed processor's load queue.
    ldq: LoadQueue,
    saq: VecDeque<u32>,
    sdq: VecDeque<u32>,
    /// Slots awaiting FPU results, in operation order.
    fpu_slots: VecDeque<u64>,
    fpu: InstantFpu,
    pending_branch: Option<(u32, u32)>,
    halted: bool,
    result: InterpResult,
}

impl Interpreter {
    /// Creates an interpreter positioned at the program's entry point,
    /// with the program's data image loaded.
    pub fn new(program: &Program) -> Interpreter {
        let memory = DataMemory::from_image(program.data().iter().copied());
        Interpreter {
            program: program.clone(),
            pc: program.entry(),
            regs: RegFile::new(),
            bregs: BranchRegFile::new(),
            memory,
            // The interpreter never stalls, so the queue only needs to be
            // deep enough for the program's maximum outstanding window.
            ldq: LoadQueue::new(4096),
            saq: VecDeque::new(),
            sdq: VecDeque::new(),
            fpu_slots: VecDeque::new(),
            fpu: InstantFpu::default(),
            pending_branch: None,
            halted: false,
            result: InterpResult {
                instructions: 0,
                regs: [0; 8],
                memory: DataMemory::new(),
                branches_taken: 0,
                branches_not_taken: 0,
                loads: 0,
                stores: 0,
                fpu_ops: 0,
            },
        }
    }

    fn read(&mut self, r: Reg) -> Result<u32, InterpError> {
        if r.is_queue() {
            match self.ldq.front_ready() {
                Some(v) => {
                    self.ldq.pop();
                    Ok(v)
                }
                None => Err(InterpError::QueueUnderflow { pc: self.pc }),
            }
        } else {
            Ok(self.regs.read(r))
        }
    }

    fn write(&mut self, r: Reg, v: u32) {
        if r.is_queue() {
            self.sdq.push_back(v);
        } else {
            self.regs.write(r, v);
        }
    }

    /// Sends completed SAQ/SDQ pairs to memory (or the FPU) immediately.
    fn drain_stores(&mut self) {
        while let (Some(&addr), Some(&value)) = (self.saq.front(), self.sdq.front()) {
            self.saq.pop_front();
            self.sdq.pop_front();
            if pipe_isa::is_fpu_address(addr) {
                let off = addr - pipe_isa::FPU_BASE;
                if off == 0 {
                    self.fpu.operand_a = value;
                } else if let Some(op) = FpOp::from_offset(off) {
                    let result = op.eval_bits(self.fpu.operand_a, value);
                    let seq = self
                        .fpu_slots
                        .pop_front()
                        .expect("fpu op without allocated slot");
                    self.ldq.fill(seq, result);
                }
            } else {
                self.memory.write(addr, value);
            }
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// See [`InterpError`].
    pub fn step(&mut self) -> Result<(), InterpError> {
        if self.halted {
            return Ok(());
        }
        let (instr, size) = self
            .program
            .instruction_at(self.pc)
            .map_err(|_| InterpError::PcOutOfRange { pc: self.pc })?;
        let mut next_pc = self.pc + size;

        // A single r7 value per instruction: multiple r7 source operands
        // read the same popped value (matching the processor).
        let mut queue_value: Option<u32> = None;
        let mut read_src = |this: &mut Self, r: Reg| -> Result<u32, InterpError> {
            if r.is_queue() {
                if let Some(v) = queue_value {
                    return Ok(v);
                }
                let v = this.read(r)?;
                queue_value = Some(v);
                Ok(v)
            } else {
                Ok(this.regs.read(r))
            }
        };

        match instr {
            Instruction::Nop => {}
            Instruction::Halt => self.halted = true,
            Instruction::Xchg => self.regs.exchange(),
            Instruction::Alu { op, rd, rs1, rs2 } => {
                let a = read_src(self, rs1)?;
                let b = read_src(self, rs2)?;
                self.write(rd, op.eval(a, b));
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                let a = read_src(self, rs1)?;
                self.write(rd, op.eval(a, imm as i32 as u32));
            }
            Instruction::Lim { rd, imm } => self.write(rd, imm as i32 as u32),
            Instruction::Lui { rd, imm } => {
                let old = read_src(self, rd)?;
                self.write(rd, (u32::from(imm) << 16) | (old & 0xFFFF));
            }
            Instruction::Load { base, disp } => {
                let addr = read_src(self, base)?.wrapping_add(disp as i32 as u32);
                let seq = self
                    .ldq
                    .alloc()
                    .expect("interpreter queue sized generously");
                let value = self.memory.read(addr);
                self.ldq.fill(seq, value);
                self.result.loads += 1;
            }
            Instruction::StoreAddr { base, disp } => {
                let addr = read_src(self, base)?.wrapping_add(disp as i32 as u32);
                self.saq.push_back(addr);
                self.result.stores += 1;
                if pipe_isa::is_fpu_address(addr)
                    && FpOp::from_offset(addr - pipe_isa::FPU_BASE).is_some()
                {
                    let seq = self
                        .ldq
                        .alloc()
                        .expect("interpreter queue sized generously");
                    self.fpu_slots.push_back(seq);
                    self.result.fpu_ops += 1;
                }
            }
            Instruction::Lbr { br, target_parcel } => {
                self.bregs.write(br, u32::from(target_parcel) * 2)
            }
            Instruction::LbrReg { br, rs1 } => {
                let v = read_src(self, rs1)?;
                self.bregs.write(br, v);
            }
            Instruction::Pbr {
                cond,
                br,
                rs,
                delay,
            } => {
                let v = read_src(self, rs)?;
                if cond.eval(v) {
                    self.result.branches_taken += 1;
                    self.pending_branch = Some((u32::from(delay), self.bregs.read(br)));
                } else {
                    self.result.branches_not_taken += 1;
                }
            }
        }

        self.drain_stores();
        self.result.instructions += 1;

        // Delay-slot countdown: the PBR itself does not count.
        if !instr.is_branch() {
            if let Some((remaining, target)) = &mut self.pending_branch {
                if *remaining == 0 {
                    unreachable!("zero-delay branches redirect before the next instruction");
                }
                *remaining -= 1;
                if *remaining == 0 {
                    next_pc = *target;
                    self.pending_branch = None;
                }
            }
        } else if let Some((0, target)) = self.pending_branch {
            next_pc = target;
            self.pending_branch = None;
        }

        self.pc = next_pc;
        Ok(())
    }

    /// Runs until `halt` or until `max_instructions` have executed.
    ///
    /// # Errors
    ///
    /// See [`InterpError`].
    pub fn run(mut self, max_instructions: u64) -> Result<InterpResult, InterpError> {
        while !self.halted {
            if self.result.instructions >= max_instructions {
                return Err(InterpError::InstructionLimit {
                    limit: max_instructions,
                });
            }
            self.step()?;
        }
        for i in 0..8 {
            self.result.regs[i as usize] = self.regs.read(Reg::new(i));
        }
        self.result.memory = self.memory;
        Ok(self.result)
    }
}

/// Interprets `program` to completion.
///
/// # Errors
///
/// See [`InterpError`].
pub fn interpret(program: &Program, max_instructions: u64) -> Result<InterpResult, InterpError> {
    Interpreter::new(program).run(max_instructions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipe_isa::{Assembler, InstrFormat};

    fn asm(src: &str) -> Program {
        Assembler::new(InstrFormat::Fixed32).assemble(src).unwrap()
    }

    #[test]
    fn straight_line() {
        let r = interpret(&asm("lim r1, 6\nlim r2, 7\nadd r3, r1, r2\nhalt\n"), 100).unwrap();
        assert_eq!(r.regs[3], 13);
        assert_eq!(r.instructions, 4);
    }

    #[test]
    fn loop_with_delay_slots() {
        let src = "lim r1, 4\nlim r2, 0\nlbr b0, top\ntop: subi r1, r1, 1\npbr.nez b0, r1, 1\naddi r2, r2, 1\nhalt\n";
        let r = interpret(&asm(src), 1000).unwrap();
        assert_eq!(r.regs[2], 4, "delay slot ran each iteration");
        assert_eq!(r.branches_taken, 3);
        assert_eq!(r.branches_not_taken, 1);
    }

    #[test]
    fn zero_delay_branch() {
        let src = "lim r1, 3\nlbr b0, top\ntop: subi r1, r1, 1\npbr.nez b0, r1, 0\nhalt\n";
        let r = interpret(&asm(src), 1000).unwrap();
        assert_eq!(r.instructions, 2 + 3 * 2 + 1);
    }

    #[test]
    fn memory_and_queues() {
        let src = r#"
            lim r1, 0x100
            lim r2, 9
            sta r1, 0
            or  r7, r2, r2
            ldw r1, 0
            add r3, r7, r7
            halt
        "#;
        let r = interpret(&asm(src), 100).unwrap();
        assert_eq!(r.memory.read(0x100), 9);
        assert_eq!(r.regs[3], 18);
        assert_eq!(r.loads, 1);
        assert_eq!(r.stores, 1);
    }

    #[test]
    fn fpu_roundtrip() {
        let src = r#"
            lim r5, -4096
            lui r2, 0x4000
            lui r3, 0x4040
            sta r5, 0
            or  r7, r2, r2
            sta r5, 4
            or  r7, r3, r3
            or  r4, r7, r7
            halt
        "#;
        let r = interpret(&asm(src), 100).unwrap();
        assert_eq!(r.regs[4], 6.0f32.to_bits());
        assert_eq!(r.fpu_ops, 1);
    }

    #[test]
    fn queue_underflow_detected() {
        let e = interpret(&asm("or r1, r7, r7\nhalt\n"), 100).unwrap_err();
        assert!(matches!(e, InterpError::QueueUnderflow { .. }));
    }

    #[test]
    fn instruction_limit() {
        let src = "lbr b0, top\ntop: pbr b0, r0, 1\nnop\nhalt\n";
        let e = interpret(&asm(src), 50).unwrap_err();
        assert!(matches!(e, InterpError::InstructionLimit { limit: 50 }));
    }

    #[test]
    fn pc_out_of_range_detected() {
        // No halt: execution runs off the end of the image.
        let e = interpret(&asm("nop\n"), 100).unwrap_err();
        assert!(matches!(e, InterpError::PcOutOfRange { .. }));
    }
}
