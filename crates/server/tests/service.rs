//! End-to-end tests of the simulation service over real sockets: the
//! acceptance criteria of the service PR. Every test binds an ephemeral
//! port and drives the server through the same loopback client the CLI
//! (`pipe-sim request`) uses.

use std::path::PathBuf;
use std::time::Duration;

use pipe_core::FetchStrategy;
use pipe_experiments::json::{field_str, field_u64, stats_json};
use pipe_experiments::runner::try_run_point;
use pipe_experiments::{fnv1a64, StoredPoint};
use pipe_icache::{EngineBuilder, FetchKind};
use pipe_isa::InstrFormat;
use pipe_mem::MemConfig;
use pipe_server::{http_request, spawn, ClientResponse, ServerConfig};

const TIMEOUT: Duration = Duration::from_secs(30);

/// A fast deterministic request body used throughout (tight loop, PIPE
/// engine, 64 B cache).
const SIM_BODY: &str = "{\"workload\":\"tight-loop\",\"body\":6,\"trips\":30,\
                        \"fetch\":\"pipe\",\"cache\":64,\"line\":16}";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pipe-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    }
}

fn simulate(addr: &str, body: &str) -> ClientResponse {
    http_request(addr, "POST", "/v1/simulate", Some(body), TIMEOUT).expect("simulate request")
}

/// The fetch configuration `SIM_BODY` resolves to.
fn sim_body_fetch() -> FetchStrategy {
    EngineBuilder::new(FetchKind::Pipe)
        .cache_bytes(64)
        .line_bytes(16)
        .buffers(4)
        .buffer_cache(true)
        .config()
        .unwrap()
}

#[test]
fn sixty_four_concurrent_identical_requests_compute_exactly_once() {
    let handle = spawn(ServerConfig {
        workers: 8,
        queue_capacity: 256,
        compute_delay: Duration::from_millis(150),
        ..config()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    let responses: Vec<ClientResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..64)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || simulate(&addr, SIM_BODY))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for response in &responses {
        assert_eq!(response.status, 200, "body: {}", response.body_text());
    }
    let first = &responses[0].body;
    for response in &responses {
        assert_eq!(&response.body, first, "all 64 responses bit-identical");
    }
    // Exactly one underlying simulation ran.
    let metrics = http_request(&addr, "GET", "/metrics", None, TIMEOUT).unwrap();
    let text = metrics.body_text();
    assert!(
        text.contains("pipe_serve_sim_total{outcome=\"computed\"} 1\n"),
        "metrics:\n{text}"
    );
    handle.shutdown(TIMEOUT).unwrap();
}

#[test]
fn store_hits_are_bit_identical_to_a_direct_run_across_restarts() {
    let store = temp_dir("store");

    // First server instance computes and persists the point.
    let handle = spawn(ServerConfig {
        store_root: Some(store.clone()),
        ..config()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let first = simulate(&addr, SIM_BODY);
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-pipe-source"), Some("computed"));
    assert_eq!(first.header("x-pipe-cache"), Some("miss"));
    let second = simulate(&addr, SIM_BODY);
    assert_eq!(second.header("x-pipe-source"), Some("memory"));
    assert_eq!(second.header("x-pipe-cache"), Some("hit"));
    assert_eq!(second.body, first.body);
    handle.shutdown(TIMEOUT).unwrap();

    // A fresh process serves the same point from the persistent store.
    let handle = spawn(ServerConfig {
        store_root: Some(store.clone()),
        ..config()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let third = simulate(&addr, SIM_BODY);
    assert_eq!(third.header("x-pipe-source"), Some("store"));
    assert_eq!(third.header("x-pipe-cache"), Some("hit"));
    assert_eq!(third.body, first.body);
    handle.shutdown(TIMEOUT).unwrap();

    // The response equals a direct in-process run, bit for bit: same
    // key, same strategy label, same stats JSON.
    let body = first.body_text();
    let program = pipe_workloads::synthetic::tight_loop(6, 30, InstrFormat::Fixed32);
    let fetch = sim_body_fetch();
    let direct = try_run_point(&program, fetch, &MemConfig::default(), 64).unwrap();
    let key = field_str(&body, "key").unwrap();
    let entry = StoredPoint::from_point(&key, &fetch.label(), &direct, 0);
    let expected = format!(
        "{{\"key\":\"{key}\",\"strategy\":\"{}\",\"cache_bytes\":64,\"stats\":{}}}",
        fetch.label(),
        stats_json(&entry.stats)
    );
    assert_eq!(body, expected);
    // And the store entry on disk is addressed by the FNV of that key.
    let entry_path = store
        .join("store")
        .join("v1")
        .join(format!("{:016x}.json", fnv1a64(&key)));
    assert!(entry_path.is_file(), "missing {}", entry_path.display());

    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn full_accept_queue_returns_503_with_retry_after() {
    // One worker, a one-slot queue, and slow simulations: extra
    // connections must be rejected immediately, never hung or dropped.
    let handle = spawn(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        compute_delay: Duration::from_millis(800),
        ..config()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    let statuses: Vec<u16> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..12)
            .map(|i| {
                let addr = addr.clone();
                // Distinct cache sizes defeat coalescing so every
                // request occupies the worker for the full delay.
                let body = format!(
                    "{{\"workload\":\"tight-loop\",\"body\":6,\"trips\":30,\
                      \"fetch\":\"pipe\",\"cache\":{},\"line\":16}}",
                    64 << (i % 3)
                );
                scope.spawn(move || simulate(&addr, &body))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let response = h.join().unwrap();
                if response.status == 503 {
                    assert_eq!(response.header("retry-after"), Some("1"));
                    assert!(response.body_text().contains("\"error\""));
                }
                response.status
            })
            .collect()
    });
    let rejected = statuses.iter().filter(|&&s| s == 503).count();
    let served = statuses.iter().filter(|&&s| s == 200).count();
    assert!(rejected > 0, "expected some 503s, got {statuses:?}");
    assert!(served > 0, "expected some successes, got {statuses:?}");
    assert_eq!(rejected + served, 12, "no request may hang: {statuses:?}");
    handle.shutdown(TIMEOUT).unwrap();
}

#[test]
fn deadline_overrun_returns_504_and_the_result_lands_later() {
    let handle = spawn(ServerConfig {
        request_timeout: Duration::from_millis(50),
        compute_delay: Duration::from_millis(400),
        ..config()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    let response = simulate(&addr, SIM_BODY);
    assert_eq!(response.status, 504, "body: {}", response.body_text());
    assert_eq!(response.header("retry-after"), Some("1"));

    // The simulation finished in the background; a retry is a cache hit.
    std::thread::sleep(Duration::from_millis(600));
    let retry = simulate(&addr, SIM_BODY);
    assert_eq!(retry.status, 200);
    assert_eq!(retry.header("x-pipe-cache"), Some("hit"));
    let metrics = http_request(&addr, "GET", "/metrics", None, TIMEOUT).unwrap();
    let text = metrics.body_text();
    assert!(text.contains("pipe_serve_timeouts_total 1\n"), "{text}");
    assert!(
        text.contains("pipe_serve_sim_total{outcome=\"computed\"} 1\n"),
        "{text}"
    );
    handle.shutdown(TIMEOUT).unwrap();
}

#[test]
fn sweep_endpoint_runs_a_scaled_figure_and_resumes_from_the_store() {
    let store = temp_dir("sweep");
    let handle = spawn(ServerConfig {
        store_root: Some(store.clone()),
        sweep_jobs: 4,
        ..config()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    let body = "{\"figure\":\"4a\",\"scale\":2000,\"jobs\":4}";
    let first = http_request(&addr, "POST", "/v1/sweep", Some(body), TIMEOUT).unwrap();
    assert_eq!(first.status, 200, "body: {}", first.body_text());
    let text = first.body_text();
    assert_eq!(field_str(&text, "id").as_deref(), Some("fig4a"));
    let computed = field_u64(&text, "computed").unwrap();
    assert!(computed > 0, "{text}");
    assert_eq!(field_u64(&text, "failed"), Some(0));
    assert!(text.contains("\"series\":["), "{text}");
    assert!(text.contains("\"cache_bytes\":"), "{text}");

    // The same sweep again is fully store-resumed: nothing recomputed.
    let second = http_request(&addr, "POST", "/v1/sweep", Some(body), TIMEOUT).unwrap();
    let text = second.body_text();
    assert_eq!(field_u64(&text, "computed"), Some(0), "{text}");
    assert_eq!(field_u64(&text, "cached"), Some(computed), "{text}");

    handle.shutdown(TIMEOUT).unwrap();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn introspection_endpoints_and_error_paths() {
    let events = temp_dir("events");
    let handle = spawn(ServerConfig {
        events_root: Some(events.clone()),
        ..config()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    // Health first.
    let health = http_request(&addr, "GET", "/healthz", None, TIMEOUT).unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body_text().contains("\"status\":\"ok\""));

    // Worker-compat info: version, store layout, provisioning.
    let info = http_request(&addr, "GET", "/v1/info", None, TIMEOUT).unwrap();
    assert_eq!(info.status, 200);
    let text = info.body_text();
    assert_eq!(
        field_str(&text, "version").as_deref(),
        Some(env!("CARGO_PKG_VERSION")),
        "{text}"
    );
    assert_eq!(field_u64(&text, "store_version"), Some(1), "{text}");
    assert_eq!(field_u64(&text, "workers"), Some(4), "{text}");
    // This server has no store attached.
    assert!(text.contains("\"store_enabled\":false"), "{text}");
    assert_eq!(field_u64(&text, "store_keys"), Some(0), "{text}");
    let wrong_info = http_request(&addr, "POST", "/v1/info", None, TIMEOUT).unwrap();
    assert_eq!(wrong_info.status, 405);
    assert_eq!(wrong_info.header("allow"), Some("GET"));

    // Workloads is empty before any simulation, populated after.
    let empty = http_request(&addr, "GET", "/v1/workloads", None, TIMEOUT).unwrap();
    assert!(empty.body_text().contains("\"resident\":[]"));
    assert_eq!(simulate(&addr, SIM_BODY).status, 200);
    let loaded = http_request(&addr, "GET", "/v1/workloads", None, TIMEOUT).unwrap();
    let text = loaded.body_text();
    assert!(text.contains("tight-loop:body=6,trips=30"), "{text}");
    assert!(text.contains("\"instructions\":"), "{text}");

    // Error paths: bad JSON field, non-JSON body, unknown route, wrong
    // method.
    let bad = simulate(&addr, "{\"fetch\":\"warp-drive\"}");
    assert_eq!(bad.status, 400);
    assert!(bad.body_text().contains("warp-drive"));
    let not_json = simulate(&addr, "cache=64&fetch=pipe");
    assert_eq!(not_json.status, 400);
    assert!(not_json.body_text().contains("JSON object"));
    let truncated = simulate(&addr, "{\"cache\":64");
    assert_eq!(truncated.status, 400);
    let missing = http_request(&addr, "GET", "/v1/nonsense", None, TIMEOUT).unwrap();
    assert_eq!(missing.status, 404);
    let wrong = http_request(&addr, "GET", "/v1/simulate", None, TIMEOUT).unwrap();
    assert_eq!(wrong.status, 405);
    assert_eq!(wrong.header("allow"), Some("POST"));

    // Metrics reflect what happened.
    let metrics = http_request(&addr, "GET", "/metrics", None, TIMEOUT).unwrap();
    let text = metrics.body_text();
    assert!(
        text.contains("pipe_serve_requests_total{endpoint=\"simulate\"} 4\n"),
        "{text}"
    );
    assert!(
        text.contains("pipe_serve_responses_total{status=\"404\"} 1\n"),
        "{text}"
    );
    assert!(
        text.contains("pipe_serve_responses_total{status=\"405\"} 2\n"),
        "{text}"
    );

    handle.shutdown(TIMEOUT).unwrap();

    // The event log recorded the lifecycle in RunLog JSONL shape.
    let log = std::fs::read_to_string(events.join("events").join("server.jsonl")).unwrap();
    assert!(log.contains("\"event\":\"server_start\""), "{log}");
    assert!(log.contains("\"event\":\"request\""), "{log}");
    assert!(log.contains("\"endpoint\":\"simulate\""), "{log}");
    assert!(log.contains("\"event\":\"server_stop\""), "{log}");
    for line in log.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
    let _ = std::fs::remove_dir_all(&events);
}

#[test]
fn shutdown_drains_gracefully_and_refuses_new_work() {
    let handle = spawn(config()).unwrap();
    let addr = handle.addr().to_string();
    assert_eq!(simulate(&addr, SIM_BODY).status, 200);
    handle.shutdown(TIMEOUT).unwrap();
    // The listener is gone: new connections fail.
    assert!(http_request(&addr, "GET", "/healthz", None, Duration::from_secs(2)).is_err());
}
