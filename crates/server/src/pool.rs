//! A bounded multi-producer multi-consumer queue for the worker pool.
//!
//! The accept loop pushes connections with [`BoundedQueue::try_push`] —
//! which fails *immediately* when the queue is full, so backpressure
//! turns into a `503` on the acceptor thread instead of an unbounded
//! backlog — and worker threads block in [`BoundedQueue::pop`] until an
//! item or shutdown arrives. [`BoundedQueue::close`] wakes every blocked
//! worker; pops then drain the remaining items and return `None`, which
//! is the workers' signal to exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue has been closed; the item is handed back.
    Closed(T),
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity FIFO shared between one acceptor and N workers.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity queue would refuse
    /// every push and deadlock the server by construction.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            capacity,
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Full`] at capacity and [`PushError::Closed`]
    /// after [`BoundedQueue::close`]; both hand the item back so the
    /// caller can reject it explicitly.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available, returning `None` once the
    /// queue is closed *and* drained — the worker-exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: future pushes fail, and blocked pops wake to
    /// drain the remainder and then return `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued (racy by nature; for metrics only).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty (racy; for metrics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(PushError::Closed(8)));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give the workers a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::<u32>::new(8));
        let total = 400u32;
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..total / 4 {
                        let mut v = p * (total / 4) + i;
                        loop {
                            match q.try_push(v) {
                                Ok(()) => break,
                                Err(PushError::Full(back)) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..total).collect::<Vec<_>>());
    }
}
