//! Request routing and the JSON request/response schemas.
//!
//! The request bodies are flat JSON objects mirroring the `pipe-sim`
//! CLI flags one-to-one (`fetch`, `cache`, `line`, `iq`, `iqb`,
//! `prefetch`, `access`, `bus`, `pipelined`, `data_first`, plus the
//! workload fields), parsed with the shared
//! [`pipe_experiments::json`] helpers. Responses carry the result body
//! plus two provenance headers: `X-Pipe-Source`
//! (`computed|coalesced|memory|store`) and `X-Pipe-Cache` (`hit|miss`).

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use pipe_experiments::json::{escape, field_bool, field_str, field_u64, stats_json};
use pipe_experiments::{ResultStore, SweepRunner, SweepSpec, WorkloadSpec, ALL_FIGURES};
use pipe_icache::{ConvPrefetch, EngineBuilder, FetchKind};
use pipe_isa::InstrFormat;
use pipe_mem::MemConfig;

use crate::cache::{SimPoint, SimService, SimServiceError};
use crate::http::{Request, Response};
use crate::metrics::Metrics;

/// Shared state handed to every worker.
#[derive(Debug)]
pub struct AppState {
    /// The simulation engine (memo, store, single-flight).
    pub sim: Arc<SimService>,
    /// Live counters.
    pub metrics: Arc<Metrics>,
    /// The persistent store, for sweep resume (the sim service holds its
    /// own handle).
    pub store: Option<ResultStore>,
    /// Per-request wait deadline.
    pub request_timeout: Duration,
    /// Worker threads a `/v1/sweep` run may use.
    pub sweep_jobs: usize,
    /// Request-handling worker threads (reported by `/v1/info`).
    pub workers: usize,
    /// When the server started (for `/healthz` uptime).
    pub started: Instant,
    sweeps: Mutex<HashMap<String, Arc<SweepFlight>>>,
}

/// An in-flight sweep identical requests park on (single-flight over
/// the rendered response body).
#[derive(Debug, Default)]
struct SweepFlight {
    done: Mutex<Option<Result<String, String>>>,
    cv: Condvar,
}

impl AppState {
    /// Creates the shared state.
    pub fn new(
        sim: Arc<SimService>,
        metrics: Arc<Metrics>,
        store: Option<ResultStore>,
        request_timeout: Duration,
        sweep_jobs: usize,
        workers: usize,
    ) -> AppState {
        AppState {
            sim,
            metrics,
            store,
            request_timeout,
            sweep_jobs,
            workers,
            started: Instant::now(),
            sweeps: Mutex::new(HashMap::new()),
        }
    }
}

/// A routed response plus its side effects.
#[derive(Debug)]
pub struct RouteOutcome {
    /// The response to write.
    pub response: Response,
    /// The endpoint label for metrics and the event log.
    pub endpoint: &'static str,
    /// Whether this request asked the server to shut down.
    pub shutdown: bool,
}

fn outcome(response: Response, endpoint: &'static str) -> RouteOutcome {
    RouteOutcome {
        response,
        endpoint,
        shutdown: false,
    }
}

/// Dispatches one parsed request.
pub fn route(state: &AppState, req: &Request) -> RouteOutcome {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/simulate") => {
            state.metrics.requests_simulate.inc();
            outcome(handle_simulate(state, req), "simulate")
        }
        ("POST", "/v1/sweep") => {
            state.metrics.requests_sweep.inc();
            outcome(handle_sweep(state, req), "sweep")
        }
        ("GET", "/v1/workloads") => {
            state.metrics.requests_workloads.inc();
            outcome(handle_workloads(state), "workloads")
        }
        ("GET", "/metrics") => {
            state.metrics.requests_metrics.inc();
            outcome(Response::text(200, state.metrics.render()), "metrics")
        }
        ("GET", "/v1/info") => {
            state.metrics.requests_info.inc();
            outcome(handle_info(state), "info")
        }
        ("GET", "/healthz") => {
            state.metrics.requests_healthz.inc();
            let uptime = state.started.elapsed().as_millis();
            outcome(
                Response::json(200, format!("{{\"status\":\"ok\",\"uptime_ms\":{uptime}}}")),
                "healthz",
            )
        }
        ("POST", "/admin/shutdown") => {
            state.metrics.requests_shutdown.inc();
            RouteOutcome {
                response: Response::json(200, "{\"status\":\"draining\"}".to_string()),
                endpoint: "shutdown",
                shutdown: true,
            }
        }
        (_, "/v1/simulate" | "/v1/sweep" | "/admin/shutdown") => {
            state.metrics.requests_other.inc();
            outcome(
                Response::error(405, "method not allowed; use POST").header("allow", "POST"),
                "other",
            )
        }
        (_, "/v1/workloads" | "/v1/info" | "/metrics" | "/healthz") => {
            state.metrics.requests_other.inc();
            outcome(
                Response::error(405, "method not allowed; use GET").header("allow", "GET"),
                "other",
            )
        }
        _ => {
            state.metrics.requests_other.inc();
            outcome(
                Response::error(404, &format!("no such endpoint: {}", req.path)),
                "other",
            )
        }
    }
}

/// The `/v1/info` body: what a coordinator needs to decide whether this
/// worker is compatible (version and store layout) and how it is
/// provisioned (workers, sweep jobs, store size).
fn handle_info(state: &AppState) -> Response {
    let store_keys = state.store.as_ref().map(ResultStore::len).unwrap_or(0);
    let body = format!(
        "{{\"version\":\"{}\",\"store_version\":{},\"workers\":{},\"sweep_jobs\":{},\
         \"store_enabled\":{},\"store_keys\":{store_keys},\"uptime_ms\":{}}}",
        escape(env!("CARGO_PKG_VERSION")),
        pipe_experiments::store::STORE_VERSION,
        state.workers,
        state.sweep_jobs,
        state.store.is_some(),
        state.started.elapsed().as_millis(),
    );
    Response::json(200, body)
}

/// Rejects request bodies that are not JSON objects. An empty body is
/// allowed (every field has a default); anything non-empty must at least
/// be brace-delimited, so typos like form-encoded or truncated bodies
/// get a `400` instead of silently parsing as all-defaults.
fn require_json_object(body: &str) -> Result<(), String> {
    let trimmed = body.trim();
    if trimmed.is_empty() || (trimmed.starts_with('{') && trimmed.ends_with('}')) {
        Ok(())
    } else {
        Err("request body must be a JSON object".to_string())
    }
}

fn parse_format(body: &str) -> Result<InstrFormat, String> {
    match field_str(body, "format").as_deref() {
        None | Some("fixed32") => Ok(InstrFormat::Fixed32),
        Some("mixed") => Ok(InstrFormat::Mixed),
        Some(other) => Err(format!("unknown format `{other}` (fixed32|mixed)")),
    }
}

fn parse_workload(body: &str) -> Result<WorkloadSpec, String> {
    let format = parse_format(body)?;
    match field_str(body, "workload").as_deref() {
        None | Some("livermore") => {
            let scale = field_u64(body, "scale").unwrap_or(1).max(1) as u32;
            Ok(WorkloadSpec::Livermore { format, scale })
        }
        Some("tight-loop") => {
            let loop_body = field_u64(body, "body").unwrap_or(6) as u32;
            let trips = field_u64(body, "trips").unwrap_or(30);
            let trips = u16::try_from(trips).map_err(|_| "trips exceeds 65535".to_string())?;
            Ok(WorkloadSpec::TightLoop {
                body: loop_body,
                trips,
                format,
            })
        }
        Some("asm") => {
            let name = field_str(body, "program")
                .ok_or("workload `asm` needs a `program` field (a bundled program name)")?;
            WorkloadSpec::asm(&name, format)
        }
        Some(other) => Err(format!(
            "unknown workload `{other}` (livermore|tight-loop|asm)"
        )),
    }
}

/// Parses a `/v1/simulate` body into a fully-resolved point. The fields
/// mirror the `pipe-sim` flags; absent fields take the CLI defaults.
fn parse_simulate_body(body: &str) -> Result<SimPoint, String> {
    require_json_object(body)?;
    let workload = parse_workload(body)?;
    let fetch_name = field_str(body, "fetch").unwrap_or_else(|| "pipe".to_string());
    let kind = FetchKind::parse(&fetch_name)
        .ok_or_else(|| format!("unknown fetch strategy `{fetch_name}`"))?;
    let cache = field_u64(body, "cache").unwrap_or(128) as u32;
    let line = field_u64(body, "line").unwrap_or(16) as u32;
    let iq = field_u64(body, "iq").map(|v| v as u32);
    let iqb = field_u64(body, "iqb").map(|v| v as u32);
    let prefetch = match field_str(body, "prefetch").as_deref() {
        None | Some("always") => ConvPrefetch::Always,
        Some("on-miss") => ConvPrefetch::OnMissOnly,
        Some("tagged") => ConvPrefetch::Tagged,
        Some(other) => Err(format!(
            "unknown prefetch mode `{other}` (always|on-miss|tagged)"
        ))?,
    };
    let mut builder = EngineBuilder::new(kind)
        .cache_bytes(cache)
        .line_bytes(line)
        .prefetch(prefetch)
        .buffers(iq.unwrap_or(4))
        .buffer_cache(cache > 0);
    if let Some(iq) = iq {
        builder = builder.iq_bytes(iq);
    }
    if let Some(iqb) = iqb {
        builder = builder.iqb_bytes(iqb);
    }
    let fetch = builder.config().map_err(|e| e.to_string())?;

    let mut mem = MemConfig::default();
    if let Some(access) = field_u64(body, "access") {
        mem.access_cycles = access as u32;
    }
    if let Some(bus) = field_u64(body, "bus") {
        mem.in_bus_bytes = bus as u32;
    }
    if let Some(pipelined) = field_bool(body, "pipelined") {
        mem.pipelined = pipelined;
    }
    if let Some(data_first) = field_bool(body, "data_first") {
        if data_first {
            mem.priority = pipe_mem::PriorityPolicy::DataFirst;
        }
    }
    if let Some(dcache) = field_u64(body, "dcache") {
        if dcache > 0 {
            mem.d_cache = Some(pipe_mem::DCacheConfig {
                size_bytes: dcache as u32,
                line_bytes: field_u64(body, "dline").unwrap_or(16) as u32,
                ways: field_u64(body, "dways").unwrap_or(1) as u32,
            });
        }
    }
    mem.validate().map_err(|e| e.to_string())?;

    Ok(SimPoint {
        workload,
        fetch,
        mem,
        cache_bytes: cache,
    })
}

/// Renders the deterministic simulate response body. Provenance lives in
/// headers, so every response for one key is byte-identical regardless
/// of which cache layer produced it.
fn simulate_body(entry: &pipe_experiments::StoredPoint) -> String {
    format!(
        "{{\"key\":\"{}\",\"strategy\":\"{}\",\"cache_bytes\":{},\"stats\":{}}}",
        escape(&entry.key),
        escape(&entry.strategy),
        entry.cache_bytes,
        stats_json(&entry.stats)
    )
}

fn handle_simulate(state: &AppState, req: &Request) -> Response {
    let Some(body) = req.body_text() else {
        return Response::error(400, "body is not UTF-8");
    };
    let point = match parse_simulate_body(body) {
        Ok(point) => point,
        Err(message) => return Response::error(400, &message),
    };
    match state.sim.simulate(&point, state.request_timeout) {
        Ok(result) => Response::json(200, simulate_body(&result.entry))
            .header("x-pipe-source", result.source.label())
            .header(
                "x-pipe-cache",
                if result.source.is_cache_hit() {
                    "hit"
                } else {
                    "miss"
                },
            ),
        Err(SimServiceError::Timeout) => {
            Response::error(504, "simulation still running; retry to pick up the result")
                .header("retry-after", "1")
        }
        Err(SimServiceError::Sim(message)) => Response::error(500, &message),
    }
}

fn handle_sweep(state: &AppState, req: &Request) -> Response {
    let Some(body) = req.body_text() else {
        return Response::error(400, "body is not UTF-8");
    };
    if let Err(message) = require_json_object(body) {
        return Response::error(400, &message);
    }
    let Some(figure) = field_str(body, "figure") else {
        return Response::error(400, "missing required field `figure` (\"4a\"..\"6b\")");
    };
    if !ALL_FIGURES.contains(&figure.as_str()) {
        return Response::error(400, &format!("unknown figure `{figure}` (4a..6b)"));
    }
    let scale = field_u64(body, "scale").unwrap_or(1).max(1) as u32;
    let jobs = field_u64(body, "jobs")
        .map(|v| (v as usize).clamp(1, 64))
        .unwrap_or(state.sweep_jobs);
    let flight_key = format!("fig={figure}|scale={scale}");

    // Single-flight over the rendered body: identical concurrent sweep
    // requests share one run.
    let (flight, leader) = {
        let mut sweeps = state.sweeps.lock().unwrap_or_else(|e| e.into_inner());
        match sweeps.get(&flight_key) {
            Some(flight) => (Arc::clone(flight), false),
            None => {
                let flight = Arc::new(SweepFlight::default());
                sweeps.insert(flight_key.clone(), Arc::clone(&flight));
                (flight, true)
            }
        }
    };
    let rendered = if leader {
        let result = run_sweep(state, &figure, scale, jobs);
        state
            .sweeps
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&flight_key);
        {
            let mut done = flight.done.lock().unwrap_or_else(|e| e.into_inner());
            *done = Some(result.clone());
        }
        flight.cv.notify_all();
        Some(result)
    } else {
        state.metrics.sim_coalesced.inc();
        let deadline = Instant::now() + state.request_timeout;
        let mut done = flight.done.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = done.as_ref() {
                break Some(result.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                break None;
            }
            let (guard, _) = flight
                .cv
                .wait_timeout(done, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            done = guard;
        }
    };
    match rendered {
        Some(Ok(body)) => Response::json(200, body),
        Some(Err(message)) => Response::error(500, &message),
        None => {
            state.metrics.timeouts.inc();
            Response::error(504, "sweep still running; retry later").header("retry-after", "5")
        }
    }
}

fn run_sweep(state: &AppState, figure: &str, scale: u32, jobs: usize) -> Result<String, String> {
    let mut spec = SweepSpec::figure(figure);
    if scale > 1 {
        spec.workload = WorkloadSpec::Livermore {
            format: InstrFormat::Fixed32,
            scale,
        };
    }
    let mut runner = SweepRunner::new().jobs(jobs).progress(false).resume(true);
    if let Some(store) = &state.store {
        runner = runner.store(store.clone());
    }
    let outcome = runner.run(&spec);
    let widths: Vec<String> = outcome.batches.iter().map(|w| w.to_string()).collect();
    let mut body = format!(
        "{{\"id\":\"{}\",\"scale\":{scale},\"computed\":{},\"cached\":{},\"failed\":{},\"wall_ms\":{},\"batch_widths\":[{}],\"series\":[",
        escape(&spec.id),
        outcome.computed,
        outcome.cached,
        outcome.failed.len(),
        outcome.wall.as_millis(),
        widths.join(",")
    );
    for (i, series) in outcome.series.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"label\":\"{}\",\"points\":[",
            escape(&series.label)
        ));
        for (j, point) in series.points.iter().enumerate() {
            if j > 0 {
                body.push(',');
            }
            body.push_str(&format!(
                "{{\"cache_bytes\":{},\"cycles\":{}}}",
                point.cache_bytes, point.cycles
            ));
        }
        body.push_str("]}");
    }
    body.push_str("]}");
    Ok(body)
}

fn handle_workloads(state: &AppState) -> Response {
    let resident = state.sim.resident_workloads();
    let mut body = String::from("{\"resident\":[");
    for (i, (key, instructions)) in resident.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"key\":\"{}\",\"instructions\":{instructions}}}",
            escape(key)
        ));
    }
    body.push_str(
        "],\"available\":[\
         {\"workload\":\"livermore\",\"fields\":[\"scale\",\"format\"]},\
         {\"workload\":\"tight-loop\",\"fields\":[\"body\",\"trips\",\"format\"]},\
         {\"workload\":\"asm\",\"fields\":[\"program\",\"format\"],\"programs\":[",
    );
    for (i, name) in pipe_asm::library::names().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("\"{}\"", escape(name)));
    }
    body.push_str("]}]}");
    Response::json(200, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_body_defaults_mirror_the_cli() {
        let point = parse_simulate_body("{}").unwrap();
        assert_eq!(point.cache_bytes, 128);
        assert!(matches!(
            point.workload,
            WorkloadSpec::Livermore { scale: 1, .. }
        ));
        assert_eq!(point.mem.access_cycles, 1);
        let labelled = point.fetch.label();
        assert!(labelled.contains("16") || !labelled.is_empty());
    }

    #[test]
    fn simulate_body_full_parse() {
        let body = "{\"workload\":\"tight-loop\",\"body\":8,\"trips\":40,\
                    \"fetch\":\"conventional\",\"cache\":256,\"line\":32,\
                    \"prefetch\":\"tagged\",\"access\":6,\"bus\":8,\"pipelined\":true}";
        let point = parse_simulate_body(body).unwrap();
        assert_eq!(point.cache_bytes, 256);
        assert_eq!(point.mem.access_cycles, 6);
        assert_eq!(point.mem.in_bus_bytes, 8);
        assert!(point.mem.pipelined);
        assert!(matches!(
            point.workload,
            WorkloadSpec::TightLoop {
                body: 8,
                trips: 40,
                ..
            }
        ));
    }

    #[test]
    fn simulate_body_rejects_unknowns() {
        assert!(parse_simulate_body("{\"fetch\":\"warp-drive\"}").is_err());
        assert!(parse_simulate_body("{\"workload\":\"dhrystone\"}").is_err());
        assert!(parse_simulate_body("{\"prefetch\":\"psychic\"}").is_err());
        assert!(parse_simulate_body("{\"format\":\"octal\"}").is_err());
        assert!(parse_simulate_body("{\"workload\":\"tight-loop\",\"trips\":70000}").is_err());
    }

    #[test]
    fn simulate_body_rejects_non_json_objects() {
        // A body that is not a JSON object must be a typed 400, not a
        // silent all-defaults run.
        assert!(parse_simulate_body("cache=64&fetch=pipe").is_err());
        assert!(parse_simulate_body("\"just a string\"").is_err());
        assert!(parse_simulate_body("{\"cache\":64").is_err());
        // An empty body is the documented all-defaults request.
        assert!(parse_simulate_body("").is_ok());
        assert!(parse_simulate_body("   \n").is_ok());
    }

    #[test]
    fn identical_requests_share_one_key() {
        let a = parse_simulate_body("{\"cache\":64}").unwrap();
        let b = parse_simulate_body("{\"cache\": 64 }").unwrap();
        assert_eq!(a.key(), b.key());
        let c = parse_simulate_body("{\"cache\":128}").unwrap();
        assert_ne!(a.key(), c.key());
    }
}
