//! # pipe-server
//!
//! `pipe-serve`: a std-only HTTP/1.1 JSON service over the simulator —
//! no external dependencies, `TcpListener` plus a bounded worker pool.
//!
//! | endpoint | what it does |
//! |---|---|
//! | `POST /v1/simulate` | one fetch-configuration run → stats JSON |
//! | `POST /v1/sweep` | a figure-shaped sweep via the sweep engine |
//! | `GET /v1/workloads` | resident decoded programs + accepted fields |
//! | `GET /v1/info` | version, store layout, provisioning — worker compatibility |
//! | `GET /metrics` | Prometheus-style text counters and histograms |
//! | `GET /healthz` | liveness + uptime |
//! | `POST /admin/shutdown` | graceful drain and exit |
//!
//! The load-bearing properties (see the module docs for the details):
//!
//! - **Result caching** ([`cache`]): every simulate request is resolved
//!   through an in-memory memo and the same content-addressed
//!   [`pipe_experiments::ResultStore`] the sweep engine uses — repeated
//!   requests are cache hits, bit-identical to a direct run.
//! - **Single-flight coalescing** ([`cache`]): identical concurrent
//!   requests share one simulation.
//! - **Backpressure** ([`pool`]): a bounded accept queue; when it is
//!   full the acceptor answers `503` + `Retry-After` immediately
//!   instead of queueing unboundedly.
//! - **Deadlines**: a request that waits out its timeout gets `504`
//!   while the simulation finishes in the background.
//! - **Observability** ([`metrics`]): live counters on `GET /metrics`,
//!   plus JSONL lifecycle events in the PR 2 [`pipe_experiments::RunLog`]
//!   format when `--events` is given.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pipe_experiments::json::escape;
use pipe_experiments::{ResultStore, RunLog};

pub mod cache;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod router;

pub use cache::{SimPoint, SimResult, SimService, SimServiceError, Source};
pub use http::{http_request, ClientResponse, Request, Response};
pub use metrics::Metrics;
pub use pool::{BoundedQueue, PushError};
pub use router::AppState;

/// Everything configurable about one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Accepted connections waiting for a worker; beyond this, `503`.
    pub queue_capacity: usize,
    /// How long a request may wait for its result before `504`.
    pub request_timeout: Duration,
    /// Socket read timeout while parsing a request.
    pub read_timeout: Duration,
    /// Worker threads one `/v1/sweep` run may use.
    pub sweep_jobs: usize,
    /// Root of the persistent result store (`None`: memo-only caching).
    pub store_root: Option<PathBuf>,
    /// Root for the JSONL event log (`None`: no events).
    pub events_root: Option<PathBuf>,
    /// Artificial per-simulation delay — fault injection for exercising
    /// the backpressure and timeout paths deterministically.
    pub compute_delay: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            queue_capacity: 128,
            request_timeout: Duration::from_secs(30),
            read_timeout: Duration::from_secs(10),
            sweep_jobs: 2,
            store_root: None,
            events_root: None,
            compute_delay: Duration::ZERO,
        }
    }
}

/// A bound-but-not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    config: ServerConfig,
    state: Arc<AppState>,
    log: Option<Arc<RunLog>>,
}

impl Server {
    /// Binds the listen socket and opens the store and event log.
    ///
    /// # Errors
    ///
    /// Propagates bind, store-open, and log-create failures.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let store = match &config.store_root {
            Some(root) => Some(ResultStore::open(root)?),
            None => None,
        };
        let log = match &config.events_root {
            Some(root) => Some(Arc::new(RunLog::create(root, "server")?)),
            None => None,
        };
        let metrics = Arc::new(Metrics::default());
        let sim = Arc::new(SimService::new(
            store.clone(),
            Arc::clone(&metrics),
            config.compute_delay,
        ));
        let state = Arc::new(AppState::new(
            sim,
            metrics,
            store,
            config.request_timeout,
            config.sweep_jobs,
            config.workers,
        ));
        Ok(Server {
            listener,
            addr,
            config,
            state,
            log,
        })
    }

    /// The actually-bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (for in-process clients and tests).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Runs the accept loop and worker pool until `POST /admin/shutdown`
    /// drains the server. Blocks the calling thread.
    ///
    /// # Errors
    ///
    /// Propagates fatal accept-loop failures (worker-side I/O errors are
    /// per-connection and never fatal).
    pub fn run(self) -> io::Result<()> {
        let Server {
            listener,
            addr,
            config,
            state,
            log,
        } = self;
        if let Some(log) = &log {
            log.append(
                "server_start",
                &format!(
                    "\"addr\":\"{}\",\"workers\":{},\"queue\":{}",
                    escape(&addr.to_string()),
                    config.workers,
                    config.queue_capacity
                ),
            );
        }
        let queue = BoundedQueue::<TcpStream>::new(config.queue_capacity);
        let shutdown = AtomicBool::new(false);
        let started = Instant::now();

        std::thread::scope(|scope| {
            for _ in 0..config.workers.max(1) {
                let queue = &queue;
                let state = &state;
                let shutdown = &shutdown;
                let log = log.as_deref();
                let config = &config;
                scope.spawn(move || {
                    while let Some(stream) = queue.pop() {
                        state.metrics.queue_depth.dec();
                        state.metrics.inflight_requests.inc();
                        let wants_shutdown = handle_connection(stream, state, config, log);
                        state.metrics.inflight_requests.dec();
                        if wants_shutdown && !shutdown.swap(true, Ordering::SeqCst) {
                            queue.close();
                            // Self-connect to unblock the acceptor.
                            let _ = TcpStream::connect(addr);
                        }
                    }
                });
            }

            for conn in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match conn {
                    Ok(stream) => stream,
                    Err(_) => continue,
                };
                match queue.try_push(stream) {
                    Ok(()) => state.metrics.queue_depth.inc(),
                    Err(PushError::Full(stream)) => {
                        state.metrics.rejected_busy.inc();
                        state.metrics.count_status(503);
                        reject_busy(stream);
                    }
                    Err(PushError::Closed(_)) => break,
                }
            }
            queue.close();
        });

        if let Some(log) = &log {
            log.append(
                "server_stop",
                &format!("\"uptime_ms\":{}", started.elapsed().as_millis()),
            );
        }
        Ok(())
    }
}

/// Answers `503 Service Unavailable` directly from the acceptor thread —
/// the queue is full, so no worker is available to say so.
fn reject_busy(mut stream: TcpStream) {
    let response =
        Response::error(503, "server busy; accept queue is full").header("retry-after", "1");
    let _ = response.write_to(&mut stream);
}

/// Serves one connection: parse, route, respond, log. Returns whether
/// the request asked for shutdown.
fn handle_connection(
    stream: TcpStream,
    state: &AppState,
    config: &ServerConfig,
    log: Option<&RunLog>,
) -> bool {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    let mut reader = BufReader::new(stream);
    let started = Instant::now();
    let (outcome, request_line) = match http::read_request(&mut reader) {
        Ok(request) => {
            let line = format!("{} {}", request.method, request.path);
            (router::route(state, &request), line)
        }
        Err(http::HttpError::TooLarge) => (
            router::RouteOutcome {
                response: Response::error(413, "request body exceeds 1 MiB"),
                endpoint: "other",
                shutdown: false,
            },
            "(oversized)".to_string(),
        ),
        Err(http::HttpError::Malformed(message)) => (
            router::RouteOutcome {
                response: Response::error(400, &message),
                endpoint: "other",
                shutdown: false,
            },
            "(malformed)".to_string(),
        ),
        // The connection died before a request arrived; nothing to answer.
        Err(http::HttpError::Io(_)) => return false,
    };
    let mut stream = reader.into_inner();
    let status = outcome.response.status;
    let _ = outcome.response.write_to(&mut stream);
    let _ = stream.flush();
    let wall_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
    state.metrics.count_status(status);
    state.metrics.latency.observe_ms(wall_ms);
    if let Some(log) = log {
        log.append(
            "request",
            &format!(
                "\"peer\":\"{}\",\"request\":\"{}\",\"endpoint\":\"{}\",\"status\":{status},\"wall_ms\":{wall_ms}",
                escape(&peer),
                escape(&request_line),
                outcome.endpoint
            ),
        );
    }
    outcome.shutdown
}

/// Binds and runs a server on a background thread, returning once the
/// listener is live. The examples and integration tests use this; the
/// CLI calls [`Server::run`] directly on the main thread.
///
/// # Errors
///
/// Propagates [`Server::bind`] failures.
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    let server = Server::bind(config)?;
    let addr = server.local_addr();
    let thread = std::thread::spawn(move || server.run());
    Ok(ServerHandle { addr, thread })
}

/// A running background server.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown and waits for the server to drain.
    ///
    /// # Errors
    ///
    /// Propagates the shutdown request's transport error or the server
    /// thread's exit error.
    pub fn shutdown(self, timeout: Duration) -> io::Result<()> {
        let _ = http_request(
            &self.addr.to_string(),
            "POST",
            "/admin/shutdown",
            None,
            timeout,
        )?;
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server thread panicked")),
        }
    }
}
