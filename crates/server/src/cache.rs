//! The simulation service: program residency, result caching, and
//! single-flight request coalescing.
//!
//! [`SimService::simulate`] resolves one fully-specified simulation
//! point through four layers, cheapest first:
//!
//! 1. **Memory memo** — results this process has already produced, keyed
//!    by the canonical configuration key.
//! 2. **Result store** — the content-addressed on-disk store shared with
//!    the sweep engine (same keys, same entries); hits are promoted into
//!    the memo.
//! 3. **Single-flight join** — an identical simulation already running:
//!    the request parks on the in-flight entry instead of recomputing.
//! 4. **Compute** — the simulation runs on a dedicated thread, writes
//!    through to store and memo, then wakes every joined waiter.
//!
//! Computation is deliberately *detached* from the requesting worker: a
//! request that outlives its deadline returns `504` while the
//! simulation keeps running in the background, so the spent work still
//! lands in the memo and a retry becomes a cache hit. Publication order
//! (memo before the in-flight entry is retired) guarantees that a burst
//! of identical requests performs exactly one simulation no matter how
//! the arrivals interleave.
//!
//! Decoded programs are cached per workload key, so repeated requests
//! against the same benchmark share one [`DecodedProgram`] allocation.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use pipe_core::FetchStrategy;
use pipe_experiments::runner::try_run_point_decoded;
use pipe_experiments::{mem_key, ResultStore, StoredPoint, WorkloadSpec};
use pipe_isa::DecodedProgram;
use pipe_mem::MemConfig;

use crate::metrics::Metrics;

/// Where a simulation result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// This request ran the simulation.
    Computed,
    /// This request joined an identical in-flight simulation.
    Coalesced,
    /// Served from the in-process memo.
    Memory,
    /// Served from the persistent result store.
    Store,
}

impl Source {
    /// The label used in the `X-Pipe-Source` response header.
    pub fn label(self) -> &'static str {
        match self {
            Source::Computed => "computed",
            Source::Coalesced => "coalesced",
            Source::Memory => "memory",
            Source::Store => "store",
        }
    }

    /// Whether this source counts as a cache hit (`X-Pipe-Cache`).
    pub fn is_cache_hit(self) -> bool {
        matches!(self, Source::Memory | Source::Store)
    }
}

/// One fully-resolved simulation request.
#[derive(Debug, Clone)]
pub struct SimPoint {
    /// The benchmark to run.
    pub workload: WorkloadSpec,
    /// The fetch front-end.
    pub fetch: FetchStrategy,
    /// External memory parameters.
    pub mem: MemConfig,
    /// Cache size in bytes (reported back; the geometry itself lives in
    /// `fetch`).
    pub cache_bytes: u32,
}

impl SimPoint {
    /// The canonical configuration key — identical to the sweep engine's
    /// job keys, so the service and `pipe-sim sweep` share store entries.
    pub fn key(&self) -> String {
        format!(
            "v1|wl={}|mem={}|fetch={}",
            self.workload.key(),
            mem_key(&self.mem),
            self.fetch.cache_key()
        )
    }
}

/// A resolved simulation with its provenance.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The persisted-shape result entry.
    pub entry: StoredPoint,
    /// Which layer produced it.
    pub source: Source,
}

/// Why a simulation request failed.
#[derive(Debug, Clone)]
pub enum SimServiceError {
    /// The simulator reported an error or the compute thread panicked.
    Sim(String),
    /// The deadline passed while the simulation was still running (it
    /// continues in the background).
    Timeout,
}

impl std::fmt::Display for SimServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimServiceError::Sim(m) => write!(f, "simulation failed: {m}"),
            SimServiceError::Timeout => write!(f, "simulation timed out"),
        }
    }
}

impl std::error::Error for SimServiceError {}

/// One in-flight simulation that identical requests park on.
#[derive(Debug, Default)]
struct Inflight {
    done: Mutex<Option<Result<StoredPoint, String>>>,
    cv: Condvar,
}

impl Inflight {
    /// Waits until the result is published or `deadline` passes.
    fn wait(&self, deadline: Instant) -> Option<Result<StoredPoint, String>> {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = done.as_ref() {
                return Some(result.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(done, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            done = guard;
        }
    }

    fn publish(&self, result: Result<StoredPoint, String>) {
        *self.done.lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
        self.cv.notify_all();
    }
}

/// The shared simulation engine behind the HTTP handlers.
#[derive(Debug)]
pub struct SimService {
    programs: Mutex<HashMap<String, Arc<DecodedProgram>>>,
    memo: Mutex<HashMap<String, StoredPoint>>,
    inflight: Mutex<HashMap<String, Arc<Inflight>>>,
    store: Option<ResultStore>,
    metrics: Arc<Metrics>,
    compute_delay: Duration,
}

impl SimService {
    /// Creates a service over an optional persistent store.
    /// `compute_delay` artificially lengthens every simulation — test
    /// and diagnostic fault injection for the backpressure and timeout
    /// paths, in the spirit of the sweep engine's `FaultInjection`.
    pub fn new(
        store: Option<ResultStore>,
        metrics: Arc<Metrics>,
        compute_delay: Duration,
    ) -> SimService {
        SimService {
            programs: Mutex::new(HashMap::new()),
            memo: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            store,
            metrics,
            compute_delay,
        }
    }

    /// The decoded program for `workload`, building and predecoding it
    /// on first use and sharing the `Arc` afterwards.
    pub fn program(&self, workload: &WorkloadSpec) -> Arc<DecodedProgram> {
        let key = workload.key();
        let mut programs = self.programs.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            programs
                .entry(key)
                .or_insert_with(|| Arc::new(DecodedProgram::new(workload.build()))),
        )
    }

    /// The workloads currently resident, as `(key, instructions)` pairs
    /// sorted by key.
    pub fn resident_workloads(&self) -> Vec<(String, usize)> {
        let programs = self.programs.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<(String, usize)> = programs
            .iter()
            .map(|(key, program)| (key.clone(), program.len()))
            .collect();
        out.sort();
        out
    }

    /// Resolves `point` through memo, store, in-flight join, or a fresh
    /// computation, waiting at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`SimServiceError::Timeout`] when the deadline passes first (the
    /// simulation continues in the background), [`SimServiceError::Sim`]
    /// when the simulator errors or panics.
    pub fn simulate(
        self: &Arc<Self>,
        point: &SimPoint,
        timeout: Duration,
    ) -> Result<SimResult, SimServiceError> {
        let key = point.key();
        if let Some(entry) = self.memo_get(&key) {
            self.metrics.sim_memory_hits.inc();
            return Ok(SimResult {
                entry,
                source: Source::Memory,
            });
        }
        if let Some(store) = &self.store {
            match store.load(&key) {
                Ok(Some(entry)) => {
                    self.memo_put(entry.clone());
                    self.metrics.sim_store_hits.inc();
                    return Ok(SimResult {
                        entry,
                        source: Source::Store,
                    });
                }
                Ok(None) => {}
                Err(e) => {
                    // An unreadable entry is recomputed, like the sweep
                    // engine does; the rewrite will repair it.
                    eprintln!("store read failed for {key}: {e}");
                }
            }
        }

        let deadline = Instant::now() + timeout;
        let (flight, leader) = self.join_or_lead(&key);
        if leader {
            let service = Arc::clone(self);
            let task_point = point.clone();
            let task_key = key.clone();
            let task_flight = Arc::clone(&flight);
            std::thread::spawn(move || service.compute(task_key, task_point, task_flight));
        } else {
            self.metrics.sim_coalesced.inc();
        }
        let source = if leader {
            Source::Computed
        } else {
            Source::Coalesced
        };
        match flight.wait(deadline) {
            Some(Ok(entry)) => Ok(SimResult { entry, source }),
            Some(Err(message)) => Err(SimServiceError::Sim(message)),
            None => {
                self.metrics.timeouts.inc();
                Err(SimServiceError::Timeout)
            }
        }
    }

    fn memo_get(&self, key: &str) -> Option<StoredPoint> {
        self.memo
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned()
    }

    fn memo_put(&self, entry: StoredPoint) {
        self.memo
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(entry.key.clone(), entry);
    }

    /// Returns the in-flight entry for `key`, creating it (and electing
    /// this caller leader) if none exists.
    fn join_or_lead(&self, key: &str) -> (Arc<Inflight>, bool) {
        let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        match inflight.get(key) {
            Some(flight) => (Arc::clone(flight), false),
            None => {
                let flight = Arc::new(Inflight::default());
                inflight.insert(key.to_string(), Arc::clone(&flight));
                (flight, true)
            }
        }
    }

    /// Runs one simulation on its own thread and publishes the outcome.
    fn compute(&self, key: String, point: SimPoint, flight: Arc<Inflight>) {
        self.metrics.inflight_sims.inc();
        let started = Instant::now();
        if !self.compute_delay.is_zero() {
            std::thread::sleep(self.compute_delay);
        }
        let program = self.program(&point.workload);
        let fetch = point.fetch;
        let run = catch_unwind(AssertUnwindSafe(|| {
            try_run_point_decoded(&program, fetch, &point.mem, point.cache_bytes)
        }));
        let outcome = match run {
            Ok(Ok(measured)) => {
                let wall_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
                let entry = StoredPoint::from_point(&key, &point.fetch.label(), &measured, wall_ms);
                // Publish to memo (and store) BEFORE retiring the
                // in-flight entry: a request arriving in between sees
                // either the memo or the in-flight run, never a gap that
                // would trigger a second computation.
                self.memo_put(entry.clone());
                if let Some(store) = &self.store {
                    if let Err(e) = store.save(&entry) {
                        eprintln!("store write failed for {key}: {e}");
                    }
                }
                self.metrics.sim_computed.inc();
                Ok(entry)
            }
            Ok(Err(sim_error)) => {
                self.metrics.sim_failed.inc();
                Err(sim_error.to_string())
            }
            Err(panic) => {
                self.metrics.sim_failed.inc();
                let message = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                Err(format!("worker panicked: {message}"))
            }
        };
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&key);
        flight.publish(outcome);
        self.metrics.inflight_sims.dec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipe_isa::InstrFormat;

    fn tiny_point() -> SimPoint {
        SimPoint {
            workload: WorkloadSpec::TightLoop {
                body: 6,
                trips: 30,
                format: InstrFormat::Fixed32,
            },
            fetch: pipe_icache::EngineBuilder::new(pipe_icache::FetchKind::Pipe)
                .cache_bytes(64)
                .line_bytes(16)
                .config()
                .unwrap(),
            mem: MemConfig::default(),
            cache_bytes: 64,
        }
    }

    fn service(delay_ms: u64) -> Arc<SimService> {
        Arc::new(SimService::new(
            None,
            Arc::new(Metrics::default()),
            Duration::from_millis(delay_ms),
        ))
    }

    #[test]
    fn point_key_matches_sweep_key_format() {
        let point = tiny_point();
        let key = point.key();
        assert!(key.starts_with("v1|wl=tight-loop:body=6,trips=30,format="));
        assert!(key.contains("|mem=access=1,"));
        assert!(key.contains("|fetch="));
    }

    #[test]
    fn compute_then_memo_hit() {
        let service = service(0);
        let point = tiny_point();
        let first = service
            .simulate(&point, Duration::from_secs(30))
            .expect("first run");
        assert_eq!(first.source, Source::Computed);
        assert!(first.entry.stats.cycles > 0);
        let second = service
            .simulate(&point, Duration::from_secs(30))
            .expect("second run");
        assert_eq!(second.source, Source::Memory);
        assert_eq!(second.entry, first.entry);
        assert_eq!(service.metrics.sim_computed.get(), 1);
        assert_eq!(service.metrics.sim_memory_hits.get(), 1);
    }

    #[test]
    fn concurrent_identical_requests_compute_once() {
        let service = service(50);
        let point = tiny_point();
        let results: Vec<SimResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..16)
                .map(|_| {
                    let service = Arc::clone(&service);
                    let point = point.clone();
                    scope.spawn(move || service.simulate(&point, Duration::from_secs(30)).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(service.metrics.sim_computed.get(), 1, "exactly one sim");
        let first = &results[0].entry;
        for result in &results {
            assert_eq!(&result.entry, first, "all responses identical");
        }
        assert!(results.iter().any(|r| r.source == Source::Computed));
    }

    #[test]
    fn timeout_returns_504_path_then_background_fill() {
        let service = service(300);
        let point = tiny_point();
        let err = service
            .simulate(&point, Duration::from_millis(30))
            .unwrap_err();
        assert!(matches!(err, SimServiceError::Timeout));
        assert_eq!(service.metrics.timeouts.get(), 1);
        // The simulation keeps running; once it lands, the same request
        // is a memo hit.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match service.simulate(&point, Duration::from_secs(30)) {
                Ok(result) if result.source == Source::Memory => break,
                Ok(result) => {
                    assert_eq!(result.source, Source::Coalesced);
                }
                Err(SimServiceError::Timeout) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(Instant::now() < deadline, "background fill never landed");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(service.metrics.sim_computed.get(), 1);
    }

    #[test]
    fn store_round_trip_and_promotion() {
        let dir = std::env::temp_dir().join(format!("pipe-serve-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let point = tiny_point();
        let first = {
            let service = Arc::new(SimService::new(
                Some(ResultStore::open(&dir).unwrap()),
                Arc::new(Metrics::default()),
                Duration::ZERO,
            ));
            service.simulate(&point, Duration::from_secs(30)).unwrap()
        };
        assert_eq!(first.source, Source::Computed);
        // A fresh process (fresh memo) finds the entry in the store.
        let service = Arc::new(SimService::new(
            Some(ResultStore::open(&dir).unwrap()),
            Arc::new(Metrics::default()),
            Duration::ZERO,
        ));
        let second = service.simulate(&point, Duration::from_secs(30)).unwrap();
        assert_eq!(second.source, Source::Store);
        assert_eq!(second.entry, first.entry);
        // And the store hit was promoted to the memo.
        let third = service.simulate(&point, Duration::from_secs(30)).unwrap();
        assert_eq!(third.source, Source::Memory);
        assert_eq!(service.metrics.sim_computed.get(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn program_residency_shares_one_decode() {
        let service = service(0);
        let workload = tiny_point().workload;
        let a = service.program(&workload);
        let b = service.program(&workload);
        assert!(Arc::ptr_eq(&a, &b));
        let resident = service.resident_workloads();
        assert_eq!(resident.len(), 1);
        assert!(resident[0].0.starts_with("tight-loop:"));
        assert!(resident[0].1 > 0);
    }
}
