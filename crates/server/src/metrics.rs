//! Live service metrics, rendered in the Prometheus text format.
//!
//! Everything is a lock-free atomic so the hot request path never
//! contends on a metrics mutex: per-endpoint request counters, response
//! counts by status, simulation outcome counters (computed, coalesced
//! onto an in-flight run, memory-memo hits, store hits), backpressure
//! rejections and timeouts, queue-depth and in-flight gauges, and one
//! fixed-bucket request-latency histogram. `GET /metrics` renders the
//! whole set with [`Metrics::render`].

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An up/down gauge (queue depth, in-flight requests).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one (saturating — a stray decrement cannot wrap).
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds (milliseconds) of the latency histogram buckets; an
/// implicit `+Inf` bucket catches the rest.
pub const LATENCY_BUCKETS_MS: [u64; 12] = [1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000];

/// A fixed-bucket latency histogram.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BUCKETS_MS.len()],
    overflow: AtomicU64,
    sum_ms: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Records one observation of `ms` milliseconds.
    pub fn observe_ms(&self, ms: u64) {
        match LATENCY_BUCKETS_MS.iter().position(|&b| ms <= b) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.sum_ms.fetch_add(ms, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn render(&self, name: &str, out: &mut String) {
        let mut cumulative = 0u64;
        for (i, &bound) in LATENCY_BUCKETS_MS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
        }
        cumulative += self.overflow.load(Ordering::Relaxed);
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        out.push_str(&format!(
            "{name}_sum {}\n",
            self.sum_ms.load(Ordering::Relaxed)
        ));
        out.push_str(&format!("{name}_count {cumulative}\n"));
    }
}

/// The statuses the service emits, each with its own counter; anything
/// else lands in `other`.
const STATUSES: [u16; 8] = [200, 400, 404, 405, 413, 500, 503, 504];

/// All live counters of one server instance.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `POST /v1/simulate` requests received.
    pub requests_simulate: Counter,
    /// `POST /v1/sweep` requests received.
    pub requests_sweep: Counter,
    /// `GET /v1/workloads` requests received.
    pub requests_workloads: Counter,
    /// `GET /metrics` requests received.
    pub requests_metrics: Counter,
    /// `POST /admin/shutdown` requests received.
    pub requests_shutdown: Counter,
    /// `GET /healthz` requests received.
    pub requests_healthz: Counter,
    /// `GET /v1/info` requests received.
    pub requests_info: Counter,
    /// Requests to any unrecognised route or method.
    pub requests_other: Counter,
    responses: [Counter; STATUSES.len()],
    responses_other: Counter,
    /// Simulations actually executed by this process.
    pub sim_computed: Counter,
    /// Requests that joined an identical in-flight simulation.
    pub sim_coalesced: Counter,
    /// Requests satisfied from the in-memory memo.
    pub sim_memory_hits: Counter,
    /// Requests satisfied from the persistent result store.
    pub sim_store_hits: Counter,
    /// Simulations that failed (simulator error or worker panic).
    pub sim_failed: Counter,
    /// Connections rejected with `503` because the accept queue was full.
    pub rejected_busy: Counter,
    /// Requests that returned `504` after waiting out the deadline.
    pub timeouts: Counter,
    /// Connections currently queued for a worker.
    pub queue_depth: Gauge,
    /// Requests currently being handled by workers.
    pub inflight_requests: Gauge,
    /// Simulations currently executing.
    pub inflight_sims: Gauge,
    /// End-to-end request latency.
    pub latency: Histogram,
}

impl Metrics {
    /// Counts one response with the given status.
    pub fn count_status(&self, status: u16) {
        match STATUSES.iter().position(|&s| s == status) {
            Some(i) => self.responses[i].inc(),
            None => self.responses_other.inc(),
        }
    }

    /// Total responses with `status` so far.
    pub fn status_count(&self, status: u16) -> u64 {
        match STATUSES.iter().position(|&s| s == status) {
            Some(i) => self.responses[i].get(),
            None => self.responses_other.get(),
        }
    }

    /// Renders every metric in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        let requests: [(&str, &Counter); 8] = [
            ("simulate", &self.requests_simulate),
            ("sweep", &self.requests_sweep),
            ("workloads", &self.requests_workloads),
            ("metrics", &self.requests_metrics),
            ("shutdown", &self.requests_shutdown),
            ("healthz", &self.requests_healthz),
            ("info", &self.requests_info),
            ("other", &self.requests_other),
        ];
        out.push_str("# TYPE pipe_serve_requests_total counter\n");
        for (endpoint, counter) in requests {
            out.push_str(&format!(
                "pipe_serve_requests_total{{endpoint=\"{endpoint}\"}} {}\n",
                counter.get()
            ));
        }
        out.push_str("# TYPE pipe_serve_responses_total counter\n");
        for (i, status) in STATUSES.iter().enumerate() {
            out.push_str(&format!(
                "pipe_serve_responses_total{{status=\"{status}\"}} {}\n",
                self.responses[i].get()
            ));
        }
        out.push_str(&format!(
            "pipe_serve_responses_total{{status=\"other\"}} {}\n",
            self.responses_other.get()
        ));
        out.push_str("# TYPE pipe_serve_sim_total counter\n");
        let sims: [(&str, &Counter); 5] = [
            ("computed", &self.sim_computed),
            ("coalesced", &self.sim_coalesced),
            ("memory_hit", &self.sim_memory_hits),
            ("store_hit", &self.sim_store_hits),
            ("failed", &self.sim_failed),
        ];
        for (outcome, counter) in sims {
            out.push_str(&format!(
                "pipe_serve_sim_total{{outcome=\"{outcome}\"}} {}\n",
                counter.get()
            ));
        }
        out.push_str("# TYPE pipe_serve_rejected_busy_total counter\n");
        out.push_str(&format!(
            "pipe_serve_rejected_busy_total {}\n",
            self.rejected_busy.get()
        ));
        out.push_str("# TYPE pipe_serve_timeouts_total counter\n");
        out.push_str(&format!(
            "pipe_serve_timeouts_total {}\n",
            self.timeouts.get()
        ));
        out.push_str("# TYPE pipe_serve_queue_depth gauge\n");
        out.push_str(&format!(
            "pipe_serve_queue_depth {}\n",
            self.queue_depth.get()
        ));
        out.push_str("# TYPE pipe_serve_inflight_requests gauge\n");
        out.push_str(&format!(
            "pipe_serve_inflight_requests {}\n",
            self.inflight_requests.get()
        ));
        out.push_str("# TYPE pipe_serve_inflight_sims gauge\n");
        out.push_str(&format!(
            "pipe_serve_inflight_sims {}\n",
            self.inflight_sims.get()
        ));
        out.push_str("# TYPE pipe_serve_request_latency_ms histogram\n");
        self.latency
            .render("pipe_serve_request_latency_ms", &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_saturates_at_zero() {
        let g = Gauge::default();
        g.dec();
        assert_eq!(g.get(), 0);
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::default();
        m.latency.observe_ms(0);
        m.latency.observe_ms(3);
        m.latency.observe_ms(9_999);
        let text = m.render();
        assert!(text.contains("pipe_serve_request_latency_ms_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("pipe_serve_request_latency_ms_bucket{le=\"5\"} 2\n"));
        assert!(text.contains("pipe_serve_request_latency_ms_bucket{le=\"5000\"} 2\n"));
        assert!(text.contains("pipe_serve_request_latency_ms_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("pipe_serve_request_latency_ms_count 3\n"));
        assert!(text.contains("pipe_serve_request_latency_ms_sum 10002\n"));
    }

    #[test]
    fn status_counters_split_known_from_other() {
        let m = Metrics::default();
        m.count_status(200);
        m.count_status(200);
        m.count_status(503);
        m.count_status(418);
        assert_eq!(m.status_count(200), 2);
        assert_eq!(m.status_count(503), 1);
        assert_eq!(m.status_count(418), 1);
        let text = m.render();
        assert!(text.contains("pipe_serve_responses_total{status=\"200\"} 2\n"));
        assert!(text.contains("pipe_serve_responses_total{status=\"other\"} 1\n"));
    }

    #[test]
    fn render_covers_every_family() {
        let text = Metrics::default().render();
        for family in [
            "pipe_serve_requests_total",
            "pipe_serve_responses_total",
            "pipe_serve_sim_total",
            "pipe_serve_rejected_busy_total",
            "pipe_serve_timeouts_total",
            "pipe_serve_queue_depth",
            "pipe_serve_inflight_requests",
            "pipe_serve_inflight_sims",
            "pipe_serve_request_latency_ms_bucket",
        ] {
            assert!(text.contains(family), "missing {family}");
        }
    }
}
