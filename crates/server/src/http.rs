//! A deliberately small HTTP/1.1 implementation over `std` sockets.
//!
//! The service speaks exactly the subset it needs: one request per
//! connection (`Connection: close` on every response), `Content-Length`
//! bodies only, a 1 MiB body cap, and flat JSON payloads. Parsing is
//! factored over [`std::io::BufRead`] so it is unit-testable without a
//! socket, and the client half ([`read_response`], [`http_request`]) is
//! public so `pipe-sim request`, the examples, and the integration tests
//! all share one implementation.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Maximum accepted request-body size (1 MiB).
pub const MAX_BODY_BYTES: usize = 1 << 20;
/// Maximum accepted request-line or header-line length.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Maximum accepted header count.
const MAX_HEADERS: usize = 64;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The connection failed mid-read.
    Io(io::Error),
    /// The bytes were not valid HTTP (status 400).
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`] (status 413).
    TooLarge,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge => write!(f, "request body too large"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, query string included if any.
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The raw body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text, or `None` if it is not valid UTF-8.
    pub fn body_text(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

fn read_line<R: BufRead>(r: &mut R) -> Result<String, HttpError> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte)? {
            0 => {
                if buf.is_empty() {
                    return Err(HttpError::Malformed("unexpected end of stream".into()));
                }
                break;
            }
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE_BYTES {
                    return Err(HttpError::Malformed("header line too long".into()));
                }
            }
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| HttpError::Malformed("non-UTF-8 header".into()))
}

/// Reads one request (request line, headers, `Content-Length` body).
///
/// # Errors
///
/// [`HttpError::Malformed`] for bytes that are not HTTP,
/// [`HttpError::TooLarge`] when the declared body exceeds the cap, and
/// [`HttpError::Io`] when the connection drops mid-request.
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, HttpError> {
    let request_line = read_line(r)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request path".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported version {version}"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::Malformed("too many headers".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without colon: {line}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length: {v}")))
        })
        .transpose()?
        .unwrap_or(0);
    if length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; length];
    r.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// The canonical reason phrase for the statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// One response to serialise. Every response closes the connection and
/// carries an explicit `Content-Length`.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (beyond status line, content type/length, close).
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
    content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into_bytes(),
            content_type: "application/json",
        }
    }

    /// A plain-text response (the metrics endpoint).
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into_bytes(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// A JSON error envelope: `{"error":"..."}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            format!(
                "{{\"error\":\"{}\"}}",
                pipe_experiments::json::escape(message)
            ),
        )
    }

    /// Adds a header.
    #[must_use]
    pub fn header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serialises the response.
    ///
    /// # Errors
    ///
    /// Propagates write errors (typically a client that went away).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// A response as seen by a client.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The first header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads one response from the server side of a connection.
///
/// # Errors
///
/// [`HttpError::Malformed`] when the bytes are not an HTTP response,
/// [`HttpError::Io`] on connection failure.
pub fn read_response<R: BufRead>(r: &mut R) -> Result<ClientResponse, HttpError> {
    let status_line = read_line(r)?;
    let mut parts = status_line.split_whitespace();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty status line".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("not HTTP: {status_line}")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line: {status_line}")))?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let body = match length {
        Some(length) => {
            let mut body = vec![0u8; length];
            r.read_exact(&mut body)?;
            body
        }
        None => {
            // Connection: close delimiting — read to EOF.
            let mut body = Vec::new();
            r.read_to_end(&mut body)?;
            body
        }
    };
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// Performs one request against `addr` and returns the parsed response.
/// This is the loopback client behind `pipe-sim request`, the examples,
/// and the integration tests. `body`, when given, is sent as JSON.
///
/// # Errors
///
/// Propagates connection and read errors; a malformed response surfaces
/// as [`io::ErrorKind::InvalidData`].
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<ClientResponse> {
    let sock_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, format!("bad addr {addr}")))?;
    let stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut out = format!("{method} {path} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n");
    match body {
        Some(body) => {
            out.push_str(&format!(
                "content-type: application/json\r\ncontent-length: {}\r\n\r\n",
                body.len()
            ));
            out.push_str(body);
        }
        None => out.push_str("\r\n"),
    }
    let mut stream2 = stream.try_clone()?;
    stream2.write_all(out.as_bytes())?;
    stream2.flush()?;
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /v1/simulate HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        let req = read_request(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/simulate");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body_text(), Some("{\"a\":1}"));
    }

    #[test]
    fn parses_get_without_body_and_bare_lf() {
        let raw = b"GET /metrics HTTP/1.0\nAccept: */*\n\n";
        let req = read_request(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_and_oversized() {
        assert!(matches!(
            read_request(&mut Cursor::new(&b"not http at all\r\n\r\n"[..])),
            Err(HttpError::Malformed(_))
        ));
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 2 << 20);
        assert!(matches!(
            read_request(&mut Cursor::new(huge.as_bytes())),
            Err(HttpError::TooLarge)
        ));
        let trunc = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(matches!(
            read_request(&mut Cursor::new(&trunc[..])),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn rejects_oversized_header_line() {
        // A single header line beyond MAX_LINE_BYTES is Malformed (a
        // typed 400), not an unbounded read or an I/O error.
        let raw = format!(
            "GET / HTTP/1.1\r\nx-padding: {}\r\n\r\n",
            "a".repeat(MAX_LINE_BYTES + 1)
        );
        assert!(matches!(
            read_request(&mut Cursor::new(raw.as_bytes())),
            Err(HttpError::Malformed(m)) if m.contains("too long")
        ));
        // An oversized *request line* is caught by the same guard.
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "b".repeat(MAX_LINE_BYTES + 1));
        assert!(matches!(
            read_request(&mut Cursor::new(raw.as_bytes())),
            Err(HttpError::Malformed(_))
        ));
        // Exactly at the cap still parses.
        let path = format!("/{}", "c".repeat(100));
        let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
        assert_eq!(
            read_request(&mut Cursor::new(raw.as_bytes())).unwrap().path,
            path
        );
    }

    #[test]
    fn post_without_content_length_reads_empty_body() {
        // Content-Length is the only body framing the server speaks: a
        // POST without it parses with an empty body rather than hanging
        // waiting for EOF.
        let raw = b"POST /v1/simulate HTTP/1.1\r\nHost: x\r\n\r\n{\"ignored\":1}";
        let req = read_request(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert!(req.body.is_empty());
        assert_eq!(req.body_text(), Some(""));
    }

    #[test]
    fn partial_body_reads_surface_as_io_errors() {
        // A client that declares more body than it sends (dies mid-send)
        // must surface as Io — the connection is dropped without a
        // response — never as a short-but-"successful" body.
        for sent in [0, 1, 9] {
            let raw = format!(
                "POST /v1/simulate HTTP/1.1\r\nContent-Length: 10\r\n\r\n{}",
                "x".repeat(sent)
            );
            assert!(
                matches!(
                    read_request(&mut Cursor::new(raw.as_bytes())),
                    Err(HttpError::Io(_))
                ),
                "{sent} of 10 body bytes must be an Io error"
            );
        }
    }

    #[test]
    fn rejects_bad_content_length_and_header_shapes() {
        let bad_len = b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
        assert!(matches!(
            read_request(&mut Cursor::new(&bad_len[..])),
            Err(HttpError::Malformed(m)) if m.contains("content-length")
        ));
        let no_colon = b"GET / HTTP/1.1\r\njust-some-words\r\n\r\n";
        assert!(matches!(
            read_request(&mut Cursor::new(&no_colon[..])),
            Err(HttpError::Malformed(m)) if m.contains("colon")
        ));
        let bad_version = b"GET / SPDY/9\r\n\r\n";
        assert!(matches!(
            read_request(&mut Cursor::new(&bad_version[..])),
            Err(HttpError::Malformed(m)) if m.contains("version")
        ));
    }

    #[test]
    fn response_round_trips_through_client_reader() {
        let resp = Response::json(200, "{\"ok\":true}".to_string())
            .header("x-pipe-source", "computed")
            .header("x-pipe-cache", "miss");
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let parsed = read_response(&mut Cursor::new(&wire[..])).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.header("x-pipe-source"), Some("computed"));
        assert_eq!(parsed.header("content-type"), Some("application/json"));
        assert_eq!(parsed.body_text(), "{\"ok\":true}");
    }

    #[test]
    fn error_envelope_escapes_message() {
        let resp = Response::error(400, "bad \"field\"");
        assert_eq!(
            String::from_utf8_lossy(&resp.body),
            "{\"error\":\"bad \\\"field\\\"\"}"
        );
        assert_eq!(resp.status, 400);
    }
}
