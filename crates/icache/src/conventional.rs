//! The conventional cache with Hill's always-prefetch strategy (paper §4.1).
//!
//! Model, following the paper's description:
//!
//! * A PC is presented to the cache at the beginning of each clock cycle; a
//!   tag and array lookup both complete within the cycle, so a hit supplies
//!   the decoder that same cycle.
//! * On each instruction reference the *next sequential instruction* is
//!   prefetched, even across a line boundary.
//! * Memory requests are made for **one instruction at a time**, and a new
//!   request cannot begin until the previous one finishes.
//! * Demand fetches use the [`ReqClass::IFetch`] arbitration class;
//!   prefetches use [`ReqClass::IPrefetch`] (lowest priority).

use std::sync::Arc;

use pipe_isa::decode::instr_len;
use pipe_isa::encode::parcel_has_ext;
use pipe_isa::{Program, PARCEL_BYTES};
use pipe_mem::{Beat, BeatSource, ConfigError, MemRequest, MemorySystem, ReqClass};

use crate::cache::{CacheConfig, InstructionCache};
use crate::engine::FetchEngine;
use crate::stats::FetchStats;

/// The prefetch strategies Hill compared (the paper adopts
/// [`Always`](ConvPrefetch::Always) as the consistently best one and calls
/// the resulting design the *conventional cache*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConvPrefetch {
    /// Prefetch the next sequential instruction on every reference — the
    /// paper's conventional cache.
    #[default]
    Always,
    /// Never prefetch: fetch only on demand misses.
    OnMissOnly,
    /// Tagged prefetch: prefetch the next sequential instruction only on
    /// the *first* reference to a block after it is fetched (Gindele's
    /// scheme, evaluated by Hill).
    Tagged,
}

impl std::fmt::Display for ConvPrefetch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvPrefetch::Always => f.write_str("always-prefetch"),
            ConvPrefetch::OnMissOnly => f.write_str("on-miss-only"),
            ConvPrefetch::Tagged => f.write_str("tagged-prefetch"),
        }
    }
}

/// Full configuration of a [`ConventionalFetch`]: cache geometry plus the
/// prefetch strategy. Mirrors [`PipeFetchConfig`](crate::PipeFetchConfig)
/// so every engine is described by exactly one config type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConventionalConfig {
    /// Instruction cache geometry.
    pub cache: CacheConfig,
    /// Hill prefetch strategy.
    pub prefetch: ConvPrefetch,
}

impl ConventionalConfig {
    /// The paper's conventional cache: the given geometry with
    /// always-prefetch.
    pub fn new(cache: CacheConfig) -> ConventionalConfig {
        ConventionalConfig {
            cache,
            prefetch: ConvPrefetch::Always,
        }
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid cache geometry.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.cache.validate()
    }
}

impl From<CacheConfig> for ConventionalConfig {
    fn from(cache: CacheConfig) -> ConventionalConfig {
        ConventionalConfig::new(cache)
    }
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    tag: u64,
    accepted: bool,
    addr: u32,
    bytes: u32,
    demand: bool,
}

/// Memoized per-PC fetch state. The offer, probe, peek, and quiescence
/// paths all re-derive "is the instruction at PC fully cached" (and the
/// always-prefetch path, "would a prefetch for the next instruction
/// launch") several times per simulated cycle from inputs that only
/// change on a beat, a consume, a redirect, or a reset — so the answers
/// are computed once per PC and invalidated at exactly those events.
#[derive(Debug, Clone, Copy)]
struct AvailMemo {
    pc: u32,
    bytes: u32,
    cached: bool,
    /// Whether the always-prefetch probe past this instruction would
    /// launch a request; computed lazily on first use.
    next_launches: Option<bool>,
}

/// Hill's always-prefetch conventional instruction cache.
#[derive(Debug)]
pub struct ConventionalFetch {
    image: Arc<Vec<u16>>,
    base: u32,
    end: u32,
    cache: InstructionCache,
    prefetch: ConvPrefetch,
    /// Tagged mode: sub-block addresses fetched but not yet referenced.
    fresh: std::collections::HashSet<u32>,
    /// Tagged mode: a first-reference occurred; prefetch the next block.
    tagged_trigger: bool,
    pc: u32,
    delivered: u64,
    redirect: Option<(u64, u32)>,
    pending: Option<Pending>,
    /// Count the cache probe for the current PC only once.
    probe_counted: bool,
    /// An instruction was consumed since the last offer phase: a fetch for
    /// the (new) PC launches as an always-prefetch *on reference*, per
    /// Hill's model, rather than as a demand miss.
    just_consumed: bool,
    /// Fetch latch: parcel addresses of the current instruction already
    /// delivered by beats. Needed in the mixed format, where an
    /// instruction may straddle two lines that conflict in a small cache
    /// (the halves would otherwise evict each other forever).
    latch: [Option<u32>; 2],
    /// See [`AvailMemo`]. A `Cell` because the read-only engine entry
    /// points (`peek`, `quiescence`) share the memo.
    avail: std::cell::Cell<Option<AvailMemo>>,
    stats: FetchStats,
}

impl ConventionalFetch {
    /// Creates a conventional fetch engine over `program`. Accepts either
    /// a full [`ConventionalConfig`] or a bare [`CacheConfig`] (which
    /// implies the paper's always-prefetch strategy).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ConventionalConfig::validate`];
    /// construct through
    /// [`EngineBuilder`](crate::EngineBuilder) /
    /// [`FetchConfig::build`](crate::FetchConfig::build) for a fallible
    /// path.
    pub fn new(program: &Program, config: impl Into<ConventionalConfig>) -> ConventionalFetch {
        let config = config.into();
        if let Err(e) = config.validate() {
            panic!("invalid conventional-fetch config: {e}");
        }
        ConventionalFetch::from_config(program, config)
    }

    /// Creates a conventional fetch engine with an explicit prefetch
    /// strategy.
    #[deprecated(
        since = "0.2.0",
        note = "construct through `EngineBuilder`/`FetchConfig::build`, or pass a \
                `ConventionalConfig` to `ConventionalFetch::new`"
    )]
    pub fn with_prefetch(
        program: &Program,
        cache: CacheConfig,
        prefetch: ConvPrefetch,
    ) -> ConventionalFetch {
        ConventionalFetch::new(program, ConventionalConfig { cache, prefetch })
    }

    fn from_config(program: &Program, config: ConventionalConfig) -> ConventionalFetch {
        let ConventionalConfig { cache, prefetch } = config;
        ConventionalFetch {
            image: program.image(),
            base: program.base(),
            end: program.end(),
            cache: InstructionCache::new(cache),
            prefetch,
            fresh: std::collections::HashSet::new(),
            tagged_trigger: false,
            pc: program.entry(),
            delivered: 0,
            redirect: None,
            pending: None,
            probe_counted: false,
            just_consumed: false,
            latch: [None, None],
            avail: std::cell::Cell::new(None),
            stats: FetchStats::default(),
        }
    }

    /// The underlying cache, for inspection in tests.
    pub fn cache(&self) -> &InstructionCache {
        &self.cache
    }

    fn parcel(&self, addr: u32) -> Option<u16> {
        if addr < self.base || addr >= self.end {
            return None;
        }
        Some(self.image[((addr - self.base) / PARCEL_BYTES) as usize])
    }

    /// Size in bytes of the instruction at `addr`, from the image.
    fn instr_bytes_at(&self, addr: u32) -> Option<u32> {
        let first = self.parcel(addr)?;
        Some(instr_len(first) as u32 * PARCEL_BYTES)
    }

    /// The aligned sub-block range covering `[addr, addr + bytes)`.
    fn covering(&self, addr: u32, bytes: u32) -> (u32, u32) {
        let sb = self.cache.config().subblock_bytes;
        let lo = addr & !(sb - 1);
        let hi = (addr + bytes + sb - 1) & !(sb - 1);
        (lo, hi - lo)
    }

    /// Returns `true` if the complete instruction at `pc` is available:
    /// every parcel either cached or held in the fetch latch. The covering
    /// range may cross a line boundary (4-byte instruction at a
    /// mixed-format odd parcel), in which case both lines are checked.
    fn instr_cached(&self, addr: u32, bytes: u32) -> bool {
        let mut a = addr;
        while a < addr + bytes {
            if !self.latch.contains(&Some(a)) && !self.cache.contains(a, PARCEL_BYTES) {
                return false;
            }
            a += PARCEL_BYTES;
        }
        true
    }

    /// `(instruction bytes, fully cached)` for the instruction at the
    /// current PC, or `None` when the PC is outside the image. Memoized;
    /// see [`AvailMemo`].
    fn availability(&self) -> Option<(u32, bool)> {
        if let Some(m) = self.avail.get() {
            if m.pc == self.pc {
                return Some((m.bytes, m.cached));
            }
        }
        let bytes = self.instr_bytes_at(self.pc)?;
        let cached = self.instr_cached(self.pc, bytes);
        self.avail.set(Some(AvailMemo {
            pc: self.pc,
            bytes,
            cached,
            next_launches: None,
        }));
        Some((bytes, cached))
    }

    /// Whether the always-prefetch probe for the instruction after the
    /// current one (of `bytes` bytes) would launch a request. Memoized;
    /// only meaningful while the current instruction is cached.
    fn next_prefetch_launches(&self, bytes: u32) -> bool {
        if let Some(m) = self.avail.get() {
            if m.pc == self.pc {
                if let Some(launches) = m.next_launches {
                    return launches;
                }
            }
        }
        let next = self.pc + bytes;
        let launches = self.parcel(next).is_some()
            && match self.instr_cached(next, PARCEL_BYTES) {
                true => {
                    let nbytes = self
                        .instr_bytes_at(next)
                        .expect("parcel exists, so size is known");
                    !self.instr_cached(next, nbytes)
                }
                false => true,
            };
        if let Some(mut m) = self.avail.get() {
            if m.pc == self.pc {
                m.next_launches = Some(launches);
                self.avail.set(Some(m));
            }
        }
        launches
    }

    fn maybe_trigger(&mut self) {
        if let Some((after, target)) = self.redirect {
            if self.delivered == after {
                self.pc = target;
                self.redirect = None;
                self.probe_counted = false;
                self.latch = [None, None];
                self.avail.set(None);
                self.stats.redirects += 1;
                // An in-flight sequential prefetch is now known wasted (it
                // still completes and fills the cache).
                if let Some(p) = &self.pending {
                    if !p.demand {
                        self.stats.wasted_requests += 1;
                    }
                }
            }
        }
    }
}

impl FetchEngine for ConventionalFetch {
    fn reset(&mut self, pc: u32) {
        self.pc = pc;
        self.delivered = 0;
        self.redirect = None;
        self.pending = None;
        self.probe_counted = false;
        self.latch = [None, None];
        self.avail.set(None);
        self.fresh.clear();
        self.tagged_trigger = false;
        self.cache.flush();
    }

    fn offer_requests(&mut self, mem: &mut MemorySystem) {
        let just_consumed = std::mem::take(&mut self.just_consumed);

        // Re-offer an unaccepted pending request, upgrading a prefetch to a
        // demand fetch once the decoder is actually stalled on its range.
        let stalled_at = (!just_consumed)
            .then(|| {
                self.availability().map(|_| {
                    let sb = self.cache.config().subblock_bytes;
                    self.pc & !(sb - 1)
                })
            })
            .flatten();
        if let Some(p) = &mut self.pending {
            if !p.accepted {
                if !p.demand {
                    if let Some(lo) = stalled_at {
                        if lo >= p.addr && lo < p.addr + p.bytes {
                            p.demand = true;
                        }
                    }
                }
                let class = if p.demand {
                    ReqClass::IFetch
                } else {
                    ReqClass::IPrefetch
                };
                mem.offer(MemRequest::load(class, p.addr, p.bytes, p.tag));
            }
            return; // one outstanding request at a time
        }

        // Fetch for the instruction at PC, if missing. Under the
        // always-prefetch strategy, when the PC has just advanced onto
        // this instruction the fetch is the prefetch launched by the
        // previous reference (IPrefetch class); once the decoder is
        // stalled on it — or under the other strategies — it is a demand
        // fetch.
        if let Some((bytes, cached)) = self.availability() {
            if !cached {
                let (lo, len) = self.covering(self.pc, bytes);
                let tag = mem.new_tag();
                let demand = !(just_consumed && self.prefetch == ConvPrefetch::Always);
                self.pending = Some(Pending {
                    tag,
                    accepted: false,
                    addr: lo,
                    bytes: len,
                    demand,
                });
                let class = if demand {
                    ReqClass::IFetch
                } else {
                    ReqClass::IPrefetch
                };
                mem.offer(MemRequest::load(class, lo, len, tag));
                return;
            }

            // Prefetch the next sequential instruction past PC, per the
            // configured strategy. Under always-prefetch the launch
            // decision is memoized (the steady-state answer is "already
            // covered" every cycle).
            let allow = match self.prefetch {
                ConvPrefetch::Always => self.next_prefetch_launches(bytes),
                ConvPrefetch::OnMissOnly => false,
                ConvPrefetch::Tagged => std::mem::take(&mut self.tagged_trigger),
            };
            let next = self.pc + bytes;
            if allow && self.parcel(next).is_some() {
                // We know the next instruction's size once its first parcel
                // is fetched; until then prefetch its first sub-block.
                let want = match self.instr_cached(next, PARCEL_BYTES) {
                    true => {
                        let nbytes = self
                            .instr_bytes_at(next)
                            .expect("parcel exists, so size is known");
                        (!self.instr_cached(next, nbytes)).then_some((next, nbytes))
                    }
                    false => Some((next, PARCEL_BYTES)),
                };
                if let Some((addr, bytes)) = want {
                    let (lo, len) = self.covering(addr, bytes);
                    let tag = mem.new_tag();
                    self.pending = Some(Pending {
                        tag,
                        accepted: false,
                        addr: lo,
                        bytes: len,
                        demand: false,
                    });
                    mem.offer(MemRequest::load(ReqClass::IPrefetch, lo, len, tag));
                }
            }
        }
    }

    fn on_accepted(&mut self, tag: u64) {
        if let Some(p) = &mut self.pending {
            if p.tag == tag && !p.accepted {
                p.accepted = true;
                if p.demand {
                    self.stats.demand_requests += 1;
                } else {
                    self.stats.prefetch_requests += 1;
                }
                self.stats.bytes_requested += u64::from(p.bytes);
            }
        }
    }

    fn on_beat(&mut self, beat: &Beat) {
        debug_assert!(matches!(
            beat.source,
            BeatSource::IFetch | BeatSource::IPrefetch
        ));
        let Some(p) = &self.pending else { return };
        if p.tag != beat.tag {
            return;
        }
        self.avail.set(None); // the fill (and latch) change availability
        self.cache.fill(beat.addr, beat.bytes);
        if self.prefetch == ConvPrefetch::Tagged {
            let sb = self.cache.config().subblock_bytes;
            let mut a = beat.addr & !(sb - 1);
            while a < beat.addr + beat.bytes {
                self.fresh.insert(a);
                a += sb;
            }
        }
        // Latch any parcels of the current instruction carried by this
        // beat, so a line-straddling instruction cannot self-evict.
        let mut a = beat.addr;
        while a < beat.addr + beat.bytes {
            if a == self.pc || a == self.pc + PARCEL_BYTES {
                let slot = usize::from(a != self.pc);
                self.latch[slot] = Some(a);
            }
            a += PARCEL_BYTES;
        }
        if beat.last {
            self.pending = None;
        }
    }

    fn advance(&mut self) {
        // Count one probe per new PC value (per reference).
        if !self.probe_counted {
            if let Some((_, cached)) = self.availability() {
                if cached {
                    self.stats.cache_hits += 1;
                } else {
                    self.stats.cache_misses += 1;
                }
                self.probe_counted = true;
            }
        }
    }

    fn peek(&self) -> Option<(u16, Option<u16>)> {
        let (_, cached) = self.availability()?;
        if !cached {
            return None;
        }
        let first = self.parcel(self.pc)?;
        if parcel_has_ext(first) {
            Some((first, Some(self.parcel(self.pc + PARCEL_BYTES)?)))
        } else {
            Some((first, None))
        }
    }

    fn head_addr(&self) -> Option<u32> {
        Some(self.pc)
    }

    fn peek_index(&self) -> Option<usize> {
        // Gated exactly like `peek`: the instruction must be fully cached
        // and every parcel inside the image.
        let (bytes, cached) = self.availability()?;
        if !cached || self.pc + bytes > self.end {
            return None;
        }
        Some(((self.pc - self.base) / PARCEL_BYTES) as usize)
    }

    fn consume(&mut self) {
        let (bytes, cached) = self
            .availability()
            .expect("consume without available instruction");
        debug_assert!(cached);
        if self.prefetch == ConvPrefetch::Tagged {
            let sb = self.cache.config().subblock_bytes;
            if self.fresh.remove(&(self.pc & !(sb - 1))) {
                self.tagged_trigger = true;
            }
        }
        self.pc += bytes;
        self.delivered += 1;
        self.probe_counted = false;
        self.just_consumed = true;
        self.latch = [None, None];
        self.avail.set(None); // the latch clear can change availability
        self.stats.instructions_delivered += 1;
        self.maybe_trigger();
    }

    fn resolve_branch(&mut self, taken: bool, remaining: u32, target: u32) {
        if taken {
            self.redirect = Some((self.delivered + u64::from(remaining), target));
            self.maybe_trigger();
        }
    }

    fn has_outstanding(&self) -> bool {
        self.pending.is_some()
    }

    fn quiescence(&self) -> Option<u32> {
        // A consume this cycle re-arms next cycle's offer decisions
        // (`just_consumed` gates the prefetch-vs-demand choice), and a set
        // tagged trigger both mutates and may launch.
        if self.just_consumed {
            return None;
        }
        if self.prefetch == ConvPrefetch::Tagged && self.tagged_trigger {
            return None;
        }
        if let Some(p) = &self.pending {
            if p.accepted {
                return Some(0); // waiting on beats; offers nothing
            }
            if !p.demand && self.availability().is_some() {
                let sb = self.cache.config().subblock_bytes;
                let lo = self.pc & !(sb - 1);
                if lo >= p.addr && lo < p.addr + p.bytes {
                    return None; // prefetch will upgrade to a demand fetch
                }
            }
            return Some(1); // pure re-offer at a stable class
        }
        // No pending: quiescent only if next cycle provably launches no
        // new request. All inputs below (pc, cache, latch) are stable
        // while no beats arrive and nothing issues.
        let Some((bytes, cached)) = self.availability() else {
            return Some(0); // pc outside the image: nothing to fetch
        };
        if !cached {
            return None; // a demand fetch will launch
        }
        if self.prefetch == ConvPrefetch::Always && self.next_prefetch_launches(bytes) {
            return None; // a sequential prefetch will launch
        }
        Some(0)
    }

    fn stats(&self) -> &FetchStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "conventional"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipe_isa::{Assembler, InstrFormat};
    use pipe_mem::MemConfig;

    fn program() -> Program {
        Assembler::new(InstrFormat::Fixed32)
            .assemble("lim r1, 2\nlbr b0, top\ntop: subi r1, r1, 1\npbr.nez b0, r1, 0\nhalt\n")
            .unwrap()
    }

    fn mem(access: u32) -> MemorySystem {
        MemorySystem::new(MemConfig {
            access_cycles: access,
            ..MemConfig::default()
        })
    }

    /// Drives engine + memory for one cycle; returns true if an
    /// instruction was consumed.
    fn cycle(f: &mut ConventionalFetch, mem: &mut MemorySystem) -> bool {
        f.offer_requests(mem);
        let out = mem.tick();
        if let Some(tag) = out.accepted {
            f.on_accepted(tag);
        }
        if let Some(beat) = &out.beats {
            if matches!(beat.source, BeatSource::IFetch | BeatSource::IPrefetch) {
                f.on_beat(beat);
            }
        }
        f.advance();
        if f.peek().is_some() {
            f.consume();
            true
        } else {
            false
        }
    }

    #[test]
    fn cold_miss_then_streaming() {
        let p = program();
        let mut f = ConventionalFetch::new(&p, CacheConfig::new(64, 16));
        let mut m = mem(1);
        // Cycle 0: miss, request accepted. Cycle 1: beat arrives, issue.
        assert!(!cycle(&mut f, &mut m));
        assert!(cycle(&mut f, &mut m));
        assert_eq!(f.stats().demand_requests, 1);
        assert_eq!(f.stats().instructions_delivered, 1);
    }

    #[test]
    fn prefetch_covers_next_instruction() {
        let p = program();
        let mut f = ConventionalFetch::new(&p, CacheConfig::new(64, 16));
        let mut m = mem(1);
        for _ in 0..12 {
            cycle(&mut f, &mut m);
            if f.stats().instructions_delivered >= 3 {
                break;
            }
        }
        assert!(f.stats().prefetch_requests >= 1, "{:?}", f.stats());
    }

    #[test]
    fn warm_cache_delivers_every_cycle() {
        let p = program();
        let mut f = ConventionalFetch::new(&p, CacheConfig::new(64, 16));
        // Pre-warm the entire image.
        f.cache.fill(0, p.code_bytes());
        let mut m = mem(6);
        let mut consumed = 0;
        for _ in 0..5 {
            if cycle(&mut f, &mut m) {
                consumed += 1;
            }
        }
        assert_eq!(consumed, 5, "hit supplies decode every cycle");
    }

    #[test]
    fn redirect_to_cached_target_no_bubble() {
        let p = program();
        let top = p.symbols()["top"];
        let mut f = ConventionalFetch::new(&p, CacheConfig::new(64, 16));
        f.cache.fill(0, p.code_bytes());
        let mut m = mem(1);
        // consume lim, lbr, subi, pbr
        for _ in 0..4 {
            assert!(cycle(&mut f, &mut m));
        }
        f.resolve_branch(true, 0, top);
        assert!(cycle(&mut f, &mut m), "target available immediately");
        assert_eq!(f.stats().redirects, 1);
    }

    #[test]
    fn one_outstanding_request_at_a_time() {
        let p = program();
        let mut f = ConventionalFetch::new(&p, CacheConfig::new(64, 16));
        let mut m = mem(6);
        // During the long demand miss, no second request may be offered.
        for _ in 0..4 {
            cycle(&mut f, &mut m);
            assert!(f.stats().demand_requests + f.stats().prefetch_requests <= 1);
        }
    }

    #[test]
    fn on_miss_only_never_prefetches() {
        let p = program();
        let mut f = ConventionalFetch::new(
            &p,
            ConventionalConfig {
                cache: CacheConfig::new(64, 16),
                prefetch: ConvPrefetch::OnMissOnly,
            },
        );
        let mut m = mem(1);
        for _ in 0..30 {
            cycle(&mut f, &mut m);
        }
        assert_eq!(f.stats().prefetch_requests, 0, "{:?}", f.stats());
        assert!(f.stats().demand_requests > 0);
    }

    #[test]
    fn tagged_prefetches_on_first_reference_only() {
        let p = program();
        let mut f = ConventionalFetch::new(
            &p,
            ConventionalConfig {
                cache: CacheConfig::new(64, 16),
                prefetch: ConvPrefetch::Tagged,
            },
        );
        let mut m = mem(1);
        let mut issued = 0;
        for _ in 0..40 {
            if cycle(&mut f, &mut m) {
                issued += 1;
            }
            if issued >= 5 {
                break;
            }
        }
        let first_pass = f.stats().prefetch_requests + f.stats().demand_requests;
        assert!(first_pass > 0);
        // Re-reference the same (now untagged) instructions: no new
        // prefetches fire.
        f.resolve_branch(true, 0, 0);
        let before = f.stats().prefetch_requests;
        let mut issued2 = 0;
        for _ in 0..40 {
            if cycle(&mut f, &mut m) {
                issued2 += 1;
            }
            if issued2 >= 4 {
                break;
            }
        }
        assert_eq!(
            f.stats().prefetch_requests,
            before,
            "re-referencing untagged blocks must not prefetch"
        );
    }

    #[test]
    fn reset_flushes_cache() {
        let p = program();
        let mut f = ConventionalFetch::new(&p, CacheConfig::new(64, 16));
        f.cache.fill(0, 16);
        f.reset(0);
        assert_eq!(f.cache().valid_subblocks(), 0);
    }
}
