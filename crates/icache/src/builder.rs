//! Unified construction of fetch engines.
//!
//! Historically each engine had its own ad-hoc entry point
//! (`PipeFetch::new` + `PipeFetchConfig::table2`,
//! `ConventionalFetch::with_prefetch`, `TibFetch::new`, ...). This module
//! replaces that fragmentation with two layers:
//!
//! * [`FetchConfig`] — one value describing *any* fetch front-end. It is
//!   the single source of truth the processor, the experiment matrix, and
//!   the CLIs all construct engines from, via
//!   [`FetchConfig::build`].
//! * [`EngineBuilder`] — a fluent builder over a [`FetchKind`] that
//!   resolves defaults (queue sizes default to the line size, sub-blocks
//!   to 4 bytes) and validates before producing a [`FetchConfig`] or a
//!   boxed engine directly.
//!
//! ```
//! use pipe_icache::{EngineBuilder, FetchKind};
//! use pipe_isa::{Assembler, InstrFormat};
//!
//! let program = Assembler::new(InstrFormat::Fixed32)
//!     .assemble("nop\nhalt\n")
//!     .unwrap();
//! let engine = EngineBuilder::new(FetchKind::Pipe)
//!     .cache_bytes(64)
//!     .line_bytes(16)
//!     .build(&program)
//!     .unwrap();
//! assert_eq!(engine.name(), "pipe");
//! ```

use pipe_isa::Program;
use pipe_mem::ConfigError;

use crate::buffers::{BufferConfig, BufferFetch};
use crate::cache::CacheConfig;
use crate::conventional::{ConvPrefetch, ConventionalConfig, ConventionalFetch};
use crate::engine::FetchEngine;
use crate::perfect::PerfectFetch;
use crate::pipe_fetch::{PipeFetch, PipeFetchConfig, PrefetchPolicy};
use crate::tib::{TibConfig, TibFetch};

/// The five fetch front-ends, without their parameters. Use
/// [`EngineBuilder`] to attach geometry and produce a [`FetchConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetchKind {
    /// Perfect fetch: one instruction per cycle, no memory traffic.
    Perfect,
    /// Hill's conventional cache (paper §4.1).
    Conventional,
    /// The PIPE cache + IQ + IQB strategy (paper §4.2).
    Pipe,
    /// A cache-less Target Instruction Buffer (paper §2.1).
    Tib,
    /// Rau & Rossman-style prefetch buffers (paper §2.1).
    Buffers,
}

impl FetchKind {
    /// All kinds, in presentation order.
    pub const ALL: [FetchKind; 5] = [
        FetchKind::Perfect,
        FetchKind::Conventional,
        FetchKind::Pipe,
        FetchKind::Tib,
        FetchKind::Buffers,
    ];

    /// Parses a CLI-style name ("pipe", "conventional", "tib", "buffers",
    /// "perfect").
    pub fn parse(s: &str) -> Option<FetchKind> {
        match s {
            "perfect" => Some(FetchKind::Perfect),
            "conventional" => Some(FetchKind::Conventional),
            "pipe" => Some(FetchKind::Pipe),
            "tib" => Some(FetchKind::Tib),
            "buffers" => Some(FetchKind::Buffers),
            _ => None,
        }
    }

    /// The engine's short name ("pipe", "conventional", ...).
    pub fn name(self) -> &'static str {
        match self {
            FetchKind::Perfect => "perfect",
            FetchKind::Conventional => "conventional",
            FetchKind::Pipe => "pipe",
            FetchKind::Tib => "tib",
            FetchKind::Buffers => "buffers",
        }
    }
}

impl std::fmt::Display for FetchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Complete description of an instruction-fetch front-end: which engine,
/// with which parameters. Every engine in the simulator is constructed
/// from one of these via [`FetchConfig::build`]; `pipe-core` re-exports
/// this type as `FetchStrategy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchConfig {
    /// Perfect fetch: one instruction per cycle, no memory traffic. For
    /// functional testing and upper-bound comparisons.
    Perfect,
    /// Hill's conventional cache with a prefetch strategy (paper §4.1).
    Conventional(ConventionalConfig),
    /// The PIPE cache + IQ + IQB strategy (paper §4.2).
    Pipe(PipeFetchConfig),
    /// A cache-less Target Instruction Buffer (paper §2.1, AMD29000
    /// style).
    Tib(TibConfig),
    /// Rau & Rossman-style prefetch buffers with an optional instruction
    /// cache (paper §2.1).
    Buffers(BufferConfig),
}

impl FetchConfig {
    /// The paper's conventional cache (always-prefetch) over `cache`.
    pub fn conventional(cache: CacheConfig) -> FetchConfig {
        FetchConfig::Conventional(ConventionalConfig::new(cache))
    }

    /// The engine kind this configuration describes.
    pub fn kind(&self) -> FetchKind {
        match self {
            FetchConfig::Perfect => FetchKind::Perfect,
            FetchConfig::Conventional(_) => FetchKind::Conventional,
            FetchConfig::Pipe(_) => FetchKind::Pipe,
            FetchConfig::Tib(_) => FetchKind::Tib,
            FetchConfig::Buffers(_) => FetchKind::Buffers,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the underlying config type's [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            FetchConfig::Perfect => Ok(()),
            FetchConfig::Conventional(c) => c.validate(),
            FetchConfig::Pipe(c) => c.validate(),
            FetchConfig::Tib(c) => c.validate(),
            FetchConfig::Buffers(c) => c.validate(),
        }
    }

    /// Constructs the configured engine over `program`. This is the single
    /// construction path used by the processor, the experiment harness,
    /// and the CLIs.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration fails
    /// [`validate`](FetchConfig::validate).
    pub fn build(&self, program: &Program) -> Result<Box<dyn FetchEngine>, ConfigError> {
        self.validate()?;
        Ok(match *self {
            FetchConfig::Perfect => Box::new(PerfectFetch::new(program)),
            FetchConfig::Conventional(cfg) => Box::new(ConventionalFetch::new(program, cfg)),
            FetchConfig::Pipe(cfg) => Box::new(PipeFetch::new(program, cfg)),
            FetchConfig::Tib(cfg) => Box::new(TibFetch::new(program, cfg)),
            FetchConfig::Buffers(cfg) => Box::new(BufferFetch::new(program, cfg)),
        })
    }

    /// A short name for reports.
    pub fn label(&self) -> String {
        match self {
            FetchConfig::Perfect => "perfect".to_string(),
            FetchConfig::Conventional(c) => match c.prefetch {
                ConvPrefetch::Always => format!("conventional({}B)", c.cache.size_bytes),
                p => format!("conventional({}B, {p})", c.cache.size_bytes),
            },
            FetchConfig::Pipe(c) => format!(
                "pipe({}B, line {}, iq {}, iqb {})",
                c.cache.size_bytes, c.cache.line_bytes, c.iq_bytes, c.iqb_bytes
            ),
            FetchConfig::Tib(c) => {
                format!("tib({}x{}B)", c.entries, c.entry_bytes)
            }
            FetchConfig::Buffers(c) => match c.cache {
                Some(cache) => format!("buffers({}x4B + {}B cache)", c.buffers, cache.size_bytes),
                None => format!("buffers({}x4B)", c.buffers),
            },
        }
    }

    /// A canonical single-line description covering *every* parameter, for
    /// content-addressed result stores. Unlike [`label`](FetchConfig::label)
    /// it includes sub-block sizes, prefetch policies, and partial-line
    /// flags, so two configs hash equal only if they simulate identically.
    pub fn cache_key(&self) -> String {
        match self {
            FetchConfig::Perfect => "perfect".to_string(),
            FetchConfig::Conventional(c) => format!(
                "conventional:size={},line={},sub={},prefetch={}",
                c.cache.size_bytes, c.cache.line_bytes, c.cache.subblock_bytes, c.prefetch
            ),
            FetchConfig::Pipe(c) => format!(
                "pipe:size={},line={},sub={},iq={},iqb={},policy={},partial={}",
                c.cache.size_bytes,
                c.cache.line_bytes,
                c.cache.subblock_bytes,
                c.iq_bytes,
                c.iqb_bytes,
                c.policy,
                c.partial_lines
            ),
            FetchConfig::Tib(c) => format!(
                "tib:entries={},entry={},queue={}",
                c.entries, c.entry_bytes, c.fetch_queue_bytes
            ),
            FetchConfig::Buffers(c) => match c.cache {
                Some(cache) => format!(
                    "buffers:n={},cache={},line={},sub={}",
                    c.buffers, cache.size_bytes, cache.line_bytes, cache.subblock_bytes
                ),
                None => format!("buffers:n={},cache=none", c.buffers),
            },
        }
    }
}

impl std::fmt::Display for FetchConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Fluent construction of any fetch engine from one set of knobs.
///
/// Unset knobs resolve to sensible defaults at
/// [`config`](EngineBuilder::config) time: the cache defaults to 128 bytes
/// of 16-byte lines with 4-byte sub-blocks, PIPE queue sizes default to
/// the line size (the chip's design point), the TIB divides the cache
/// budget into line-sized entries, and the buffer engine gets four
/// buffers and no cache. Irrelevant knobs (e.g. `iq_bytes` for a
/// conventional cache) are ignored, which lets one builder drive a sweep
/// across kinds.
#[derive(Debug, Clone, Copy)]
pub struct EngineBuilder {
    kind: FetchKind,
    cache_bytes: u32,
    line_bytes: u32,
    subblock_bytes: u32,
    iq_bytes: Option<u32>,
    iqb_bytes: Option<u32>,
    policy: PrefetchPolicy,
    prefetch: ConvPrefetch,
    partial_lines: bool,
    buffers: u32,
    /// `Some(0)` means "no cache" for the buffer engine.
    buffer_cache: bool,
}

impl EngineBuilder {
    /// Starts a builder for `kind` with the default geometry.
    pub fn new(kind: FetchKind) -> EngineBuilder {
        EngineBuilder {
            kind,
            cache_bytes: 128,
            line_bytes: 16,
            subblock_bytes: 4,
            iq_bytes: None,
            iqb_bytes: None,
            policy: PrefetchPolicy::TruePrefetch,
            prefetch: ConvPrefetch::Always,
            partial_lines: false,
            buffers: 4,
            buffer_cache: false,
        }
    }

    /// Cache capacity in bytes (TIB: total hardware budget).
    pub fn cache_bytes(mut self, bytes: u32) -> EngineBuilder {
        self.cache_bytes = bytes;
        self
    }

    /// Cache line size in bytes (TIB: entry size).
    pub fn line_bytes(mut self, bytes: u32) -> EngineBuilder {
        self.line_bytes = bytes;
        self
    }

    /// Sub-block (valid-bit granularity) size in bytes.
    pub fn subblock_bytes(mut self, bytes: u32) -> EngineBuilder {
        self.subblock_bytes = bytes;
        self
    }

    /// PIPE instruction-queue capacity in bytes (defaults to the line
    /// size).
    pub fn iq_bytes(mut self, bytes: u32) -> EngineBuilder {
        self.iq_bytes = Some(bytes);
        self
    }

    /// PIPE instruction-queue-buffer capacity in bytes (defaults to the
    /// line size).
    pub fn iqb_bytes(mut self, bytes: u32) -> EngineBuilder {
        self.iqb_bytes = Some(bytes);
        self
    }

    /// PIPE off-chip prefetch gating policy.
    pub fn policy(mut self, policy: PrefetchPolicy) -> EngineBuilder {
        self.policy = policy;
        self
    }

    /// Conventional-cache prefetch strategy.
    pub fn prefetch(mut self, prefetch: ConvPrefetch) -> EngineBuilder {
        self.prefetch = prefetch;
        self
    }

    /// PIPE partial-line (tail-only) off-chip fetches.
    pub fn partial_lines(mut self, enabled: bool) -> EngineBuilder {
        self.partial_lines = enabled;
        self
    }

    /// Number of prefetch buffers for the buffer engine; also controls
    /// whether the buffer engine probes a cache (`with_cache`).
    pub fn buffers(mut self, count: u32) -> EngineBuilder {
        self.buffers = count;
        self
    }

    /// Gives the buffer engine an instruction cache of the configured
    /// geometry (by default it has none).
    pub fn buffer_cache(mut self, enabled: bool) -> EngineBuilder {
        self.buffer_cache = enabled;
        self
    }

    /// Resolves defaults and produces the validated [`FetchConfig`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first invalid parameter.
    pub fn config(&self) -> Result<FetchConfig, ConfigError> {
        let cache = CacheConfig {
            size_bytes: self.cache_bytes,
            line_bytes: self.line_bytes,
            subblock_bytes: self.subblock_bytes,
        };
        let cfg = match self.kind {
            FetchKind::Perfect => FetchConfig::Perfect,
            FetchKind::Conventional => FetchConfig::Conventional(ConventionalConfig {
                cache,
                prefetch: self.prefetch,
            }),
            FetchKind::Pipe => FetchConfig::Pipe(PipeFetchConfig {
                cache,
                iq_bytes: self.iq_bytes.unwrap_or(self.line_bytes),
                iqb_bytes: self.iqb_bytes.unwrap_or(self.line_bytes),
                policy: self.policy,
                partial_lines: self.partial_lines,
            }),
            FetchKind::Tib => {
                FetchConfig::Tib(TibConfig::with_budget(self.cache_bytes, self.line_bytes))
            }
            FetchKind::Buffers => FetchConfig::Buffers(BufferConfig {
                buffers: self.buffers,
                cache: self.buffer_cache.then_some(cache),
            }),
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Builds the engine directly over `program`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first invalid parameter.
    pub fn build(&self, program: &Program) -> Result<Box<dyn FetchEngine>, ConfigError> {
        self.config()?.build(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipe_isa::{Assembler, InstrFormat};

    fn program() -> Program {
        Assembler::new(InstrFormat::Fixed32)
            .assemble("nop\nnop\nhalt\n")
            .unwrap()
    }

    #[test]
    fn builder_constructs_every_kind() {
        let p = program();
        for kind in FetchKind::ALL {
            let engine = EngineBuilder::new(kind)
                .cache_bytes(64)
                .line_bytes(16)
                .build(&p)
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            // Engine names elaborate on the kind (e.g. "prefetch-buffers").
            assert!(
                engine.name().contains(kind.name()),
                "{} !~ {}",
                engine.name(),
                kind.name()
            );
        }
    }

    #[test]
    fn pipe_queues_default_to_line_size() {
        let cfg = EngineBuilder::new(FetchKind::Pipe)
            .cache_bytes(128)
            .line_bytes(32)
            .config()
            .unwrap();
        match cfg {
            FetchConfig::Pipe(c) => {
                assert_eq!(c.iq_bytes, 32);
                assert_eq!(c.iqb_bytes, 32);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn invalid_geometry_is_typed() {
        let err = EngineBuilder::new(FetchKind::Conventional)
            .cache_bytes(8)
            .line_bytes(16)
            .config()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::Exceeds {
                field: "line_bytes",
                value: 16,
                limit_field: "size_bytes",
                limit: 8,
            }
        );
    }

    #[test]
    fn every_config_error_variant_is_reachable() {
        // NotPowerOfTwo: a 96-byte cache.
        assert!(matches!(
            EngineBuilder::new(FetchKind::Conventional)
                .cache_bytes(96)
                .config(),
            Err(ConfigError::NotPowerOfTwo {
                field: "size_bytes",
                value: 96
            })
        ));
        // Exceeds: line larger than the cache (asserted exactly in
        // `invalid_geometry_is_typed`).
        assert!(EngineBuilder::new(FetchKind::Pipe)
            .cache_bytes(8)
            .line_bytes(16)
            .config()
            .is_err());
        // NotMultipleOf: a PIPE queue that can't hold whole parcels.
        assert!(matches!(
            EngineBuilder::new(FetchKind::Pipe).iq_bytes(3).config(),
            Err(ConfigError::NotMultipleOf {
                field: "iq_bytes",
                value: 3,
                ..
            })
        ));
        // TooSmall: a buffer engine with zero buffers.
        assert!(matches!(
            EngineBuilder::new(FetchKind::Buffers).buffers(0).config(),
            Err(ConfigError::TooSmall {
                field: "buffers",
                value: 0,
                min: 1
            })
        ));
    }

    #[test]
    fn errors_display_and_implement_std_error() {
        let err = EngineBuilder::new(FetchKind::Conventional)
            .cache_bytes(96)
            .config()
            .unwrap_err();
        let text = err.to_string();
        assert!(text.contains("size_bytes") && text.contains("96"), "{text}");
        let _: &dyn std::error::Error = &err;
    }

    #[test]
    fn kind_parse_round_trips() {
        for kind in FetchKind::ALL {
            assert_eq!(FetchKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(FetchKind::parse("warp"), None);
    }

    #[test]
    fn cache_keys_distinguish_configs() {
        let a = EngineBuilder::new(FetchKind::Pipe).config().unwrap();
        let b = EngineBuilder::new(FetchKind::Pipe)
            .partial_lines(true)
            .config()
            .unwrap();
        assert_ne!(a.cache_key(), b.cache_key());
        assert_eq!(a.label(), b.label(), "label intentionally coarser");
    }
}
