//! A Target Instruction Buffer (TIB) fetch engine.
//!
//! Section 2.1 of the paper discusses the TIB approach studied by Rau &
//! Rossman, Grohoski & Patel, and Hill, and used by the AMD29000 *instead
//! of* an instruction cache: a small buffer holds "the n sequential
//! instructions stored at a branch target address"; on a taken branch
//! those instructions issue from the TIB while the fetch logic streams the
//! instructions sequential to them from off-chip memory. The paper notes
//! two properties this engine lets us verify experimentally:
//!
//! * "a small TIB can provide better performance than a simple small
//!   instruction cache", and
//! * "the use of a TIB implies large amounts of off-chip accessing".
//!
//! Model: a fully-associative, LRU-replaced buffer of branch-target
//! entries (metadata only — instruction bytes come from the program
//! image), plus a sequential fetch queue continuously streamed from
//! off-chip. There is **no** instruction cache: straight-line code always
//! comes over the bus.

use std::sync::Arc;

use pipe_isa::{Program, PARCEL_BYTES};
use pipe_mem::error::{require_at_least, require_multiple_of};
use pipe_mem::{Beat, BeatSource, ConfigError, MemRequest, MemorySystem, ReqClass};

use crate::engine::FetchEngine;
use crate::queue::ParcelQueue;
use crate::stats::FetchStats;

/// Geometry of a [`TibFetch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TibConfig {
    /// Number of target entries.
    pub entries: u32,
    /// Instruction bytes held per entry (the paper's *n*, in bytes).
    pub entry_bytes: u32,
    /// Capacity of the sequential fetch queue, in bytes.
    pub fetch_queue_bytes: u32,
}

impl TibConfig {
    /// A TIB with total capacity comparable to a cache of `total_bytes`.
    pub fn with_budget(total_bytes: u32, entry_bytes: u32) -> TibConfig {
        TibConfig {
            entries: (total_bytes / entry_bytes).max(1),
            entry_bytes,
            fetch_queue_bytes: entry_bytes.max(16),
        }
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for zero entries or invalid sizes.
    pub fn validate(&self) -> Result<(), ConfigError> {
        require_at_least("entries", u64::from(self.entries), 1)?;
        require_multiple_of("entry_bytes", self.entry_bytes, PARCEL_BYTES)?;
        require_multiple_of("fetch_queue_bytes", self.fetch_queue_bytes, PARCEL_BYTES)
    }

    /// Total instruction bytes the TIB can hold.
    pub fn total_bytes(&self) -> u32 {
        self.entries * self.entry_bytes
    }
}

#[derive(Debug, Clone, Copy)]
struct TibEntry {
    target: u32,
    valid: bool,
    last_use: u64,
}

#[derive(Debug, Clone, Copy)]
struct PendingFill {
    tag: u64,
    accepted: bool,
    class: ReqClass,
    addr: u32,
    bytes: u32,
    /// Next parcel expected by the fetch queue; `None` = discard (stale).
    expect: Option<u32>,
    /// TIB entry being filled by this fetch, if any.
    tib_slot: Option<usize>,
}

/// The TIB fetch engine. See the [module docs](self).
#[derive(Debug)]
pub struct TibFetch {
    cfg: TibConfig,
    image: Arc<Vec<u16>>,
    base: u32,
    end: u32,
    entries: Vec<TibEntry>,
    fq: ParcelQueue,
    /// Next sequential parcel address not yet scheduled.
    stream_end: u32,
    pending: Option<PendingFill>,
    redirect: Option<(u64, u32)>,
    delivered: u64,
    use_clock: u64,
    stats: FetchStats,
}

impl TibFetch {
    /// Creates a TIB engine over `program`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`TibConfig::validate`].
    pub fn new(program: &Program, cfg: TibConfig) -> TibFetch {
        if let Err(e) = cfg.validate() {
            panic!("invalid TibConfig: {e}");
        }
        TibFetch {
            cfg,
            image: program.image(),
            base: program.base(),
            end: program.end(),
            entries: vec![
                TibEntry {
                    target: 0,
                    valid: false,
                    last_use: 0,
                };
                cfg.entries as usize
            ],
            fq: ParcelQueue::new(cfg.fetch_queue_bytes),
            stream_end: program.entry(),
            pending: None,
            redirect: None,
            delivered: 0,
            use_clock: 0,
            stats: FetchStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TibConfig {
        &self.cfg
    }

    fn parcel(&self, addr: u32) -> Option<u16> {
        if addr < self.base || addr >= self.end {
            return None;
        }
        Some(self.image[((addr - self.base) / PARCEL_BYTES) as usize])
    }

    fn lookup(&mut self, target: u32) -> Option<usize> {
        let hit = self
            .entries
            .iter()
            .position(|e| e.valid && e.target == target);
        if let Some(i) = hit {
            self.use_clock += 1;
            self.entries[i].last_use = self.use_clock;
        }
        hit
    }

    fn allocate(&mut self, target: u32) -> usize {
        let victim = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| if e.valid { e.last_use } else { 0 })
            .map(|(i, _)| i)
            .expect("at least one entry");
        self.use_clock += 1;
        self.entries[victim] = TibEntry {
            target,
            valid: false, // becomes valid when the fill completes
            last_use: self.use_clock,
        };
        victim
    }

    fn copy_to_fq(&mut self, from: u32, to: u32) -> u32 {
        let mut a = from;
        while a < to && a < self.end && self.fq.room() > 0 {
            let p = self.image[((a - self.base) / PARCEL_BYTES) as usize];
            self.fq.push(a, p);
            a += PARCEL_BYTES;
        }
        a
    }

    fn maybe_trigger(&mut self) {
        let Some((after, target)) = self.redirect else {
            return;
        };
        if self.delivered != after {
            return;
        }
        self.redirect = None;
        self.stats.redirects += 1;
        self.stats.flushed_parcels += self.fq.len() as u64;
        self.fq.restart(target);
        // A sequential fill in flight is now wrong-path.
        if let Some(p) = &mut self.pending {
            if p.expect.is_some() {
                p.expect = None;
                self.stats.wasted_requests += 1;
            }
        }
        // TIB hit: the target instructions issue from the buffer while the
        // sequential stream restarts past them.
        if let Some(_slot) = self.lookup(target) {
            self.stats.cache_hits += 1;
            let entry_end = (target + self.cfg.entry_bytes).min(self.end);
            let copied = self.copy_to_fq(target, entry_end);
            self.stream_end = copied;
        } else {
            self.stats.cache_misses += 1;
            // Allocate; the demand fetch that follows fills the entry.
            let slot = self.allocate(target);
            self.stream_end = target;
            // Tag the next demand fill as the TIB fill for this entry.
            // (Handled in `supply`, which sees stream_end == target.)
            let _ = slot;
        }
    }

    /// Keeps the sequential fetch queue streaming from off-chip.
    fn supply(&mut self) {
        if self.pending.is_some() {
            return;
        }
        let need = self.stream_end;
        if need >= self.end || need < self.base {
            return;
        }
        let chunk = self
            .cfg
            .entry_bytes
            .min(self.end - need)
            .min((self.fq.room() as u32) * PARCEL_BYTES);
        if chunk == 0 {
            return;
        }
        // Demand when the decoder is starved, prefetch otherwise.
        let class = if self.fq.needs_refill() {
            ReqClass::IFetch
        } else {
            ReqClass::IPrefetch
        };
        // If this fetch starts at a freshly-allocated TIB target, it also
        // fills that entry.
        let tib_slot = self
            .entries
            .iter()
            .position(|e| !e.valid && e.target == need);
        self.pending = Some(PendingFill {
            tag: 0,
            accepted: false,
            class,
            addr: need,
            bytes: chunk,
            expect: Some(need),
            tib_slot,
        });
        self.stream_end = need + chunk;
    }
}

impl FetchEngine for TibFetch {
    fn reset(&mut self, pc: u32) {
        for e in &mut self.entries {
            e.valid = false;
        }
        self.fq.restart(pc);
        self.stream_end = pc;
        self.pending = None;
        self.redirect = None;
        self.delivered = 0;
    }

    fn offer_requests(&mut self, mem: &mut MemorySystem) {
        self.maybe_trigger();
        self.supply();
        if let Some(p) = &mut self.pending {
            if !p.accepted {
                if p.tag == 0 {
                    p.tag = mem.new_tag();
                }
                // Upgrade to demand if the decoder has starved meanwhile.
                if p.class == ReqClass::IPrefetch && self.fq.needs_refill() {
                    p.class = ReqClass::IFetch;
                }
                mem.offer(MemRequest::load(p.class, p.addr, p.bytes, p.tag));
            }
        }
    }

    fn on_accepted(&mut self, tag: u64) {
        if let Some(p) = &mut self.pending {
            if p.tag == tag && !p.accepted {
                p.accepted = true;
                match p.class {
                    ReqClass::IFetch => self.stats.demand_requests += 1,
                    _ => self.stats.prefetch_requests += 1,
                }
                self.stats.bytes_requested += u64::from(p.bytes);
            }
        }
    }

    fn on_beat(&mut self, beat: &Beat) {
        debug_assert!(matches!(
            beat.source,
            BeatSource::IFetch | BeatSource::IPrefetch
        ));
        let Some(mut p) = self.pending else { return };
        if p.tag != beat.tag {
            return;
        }
        if let Some(expect) = p.expect {
            let beat_end = beat.addr + beat.bytes;
            let mut a = expect.max(beat.addr);
            while a < beat_end {
                if self.fq.room() == 0 {
                    // Queue full: the remainder re-fetches later.
                    p.expect = None;
                    self.stream_end = a;
                    break;
                }
                if let Some(parcel) = self.parcel(a) {
                    self.fq.push(a, parcel);
                }
                a += PARCEL_BYTES;
                if p.expect.is_some() {
                    p.expect = Some(a);
                }
            }
        }
        if beat.last {
            if let Some(slot) = p.tib_slot {
                self.entries[slot].valid = true;
            }
            self.pending = None;
        } else {
            self.pending = Some(p);
        }
    }

    fn advance(&mut self) {
        self.maybe_trigger();
        self.supply();
    }

    fn peek(&self) -> Option<(u16, Option<u16>)> {
        self.fq.peek_instruction()
    }

    fn head_addr(&self) -> Option<u32> {
        (!self.fq.is_empty()).then(|| self.fq.head_addr())
    }

    fn peek_index(&self) -> Option<usize> {
        // The FQ is filled from the image, so its head address indexes the
        // image directly; gate on a complete instruction like `peek`.
        self.fq.peek_instruction()?;
        Some(((self.fq.head_addr() - self.base) / PARCEL_BYTES) as usize)
    }

    fn consume(&mut self) {
        let (_, second) = self.peek().expect("consume without available instruction");
        self.fq.pop();
        if second.is_some() {
            self.fq.pop();
        }
        self.delivered += 1;
        self.stats.instructions_delivered += 1;
        self.maybe_trigger();
    }

    fn resolve_branch(&mut self, taken: bool, remaining: u32, target: u32) {
        if !taken {
            return;
        }
        self.redirect = Some((self.delivered + u64::from(remaining), target));
        self.maybe_trigger();
    }

    fn has_outstanding(&self) -> bool {
        self.pending.is_some()
    }

    fn quiescence(&self) -> Option<u32> {
        match &self.pending {
            Some(p) if p.accepted => Some(0), // waiting on beats
            Some(p) => {
                if p.tag == 0 {
                    return None; // first offer still to come: assigns a tag
                }
                if p.class == ReqClass::IPrefetch && self.fq.needs_refill() {
                    return None; // will upgrade to the demand class
                }
                Some(1) // pure re-offer at a stable class
            }
            None => {
                // `supply` launches a new fill next cycle unless the
                // stream front is outside the image or the fetch queue is
                // full — both stable while nothing is consumed.
                if self.stream_end >= self.end || self.stream_end < self.base {
                    return Some(0);
                }
                let chunk = self
                    .cfg
                    .entry_bytes
                    .min(self.end - self.stream_end)
                    .min((self.fq.room() as u32) * PARCEL_BYTES);
                if chunk == 0 {
                    Some(0)
                } else {
                    None
                }
            }
        }
    }

    fn stats(&self) -> &FetchStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "tib"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipe_isa::{Assembler, InstrFormat};
    use pipe_mem::MemConfig;

    fn program() -> Program {
        Assembler::new(InstrFormat::Fixed32)
            .assemble(
                "lim r1, 3\nlbr b0, top\ntop: subi r1, r1, 1\nnop\npbr.nez b0, r1, 1\nnop\nhalt\n",
            )
            .unwrap()
    }

    fn mem(access: u32) -> MemorySystem {
        MemorySystem::new(MemConfig {
            access_cycles: access,
            in_bus_bytes: 8,
            ..MemConfig::default()
        })
    }

    fn cycle(f: &mut TibFetch, m: &mut MemorySystem) -> bool {
        f.offer_requests(m);
        let out = m.tick();
        if let Some(t) = out.accepted {
            f.on_accepted(t);
        }
        if let Some(b) = &out.beats {
            if matches!(b.source, BeatSource::IFetch | BeatSource::IPrefetch) {
                f.on_beat(b);
            }
        }
        f.advance();
        if f.peek().is_some() {
            f.consume();
            true
        } else {
            false
        }
    }

    #[test]
    fn config_budget() {
        let c = TibConfig::with_budget(64, 16);
        assert_eq!(c.entries, 4);
        assert_eq!(c.total_bytes(), 64);
        assert!(c.validate().is_ok());
        assert!(TibConfig {
            entries: 0,
            entry_bytes: 16,
            fetch_queue_bytes: 16
        }
        .validate()
        .is_err());
    }

    #[test]
    fn sequential_code_streams_from_memory() {
        let p = program();
        let mut f = TibFetch::new(&p, TibConfig::with_budget(64, 16));
        let mut m = mem(1);
        let mut consumed = 0;
        for _ in 0..40 {
            if cycle(&mut f, &mut m) {
                consumed += 1;
            }
        }
        assert_eq!(consumed, 7, "the whole 7-instruction image streams through");
        assert!(f.stats().total_requests() >= 2, "everything comes off-chip");
    }

    #[test]
    fn taken_branch_misses_then_hits() {
        let p = program();
        let top = p.symbols()["top"];
        let mut f = TibFetch::new(&p, TibConfig::with_budget(64, 16));
        let mut m = mem(1);
        // Issue through the first pbr's delay slot.
        let mut issued = 0;
        for _ in 0..40 {
            if cycle(&mut f, &mut m) {
                issued += 1;
            }
            if issued == 5 {
                break;
            }
        }
        // First taken branch: TIB miss, entry allocated + filled.
        f.resolve_branch(true, 0, top);
        assert_eq!(f.stats().cache_misses, 1);
        for _ in 0..20 {
            if f.stats().instructions_delivered >= 8 {
                break;
            }
            cycle(&mut f, &mut m);
        }
        // Second taken branch to the same target: TIB hit.
        f.resolve_branch(true, 0, top);
        assert_eq!(f.stats().cache_hits, 1, "{:?}", f.stats());
        // Target instructions are immediately available from the buffer.
        f.advance();
        assert!(f.peek().is_some());
    }

    #[test]
    fn lru_replacement() {
        let p = Assembler::new(InstrFormat::Fixed32)
            .assemble("nop\nnop\nnop\nnop\nnop\nnop\nnop\nnop\nhalt\n")
            .unwrap();
        // One entry: a second target evicts the first.
        let mut f = TibFetch::new(
            &p,
            TibConfig {
                entries: 1,
                entry_bytes: 8,
                fetch_queue_bytes: 16,
            },
        );
        let mut m = mem(1);
        for _ in 0..4 {
            cycle(&mut f, &mut m);
        }
        f.resolve_branch(true, 0, 0x8); // miss, fill
        for _ in 0..10 {
            cycle(&mut f, &mut m);
        }
        f.resolve_branch(true, 0, 0x10); // miss, evicts 0x8
        for _ in 0..10 {
            cycle(&mut f, &mut m);
        }
        f.resolve_branch(true, 0, 0x8); // miss again (evicted)
        assert_eq!(f.stats().cache_misses, 3);
        assert_eq!(f.stats().cache_hits, 0);
    }
}
