//! A perfect (always-hit, zero-traffic) fetch engine for functional tests.

use std::sync::Arc;

use pipe_isa::decode::instr_len;
use pipe_isa::encode::parcel_has_ext;
use pipe_isa::{Program, PARCEL_BYTES};
use pipe_mem::{Beat, MemorySystem};

use crate::engine::FetchEngine;
use crate::stats::FetchStats;

/// Supplies one instruction per cycle directly from the program image with
/// no cache, queues, or memory traffic. Useful for testing the processor
/// core's functional semantics in isolation from fetch timing.
#[derive(Debug)]
pub struct PerfectFetch {
    image: Arc<Vec<u16>>,
    base: u32,
    pc: u32,
    delivered: u64,
    redirect: Option<(u64, u32)>,
    stats: FetchStats,
}

impl PerfectFetch {
    /// Creates a perfect fetch engine over `program`.
    pub fn new(program: &Program) -> PerfectFetch {
        PerfectFetch {
            image: program.image(),
            base: program.base(),
            pc: program.entry(),
            delivered: 0,
            redirect: None,
            stats: FetchStats::default(),
        }
    }

    fn parcel(&self, addr: u32) -> Option<u16> {
        if addr < self.base {
            return None;
        }
        let idx = ((addr - self.base) / PARCEL_BYTES) as usize;
        self.image.get(idx).copied()
    }

    fn maybe_trigger(&mut self) {
        if let Some((after, target)) = self.redirect {
            if self.delivered == after {
                self.pc = target;
                self.redirect = None;
                self.stats.redirects += 1;
            }
        }
    }
}

impl FetchEngine for PerfectFetch {
    fn reset(&mut self, pc: u32) {
        self.pc = pc;
        self.delivered = 0;
        self.redirect = None;
    }

    fn offer_requests(&mut self, _mem: &mut MemorySystem) {}

    fn on_accepted(&mut self, _tag: u64) {}

    fn on_beat(&mut self, _beat: &Beat) {}

    fn advance(&mut self) {}

    fn peek(&self) -> Option<(u16, Option<u16>)> {
        let first = self.parcel(self.pc)?;
        if parcel_has_ext(first) {
            Some((first, Some(self.parcel(self.pc + PARCEL_BYTES)?)))
        } else {
            Some((first, None))
        }
    }

    fn head_addr(&self) -> Option<u32> {
        Some(self.pc)
    }

    fn peek_index(&self) -> Option<usize> {
        self.peek()?;
        Some(((self.pc - self.base) / PARCEL_BYTES) as usize)
    }

    fn consume(&mut self) {
        let (first, _) = self.peek().expect("consume without available instruction");
        self.pc += instr_len(first) as u32 * PARCEL_BYTES;
        self.delivered += 1;
        self.stats.instructions_delivered += 1;
        self.maybe_trigger();
    }

    fn resolve_branch(&mut self, taken: bool, remaining: u32, target: u32) {
        if taken {
            self.redirect = Some((self.delivered + u64::from(remaining), target));
            self.maybe_trigger();
        }
    }

    fn has_outstanding(&self) -> bool {
        false
    }

    fn quiescence(&self) -> Option<u32> {
        // Never touches memory and does all work in peek/consume: a cycle
        // with no decode activity changes nothing.
        Some(0)
    }

    fn stats(&self) -> &FetchStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "perfect"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipe_isa::{Assembler, InstrFormat};

    fn program() -> Program {
        Assembler::new(InstrFormat::Fixed32)
            .assemble("lim r1, 2\nlbr b0, top\ntop: subi r1, r1, 1\npbr.nez b0, r1, 0\nhalt\n")
            .unwrap()
    }

    #[test]
    fn sequential_delivery() {
        let p = program();
        let mut f = PerfectFetch::new(&p);
        for expected_addr in [0u32, 4, 8] {
            let (first, second) = f.peek().unwrap();
            let (instr, _) = p.instruction_at(expected_addr).unwrap();
            let direct = pipe_isa::decode(first, second).unwrap();
            assert_eq!(direct, instr);
            f.consume();
        }
        assert_eq!(f.stats().instructions_delivered, 3);
    }

    #[test]
    fn redirect_after_delay_slots() {
        let p = program();
        let mut f = PerfectFetch::new(&p);
        f.consume(); // lim
        f.consume(); // lbr
        f.consume(); // subi
        f.consume(); // pbr (delay 0)
                     // Branch resolves taken with 0 remaining slots → immediate redirect.
        f.resolve_branch(true, 0, p.symbols()["top"]);
        let (first, second) = f.peek().unwrap();
        let instr = pipe_isa::decode(first, second).unwrap();
        let (expected, _) = p.instruction_at(p.symbols()["top"]).unwrap();
        assert_eq!(instr, expected);
        assert_eq!(f.stats().redirects, 1);
    }

    #[test]
    fn redirect_waits_for_remaining() {
        let p = program();
        let mut f = PerfectFetch::new(&p);
        f.resolve_branch(true, 2, 0); // after 2 more instructions, back to 0
        f.consume();
        f.consume();
        assert_eq!(f.stats().redirects, 1);
        let (first, second) = f.peek().unwrap();
        let instr = pipe_isa::decode(first, second).unwrap();
        let (expected, _) = p.instruction_at(0).unwrap();
        assert_eq!(instr, expected);
    }

    #[test]
    fn not_taken_is_a_no_op() {
        let p = program();
        let mut f = PerfectFetch::new(&p);
        f.resolve_branch(false, 0, 0x100);
        f.consume();
        assert_eq!(f.stats().redirects, 0);
    }

    #[test]
    fn peek_past_end_is_none() {
        let p = program();
        let mut f = PerfectFetch::new(&p);
        f.reset(p.end());
        assert_eq!(f.peek(), None);
    }
}
