//! Trace-driven replay: drive any [`FetchEngine`] from a recorded
//! instruction schedule, without the functional core.
//!
//! A [`ReplayStep`] captures everything the fetch side of the processor
//! observed about one issued instruction: how many *non-fetch* stall
//! cycles preceded it (branch gating, `r7` data waits, full queues), which
//! data-side memory operations it queued, and — for a prepare-to-branch —
//! how it resolved. Feeding a sequence of steps through a
//! [`ReplayHarness`] re-creates the exact cycle-by-cycle memory-system
//! load of the original run:
//!
//! * instruction-fetch stalls are **emergent**: the harness waits for the
//!   engine to deliver, so a different engine (or cache size, or memory
//!   timing) produces different fetch behaviour — that is the point of
//!   trace-driven evaluation;
//! * data-side traffic is **replayed**: loads and stores drain through a
//!   program-order queue under the same rules as the processor's LAQ /
//!   SAQ / SDQ heads, so instruction fetches compete for the memory array
//!   and input bus exactly as they did originally.
//!
//! When the engine configuration and memory parameters match the
//! recording, the replay is cycle-exact: total cycles, instruction-fetch
//! stalls, and the engine's [`FetchStats`] reproduce the original run
//! bit-identically (see the `trace_replay` integration tests).

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use pipe_mem::{BeatSource, MemRequest, MemorySystem, ReqClass};

use crate::engine::FetchEngine;
use crate::stats::FetchStats;

/// A data-side memory operation replayed alongside the instruction
/// stream. Mirrors the processor's three queue-push events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayOp {
    /// Push a load of `addr` onto the (replayed) load address queue.
    Load {
        /// Effective byte address.
        addr: u32,
    },
    /// Push a store to `addr` onto the (replayed) store address queue.
    StoreAddr {
        /// Effective byte address.
        addr: u32,
    },
    /// Push `value` onto the (replayed) store data queue.
    StoreData {
        /// The 32-bit value stored.
        value: u32,
    },
}

/// How a prepare-to-branch resolved, replayed one cycle after its step
/// issues — the same timing as the processor's execute stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayBranch {
    /// Whether the branch was taken.
    pub taken: bool,
    /// Delay-slot instructions still to issue at resolution time.
    pub remaining: u32,
    /// Target byte address.
    pub target: u32,
}

/// One instruction of a replay schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayStep {
    /// Fetch byte address, when known. Used for diagnostics and region
    /// profiling; the engine itself follows the program image.
    pub addr: Option<u32>,
    /// Non-fetch stall cycles (branch gating, data waits, full queues)
    /// the issue stage spent on this instruction *after* the engine had
    /// it ready. Burned verbatim during replay.
    pub waits: u32,
    /// Data-side operations queued when this instruction issued.
    pub ops: Vec<ReplayOp>,
    /// For a prepare-to-branch: its resolution, applied one cycle after
    /// the step issues, before that cycle's issue attempt.
    pub resolve: Option<ReplayBranch>,
}

impl ReplayStep {
    /// A plain sequential step at `addr` with no waits or data ops.
    pub fn at(addr: u32) -> ReplayStep {
        ReplayStep {
            addr: Some(addr),
            ..ReplayStep::default()
        }
    }
}

/// A replay that stopped making progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The engine failed to deliver an instruction (or the drain failed
    /// to complete) within the progress limit — a configuration that can
    /// never satisfy the schedule, e.g. a branch target outside the
    /// program image.
    Stuck {
        /// Cycle count when the replay gave up.
        cycle: u64,
        /// Instructions replayed before giving up.
        instructions: u64,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Stuck {
                cycle,
                instructions,
            } => write!(
                f,
                "replay stuck at cycle {cycle} after {instructions} instructions \
                 (engine stopped delivering)"
            ),
        }
    }
}

impl Error for ReplayError {}

/// Fetch-side results of a replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayStats {
    /// Total cycles, including the post-halt drain.
    pub cycles: u64,
    /// Instructions replayed (equals the schedule length on success).
    pub instructions: u64,
    /// Cycles the issue stage waited on the fetch engine — the
    /// fetch-stall count this subsystem exists to measure.
    pub ifetch_stalls: u64,
    /// Recorded non-fetch stall cycles burned (branch/data/queue).
    pub wait_cycles: u64,
    /// The engine's own counters.
    pub fetch: FetchStats,
}

impl ReplayStats {
    /// Cycles per instruction over the whole replay.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum PendingOp {
    Load { addr: u32 },
    Store { addr: u32 },
}

/// Drives a [`FetchEngine`] and [`MemorySystem`] through a replay
/// schedule, one [`ReplayStep`] at a time.
///
/// The engine must be freshly built over the traced program (engines
/// initialise at the program entry point, exactly as under the
/// processor).
pub struct ReplayHarness {
    engine: Box<dyn FetchEngine>,
    mem: MemorySystem,
    /// Program-order data operations awaiting memory, like LAQ/SAQ heads.
    data_q: VecDeque<PendingOp>,
    /// Store data values, paired FIFO with `Store` entries of `data_q`.
    sdq: VecDeque<u32>,
    data_front_tag: Option<u64>,
    pending_resolve: Option<(u64, ReplayBranch)>,
    cycle: u64,
    instructions: u64,
    ifetch_stalls: u64,
    wait_cycles: u64,
    progress_limit: u64,
}

impl ReplayHarness {
    /// Creates a harness over a freshly built engine and memory system.
    pub fn new(engine: Box<dyn FetchEngine>, mem: MemorySystem) -> ReplayHarness {
        ReplayHarness {
            engine,
            mem,
            data_q: VecDeque::new(),
            sdq: VecDeque::new(),
            data_front_tag: None,
            pending_resolve: None,
            cycle: 0,
            instructions: 0,
            ifetch_stalls: 0,
            wait_cycles: 0,
            progress_limit: 1_000_000,
        }
    }

    /// Overrides the per-step progress limit (cycles the harness will
    /// wait for one instruction before declaring the replay stuck).
    pub fn progress_limit(mut self, cycles: u64) -> ReplayHarness {
        self.progress_limit = cycles.max(1);
        self
    }

    /// The engine's short name ("pipe", "conventional", ...).
    pub fn engine_name(&self) -> &'static str {
        self.engine.name()
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Offer + tick + route + advance: phases 1–4 of the processor cycle.
    fn begin_cycle(&mut self) {
        self.engine.offer_requests(&mut self.mem);
        match self.data_q.front().copied() {
            Some(PendingOp::Load { addr }) => {
                let tag = *self
                    .data_front_tag
                    .get_or_insert_with(|| self.mem.new_tag());
                self.mem
                    .offer(MemRequest::load(ReqClass::DataLoad, addr, 4, tag));
            }
            Some(PendingOp::Store { addr }) => {
                // A store whose data has not been produced yet blocks
                // younger loads rather than letting them bypass it —
                // the processor's memory-consistency rule.
                if let Some(&value) = self.sdq.front() {
                    let tag = *self
                        .data_front_tag
                        .get_or_insert_with(|| self.mem.new_tag());
                    self.mem.offer(MemRequest::store(addr, value, tag));
                }
            }
            None => {}
        }

        let out = self.mem.tick();
        if let Some(tag) = out.accepted {
            if self.data_front_tag == Some(tag) {
                if let Some(PendingOp::Store { .. }) = self.data_q.pop_front() {
                    self.sdq.pop_front();
                }
                self.data_front_tag = None;
            } else {
                self.engine.on_accepted(tag);
            }
        }
        if let Some(beat) = &out.beats {
            match beat.source {
                BeatSource::IFetch | BeatSource::IPrefetch => self.engine.on_beat(beat),
                // Data responses went to the LDQ originally; replay has
                // no consumers, the timing is what matters.
                BeatSource::DataLoad | BeatSource::FpuResult => {}
            }
        }
        self.engine.advance();
    }

    fn apply_resolve_if_due(&mut self) {
        if let Some((due, r)) = self.pending_resolve {
            if self.cycle >= due {
                self.engine.resolve_branch(r.taken, r.remaining, r.target);
                self.pending_resolve = None;
            }
        }
    }

    /// Replays one instruction: waits for the engine to deliver (counting
    /// fetch stalls), burns the recorded non-fetch waits, then consumes
    /// and queues the step's data operations.
    ///
    /// # Errors
    ///
    /// [`ReplayError::Stuck`] if the engine does not deliver within the
    /// progress limit.
    pub fn step_instruction(&mut self, step: &ReplayStep) -> Result<(), ReplayError> {
        let mut waits_left = step.waits;
        let deadline = self.cycle + self.progress_limit;
        loop {
            if self.cycle >= deadline {
                return Err(ReplayError::Stuck {
                    cycle: self.cycle,
                    instructions: self.instructions,
                });
            }
            self.begin_cycle();
            self.apply_resolve_if_due();
            if self.engine.peek().is_none() {
                self.ifetch_stalls += 1;
                self.cycle += 1;
                continue;
            }
            if waits_left > 0 {
                waits_left -= 1;
                self.wait_cycles += 1;
                self.cycle += 1;
                continue;
            }
            self.engine.consume();
            self.instructions += 1;
            for op in &step.ops {
                match *op {
                    ReplayOp::Load { addr } => self.data_q.push_back(PendingOp::Load { addr }),
                    ReplayOp::StoreAddr { addr } => {
                        self.data_q.push_back(PendingOp::Store { addr })
                    }
                    ReplayOp::StoreData { value } => self.sdq.push_back(value),
                }
            }
            if let Some(r) = step.resolve {
                self.pending_resolve = Some((self.cycle + 1, r));
            }
            self.cycle += 1;
            return Ok(());
        }
    }

    /// Runs out the clock after the last step until all replayed data
    /// operations and the engine's outstanding requests have drained —
    /// the same termination condition as the processor.
    ///
    /// # Errors
    ///
    /// [`ReplayError::Stuck`] if the drain does not complete within the
    /// progress limit.
    pub fn drain(&mut self) -> Result<(), ReplayError> {
        let deadline = self.cycle + self.progress_limit;
        while !(self.data_q.is_empty() && !self.engine.has_outstanding() && self.mem.is_idle()) {
            if self.cycle >= deadline {
                return Err(ReplayError::Stuck {
                    cycle: self.cycle,
                    instructions: self.instructions,
                });
            }
            self.begin_cycle();
            self.apply_resolve_if_due();
            self.cycle += 1;
        }
        Ok(())
    }

    /// Replays a whole schedule and drains.
    ///
    /// # Errors
    ///
    /// Propagates [`ReplayError::Stuck`] from any step or the drain.
    pub fn run<I>(&mut self, schedule: I) -> Result<ReplayStats, ReplayError>
    where
        I: IntoIterator<Item = ReplayStep>,
    {
        for step in schedule {
            self.step_instruction(&step)?;
        }
        self.drain()?;
        Ok(self.stats())
    }

    /// The results accumulated so far.
    pub fn stats(&self) -> ReplayStats {
        ReplayStats {
            cycles: self.cycle,
            instructions: self.instructions,
            ifetch_stalls: self.ifetch_stalls,
            wait_cycles: self.wait_cycles,
            fetch: self.engine.stats().clone(),
        }
    }
}

impl fmt::Debug for ReplayHarness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplayHarness")
            .field("engine", &self.engine.name())
            .field("cycle", &self.cycle)
            .field("instructions", &self.instructions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{EngineBuilder, FetchKind};
    use pipe_isa::{Assembler, InstrFormat, Program};
    use pipe_mem::MemConfig;

    fn asm(src: &str) -> Program {
        Assembler::new(InstrFormat::Fixed32)
            .assemble(src)
            .expect("assembles")
    }

    fn harness(program: &Program) -> ReplayHarness {
        let engine = EngineBuilder::new(FetchKind::Perfect)
            .build(program)
            .expect("builds");
        ReplayHarness::new(engine, MemorySystem::new(MemConfig::default()))
    }

    #[test]
    fn sequential_replay_counts_instructions() {
        let p = asm("nop\nnop\nnop\nhalt\n");
        let schedule = (0..4).map(|i| ReplayStep::at(i * 4));
        let stats = harness(&p).run(schedule).expect("replays");
        assert_eq!(stats.instructions, 4);
        assert_eq!(stats.fetch.instructions_delivered, 4);
        assert_eq!(stats.ifetch_stalls, 0); // perfect fetch never stalls
    }

    #[test]
    fn waits_are_burned() {
        let p = asm("nop\nnop\nhalt\n");
        let schedule = vec![
            ReplayStep::at(0),
            ReplayStep {
                waits: 3,
                ..ReplayStep::at(4)
            },
            ReplayStep::at(8),
        ];
        let stats = harness(&p).run(schedule).expect("replays");
        assert_eq!(stats.wait_cycles, 3);
        assert_eq!(stats.cycles, 6); // 3 issues + 3 waits
    }

    #[test]
    fn stuck_replay_is_a_typed_error() {
        // An engine redirected past the program image can never deliver
        // the out-of-range address.
        let p = asm("nop\nhalt\n");
        let mut h = harness(&p).progress_limit(200);
        let schedule = vec![
            ReplayStep {
                resolve: Some(ReplayBranch {
                    taken: true,
                    remaining: 0,
                    target: 0x8000,
                }),
                ..ReplayStep::at(0)
            },
            ReplayStep::at(0x8000),
        ];
        match h.run(schedule) {
            Err(ReplayError::Stuck { instructions, .. }) => assert_eq!(instructions, 1),
            other => panic!("expected Stuck, got {other:?}"),
        }
    }
}
