//! The direct-mapped, sub-blocked on-chip instruction cache.
//!
//! Following Hill's model (paper §4.1), a cache line is composed of
//! sub-blocks, each with its own valid bit, so single-instruction fetches
//! and streamed line fills can validate a line piecemeal. The cache stores
//! *metadata only* — instruction bytes are always read from the program
//! image by the fetch engines.

use std::fmt;

use pipe_mem::error::{require_at_most, require_power_of_two};
use pipe_mem::ConfigError;

/// Geometry of an [`InstructionCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes (the paper sweeps 16–512).
    pub size_bytes: u32,
    /// Line (tag granularity) size in bytes.
    pub line_bytes: u32,
    /// Sub-block (valid-bit granularity) size in bytes; 4 in the paper's
    /// model (one fixed-format instruction).
    pub subblock_bytes: u32,
}

impl CacheConfig {
    /// A convenience constructor with 4-byte sub-blocks.
    pub fn new(size_bytes: u32, line_bytes: u32) -> CacheConfig {
        CacheConfig {
            size_bytes,
            line_bytes,
            subblock_bytes: 4,
        }
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any field is zero or not a power of
    /// two, if the line exceeds the size, or if the sub-block exceeds the
    /// line.
    pub fn validate(&self) -> Result<(), ConfigError> {
        require_power_of_two("size_bytes", self.size_bytes)?;
        require_power_of_two("line_bytes", self.line_bytes)?;
        require_power_of_two("subblock_bytes", self.subblock_bytes)?;
        require_at_most("line_bytes", self.line_bytes, "size_bytes", self.size_bytes)?;
        require_at_most(
            "subblock_bytes",
            self.subblock_bytes,
            "line_bytes",
            self.line_bytes,
        )
    }

    /// Number of lines.
    pub fn num_lines(&self) -> u32 {
        self.size_bytes / self.line_bytes
    }

    /// Sub-blocks per line.
    pub fn subblocks_per_line(&self) -> u32 {
        self.line_bytes / self.subblock_bytes
    }

    /// Byte address of the start of the line containing `addr`.
    pub fn line_base(&self, addr: u32) -> u32 {
        addr & !(self.line_bytes - 1)
    }

    /// Direct-mapped index of the line containing `addr`.
    pub fn line_index(&self, addr: u32) -> u32 {
        (addr / self.line_bytes) % self.num_lines()
    }

    /// Tag of the line containing `addr`.
    pub fn tag_of(&self, addr: u32) -> u32 {
        addr / self.size_bytes
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}B direct-mapped, {}B lines, {}B sub-blocks",
            self.size_bytes, self.line_bytes, self.subblock_bytes
        )
    }
}

#[derive(Debug, Clone, Default)]
struct Line {
    tag: u32,
    tag_valid: bool,
    /// Per-sub-block valid bits (lines have at most 32/4 = 8 sub-blocks at
    /// the paper's parameters, but u64 leaves headroom).
    sub_valid: u64,
}

/// A direct-mapped instruction cache with per-sub-block valid bits.
#[derive(Debug, Clone)]
pub struct InstructionCache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    hits: u64,
    misses: u64,
    // Geometry as shifts/masks. Every field of a validated `CacheConfig`
    // is a power of two, and these probes sit on the simulator's
    // per-cycle path — a hardware `div` per lookup is measurable there.
    line_shift: u32,
    index_mask: u32,
    size_shift: u32,
    sub_shift: u32,
}

impl InstructionCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CacheConfig::validate`].
    pub fn new(cfg: CacheConfig) -> InstructionCache {
        if let Err(e) = cfg.validate() {
            panic!("invalid CacheConfig: {e}");
        }
        InstructionCache {
            cfg,
            lines: vec![Line::default(); cfg.num_lines() as usize],
            hits: 0,
            misses: 0,
            line_shift: cfg.line_bytes.trailing_zeros(),
            index_mask: cfg.num_lines() - 1,
            size_shift: cfg.size_bytes.trailing_zeros(),
            sub_shift: cfg.subblock_bytes.trailing_zeros(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Sub-block mask covering byte range `[addr, addr + bytes)` within the
    /// line containing `addr`. The range must not cross a line boundary.
    fn mask_for(&self, addr: u32, bytes: u32) -> u64 {
        debug_assert!(bytes > 0);
        let base = self.cfg.line_base(addr);
        debug_assert!(
            addr + bytes <= base + self.cfg.line_bytes,
            "range {addr:#x}+{bytes} crosses line boundary"
        );
        let first = (addr - base) >> self.sub_shift;
        let last = (addr + bytes - 1 - base) >> self.sub_shift;
        let count = last - first + 1;
        (((1u64 << count) - 1) << first) & Self::full_mask(self.cfg.subblocks_per_line())
    }

    fn full_mask(n: u32) -> u64 {
        if n >= 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    /// Checks (without counting) whether every sub-block covering
    /// `[addr, addr + bytes)` is present. The range may not cross a line
    /// boundary.
    pub fn contains(&self, addr: u32, bytes: u32) -> bool {
        let line = &self.lines[((addr >> self.line_shift) & self.index_mask) as usize];
        if !line.tag_valid || line.tag != addr >> self.size_shift {
            return false;
        }
        let mask = self.mask_for(addr, bytes);
        line.sub_valid & mask == mask
    }

    /// Probes the cache for `[addr, addr + bytes)`, counting a hit or miss.
    pub fn probe(&mut self, addr: u32, bytes: u32) -> bool {
        let hit = self.contains(addr, bytes);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Fills the sub-blocks covering `[addr, addr + bytes)`. If the line
    /// currently holds a different tag, the old contents are invalidated
    /// first. Ranges may span multiple lines; each affected line is filled.
    pub fn fill(&mut self, addr: u32, bytes: u32) {
        let mut a = addr;
        let end = addr + bytes;
        while a < end {
            let line_end = self.cfg.line_base(a) + self.cfg.line_bytes;
            let chunk = (end - a).min(line_end - a);
            self.fill_within_line(a, chunk);
            a += chunk;
        }
    }

    fn fill_within_line(&mut self, addr: u32, bytes: u32) {
        let tag = addr >> self.size_shift;
        let idx = ((addr >> self.line_shift) & self.index_mask) as usize;
        let mask = self.mask_for(addr, bytes);
        let line = &mut self.lines[idx];
        if !line.tag_valid || line.tag != tag {
            line.tag = tag;
            line.tag_valid = true;
            line.sub_valid = 0;
        }
        line.sub_valid |= mask;
    }

    /// Invalidates the entire cache.
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            *line = Line::default();
        }
    }

    /// Lifetime probe hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime probe misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of currently valid sub-blocks, for occupancy checks.
    pub fn valid_subblocks(&self) -> u32 {
        self.lines
            .iter()
            .filter(|l| l.tag_valid)
            .map(|l| l.sub_valid.count_ones())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(size: u32, line: u32) -> InstructionCache {
        InstructionCache::new(CacheConfig::new(size, line))
    }

    #[test]
    fn empty_cache_misses() {
        let mut c = cache(128, 16);
        assert!(!c.probe(0, 4));
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn fill_then_hit() {
        let mut c = cache(128, 16);
        c.fill(0x20, 4);
        assert!(c.probe(0x20, 4));
        assert!(!c.probe(0x24, 4), "other sub-block still invalid");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn full_line_fill() {
        let mut c = cache(128, 16);
        c.fill(0x40, 16);
        for off in (0..16).step_by(4) {
            assert!(c.contains(0x40 + off, 4));
        }
        assert_eq!(c.valid_subblocks(), 4);
    }

    #[test]
    fn conflicting_tag_evicts() {
        let mut c = cache(64, 16); // 4 lines; 0x0 and 0x40 conflict
        c.fill(0x0, 16);
        assert!(c.contains(0x0, 4));
        c.fill(0x40, 4);
        assert!(!c.contains(0x0, 4), "old line evicted");
        assert!(c.contains(0x40, 4));
        assert!(!c.contains(0x44, 4), "only the filled sub-block is valid");
    }

    #[test]
    fn partial_fill_accumulates() {
        let mut c = cache(64, 16);
        c.fill(0x10, 4);
        c.fill(0x14, 4);
        assert!(c.contains(0x10, 8));
        assert!(!c.contains(0x10, 16));
        c.fill(0x18, 8);
        assert!(c.contains(0x10, 16));
    }

    #[test]
    fn fill_spanning_lines() {
        let mut c = cache(128, 16);
        c.fill(0x08, 16); // covers 0x08..0x18 across two lines
        assert!(c.contains(0x08, 8));
        assert!(c.contains(0x10, 8));
        assert!(!c.contains(0x00, 4));
        assert!(!c.contains(0x18, 4));
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut c = cache(64, 16);
        c.fill(0, 64);
        assert_eq!(c.valid_subblocks(), 16);
        c.flush();
        assert_eq!(c.valid_subblocks(), 0);
        assert!(!c.contains(0, 4));
    }

    #[test]
    fn two_byte_granularity_probe() {
        // Mixed-format fetches can be 2 bytes at odd parcel addresses.
        let mut c = cache(64, 16);
        c.fill(0x10, 4);
        assert!(c.contains(0x12, 2));
        assert!(!c.contains(0x14, 2));
    }

    #[test]
    fn geometry_helpers() {
        let g = CacheConfig::new(128, 16);
        assert_eq!(g.num_lines(), 8);
        assert_eq!(g.subblocks_per_line(), 4);
        assert_eq!(g.line_base(0x27), 0x20);
        assert_eq!(g.line_index(0x20), 2);
        assert_eq!(g.line_index(0xA0), 2); // wraps
        assert_ne!(g.tag_of(0x20), g.tag_of(0xA0));
    }

    #[test]
    fn validation() {
        assert!(CacheConfig::new(128, 16).validate().is_ok());
        assert!(CacheConfig::new(0, 16).validate().is_err());
        assert!(CacheConfig::new(96, 16).validate().is_err()); // not pow2
        assert!(CacheConfig::new(8, 16).validate().is_err()); // size < line
        assert!(CacheConfig {
            size_bytes: 64,
            line_bytes: 2,
            subblock_bytes: 4
        }
        .validate()
        .is_err()); // line < subblock
    }

    #[test]
    #[should_panic(expected = "invalid CacheConfig")]
    fn bad_geometry_panics() {
        let _ = cache(100, 16);
    }
}
