//! The PIPE instruction-fetch strategy: cache + IQ + IQB (paper §4.2).
//!
//! Two line-sized queues sit between the instruction cache and the decoder:
//!
//! * The **IQ** feeds the decoder. When it cannot supply a complete
//!   instruction it refills from the IQB, from the cache (same cycle — the
//!   cache array read completes within the cycle, as in the conventional
//!   model), or, on a miss, from off-chip with a demand line fetch.
//! * The **IQB** prefetches the next sequential line whenever it is empty.
//!   Because the PIPE ISA identifies branches with a single opcode bit, the
//!   fetch logic can scan the IQ for prepare-to-branch instructions; under
//!   [`PrefetchPolicy::GuaranteedOnly`] an off-chip prefetch is issued only
//!   when no unresolved branch precedes it (the real chip's rule), while
//!   [`PrefetchPolicy::TruePrefetch`] — the paper's presented assumption —
//!   always allows it.
//! * When a prepare-to-branch resolves *taken*, the engine immediately
//!   begins filling the IQB from the branch target (cache, or off-chip)
//!   while the delay slots drain from the IQ, so an on-chip target causes
//!   no supply gap and an off-chip target's fetch starts several cycles
//!   early.
//!
//! Off-chip fetches are whole (aligned) cache lines; beats stream into the
//! cache and the destination queue as they arrive, so wide buses help even
//! within a single line fill.

use std::sync::Arc;

use pipe_isa::encode::parcel_is_branch;
use pipe_isa::{Program, PARCEL_BYTES};
use pipe_mem::error::require_multiple_of;
use pipe_mem::{Beat, BeatSource, ConfigError, MemRequest, MemorySystem, ReqClass};

use crate::cache::{CacheConfig, InstructionCache};
use crate::engine::FetchEngine;
use crate::queue::ParcelQueue;
use crate::stats::FetchStats;

/// Off-chip prefetch gating policy (paper §6, second paragraph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrefetchPolicy {
    /// Speculative off-chip prefetch is always allowed — the assumption
    /// under which all of the paper's presented results were produced.
    #[default]
    TruePrefetch,
    /// Off-chip requests are issued only for lines guaranteed to contain an
    /// executed instruction (no unresolved branch ahead of them) — the
    /// strategy actually implemented in the PIPE chip, which the paper
    /// found non-optimal for a stand-alone processor.
    GuaranteedOnly,
}

impl std::fmt::Display for PrefetchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrefetchPolicy::TruePrefetch => f.write_str("true-prefetch"),
            PrefetchPolicy::GuaranteedOnly => f.write_str("guaranteed-only"),
        }
    }
}

/// Configuration of the PIPE fetch unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeFetchConfig {
    /// Instruction cache geometry.
    pub cache: CacheConfig,
    /// Instruction queue capacity in bytes (a cache line in the real chip;
    /// Table II also evaluates a 16-byte IQ with 32-byte lines).
    pub iq_bytes: u32,
    /// Instruction queue buffer capacity in bytes.
    pub iqb_bytes: u32,
    /// Off-chip prefetch gating.
    pub policy: PrefetchPolicy,
    /// When `true`, off-chip fetches request only the needed tail of a
    /// line (`[needed parcel, line end)`) instead of the whole aligned
    /// line; the sub-block valid bits track the partial fill. A design
    /// study beyond the paper (which always fetches whole lines).
    pub partial_lines: bool,
}

impl PipeFetchConfig {
    /// A Table II configuration: cache size, line size, IQ and IQB sizes,
    /// with the paper's true-prefetch policy and whole-line fetches.
    pub fn table2(cache_bytes: u32, line_bytes: u32, iq_bytes: u32, iqb_bytes: u32) -> Self {
        PipeFetchConfig {
            cache: CacheConfig::new(cache_bytes, line_bytes),
            iq_bytes,
            iqb_bytes,
            policy: PrefetchPolicy::TruePrefetch,
            partial_lines: false,
        }
    }

    /// Validates geometry and queue sizes.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid cache geometry or zero/odd
    /// queue sizes.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.cache.validate()?;
        require_multiple_of("iq_bytes", self.iq_bytes, PARCEL_BYTES)?;
        require_multiple_of("iqb_bytes", self.iqb_bytes, PARCEL_BYTES)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dest {
    /// Demand fill streaming into the IQ (overflow spills into the IQB).
    Iq,
    /// Fill streaming into the IQB (sequential prefetch or branch target).
    Iqb,
    /// Stale fill: only the cache receives the beats.
    CacheOnly,
}

#[derive(Debug, Clone, Copy)]
struct PendingFill {
    tag: u64,
    accepted: bool,
    class: ReqClass,
    line_addr: u32,
    bytes: u32,
    /// Next parcel address expected by the destination queue; beats below
    /// this fill only the cache.
    expect: u32,
    dest: Dest,
}

/// Branch-target preparation between resolution and redirect.
#[derive(Debug, Clone, Copy)]
struct Prep {
    target: u32,
    /// End of the target-stream parcels scheduled so far (in the IQB or a
    /// pending fill).
    end: u32,
}

/// The PIPE fetch unit: instruction cache, IQ, and IQB.
#[derive(Debug)]
pub struct PipeFetch {
    cfg: PipeFetchConfig,
    image: Arc<Vec<u16>>,
    base: u32,
    end: u32,
    cache: InstructionCache,
    iq: ParcelQueue,
    iqb: ParcelQueue,
    /// Next sequential parcel address not yet scheduled into a queue or
    /// pending fill (tail of the committed stream).
    stream_end: u32,
    pendings: Vec<PendingFill>,
    /// Set between a taken resolution and its redirect trigger; while set,
    /// the IQB belongs to the target stream.
    prep: Option<Prep>,
    redirect: Option<(u64, u32)>,
    /// A consumed PBR whose outcome has not yet been reported.
    unresolved_pbr: bool,
    delivered: u64,
    /// Set when the supply pass last ran to a fixpoint: re-running it
    /// before the next external event (consume, beat, branch resolution,
    /// reset) is provably a no-op, so [`run_supply`](Self::run_supply)
    /// skips it. Purely an optimization — behavior is identical.
    settled: bool,
    stats: FetchStats,
}

impl PipeFetch {
    /// Creates a PIPE fetch unit over `program`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`PipeFetchConfig::validate`].
    pub fn new(program: &Program, cfg: PipeFetchConfig) -> PipeFetch {
        if let Err(e) = cfg.validate() {
            panic!("invalid PipeFetchConfig: {e}");
        }
        PipeFetch {
            cfg,
            image: program.image(),
            base: program.base(),
            end: program.end(),
            cache: InstructionCache::new(cfg.cache),
            iq: ParcelQueue::new(cfg.iq_bytes),
            iqb: ParcelQueue::new(cfg.iqb_bytes),
            stream_end: program.entry(),
            pendings: Vec::new(),
            prep: None,
            redirect: None,
            unresolved_pbr: false,
            delivered: 0,
            settled: false,
            stats: FetchStats::default(),
        }
    }

    /// The underlying cache, for inspection in tests.
    pub fn cache(&self) -> &InstructionCache {
        &self.cache
    }

    /// The configuration.
    pub fn config(&self) -> &PipeFetchConfig {
        &self.cfg
    }

    /// Invalidates the cache without touching the queues or stream state
    /// (tests only; `reset` is the real-world entry point).
    #[doc(hidden)]
    pub fn cache_flush_for_test(&mut self) {
        self.cache.flush();
        self.settled = false;
    }

    fn parcel(&self, addr: u32) -> Option<u16> {
        if addr < self.base || addr >= self.end {
            return None;
        }
        Some(self.image[((addr - self.base) / PARCEL_BYTES) as usize])
    }

    fn line_end(&self, addr: u32) -> u32 {
        self.cfg.cache.line_base(addr) + self.cfg.cache.line_bytes
    }

    /// Copies parcels `[from, to)` from the image into `q`, stopping at
    /// queue capacity or image end. Returns the address after the last
    /// parcel copied.
    fn copy_from_image(
        image: &Arc<Vec<u16>>,
        base: u32,
        end: u32,
        q: &mut ParcelQueue,
        from: u32,
        to: u32,
    ) -> u32 {
        let mut a = from;
        while a < to && a < end && q.room() > 0 {
            if a < base {
                break;
            }
            let p = image[((a - base) / PARCEL_BYTES) as usize];
            q.push(a, p);
            a += PARCEL_BYTES;
        }
        a
    }

    fn has_pending(&self, dest: Dest) -> bool {
        self.pendings.iter().any(|p| p.dest == dest)
    }

    /// The `(address, bytes)` of an off-chip fill for the parcel at
    /// `need`: the whole aligned line, or just its tail under
    /// `partial_lines`.
    fn fill_request(&self, need: u32) -> (u32, u32) {
        if self.cfg.partial_lines {
            (need, self.line_end(need) - need)
        } else {
            (self.cfg.cache.line_base(need), self.cfg.cache.line_bytes)
        }
    }

    /// Number of complete instructions currently in the IQ.
    fn iq_complete_instructions(&self) -> u32 {
        let mut i = 0;
        let mut count = 0;
        while let Some(p) = self.iq.peek(i) {
            let len = if pipe_isa::encode::parcel_has_ext(p) {
                2
            } else {
                1
            };
            if self.iq.peek(i + len - 1).is_none() {
                break;
            }
            i += len;
            count += 1;
        }
        count
    }

    /// Starts branch-target preparation once "all the instructions
    /// guaranteed to execute [have passed] into the IQ" (paper §4.2): the
    /// IQB is repurposed for the target stream while the delay slots drain.
    fn try_start_prep(&mut self) {
        let Some((after, target)) = self.redirect else {
            return;
        };
        if self.prep.is_some() {
            return;
        }
        let remaining = (after - self.delivered) as u32;
        if u64::from(self.iq_complete_instructions()) < u64::from(remaining) {
            return; // delay slots still arriving on the sequential path
        }

        // Discard the sequential IQB contents (beyond the redirect point)
        // and retarget in-flight IQB fills at the cache only.
        self.stats.flushed_parcels += self.iqb.len() as u64;
        self.iqb.restart(target);
        for p in &mut self.pendings {
            if p.dest == Dest::Iqb {
                p.dest = Dest::CacheOnly;
                self.stats.wasted_requests += 1;
            }
        }

        // Begin fetching the target line (cache or off-chip).
        let mut prep = Prep {
            target,
            end: target,
        };
        if target >= self.base && target < self.end {
            let chunk_end = self.line_end(target).min(self.end);
            if self.cache.contains(target, chunk_end - target) {
                self.stats.cache_hits += 1;
                prep.end = Self::copy_from_image(
                    &self.image,
                    self.base,
                    self.end,
                    &mut self.iqb,
                    target,
                    chunk_end,
                );
            } else {
                self.stats.cache_misses += 1;
                // The branch has resolved taken: the target is guaranteed,
                // so this is a demand fetch, not a prefetch.
                let (line_addr, bytes) = self.fill_request(target);
                self.pendings.push(PendingFill {
                    tag: 0,
                    accepted: false,
                    class: ReqClass::IFetch,
                    line_addr,
                    bytes,
                    expect: target,
                    dest: Dest::Iqb,
                });
                prep.end = self.line_end(target);
            }
        }
        self.prep = Some(prep);
    }

    /// Schedules supply for the IQ: transfer from IQB, copy from cache, or
    /// start a demand line fetch.
    fn supply_iq(&mut self) {
        // Move from the (sequential-stream) IQB first.
        if self.prep.is_none() && !self.iqb.is_empty() {
            let room = self.iq.room();
            self.iq.take_from(&mut self.iqb, room);
            if !self.iq.needs_refill() {
                return;
            }
        }
        if !self.iq.needs_refill() {
            return;
        }
        // While the IQB is preparing the branch target, the delay slots are
        // already in the IQ (prep precondition): no sequential refill.
        if self.prep.is_some() {
            return;
        }
        // A fill already streaming toward the IQ (or into the sequential
        // IQB) will deliver the parcels we need.
        if self.has_pending(Dest::Iq) || self.has_pending(Dest::Iqb) {
            return;
        }
        // The stream front is `stream_end` (nothing scheduled beyond the
        // queues). Past the image end there is nothing to fetch.
        let need = self.stream_end;
        if need >= self.end || need < self.base {
            return;
        }
        let chunk_end = self.line_end(need).min(self.end);
        if self.cache.contains(need, chunk_end - need) {
            self.stats.cache_hits += 1;
            self.stream_end = Self::copy_from_image(
                &self.image,
                self.base,
                self.end,
                &mut self.iq,
                need,
                chunk_end,
            );
        } else {
            self.stats.cache_misses += 1;
            let (line_addr, bytes) = self.fill_request(need);
            self.pendings.push(PendingFill {
                tag: 0,
                accepted: false,
                class: ReqClass::IFetch,
                line_addr,
                bytes,
                expect: need,
                dest: Dest::Iq,
            });
            self.stream_end = self.line_end(need);
        }
    }

    /// Schedules the IQB's next-sequential-line prefetch.
    fn supply_iqb(&mut self) {
        if self.prep.is_some() || self.redirect.is_some() {
            return; // the IQB belongs to (or will belong to) the target
        }
        if !self.iqb.is_empty() || self.has_pending(Dest::Iqb) || self.has_pending(Dest::Iq) {
            return;
        }
        let need = self.stream_end;
        if need >= self.end || need < self.base {
            return;
        }
        let chunk_end = self.line_end(need).min(self.end);
        if self.cache.contains(need, chunk_end - need) {
            self.stats.cache_hits += 1;
            self.stream_end = Self::copy_from_image(
                &self.image,
                self.base,
                self.end,
                &mut self.iqb,
                need,
                chunk_end,
            );
        } else {
            self.stats.cache_misses += 1;
            // Off-chip prefetch: gated under the guaranteed-only policy by
            // the single-bit branch scan of the IQ and any PBR in flight.
            if self.cfg.policy == PrefetchPolicy::GuaranteedOnly
                && (self.unresolved_pbr || self.iq.contains_branch())
            {
                return;
            }
            let (line_addr, bytes) = self.fill_request(need);
            self.pendings.push(PendingFill {
                tag: 0,
                accepted: false,
                class: ReqClass::IPrefetch,
                line_addr,
                bytes,
                expect: need,
                dest: Dest::Iqb,
            });
            self.stream_end = self.line_end(need);
        }
    }

    /// Fingerprint of everything the supply pass can mutate. Equal stamps
    /// before and after a pass mean it reached a fixpoint: since the pass
    /// is a pure function of engine state, it stays a no-op until the next
    /// external event. The statistics counters are monotonic, so their sum
    /// detects paths that mutate nothing else (the guaranteed-only probe
    /// counts a cache miss every cycle it stays blocked).
    #[allow(clippy::type_complexity)]
    fn supply_stamp(
        &self,
    ) -> (
        usize,
        u32,
        usize,
        u32,
        u32,
        usize,
        Option<(u64, u32)>,
        Option<(u32, u32)>,
        u64,
    ) {
        (
            self.iq.len(),
            self.iq.end_addr(),
            self.iqb.len(),
            self.iqb.end_addr(),
            self.stream_end,
            self.pendings.len(),
            self.redirect,
            self.prep.map(|p| (p.target, p.end)),
            self.stats.cache_hits
                + self.stats.cache_misses
                + self.stats.wasted_requests
                + self.stats.flushed_parcels
                + self.stats.redirects,
        )
    }

    /// Runs the trigger/prep/supply pass to its next step, skipping it
    /// entirely while the engine is settled (the previous pass changed
    /// nothing and no external event has occurred since).
    fn run_supply(&mut self) {
        if self.settled {
            return;
        }
        let before = self.supply_stamp();
        self.maybe_trigger();
        self.try_start_prep();
        self.supply_iq();
        self.supply_iqb();
        self.settled = self.supply_stamp() == before;
    }

    fn maybe_trigger(&mut self) {
        let Some((after, target)) = self.redirect else {
            return;
        };
        if self.delivered != after {
            return;
        }
        self.redirect = None;
        self.stats.redirects += 1;
        self.stats.flushed_parcels += self.iq.len() as u64;
        self.iq.restart(target);
        // Any fill still heading for the IQ carries dead sequential-path
        // parcels: keep filling the cache only.
        for p in &mut self.pendings {
            if p.dest == Dest::Iq {
                p.dest = Dest::CacheOnly;
                self.stats.wasted_requests += 1;
            }
        }
        match self.prep.take() {
            Some(prep) => {
                debug_assert_eq!(prep.target, target);
                // The IQB holds (or is receiving) the target stream; it now
                // becomes the sequential stream.
                self.stream_end = prep.end;
            }
            None => {
                // No preparation happened (e.g. zero-delay resolve in the
                // same call); restart cleanly at the target.
                self.stats.flushed_parcels += self.iqb.len() as u64;
                self.iqb.restart(target);
                for p in &mut self.pendings {
                    if p.dest == Dest::Iqb {
                        p.dest = Dest::CacheOnly;
                        self.stats.wasted_requests += 1;
                    }
                }
                self.stream_end = target;
            }
        }
    }
}

impl FetchEngine for PipeFetch {
    fn reset(&mut self, pc: u32) {
        self.cache.flush();
        self.iq.restart(pc);
        self.iqb.restart(pc);
        self.stream_end = pc;
        self.pendings.clear();
        self.prep = None;
        self.redirect = None;
        self.unresolved_pbr = false;
        self.delivered = 0;
        self.settled = false;
    }

    fn offer_requests(&mut self, mem: &mut MemorySystem) {
        // Run the supply logic here as well as in `advance` so that a fill
        // decided this cycle is offered this cycle (the logic is idempotent
        // — guarded by queue state and pending fills).
        self.run_supply();

        if self.pendings.is_empty() {
            return;
        }
        let mut offered_demand = false;
        let mut offered_prefetch = false;
        for p in &mut self.pendings {
            if p.accepted {
                continue;
            }
            let slot = match p.class {
                ReqClass::IFetch => &mut offered_demand,
                _ => &mut offered_prefetch,
            };
            if *slot {
                continue; // one offer per port per cycle
            }
            *slot = true;
            if p.tag == 0 {
                p.tag = mem.new_tag();
            }
            mem.offer(MemRequest::load(p.class, p.line_addr, p.bytes, p.tag));
        }
    }

    fn on_accepted(&mut self, tag: u64) {
        self.settled = false;
        for p in &mut self.pendings {
            if p.tag == tag && !p.accepted {
                p.accepted = true;
                match p.class {
                    ReqClass::IFetch => self.stats.demand_requests += 1,
                    _ => self.stats.prefetch_requests += 1,
                }
                self.stats.bytes_requested += u64::from(p.bytes);
                return;
            }
        }
    }

    fn on_beat(&mut self, beat: &Beat) {
        self.settled = false;
        debug_assert!(matches!(
            beat.source,
            BeatSource::IFetch | BeatSource::IPrefetch
        ));
        let Some(idx) = self
            .pendings
            .iter()
            .position(|p| p.tag == beat.tag && p.accepted)
        else {
            return;
        };
        self.cache.fill(beat.addr, beat.bytes);

        // Queue the parcels at/after the expected address.
        let mut p = self.pendings[idx];
        let beat_end = beat.addr + beat.bytes;
        let mut a = p.expect.max(beat.addr);
        while a < beat_end && p.dest != Dest::CacheOnly {
            let parcel = self.parcel(a);
            let q = match p.dest {
                Dest::Iq => {
                    if self.prep.is_none() && !self.iqb.is_empty() {
                        // This fill already spilled into the IQB: keep the
                        // stream contiguous there (pushing back into the
                        // IQ would leave a gap between the queues).
                        if self.iqb.room() > 0 {
                            &mut self.iqb
                        } else {
                            break;
                        }
                    } else if self.iq.room() > 0 {
                        &mut self.iq
                    } else if self.prep.is_none() && self.iqb.room() > 0 {
                        // Demand line larger than the IQ: spill the excess
                        // into the sequential IQB (the 16-32 configuration).
                        &mut self.iqb
                    } else {
                        break;
                    }
                }
                Dest::Iqb => {
                    if self.iqb.room() > 0 {
                        &mut self.iqb
                    } else {
                        break;
                    }
                }
                Dest::CacheOnly => unreachable!(),
            };
            if let Some(parcel) = parcel {
                q.push(a, parcel);
            }
            a += PARCEL_BYTES;
            p.expect = a;
        }
        if a < beat_end && p.dest != Dest::CacheOnly {
            // Overflow: the rest of this line cannot be queued. It stays in
            // the cache; rewind the scheduled stream so a later refill
            // re-reads it from there.
            match (p.dest, self.prep.as_mut()) {
                (Dest::Iqb, Some(prep)) => prep.end = a,
                _ => self.stream_end = a,
            }
            p.dest = Dest::CacheOnly;
        }
        self.pendings[idx] = p;
        if beat.last {
            self.pendings.remove(idx);
        }
    }

    fn advance(&mut self) {
        self.run_supply();
    }

    fn peek(&self) -> Option<(u16, Option<u16>)> {
        self.iq.peek_instruction()
    }

    fn head_addr(&self) -> Option<u32> {
        (!self.iq.is_empty()).then(|| self.iq.head_addr())
    }

    fn peek_index(&self) -> Option<usize> {
        // The IQ is filled from the image, so its head address indexes the
        // image directly; gate on a complete instruction like `peek`.
        self.iq.peek_instruction()?;
        Some(((self.iq.head_addr() - self.base) / PARCEL_BYTES) as usize)
    }

    fn consume(&mut self) {
        self.settled = false;
        let (first, second) = self.peek().expect("consume without available instruction");
        self.iq.pop();
        if second.is_some() {
            self.iq.pop();
        }
        if parcel_is_branch(first) {
            self.unresolved_pbr = true;
        }
        self.delivered += 1;
        self.stats.instructions_delivered += 1;
        self.maybe_trigger();
        self.try_start_prep();
    }

    fn resolve_branch(&mut self, taken: bool, remaining: u32, target: u32) {
        self.settled = false;
        self.unresolved_pbr = false;
        if !taken {
            return;
        }
        self.redirect = Some((self.delivered + u64::from(remaining), target));
        // Target preparation starts (in `try_start_prep`) once the delay
        // slots have all passed into the IQ; a zero-delay resolve triggers
        // the redirect immediately.
        self.try_start_prep();
        self.maybe_trigger();
    }

    fn has_outstanding(&self) -> bool {
        !self.pendings.is_empty()
    }

    fn quiescence(&self) -> Option<u32> {
        // `supply_iq` transfers IQB→IQ whenever the sequential IQB holds
        // parcels and the IQ has room.
        if self.prep.is_none() && !self.iqb.is_empty() && self.iq.room() > 0 {
            return None;
        }
        // `supply_iq` refills a starved IQ (cache copy or new demand fill)
        // unless preparation or an in-flight fill blocks it, or the stream
        // front is outside the image.
        if self.iq.peek_instruction().is_none() {
            let blocked = self.prep.is_some()
                || self.has_pending(Dest::Iq)
                || self.has_pending(Dest::Iqb)
                || self.stream_end >= self.end
                || self.stream_end < self.base;
            if !blocked {
                return None;
            }
        }
        // `supply_iqb` prefetches (and counts a probe even when the
        // guaranteed-only gate then blocks the request) unless blocked.
        let iqb_blocked = self.prep.is_some()
            || self.redirect.is_some()
            || !self.iqb.is_empty()
            || self.has_pending(Dest::Iqb)
            || self.has_pending(Dest::Iq)
            || self.stream_end >= self.end
            || self.stream_end < self.base;
        if !iqb_blocked {
            return None;
        }
        // `try_start_prep` and `maybe_trigger` ran this cycle and depend
        // only on `delivered` and IQ contents, both constant while nothing
        // issues: if they could fire they already have.
        // The offer loop is then a pure re-offer, one per class port.
        let mut n = 0u32;
        let mut demand = false;
        let mut prefetch = false;
        for p in &self.pendings {
            if p.accepted {
                continue;
            }
            let slot = if p.class == ReqClass::IFetch {
                &mut demand
            } else {
                &mut prefetch
            };
            if *slot {
                continue;
            }
            *slot = true;
            if p.tag == 0 {
                return None; // first offer still to come: assigns a tag
            }
            n += 1;
        }
        Some(n)
    }

    fn stats(&self) -> &FetchStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "pipe"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipe_isa::{Assembler, InstrFormat, Program};
    use pipe_mem::MemConfig;

    fn program() -> Program {
        Assembler::new(InstrFormat::Fixed32)
            .assemble(
                "lim r1, 3\nlbr b0, top\ntop: subi r1, r1, 1\nnop\nnop\npbr.nez b0, r1, 2\nnop\nnop\nhalt\n",
            )
            .unwrap()
    }

    fn mem(access: u32, in_bus: u32) -> MemorySystem {
        MemorySystem::new(MemConfig {
            access_cycles: access,
            in_bus_bytes: in_bus,
            ..MemConfig::default()
        })
    }

    fn pipe(p: &Program, cache: u32, line: u32, iq: u32, iqb: u32) -> PipeFetch {
        PipeFetch::new(p, PipeFetchConfig::table2(cache, line, iq, iqb))
    }

    /// One full engine cycle; returns `true` if an instruction was consumed.
    fn cycle(f: &mut PipeFetch, mem: &mut MemorySystem) -> bool {
        f.offer_requests(mem);
        let out = mem.tick();
        if let Some(tag) = out.accepted {
            f.on_accepted(tag);
        }
        if let Some(beat) = &out.beats {
            if matches!(beat.source, BeatSource::IFetch | BeatSource::IPrefetch) {
                f.on_beat(beat);
            }
        }
        f.advance();
        if f.peek().is_some() {
            f.consume();
            true
        } else {
            false
        }
    }

    #[test]
    fn cold_start_fetches_line_and_prefetches_next() {
        let p = program();
        let mut f = pipe(&p, 64, 16, 16, 16);
        let mut m = mem(1, 4);
        let mut consumed = 0;
        for _ in 0..20 {
            if cycle(&mut f, &mut m) {
                consumed += 1;
            }
        }
        assert!(consumed > 0);
        assert!(f.stats().demand_requests >= 1);
        assert!(f.stats().prefetch_requests >= 1, "{:?}", f.stats());
        // The fetched lines landed in the cache.
        assert!(f.cache().valid_subblocks() > 0);
    }

    #[test]
    fn streaming_supplies_before_line_completes() {
        // 16-byte line over a 4-byte bus takes 4 beats; the first
        // instruction must be consumable before the last beat.
        let p = program();
        let mut f = pipe(&p, 64, 16, 16, 16);
        let mut m = mem(1, 4);
        // Cycle 0: request offered+accepted. Cycle 1: first beat + consume.
        assert!(!cycle(&mut f, &mut m));
        assert!(cycle(&mut f, &mut m), "first beat already consumable");
        assert!(f.has_outstanding(), "line still streaming");
    }

    #[test]
    fn warm_loop_runs_without_memory_requests() {
        let p = program();
        let top = p.symbols()["top"];
        let mut f = pipe(&p, 64, 16, 16, 16);
        let mut m = mem(6, 4);
        // Warm up: run until the loop body is cached (first iteration).
        let mut issued = 0;
        for _ in 0..200 {
            if cycle(&mut f, &mut m) {
                issued += 1;
            }
            if issued == 6 {
                break; // consumed through first pbr's delay slots
            }
        }
        let reqs_before = f.stats().total_requests();
        // Simulate a taken branch back to `top`; everything is now cached.
        f.resolve_branch(true, 0, top);
        for _ in 0..12 {
            cycle(&mut f, &mut m);
        }
        // Loop body is 6 instructions and fits in cache: no new demand
        // fetches beyond what straddles the image tail prefetch.
        let new_demand = f.stats().demand_requests;
        let _ = reqs_before;
        assert!(new_demand <= f.stats().demand_requests, "sanity");
        assert!(f.stats().redirects >= 1);
    }

    #[test]
    fn taken_branch_with_cached_target_has_no_gap() {
        let p = program();
        let top = p.symbols()["top"];
        let mut f = pipe(&p, 64, 16, 16, 16);
        // Pre-warm everything.
        let mut m = mem(1, 8);
        let mut issued = 0;
        while issued < 4 {
            if cycle(&mut f, &mut m) {
                issued += 1;
            }
        }
        // Resolve taken with 0 remaining: trigger immediate, target cached.
        f.resolve_branch(true, 0, top);
        // Drain memory side, then the very next cycle must supply.
        assert!(cycle(&mut f, &mut m), "no bubble on cached target");
    }

    #[test]
    fn guaranteed_policy_blocks_speculative_offchip_prefetch() {
        let src = "lbr b0, top\ntop: nop\nnop\npbr.nez b0, r1, 1\nnop\nhalt\n";
        let p = Assembler::new(InstrFormat::Fixed32).assemble(src).unwrap();
        let mut cfg = PipeFetchConfig::table2(64, 8, 8, 8);
        cfg.policy = PrefetchPolicy::GuaranteedOnly;
        let mut f = PipeFetch::new(&p, cfg);
        let mut m = mem(1, 8);
        // Run until the pbr (instruction 4 of 6) has been *consumed* but
        // not resolved; with 8-byte lines the pbr sits in the IQ quickly.
        let mut issued = 0;
        for _ in 0..30 {
            if cycle(&mut f, &mut m) {
                issued += 1;
            }
            if issued == 4 {
                break;
            }
        }
        assert!(f.unresolved_pbr, "pbr consumed, unresolved");
        let prefetches_at_pbr = f.stats().prefetch_requests;
        // While unresolved, no *new* off-chip prefetch may start.
        for _ in 0..5 {
            f.offer_requests(&mut m);
            m.tick();
            f.advance();
        }
        assert_eq!(f.stats().prefetch_requests, prefetches_at_pbr);
    }

    #[test]
    fn true_prefetch_policy_keeps_prefetching_past_branches() {
        let src = "lbr b0, top\ntop: nop\nnop\npbr.nez b0, r1, 1\nnop\nhalt\n";
        let p = Assembler::new(InstrFormat::Fixed32).assemble(src).unwrap();
        let f_cfg = PipeFetchConfig::table2(64, 8, 8, 8);
        assert_eq!(f_cfg.policy, PrefetchPolicy::TruePrefetch);
        let mut f = PipeFetch::new(&p, f_cfg);
        let mut m = mem(1, 8);
        let mut issued = 0;
        for _ in 0..40 {
            if cycle(&mut f, &mut m) {
                issued += 1;
            }
            if issued == 5 {
                break;
            }
        }
        // Speculation continued past the unresolved branch.
        assert!(f.stats().prefetch_requests >= 1);
    }

    #[test]
    fn redirect_flushes_wrong_path() {
        let p = program();
        let mut f = pipe(&p, 64, 16, 16, 16);
        let mut m = mem(1, 8);
        let mut issued = 0;
        while issued < 2 {
            if cycle(&mut f, &mut m) {
                issued += 1;
            }
        }
        // Branch to halt (skip everything).
        let halt_addr = p.end() - 4;
        f.resolve_branch(true, 0, halt_addr);
        for _ in 0..10 {
            f.offer_requests(&mut m);
            let out = m.tick();
            if let Some(t) = out.accepted {
                f.on_accepted(t);
            }
            if let Some(b) = &out.beats {
                if matches!(b.source, BeatSource::IFetch | BeatSource::IPrefetch) {
                    f.on_beat(b);
                }
            }
            f.advance();
            if f.peek().is_some() {
                break;
            }
        }
        let (first, second) = f.peek().expect("halt reachable");
        let instr = pipe_isa::decode(first, second).unwrap();
        assert_eq!(instr, pipe_isa::Instruction::Halt);
        assert_eq!(f.stats().redirects, 1);
    }

    #[test]
    fn validate_rejects_bad_queues() {
        let mut cfg = PipeFetchConfig::table2(64, 16, 16, 16);
        cfg.iq_bytes = 0;
        assert!(cfg.validate().is_err());
        cfg.iq_bytes = 3;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn partial_lines_fetch_only_the_tail() {
        // A redirect to the middle of a line: whole-line mode fetches the
        // full 16 bytes; partial mode only the needed tail.
        let p = program();
        let mid_line_target = 0x8; // inside line [0x0, 0x10)
        for (partial, expect_bytes) in [(false, 16u64), (true, 8)] {
            let mut cfg = PipeFetchConfig::table2(64, 16, 16, 16);
            cfg.partial_lines = partial;
            let mut f = PipeFetch::new(&p, cfg);
            let mut m = mem(1, 8);
            // Consume a couple of instructions to establish a stream.
            let mut issued = 0;
            while issued < 2 {
                if cycle(&mut f, &mut m) {
                    issued += 1;
                }
            }
            let before = f.stats().bytes_requested;
            // Evict nothing; target line 0 is cached from startup, so use
            // a fresh engine state: flush the cache to force off-chip.
            f.cache_flush_for_test();
            f.resolve_branch(true, 0, mid_line_target);
            for _ in 0..10 {
                cycle(&mut f, &mut m);
            }
            let fetched = f.stats().bytes_requested - before;
            assert!(
                fetched >= expect_bytes && fetched.is_multiple_of(expect_bytes),
                "partial={partial}: fetched {fetched}, expected multiples of {expect_bytes}"
            );
        }
    }

    #[test]
    fn spill_resumed_consumption_stays_contiguous() {
        // 16-32 configuration, narrow bus: stall the decoder while a
        // 32-byte demand line streams in (IQ fills, excess spills to the
        // IQB), then resume consumption mid-line. Later beats must keep
        // appending to the IQB, not jump back into the IQ.
        let src = "nop\nnop\nnop\nnop\nnop\nnop\nnop\nnop\nnop\nnop\nnop\nhalt\n";
        let p = Assembler::new(InstrFormat::Fixed32).assemble(src).unwrap();
        let mut f = pipe(&p, 64, 32, 16, 32);
        let mut m = mem(1, 4); // 32-byte line = 8 beats
                               // Stream without consuming: the IQ (8 parcels) fills, the rest
                               // spills into the IQB.
        for _ in 0..7 {
            f.offer_requests(&mut m);
            let out = m.tick();
            if let Some(t) = out.accepted {
                f.on_accepted(t);
            }
            if let Some(b) = &out.beats {
                if matches!(b.source, BeatSource::IFetch | BeatSource::IPrefetch) {
                    f.on_beat(b);
                }
            }
            f.advance();
        }
        // Now consume while the line keeps streaming.
        let mut consumed = 0;
        for _ in 0..60 {
            if cycle(&mut f, &mut m) {
                consumed += 1;
            }
            if consumed == 12 {
                break;
            }
        }
        assert_eq!(consumed, 12, "every instruction delivered, in order");
    }

    #[test]
    fn mixed_format_straddling_line_boundary() {
        // Mixed format: a 4-byte instruction can straddle an 8-byte line.
        let src = "nop\nnop\nnop\nlim r1, 7\nsubi r1, r1, 3\nhalt\n";
        let p = Assembler::new(InstrFormat::Mixed).assemble(src).unwrap();
        let mut f = pipe(&p, 32, 8, 8, 8);
        let mut m = mem(2, 4);
        let mut consumed = 0;
        for _ in 0..100 {
            if cycle(&mut f, &mut m) {
                consumed += 1;
            }
            if consumed == 6 {
                break;
            }
        }
        assert_eq!(consumed, 6, "all mixed-format instructions flowed through");
    }

    #[test]
    fn iq_smaller_than_line_spills_into_iqb() {
        // The 16-32 configuration: 32-byte lines, 16-byte IQ, 32-byte IQB.
        let p = program();
        let mut f = pipe(&p, 64, 32, 16, 32);
        let mut m = mem(1, 8);
        let mut consumed = 0;
        for _ in 0..40 {
            if cycle(&mut f, &mut m) {
                consumed += 1;
            }
        }
        assert!(
            consumed >= 8,
            "all instructions flowed through, got {consumed}"
        );
    }
}
