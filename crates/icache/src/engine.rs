//! The interface between the processor core and an instruction-fetch
//! engine.

use pipe_mem::{Beat, MemorySystem};

use crate::stats::FetchStats;

/// An instruction-fetch front-end driven once per cycle by the processor.
///
/// ## Per-cycle protocol
///
/// The processor owns the [`MemorySystem`] and calls, in order:
///
/// 1. [`offer_requests`](FetchEngine::offer_requests) — the engine offers
///    its demand fetch and/or prefetch for this cycle's arbitration.
/// 2. `mem.tick()` (done by the processor).
/// 3. [`on_accepted`](FetchEngine::on_accepted) for each accepted tag
///    (engines ignore tags that are not theirs), then
///    [`on_beat`](FetchEngine::on_beat) for each instruction-class beat.
/// 4. [`advance`](FetchEngine::advance) — internal moves: queue transfers,
///    cache-hit fills, redirect triggering.
/// 5. Decode: [`peek`](FetchEngine::peek) /
///    [`consume`](FetchEngine::consume), plus
///    [`resolve_branch`](FetchEngine::resolve_branch) when a
///    prepare-to-branch leaves execution.
///
/// Engines deliver instructions in *stream order*: sequential flow,
/// altered only by `resolve_branch(taken = true, ..)`, which schedules a
/// redirect after the branch's remaining delay-slot instructions.
pub trait FetchEngine {
    /// Resets the engine to begin fetching at byte address `pc`.
    fn reset(&mut self, pc: u32);

    /// Offers this cycle's memory requests (if any) for arbitration.
    fn offer_requests(&mut self, mem: &mut MemorySystem);

    /// Notifies the engine that the request with `tag` was accepted.
    /// Unknown tags must be ignored.
    fn on_accepted(&mut self, tag: u64);

    /// Routes an instruction-class input-bus beat to the engine. Beats for
    /// stale (redirected-past) requests still fill the cache but are not
    /// queued.
    fn on_beat(&mut self, beat: &Beat);

    /// Performs the engine's internal cycle work after memory activity:
    /// IQB→IQ transfer, cache-hit fills, pending-redirect triggering.
    fn advance(&mut self);

    /// Returns the complete instruction at the head of the stream, if
    /// available this cycle: `(first_parcel, immediate_parcel)`.
    fn peek(&self) -> Option<(u16, Option<u16>)>;

    /// Byte address of the instruction [`peek`](FetchEngine::peek) would
    /// return, when known. Used for tracing and profiling only.
    fn head_addr(&self) -> Option<u32> {
        None
    }

    /// Image parcel index of the instruction [`peek`](FetchEngine::peek)
    /// would return: `Some(i)` means the parcels `peek` yields are
    /// exactly `image[i]` (and `image[i + 1]` for the optional second
    /// parcel), so a predecoded lookup at `i` is equivalent to decoding
    /// them. Must return `None` whenever `peek` returns `None`, and may
    /// return `None` for engines not backed by the program image (e.g.
    /// trace replay) — callers then fall back to decoding `peek`'s raw
    /// parcels.
    fn peek_index(&self) -> Option<usize> {
        None
    }

    /// Consumes the instruction returned by [`peek`](FetchEngine::peek).
    ///
    /// # Panics
    ///
    /// Implementations may panic if called when `peek` returns `None`.
    fn consume(&mut self);

    /// Reports the outcome of a prepare-to-branch that has just resolved in
    /// execution. `remaining` is the number of delay-slot instructions not
    /// yet consumed; after consuming that many more instructions the stream
    /// continues at `target` (byte address) when `taken`, or sequentially
    /// when not.
    ///
    /// A taken resolution lets the PIPE engine begin filling the IQB from
    /// the target immediately, while the delay slots drain — the paper's
    /// key mechanism for gap-free taken branches.
    fn resolve_branch(&mut self, taken: bool, remaining: u32, target: u32);

    /// Returns `true` while the engine has requests in flight (used to
    /// drain the simulation cleanly at halt).
    fn has_outstanding(&self) -> bool;

    /// Reports whether the engine is *quiescent*: `Some(n)` promises that,
    /// as long as no acceptances or beats arrive, every subsequent
    /// [`offer_requests`](FetchEngine::offer_requests) +
    /// [`advance`](FetchEngine::advance) cycle is a pure re-offer of
    /// exactly `n` memory-port offers (same request, same class) with no
    /// other observable state change — no statistics updates, no queue
    /// movement, no new requests, no redirect firing. `None` means the
    /// engine cannot make that promise this cycle.
    ///
    /// The batched simulation kernel uses this to fast-forward stalled
    /// lanes over provably-idle windows; a conservative `None` only delays
    /// the window by a cycle and never affects correctness. Must be
    /// queried *after* the cycle's `offer_requests`/`advance` have run.
    fn quiescence(&self) -> Option<u32> {
        None
    }

    /// The engine's statistics.
    fn stats(&self) -> &FetchStats;

    /// A short human-readable name ("conventional", "pipe", ...).
    fn name(&self) -> &'static str;
}
