//! Fetch-engine statistics.

use std::fmt;

/// Counters accumulated by a fetch engine over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Demand instruction-fetch requests sent off-chip.
    pub demand_requests: u64,
    /// Prefetch requests sent off-chip.
    pub prefetch_requests: u64,
    /// Bytes requested off-chip (demand + prefetch).
    pub bytes_requested: u64,
    /// Cache probes that hit.
    pub cache_hits: u64,
    /// Cache probes that missed.
    pub cache_misses: u64,
    /// Instructions handed to the decoder.
    pub instructions_delivered: u64,
    /// Pipeline redirects (taken branches reaching their delay-slot count).
    pub redirects: u64,
    /// Parcels discarded from the queues by redirects (PIPE engine) or
    /// instructions discarded past a redirect (conventional engine).
    pub flushed_parcels: u64,
    /// Off-chip requests whose payload was (at least partly) discarded by a
    /// redirect before use — wasted bus traffic.
    pub wasted_requests: u64,
}

impl FetchStats {
    /// Cache hit rate over all probes, `0.0..=1.0`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Total off-chip instruction requests.
    pub fn total_requests(&self) -> u64 {
        self.demand_requests + self.prefetch_requests
    }
}

impl fmt::Display for FetchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fetch statistics:")?;
        writeln!(f, "  delivered:     {}", self.instructions_delivered)?;
        writeln!(f, "  demand reqs:   {}", self.demand_requests)?;
        writeln!(f, "  prefetch reqs: {}", self.prefetch_requests)?;
        writeln!(f, "  bytes req'd:   {}", self.bytes_requested)?;
        writeln!(
            f,
            "  cache:         {} hits / {} misses ({:.1}%)",
            self.cache_hits,
            self.cache_misses,
            self.hit_rate() * 100.0
        )?;
        writeln!(f, "  redirects:     {}", self.redirects)?;
        write!(f, "  wasted reqs:   {}", self.wasted_requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_zero_probe_safe() {
        assert_eq!(FetchStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn totals() {
        let s = FetchStats {
            demand_requests: 3,
            prefetch_requests: 7,
            cache_hits: 9,
            cache_misses: 1,
            ..FetchStats::default()
        };
        assert_eq!(s.total_requests(), 10);
        assert!((s.hit_rate() - 0.9).abs() < 1e-12);
        assert!(!s.to_string().is_empty());
    }
}
