//! The parcel queues (IQ / IQB) of the PIPE fetch unit.

use std::collections::VecDeque;

use pipe_isa::encode::{parcel_has_ext, parcel_is_branch};
use pipe_isa::PARCEL_BYTES;

/// A bounded FIFO of instruction parcels with address tracking.
///
/// Parcels in the queue are always contiguous in memory: the queue knows
/// the byte address of its head, and every push appends the next sequential
/// parcel. Redirects flush the queue and restart it at the new address.
#[derive(Debug, Clone)]
pub struct ParcelQueue {
    capacity_parcels: usize,
    head_addr: u32,
    parcels: VecDeque<u16>,
}

impl ParcelQueue {
    /// Creates an empty queue holding up to `capacity_bytes` of parcels.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero or odd.
    pub fn new(capacity_bytes: u32) -> ParcelQueue {
        assert!(
            capacity_bytes >= PARCEL_BYTES && capacity_bytes.is_multiple_of(PARCEL_BYTES),
            "queue capacity must be a positive multiple of {PARCEL_BYTES} bytes"
        );
        ParcelQueue {
            capacity_parcels: (capacity_bytes / PARCEL_BYTES) as usize,
            head_addr: 0,
            parcels: VecDeque::with_capacity((capacity_bytes / PARCEL_BYTES) as usize),
        }
    }

    /// Capacity in parcels.
    pub fn capacity(&self) -> usize {
        self.capacity_parcels
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u32 {
        self.capacity_parcels as u32 * PARCEL_BYTES
    }

    /// Parcels currently queued.
    pub fn len(&self) -> usize {
        self.parcels.len()
    }

    /// Returns `true` when no parcels are queued.
    pub fn is_empty(&self) -> bool {
        self.parcels.is_empty()
    }

    /// Free parcel slots.
    pub fn room(&self) -> usize {
        self.capacity_parcels - self.parcels.len()
    }

    /// Byte address of the parcel at the head (meaningful only when
    /// non-empty or just restarted).
    pub fn head_addr(&self) -> u32 {
        self.head_addr
    }

    /// Byte address one past the last queued parcel.
    pub fn end_addr(&self) -> u32 {
        self.head_addr + self.parcels.len() as u32 * PARCEL_BYTES
    }

    /// Empties the queue and restarts it at `addr`.
    pub fn restart(&mut self, addr: u32) {
        self.parcels.clear();
        self.head_addr = addr;
    }

    /// Appends the parcel at `addr`, which must be the current
    /// [`end_addr`](Self::end_addr) (or anything if empty — the queue
    /// restarts there).
    ///
    /// # Panics
    ///
    /// Panics if the queue is full or `addr` breaks contiguity.
    pub fn push(&mut self, addr: u32, parcel: u16) {
        assert!(self.room() > 0, "parcel queue overflow");
        if self.parcels.is_empty() {
            self.head_addr = addr;
        } else {
            assert_eq!(addr, self.end_addr(), "non-contiguous parcel push");
        }
        self.parcels.push_back(parcel);
    }

    /// Pops the head parcel, advancing the head address.
    pub fn pop(&mut self) -> Option<u16> {
        let p = self.parcels.pop_front();
        if p.is_some() {
            self.head_addr += PARCEL_BYTES;
        }
        p
    }

    /// Peeks the parcel `i` entries from the head.
    pub fn peek(&self, i: usize) -> Option<u16> {
        self.parcels.get(i).copied()
    }

    /// Returns the head instruction's parcels if a *complete* instruction
    /// is available: `(first, second)` where `second` is present exactly
    /// when the first parcel's ext bit is set.
    pub fn peek_instruction(&self) -> Option<(u16, Option<u16>)> {
        let first = self.peek(0)?;
        if parcel_has_ext(first) {
            Some((first, Some(self.peek(1)?)))
        } else {
            Some((first, None))
        }
    }

    /// Returns `true` if the queue holds no complete instruction (empty, or
    /// a lone first parcel whose immediate hasn't arrived).
    pub fn needs_refill(&self) -> bool {
        self.peek_instruction().is_none()
    }

    /// Scans the queued parcels for a prepare-to-branch first parcel.
    ///
    /// This is the single-bit scan the PIPE control logic performs to decide
    /// whether the next sequential line is guaranteed to be executed. The
    /// scan walks instruction boundaries so immediate parcels are not
    /// misread as opcodes.
    pub fn contains_branch(&self) -> bool {
        let mut i = 0;
        while let Some(p) = self.peek(i) {
            if parcel_is_branch(p) {
                return true;
            }
            i += if parcel_has_ext(p) { 2 } else { 1 };
        }
        false
    }

    /// Moves up to `max` parcels from `src` into `self`, preserving
    /// contiguity. Returns the number moved.
    pub fn take_from(&mut self, src: &mut ParcelQueue, max: usize) -> usize {
        let n = max.min(self.room()).min(src.len());
        for _ in 0..n {
            let addr = src.head_addr();
            let p = src.pop().expect("length checked");
            self.push(addr, p);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipe_isa::{encode, AluOp, Cond, InstrFormat, Instruction};
    use pipe_isa::{BranchReg, Reg};

    fn push_instr(q: &mut ParcelQueue, addr: u32, i: &Instruction, f: InstrFormat) -> u32 {
        let e = encode(i, f);
        let mut a = addr;
        for &p in e.parcels() {
            q.push(a, p);
            a += PARCEL_BYTES;
        }
        a
    }

    #[test]
    fn push_pop_tracks_addresses() {
        let mut q = ParcelQueue::new(8);
        q.push(0x100, 1);
        q.push(0x102, 2);
        assert_eq!(q.head_addr(), 0x100);
        assert_eq!(q.end_addr(), 0x104);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.head_addr(), 0x102);
    }

    #[test]
    #[should_panic(expected = "non-contiguous")]
    fn non_contiguous_push_panics() {
        let mut q = ParcelQueue::new(8);
        q.push(0x100, 1);
        q.push(0x106, 2);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut q = ParcelQueue::new(4);
        q.push(0, 0);
        q.push(2, 0);
        q.push(4, 0);
    }

    #[test]
    fn restart_resets() {
        let mut q = ParcelQueue::new(8);
        q.push(0x100, 1);
        q.restart(0x200);
        assert!(q.is_empty());
        assert_eq!(q.head_addr(), 0x200);
        q.push(0x200, 9);
        assert_eq!(q.peek(0), Some(9));
    }

    #[test]
    fn peek_instruction_requires_complete() {
        let mut q = ParcelQueue::new(8);
        let lim = Instruction::Lim {
            rd: Reg::new(1),
            imm: 7,
        };
        let e = encode(&lim, InstrFormat::Fixed32);
        q.push(0, e.parcels()[0]);
        assert_eq!(q.peek_instruction(), None, "immediate missing");
        assert!(q.needs_refill());
        q.push(2, e.parcels()[1]);
        let (p0, p1) = q.peek_instruction().unwrap();
        assert_eq!(p0, e.parcels()[0]);
        assert_eq!(p1, Some(e.parcels()[1]));
        assert!(!q.needs_refill());
    }

    #[test]
    fn branch_scan_finds_pbr() {
        let mut q = ParcelQueue::new(16);
        let mut a = 0;
        a = push_instr(&mut q, a, &Instruction::Nop, InstrFormat::Mixed);
        a = push_instr(
            &mut q,
            a,
            &Instruction::Lim {
                rd: Reg::new(1),
                imm: -1, // immediate 0xFFFF has bit 15 set but must not fool the scan
            },
            InstrFormat::Mixed,
        );
        assert!(!q.contains_branch());
        push_instr(
            &mut q,
            a,
            &Instruction::Pbr {
                cond: Cond::Nez,
                br: BranchReg::new(0),
                rs: Reg::new(1),
                delay: 3,
            },
            InstrFormat::Mixed,
        );
        assert!(q.contains_branch());
    }

    #[test]
    fn branch_scan_skips_immediates() {
        // An ALU immediate whose value looks like a branch parcel.
        let mut q = ParcelQueue::new(8);
        push_instr(
            &mut q,
            0,
            &Instruction::AluImm {
                op: AluOp::Add,
                rd: Reg::new(0),
                rs1: Reg::new(0),
                imm: i16::MIN, // 0x8000
            },
            InstrFormat::Fixed32,
        );
        assert!(!q.contains_branch());
    }

    #[test]
    fn take_from_moves_contiguously() {
        let mut src = ParcelQueue::new(8);
        let mut dst = ParcelQueue::new(4);
        for (i, addr) in (0x10u32..0x18).step_by(2).enumerate() {
            src.push(addr, i as u16);
        }
        let moved = dst.take_from(&mut src, 10);
        assert_eq!(moved, 2, "limited by destination room");
        assert_eq!(dst.head_addr(), 0x10);
        assert_eq!(src.head_addr(), 0x14);
        assert_eq!(dst.peek(0), Some(0));
        assert_eq!(dst.peek(1), Some(1));
    }

    #[test]
    fn capacity_reporting() {
        let q = ParcelQueue::new(16);
        assert_eq!(q.capacity(), 8);
        assert_eq!(q.capacity_bytes(), 16);
        assert_eq!(q.room(), 8);
    }
}
