//! A Rau & Rossman-style prefetch-buffer fetch engine.
//!
//! Section 2.1 of the paper opens with Rau & Rossman's study of "Prefetch
//! Buffers in conjunction with an Instruction Buffer": the decoder takes
//! instructions directly out of a bank of sequential prefetch buffers,
//! which the fetch logic keeps as full as the buffer count and memory
//! allow. Their findings, which this engine lets us reproduce:
//!
//! * "a reduction of up to 50 % in average I-Fetch delay can be achieved";
//! * "within certain bounds, better performance can be achieved by using
//!   more buffers", but
//! * "increasing the number of Prefetch Buffers increases memory traffic".
//!
//! Model: `buffers` one-instruction (4-byte) prefetch slots ahead of the
//! decoder, an optional instruction cache probed before going off-chip,
//! and — unlike the conventional engine — up to `buffers` *outstanding*
//! memory requests at once (the point of having several buffers).

use std::collections::VecDeque;
use std::sync::Arc;

use pipe_isa::{Program, PARCEL_BYTES};
use pipe_mem::error::require_at_least;
use pipe_mem::{Beat, BeatSource, ConfigError, MemRequest, MemorySystem, ReqClass};

use crate::cache::{CacheConfig, InstructionCache};
use crate::engine::FetchEngine;
use crate::queue::ParcelQueue;
use crate::stats::FetchStats;

/// Geometry of a [`BufferFetch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferConfig {
    /// Number of 4-byte prefetch buffers (lookahead depth and maximum
    /// outstanding requests).
    pub buffers: u32,
    /// Optional instruction cache probed before fetching off-chip (Rau &
    /// Rossman's "Instruction Buffer").
    pub cache: Option<CacheConfig>,
}

impl BufferConfig {
    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for zero buffers or an invalid cache
    /// geometry.
    pub fn validate(&self) -> Result<(), ConfigError> {
        require_at_least("buffers", u64::from(self.buffers), 1)?;
        if let Some(c) = &self.cache {
            c.validate()?;
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    tag: u64,
    accepted: bool,
    addr: u32,
    bytes: u32,
    /// `false` once a redirect made the fill wrong-path (cache-only).
    live: bool,
}

/// The prefetch-buffer engine. See the [module docs](self).
#[derive(Debug)]
pub struct BufferFetch {
    cfg: BufferConfig,
    image: Arc<Vec<u16>>,
    base: u32,
    end: u32,
    cache: Option<InstructionCache>,
    /// Prefetched instructions awaiting the decoder.
    fq: ParcelQueue,
    stream_end: u32,
    pendings: VecDeque<Pending>,
    redirect: Option<(u64, u32)>,
    delivered: u64,
    stats: FetchStats,
}

impl BufferFetch {
    /// Creates a prefetch-buffer engine over `program`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`BufferConfig::validate`].
    pub fn new(program: &Program, cfg: BufferConfig) -> BufferFetch {
        if let Err(e) = cfg.validate() {
            panic!("invalid BufferConfig: {e}");
        }
        BufferFetch {
            cfg,
            image: program.image(),
            base: program.base(),
            end: program.end(),
            cache: cfg.cache.map(InstructionCache::new),
            fq: ParcelQueue::new(cfg.buffers * 4),
            stream_end: program.entry(),
            pendings: VecDeque::new(),
            redirect: None,
            delivered: 0,
            stats: FetchStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BufferConfig {
        &self.cfg
    }

    fn parcel(&self, addr: u32) -> Option<u16> {
        if addr < self.base || addr >= self.end {
            return None;
        }
        Some(self.image[((addr - self.base) / PARCEL_BYTES) as usize])
    }

    fn maybe_trigger(&mut self) {
        let Some((after, target)) = self.redirect else {
            return;
        };
        if self.delivered != after {
            return;
        }
        self.redirect = None;
        self.stats.redirects += 1;
        self.stats.flushed_parcels += self.fq.len() as u64;
        self.fq.restart(target);
        for p in &mut self.pendings {
            if p.live {
                p.live = false;
                self.stats.wasted_requests += 1;
            }
        }
        self.stream_end = target;
    }

    /// Keeps the buffers full: cache copies are instant; off-chip fills
    /// are limited by the buffer count (outstanding requests). Supply is
    /// strictly in stream order: the cache path may not run ahead of an
    /// off-chip fill still in flight.
    fn supply(&mut self) {
        loop {
            let live_pendings = self.pendings.iter().filter(|p| p.live).count();
            let outstanding_bytes: u32 = self
                .pendings
                .iter()
                .filter(|p| p.live)
                .map(|p| p.bytes)
                .sum();
            if self.stream_end >= self.end || self.stream_end < self.base {
                return;
            }
            let room = (self.fq.room() as u32) * PARCEL_BYTES;
            if room < outstanding_bytes + 4 {
                return; // every free slot already has a fill in flight
            }
            let need = self.stream_end;
            // Probe the optional cache: a hit supplies the buffer at once
            // — but only when no earlier bytes are still in flight, since
            // the queue must stay contiguous.
            if live_pendings == 0 {
                if let Some(cache) = &mut self.cache {
                    if cache.contains(need, 4) {
                        self.stats.cache_hits += 1;
                        for off in [0u32, 2] {
                            if let Some(p) = self.parcel(need + off) {
                                self.fq.push(need + off, p);
                            }
                        }
                        self.stream_end = need + 4;
                        continue;
                    }
                    self.stats.cache_misses += 1;
                }
            }
            // Off-chip: one instruction (4 bytes) per buffer slot.
            if self.pendings.iter().filter(|p| !p.accepted).count() >= 1 {
                return; // one *unaccepted* offer at a time per port
            }
            self.pendings.push_back(Pending {
                tag: 0,
                accepted: false,
                addr: need,
                bytes: 4,
                live: true,
            });
            self.stream_end = need + 4;
            return;
        }
    }
}

impl FetchEngine for BufferFetch {
    fn reset(&mut self, pc: u32) {
        if let Some(c) = &mut self.cache {
            c.flush();
        }
        self.fq.restart(pc);
        self.stream_end = pc;
        self.pendings.clear();
        self.redirect = None;
        self.delivered = 0;
    }

    fn offer_requests(&mut self, mem: &mut MemorySystem) {
        self.maybe_trigger();
        self.supply();
        // Demand class when the decoder is starved, prefetch otherwise.
        let starved = self.fq.needs_refill();
        if let Some(p) = self.pendings.iter_mut().find(|p| !p.accepted) {
            if p.tag == 0 {
                p.tag = mem.new_tag();
            }
            let class = if starved && p.live {
                ReqClass::IFetch
            } else {
                ReqClass::IPrefetch
            };
            mem.offer(MemRequest::load(class, p.addr, p.bytes, p.tag));
        }
    }

    fn on_accepted(&mut self, tag: u64) {
        if let Some(p) = self
            .pendings
            .iter_mut()
            .find(|p| p.tag == tag && !p.accepted)
        {
            p.accepted = true;
            if self.fq.needs_refill() && p.live {
                self.stats.demand_requests += 1;
            } else {
                self.stats.prefetch_requests += 1;
            }
            self.stats.bytes_requested += u64::from(p.bytes);
        }
    }

    fn on_beat(&mut self, beat: &Beat) {
        debug_assert!(matches!(
            beat.source,
            BeatSource::IFetch | BeatSource::IPrefetch
        ));
        let Some(idx) = self.pendings.iter().position(|p| p.tag == beat.tag) else {
            return;
        };
        if let Some(c) = &mut self.cache {
            c.fill(beat.addr, beat.bytes);
        }
        let p = self.pendings[idx];
        if p.live {
            let mut a = beat.addr;
            while a < beat.addr + beat.bytes {
                // Only queue parcels that continue the stream exactly
                // (end_addr equals head_addr when the queue is empty).
                if self.fq.end_addr() == a {
                    if self.fq.room() == 0 {
                        // Should be unreachable: supply() never schedules
                        // more live bytes than the queue has room for.
                        debug_assert!(false, "buffer overflow at {a:#x}");
                        // Recover by re-fetching the remainder later.
                        self.stream_end = self.stream_end.min(a);
                        if let Some(p) = self.pendings.iter_mut().find(|p| p.tag == beat.tag) {
                            p.live = false;
                        }
                        break;
                    }
                    if let Some(parcel) = self.parcel(a) {
                        self.fq.push(a, parcel);
                    }
                } else if self.fq.is_empty() {
                    debug_assert!(
                        false,
                        "live beat {a:#x} does not continue the stream (head {:#x})",
                        self.fq.head_addr()
                    );
                }
                a += PARCEL_BYTES;
            }
        }
        if beat.last {
            self.pendings.remove(idx);
        }
    }

    fn advance(&mut self) {
        self.maybe_trigger();
        self.supply();
    }

    fn peek(&self) -> Option<(u16, Option<u16>)> {
        self.fq.peek_instruction()
    }

    fn head_addr(&self) -> Option<u32> {
        (!self.fq.is_empty()).then(|| self.fq.head_addr())
    }

    fn peek_index(&self) -> Option<usize> {
        // The FQ is filled from the image, so its head address indexes the
        // image directly; gate on a complete instruction like `peek`.
        self.fq.peek_instruction()?;
        Some(((self.fq.head_addr() - self.base) / PARCEL_BYTES) as usize)
    }

    fn consume(&mut self) {
        let (_, second) = self.peek().expect("consume without available instruction");
        self.fq.pop();
        if second.is_some() {
            self.fq.pop();
        }
        self.delivered += 1;
        self.stats.instructions_delivered += 1;
        self.maybe_trigger();
    }

    fn resolve_branch(&mut self, taken: bool, remaining: u32, target: u32) {
        if !taken {
            return;
        }
        self.redirect = Some((self.delivered + u64::from(remaining), target));
        self.maybe_trigger();
    }

    fn has_outstanding(&self) -> bool {
        !self.pendings.is_empty()
    }

    fn stats(&self) -> &FetchStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "prefetch-buffers"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipe_isa::{Assembler, InstrFormat};
    use pipe_mem::MemConfig;

    fn program() -> Program {
        Assembler::new(InstrFormat::Fixed32)
            .assemble("nop\nnop\nnop\nnop\nnop\nnop\nnop\nhalt\n")
            .unwrap()
    }

    fn mem(access: u32, pipelined: bool) -> MemorySystem {
        MemorySystem::new(MemConfig {
            access_cycles: access,
            pipelined,
            in_bus_bytes: 4,
            ..MemConfig::default()
        })
    }

    fn cycle(f: &mut BufferFetch, m: &mut MemorySystem) -> bool {
        f.offer_requests(m);
        let out = m.tick();
        if let Some(t) = out.accepted {
            f.on_accepted(t);
        }
        if let Some(b) = &out.beats {
            if matches!(b.source, BeatSource::IFetch | BeatSource::IPrefetch) {
                f.on_beat(b);
            }
        }
        f.advance();
        if f.peek().is_some() {
            f.consume();
            true
        } else {
            false
        }
    }

    fn run_all(buffers: u32, access: u32, pipelined: bool) -> (u32, u64) {
        let p = program();
        let mut f = BufferFetch::new(
            &p,
            BufferConfig {
                buffers,
                cache: None,
            },
        );
        let mut m = mem(access, pipelined);
        let mut consumed = 0;
        let mut cycles = 0;
        while consumed < 8 && cycles < 500 {
            if cycle(&mut f, &mut m) {
                consumed += 1;
            }
            cycles += 1;
        }
        assert_eq!(consumed, 8, "program completes");
        (cycles, f.stats().bytes_requested)
    }

    #[test]
    fn more_buffers_help_with_pipelined_memory() {
        // Rau & Rossman: more buffers → better performance (multiple
        // outstanding requests hide latency once memory is pipelined).
        let (one, _) = run_all(1, 4, true);
        let (four, _) = run_all(4, 4, true);
        assert!(four < one, "4 buffers {four} !< 1 buffer {one}");
    }

    #[test]
    fn validation() {
        assert!(BufferConfig {
            buffers: 0,
            cache: None
        }
        .validate()
        .is_err());
        assert!(BufferConfig {
            buffers: 4,
            cache: Some(CacheConfig::new(64, 16))
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn cache_hits_supply_instantly() {
        let p = program();
        let mut f = BufferFetch::new(
            &p,
            BufferConfig {
                buffers: 2,
                cache: Some(CacheConfig::new(64, 16)),
            },
        );
        let mut m = mem(6, false);
        // First pass: everything misses and fills the cache.
        let mut consumed = 0;
        for _ in 0..300 {
            if cycle(&mut f, &mut m) {
                consumed += 1;
            }
            if consumed == 8 {
                break;
            }
        }
        assert_eq!(consumed, 8);
        let requests_after_first = f.stats().total_requests();
        // Second pass from the top: all cache hits, no new requests.
        f.reset(0);
        // reset flushes the cache, so re-fill it first.
        // (Use resolve-branch-style restart instead: redirect to 0.)
        let p2 = program();
        let mut f2 = BufferFetch::new(
            &p2,
            BufferConfig {
                buffers: 2,
                cache: Some(CacheConfig::new(64, 16)),
            },
        );
        let mut m2 = mem(6, false);
        let mut consumed2 = 0;
        for _ in 0..300 {
            if cycle(&mut f2, &mut m2) {
                consumed2 += 1;
            }
            if consumed2 == 6 {
                break;
            }
        }
        // Branch back to the start: cached, so no new off-chip requests
        // beyond the in-flight tail.
        f2.resolve_branch(true, 0, 0);
        let before = f2.stats().total_requests();
        let mut consumed3 = 0;
        for _ in 0..100 {
            if cycle(&mut f2, &mut m2) {
                consumed3 += 1;
            }
            if consumed3 == 4 {
                break;
            }
        }
        assert_eq!(consumed3, 4, "re-run from cache");
        assert!(
            f2.stats().cache_hits > 0,
            "cache supplied the revisit: {:?}",
            f2.stats()
        );
        let _ = (requests_after_first, before);
    }
}
