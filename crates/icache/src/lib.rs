//! # pipe-icache
//!
//! On-chip instruction-fetch engines for the PIPE simulation, reproducing
//! the two strategies compared by Farrens & Pleszkun (ISCA 1989):
//!
//! * [`ConventionalFetch`] — a direct-mapped, sub-blocked instruction cache
//!   driven by Hill's *always-prefetch* strategy (§4.1 of the paper): on
//!   every instruction reference, prefetch the next sequential instruction;
//!   memory requests are one instruction at a time and a new one cannot
//!   begin until the previous finishes.
//! * [`PipeFetch`] — the PIPE strategy (§4.2): the same cache plus an
//!   **instruction queue** (IQ) and **instruction queue buffer** (IQB)
//!   between the cache and the decoder. The IQ holds instructions
//!   guaranteed to execute; the IQB prefetches the next sequential line and
//!   receives branch-target lines early, so a resolved branch whose target
//!   is on-chip causes no supply interruption.
//!
//! Both engines implement [`FetchEngine`], the interface `pipe-core`'s
//! processor drives once per cycle. Two further engines round out the
//! design space: [`TibFetch`], the cache-less Target Instruction Buffer
//! approach the paper's §2.1 contrasts against (AMD29000-style), and
//! [`PerfectFetch`] (instant supply, no memory traffic) for functional
//! testing.
//!
//! The cache ([`InstructionCache`]) stores only tags and sub-block valid
//! bits; instruction bytes always come from the immutable program image,
//! which the engines hold a shared handle to.
//!
//! ## Driving an engine directly
//!
//! Engines are usually driven by `pipe-core`'s processor, but can be
//! exercised standalone against a memory system:
//!
//! ```
//! use pipe_icache::{FetchEngine, PipeFetch, PipeFetchConfig};
//! use pipe_isa::{Assembler, InstrFormat};
//! use pipe_mem::{BeatSource, MemConfig, MemorySystem};
//!
//! let program = Assembler::new(InstrFormat::Fixed32)
//!     .assemble("nop\nnop\nhalt\n")
//!     .unwrap();
//! let mut engine = PipeFetch::new(&program, PipeFetchConfig::table2(64, 16, 16, 16));
//! let mut mem = MemorySystem::new(MemConfig::default());
//!
//! let mut delivered = 0;
//! while delivered < 3 {
//!     engine.offer_requests(&mut mem);
//!     let out = mem.tick();
//!     if let Some(tag) = out.accepted {
//!         engine.on_accepted(tag);
//!     }
//!     if let Some(beat) = &out.beats {
//!         if matches!(beat.source, BeatSource::IFetch | BeatSource::IPrefetch) {
//!             engine.on_beat(beat);
//!         }
//!     }
//!     engine.advance();
//!     if engine.peek().is_some() {
//!         engine.consume();
//!         delivered += 1;
//!     }
//! }
//! assert_eq!(engine.stats().instructions_delivered, 3);
//! ```

pub mod buffers;
pub mod builder;
pub mod cache;
pub mod conventional;
pub mod engine;
pub mod perfect;
pub mod pipe_fetch;
pub mod queue;
pub mod replay;
pub mod stats;
pub mod tib;

pub use buffers::{BufferConfig, BufferFetch};
pub use builder::{EngineBuilder, FetchConfig, FetchKind};
pub use cache::{CacheConfig, InstructionCache};
pub use conventional::{ConvPrefetch, ConventionalConfig, ConventionalFetch};
pub use engine::FetchEngine;
pub use perfect::PerfectFetch;
pub use pipe_fetch::{PipeFetch, PipeFetchConfig, PrefetchPolicy};
pub use pipe_mem::ConfigError;
pub use queue::ParcelQueue;
pub use replay::{ReplayBranch, ReplayError, ReplayHarness, ReplayOp, ReplayStats, ReplayStep};
pub use stats::FetchStats;
pub use tib::{TibConfig, TibFetch};
