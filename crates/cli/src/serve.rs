//! `pipe-sim serve` — run the simulation service — and `pipe-sim
//! request` — a loopback client for driving it from scripts and CI.

use std::path::PathBuf;
use std::time::Duration;

use pipe_experiments::{backoff::Retry, BackoffPolicy};
use pipe_server::{http_request, Server, ServerConfig};

/// The usage string for `pipe-sim serve`.
pub const SERVE_USAGE: &str = "\
usage: pipe-sim serve [options]

Serves the simulator over HTTP (std-only; see docs/SERVICE.md):
  POST /v1/simulate     one fetch configuration -> stats JSON
  POST /v1/sweep        a figure-shaped sweep via the sweep engine
  GET  /v1/workloads    resident decoded programs
  GET  /v1/info         version, thread count, store compatibility
  GET  /metrics         Prometheus-style text metrics
  GET  /healthz         liveness
  POST /admin/shutdown  graceful drain and exit

Identical concurrent requests are coalesced onto one simulation, results
are cached in memory and (with --store) in the shared result store, and
a full accept queue answers 503 + Retry-After instead of hanging.

options:
  --addr HOST:PORT     listen address               (default: 127.0.0.1:7878;
                       port 0 picks an ephemeral port)
  --jobs N             worker threads               (default: 4)
  --queue N            accept-queue capacity        (default: 128)
  --sweep-jobs N       worker threads per /v1/sweep run (default: 2)
  --timeout-ms N       per-request result deadline  (default: 30000)
  --store DIR          result-store root (shared with `pipe-sim --sweep`)
  --events DIR         JSONL event log at DIR/events/server.jsonl
  --addr-file FILE     write the bound address to FILE once listening
                       (for scripts using an ephemeral port)
  --inject-delay-ms N  fault injection (testing): stretch every
                       simulation by N ms
";

/// Options for `pipe-sim serve`, parsed from the command line.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The server configuration.
    pub config: ServerConfig,
    /// Write the bound address here once listening.
    pub addr_file: Option<String>,
}

/// Parses `pipe-sim serve` arguments (excluding the subcommand name).
///
/// # Errors
///
/// Returns a user-facing message for unknown flags or missing values.
pub fn parse_serve_args(args: &[String]) -> Result<ServeOptions, String> {
    let mut config = ServerConfig::default();
    let mut addr_file = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                config.addr = it.next().ok_or("--addr needs host:port")?.clone();
            }
            "--jobs" => {
                config.workers = parse_count("--jobs", it.next())?;
            }
            "--queue" => {
                config.queue_capacity = parse_count("--queue", it.next())?;
            }
            "--sweep-jobs" => {
                config.sweep_jobs = parse_count("--sweep-jobs", it.next())?;
            }
            "--timeout-ms" => {
                config.request_timeout =
                    Duration::from_millis(parse_ms("--timeout-ms", it.next())?);
            }
            "--store" => {
                config.store_root =
                    Some(PathBuf::from(it.next().ok_or("--store needs a directory")?));
            }
            "--events" => {
                config.events_root = Some(PathBuf::from(
                    it.next().ok_or("--events needs a directory")?,
                ));
            }
            "--addr-file" => {
                addr_file = Some(it.next().ok_or("--addr-file needs a file")?.clone());
            }
            "--inject-delay-ms" => {
                config.compute_delay =
                    Duration::from_millis(parse_ms("--inject-delay-ms", it.next())?);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(ServeOptions { config, addr_file })
}

fn parse_count(flag: &str, value: Option<&String>) -> Result<usize, String> {
    let v = value.ok_or_else(|| format!("{flag} needs a value"))?;
    match v.parse() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("{flag}: invalid count `{v}`")),
    }
}

fn parse_ms(flag: &str, value: Option<&String>) -> Result<u64, String> {
    let v = value.ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse()
        .map_err(|_| format!("{flag}: invalid milliseconds `{v}`"))
}

/// Runs the service until `POST /admin/shutdown` drains it. Prints the
/// bound address on stdout (and to `--addr-file`) before serving, so
/// scripts using port 0 can find the server race-free.
///
/// # Errors
///
/// Returns a user-facing message if the socket, store, event log, or
/// address file cannot be set up.
pub fn run_serve(opts: &ServeOptions) -> Result<(), String> {
    let server = Server::bind(opts.config.clone())
        .map_err(|e| format!("cannot start server on {}: {e}", opts.config.addr))?;
    let addr = server.local_addr();
    if let Some(path) = &opts.addr_file {
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    println!(
        "pipe-serve listening on {addr} ({} workers, queue {})",
        opts.config.workers, opts.config.queue_capacity
    );
    use std::io::Write;
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| format!("server failed: {e}"))
}

/// The usage string for `pipe-sim request`.
pub const REQUEST_USAGE: &str = "\
usage: pipe-sim request <endpoint> [options]

Performs one HTTP request against a running `pipe-sim serve` instance
and prints the response body (exit 0 on 2xx, 1 otherwise). Endpoints
with a body (--json/--data) are POSTed, as are /v1/simulate, /v1/sweep
and /admin/shutdown; everything else is GET.

examples:
  pipe-sim request /v1/simulate --data '{\"cache\":64}'
  pipe-sim request /v1/sweep --json sweep.json --addr 127.0.0.1:7878
  pipe-sim request /metrics
  pipe-sim request /admin/shutdown

options:
  --addr HOST:PORT     the server                   (default: 127.0.0.1:7878)
  --json FILE          read the request body from FILE
  --data JSON          use JSON as the request body
  --timeout-ms N       client timeout               (default: 30000)
  --include            print the status line and headers before the body
  --retry N            total attempts when the server is unreachable or
                       answers 503/504; a 503's Retry-After header
                       overrides the backoff delay  (default: 1, no retry)
  --backoff-ms N       initial retry delay, doubling per attempt
                       (default: 100)
";

/// Options for `pipe-sim request`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestOptions {
    /// Endpoint path (`/v1/simulate`, `/metrics`, ...).
    pub endpoint: String,
    /// The server address.
    pub addr: String,
    /// Request body (from `--json` or `--data`).
    pub body: Option<String>,
    /// Client timeout.
    pub timeout: Duration,
    /// Print status and headers before the body.
    pub include: bool,
    /// Total attempts for transient failures (1 = no retry).
    pub retry: u32,
    /// Initial retry delay (doubles per attempt).
    pub backoff: Duration,
}

/// Parses `pipe-sim request` arguments (excluding the subcommand name).
///
/// # Errors
///
/// Returns a user-facing message for unknown flags, missing values, an
/// unreadable `--json` file, or a missing endpoint.
pub fn parse_request_args(args: &[String]) -> Result<RequestOptions, String> {
    let mut endpoint = None;
    let mut addr = "127.0.0.1:7878".to_string();
    let mut body = None;
    let mut timeout = Duration::from_secs(30);
    let mut include = false;
    let mut retry = 1u32;
    let mut backoff = Duration::from_millis(100);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs host:port")?.clone(),
            "--json" => {
                let path = it.next().ok_or("--json needs a file")?;
                body = Some(
                    std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?,
                );
            }
            "--data" => body = Some(it.next().ok_or("--data needs a JSON body")?.clone()),
            "--timeout-ms" => timeout = Duration::from_millis(parse_ms("--timeout-ms", it.next())?),
            "--include" => include = true,
            "--retry" => retry = parse_count("--retry", it.next())? as u32,
            "--backoff-ms" => {
                backoff = Duration::from_millis(parse_ms("--backoff-ms", it.next())?);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            path => {
                if endpoint.is_some() {
                    return Err("more than one endpoint".into());
                }
                endpoint = Some(path.to_string());
            }
        }
    }
    let endpoint = endpoint.ok_or("no endpoint (e.g. /v1/simulate)")?;
    let endpoint = if endpoint.starts_with('/') {
        endpoint
    } else {
        format!("/{endpoint}")
    };
    Ok(RequestOptions {
        endpoint,
        addr,
        body,
        timeout,
        include,
        retry,
        backoff,
    })
}

/// Why one attempt of `pipe-sim request` did not return a usable
/// response: a transport failure, or a `503`/`504` worth retrying. The
/// busy case carries the rendered response so an exhausted retry still
/// prints the server's final answer.
enum RequestFail {
    Transport(String),
    Busy {
        rendered: (String, bool),
        retry_after: Option<Duration>,
    },
}

/// Performs the request, retrying transport failures and 503/504 up to
/// `--retry` times with exponential backoff (a `Retry-After` header
/// overrides the delay). Returns the text to print and whether the
/// status was 2xx (the process exit status).
///
/// # Errors
///
/// Returns a user-facing message when the server stays unreachable (or
/// keeps answering non-HTTP) through every attempt.
pub fn run_request(opts: &RequestOptions) -> Result<(String, bool), String> {
    let method = if opts.body.is_some()
        || matches!(
            opts.endpoint.as_str(),
            "/v1/simulate" | "/v1/sweep" | "/admin/shutdown"
        ) {
        "POST"
    } else {
        "GET"
    };
    let result = BackoffPolicy::new(opts.retry, opts.backoff).run(
        |_attempt| {
            let response = http_request(
                &opts.addr,
                method,
                &opts.endpoint,
                opts.body.as_deref(),
                opts.timeout,
            )
            .map_err(|e| RequestFail::Transport(format!("request to {} failed: {e}", opts.addr)))?;
            let rendered = render_response(opts, &response);
            if matches!(response.status, 503 | 504) {
                let retry_after = response
                    .header("retry-after")
                    .and_then(|v| v.trim().parse::<u64>().ok())
                    .map(Duration::from_secs);
                return Err(RequestFail::Busy {
                    rendered,
                    retry_after,
                });
            }
            Ok(rendered)
        },
        |attempt, err| match err {
            RequestFail::Transport(e) => {
                eprintln!("pipe-sim request: attempt {attempt}: {e}; retrying");
                Retry::After(None)
            }
            RequestFail::Busy { retry_after, .. } => {
                eprintln!(
                    "pipe-sim request: attempt {attempt}: server busy{}; retrying",
                    match retry_after {
                        Some(d) => format!(" (Retry-After {}s)", d.as_secs()),
                        None => String::new(),
                    }
                );
                Retry::After(*retry_after)
            }
        },
    );
    match result {
        Ok(rendered) => Ok(rendered),
        // Out of retries while the server was still busy: print its last
        // answer and exit nonzero, like any other non-2xx response.
        Err(RequestFail::Busy { rendered, .. }) => Ok(rendered),
        Err(RequestFail::Transport(e)) => Err(e),
    }
}

/// Renders a response per the `--include` setting; the bool is "2xx".
fn render_response(
    opts: &RequestOptions,
    response: &pipe_server::ClientResponse,
) -> (String, bool) {
    let mut out = String::new();
    if opts.include {
        out.push_str(&format!(
            "HTTP/1.1 {} {}\n",
            response.status,
            pipe_server::http::reason(response.status)
        ));
        for (name, value) in &response.headers {
            out.push_str(&format!("{name}: {value}\n"));
        }
        out.push('\n');
    }
    out.push_str(&response.body_text());
    if !out.ends_with('\n') {
        out.push('\n');
    }
    (out, (200..300).contains(&response.status))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_args(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn serve_defaults() {
        let opts = parse_serve_args(&[]).unwrap();
        assert_eq!(opts.config.addr, "127.0.0.1:7878");
        assert_eq!(opts.config.workers, 4);
        assert_eq!(opts.config.queue_capacity, 128);
        assert!(opts.config.store_root.is_none());
        assert!(opts.addr_file.is_none());
    }

    #[test]
    fn serve_full_flags() {
        let opts = parse_serve_args(&to_args(&[
            "--addr",
            "127.0.0.1:0",
            "--jobs",
            "8",
            "--queue",
            "64",
            "--sweep-jobs",
            "3",
            "--timeout-ms",
            "1500",
            "--store",
            "results",
            "--events",
            "logs",
            "--addr-file",
            "addr.txt",
            "--inject-delay-ms",
            "250",
        ]))
        .unwrap();
        assert_eq!(opts.config.addr, "127.0.0.1:0");
        assert_eq!(opts.config.workers, 8);
        assert_eq!(opts.config.queue_capacity, 64);
        assert_eq!(opts.config.sweep_jobs, 3);
        assert_eq!(opts.config.request_timeout, Duration::from_millis(1500));
        assert_eq!(opts.config.store_root.as_deref(), Some("results".as_ref()));
        assert_eq!(opts.config.events_root.as_deref(), Some("logs".as_ref()));
        assert_eq!(opts.addr_file.as_deref(), Some("addr.txt"));
        assert_eq!(opts.config.compute_delay, Duration::from_millis(250));
    }

    #[test]
    fn serve_rejects_bad_input() {
        assert!(parse_serve_args(&to_args(&["--jobs", "0"])).is_err());
        assert!(parse_serve_args(&to_args(&["--jobs"])).is_err());
        assert!(parse_serve_args(&to_args(&["--warp-speed"])).is_err());
    }

    #[test]
    fn request_parses_endpoint_and_body() {
        let opts =
            parse_request_args(&to_args(&["/v1/simulate", "--data", "{\"cache\":64}"])).unwrap();
        assert_eq!(opts.endpoint, "/v1/simulate");
        assert_eq!(opts.body.as_deref(), Some("{\"cache\":64}"));
        assert!(!opts.include);
        // A bare endpoint name gets its leading slash.
        let opts = parse_request_args(&to_args(&["metrics", "--include"])).unwrap();
        assert_eq!(opts.endpoint, "/metrics");
        assert!(opts.include);
    }

    #[test]
    fn request_requires_an_endpoint() {
        assert!(parse_request_args(&[]).is_err());
        assert!(parse_request_args(&to_args(&["/a", "/b"])).is_err());
    }

    #[test]
    fn request_retry_flags() {
        let opts = parse_request_args(&to_args(&["/metrics", "--retry", "3", "--backoff-ms", "5"]))
            .unwrap();
        assert_eq!(opts.retry, 3);
        assert_eq!(opts.backoff, Duration::from_millis(5));
        // Default is a single attempt.
        let opts = parse_request_args(&to_args(&["/metrics"])).unwrap();
        assert_eq!(opts.retry, 1);
        assert_eq!(opts.backoff, Duration::from_millis(100));
        assert!(parse_request_args(&to_args(&["/metrics", "--retry", "0"])).is_err());
        assert!(parse_request_args(&to_args(&["/metrics", "--backoff-ms"])).is_err());
    }

    #[test]
    fn request_transport_exhaustion_is_an_error() {
        let opts = RequestOptions {
            endpoint: "/healthz".to_string(),
            addr: "127.0.0.1:1".to_string(),
            body: None,
            timeout: Duration::from_millis(200),
            include: false,
            retry: 2,
            backoff: Duration::from_millis(1),
        };
        let err = run_request(&opts).unwrap_err();
        assert!(err.contains("failed"), "{err}");
    }
}
