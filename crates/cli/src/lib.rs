//! # pipe-cli
//!
//! Command-line front ends for the PIPE simulator:
//!
//! * **`pipe-sim`** — assemble a PIPE program and run it on a configurable
//!   processor (fetch strategy, cache geometry, memory timing), printing
//!   statistics and optionally a cycle trace.
//! * **`pipe-asm`** — assemble a program and print its disassembly or
//!   parcel hex dump.
//!
//! Argument parsing lives here so it can be unit tested; the binaries are
//! thin wrappers.

use pipe_core::{FetchStrategy, SimConfig};
use pipe_icache::{ConvPrefetch, EngineBuilder, FetchKind};
use pipe_isa::InstrFormat;
use pipe_mem::{DCacheConfig, MemConfig, PriorityPolicy};

mod bench;
mod cluster;
mod serve;

pub use bench::{parse_bench_args, run_bench, BenchOptions, BENCH_USAGE};
pub use cluster::{
    parse_cluster_args, run_cluster, ClusterCommand, ClusterStatusOptions, ClusterSweepOptions,
    CLUSTER_USAGE,
};
pub use serve::{
    parse_request_args, parse_serve_args, run_request, run_serve, RequestOptions, ServeOptions,
    REQUEST_USAGE, SERVE_USAGE,
};

/// Options for `pipe-sim`, parsed from the command line.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Path to the assembly source (`-` for stdin), or `None` for
    /// `--livermore`.
    pub input: Option<String>,
    /// Run the built-in Livermore benchmark instead of a file.
    pub livermore: bool,
    /// Assemble text input with the full `pipe-asm` front end
    /// (`.org`/`.word` layout, bundled-program names) instead of the
    /// seed grammar.
    pub from_asm: bool,
    /// The simulation configuration.
    pub config: SimConfig,
    /// Instruction format for assembly.
    pub format: InstrFormat,
    /// Attach a text trace to stderr.
    pub trace: bool,
    /// Record the run into a binary `.ptr` trace at this path.
    pub record_trace: Option<String>,
    /// Emit statistics as JSON instead of text.
    pub json: bool,
    /// Run the program on every fetch strategy and print a comparison.
    pub compare: bool,
    /// Raw cache size from the command line (for `--compare`).
    pub cache_bytes: u32,
    /// Raw line size from the command line (for `--compare`).
    pub line_bytes: u32,
    /// Run one of the paper's figure sweeps ("4a".."6b") instead of a
    /// single program.
    pub sweep: Option<String>,
    /// Worker threads for `--sweep`.
    pub jobs: usize,
    /// With `--sweep`, load previously stored points instead of
    /// re-simulating them.
    pub resume: bool,
    /// Result-store root directory for `--sweep` (default `results`).
    pub store_dir: Option<String>,
    /// With `--sweep`, fail fast: the first failed point aborts the sweep
    /// and exits nonzero. Without it, failed points are reported and the
    /// rest of the sweep completes (exit 0).
    pub strict: bool,
    /// JSONL event-log root for `--sweep` (defaults to the store root
    /// when a store is in use).
    pub events_dir: Option<String>,
    /// Fault injection for `--sweep` (test/diagnostic hooks).
    pub inject: pipe_experiments::FaultInjection,
}

/// The usage string for `pipe-sim`.
pub const SIM_USAGE: &str = "\
usage: pipe-sim <program.s> [options]
       pipe-sim run --from-asm <program.s|name|-> [options]
       pipe-sim --livermore [options]
       pipe-sim --sweep 4a|4b|5a|5b|6a|6b|id [--jobs N] [--resume] [--store DIR]
                [--strict] [--events DIR]
       pipe-sim asm <program.s|name|-> [...]   (see pipe-sim asm --help)
       pipe-sim replay <trace> [options]      (see pipe-sim replay --help)
       pipe-sim store prune [--dry-run] [--store DIR]
       pipe-sim serve [options]               (see pipe-sim serve --help)
       pipe-sim request <endpoint> [options]  (see pipe-sim request --help)
       pipe-sim cluster sweep|status [...]    (see pipe-sim cluster --help)

fetch strategy:
  --fetch pipe|conventional|tib|buffers|perfect   (default: pipe)
  --cache BYTES        cache size / TIB budget; 0 = no cache for buffers
                       (default: 128)
  --line BYTES         cache line size              (default: 16)
  --iq BYTES           PIPE instruction queue bytes, or buffer count for
                       --fetch buffers              (default: line / 4)
  --iqb BYTES          PIPE instruction queue buffer(default: line)
  --prefetch always|on-miss|tagged   conventional prefetch (default: always)

memory:
  --access CYCLES      memory access time           (default: 1)
  --bus BYTES          input bus width              (default: 4)
  --pipelined          pipelined external memory
  --data-first         data beats instructions at the memory interface
  --dcache BYTES       on-chip write-through D-cache size; 0 = none
                       (default: 0, the paper's model)
  --dline BYTES        D-cache line size            (default: 16)
  --dways N            D-cache associativity        (default: 1)

other:
  --from-asm           assemble text input with the pipe-asm front end
                       (enables .org/.word layout, bundled program names,
                       and `-` for stdin); binary input is auto-detected
  --format fixed32|mixed   instruction format       (default: fixed32)
  --trace              print a cycle trace to stderr
  --record-trace FILE  record the run into a binary .ptr trace (replay it
                       with `pipe-sim replay`)
  --json               emit statistics as JSON
  --compare            run on every fetch strategy and compare
  --max-cycles N       abort after N cycles

sweep mode (parallel experiment engine):
  --sweep ID           reproduce a paper figure panel (4a..6b), or `id`
                       for the joint I/D cache-size sweep (assembled
                       matmul workload, I-cache sizes x D-cache sizes)
  --jobs N             worker threads (cycle counts identical to serial)
  --resume             skip points already in the result store
  --store DIR          result-store root             (default: results)
  --strict             fail fast: abort on the first failed point and
                       exit nonzero (default: report failures, finish the
                       rest, exit 0)
  --events DIR         write a JSONL event log to DIR/events/<run>.jsonl
                       (default: the store root, when a store is in use)
  --inject-panic N     fault injection (testing): panic while simulating
                       sweep job N
  --inject-store-fail N  fault injection (testing): fail every store
                       write for sweep job N
";

fn parse_num(flag: &str, value: Option<&String>) -> Result<u32, String> {
    let v = value.ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse()
        .map_err(|_| format!("{flag}: invalid number `{v}`"))
}

/// Parses `pipe-sim` arguments (excluding the program name).
///
/// # Errors
///
/// Returns a user-facing message for unknown flags, missing values, or
/// inconsistent combinations.
pub fn parse_sim_args(args: &[String]) -> Result<SimOptions, String> {
    let mut input = None;
    let mut livermore = false;
    let mut from_asm = false;
    let mut fetch_kind = "pipe".to_string();
    let mut cache = 128u32;
    let mut line = 16u32;
    let mut iq = None;
    let mut iqb = None;
    let mut prefetch = ConvPrefetch::Always;
    let mut mem = MemConfig::default();
    let mut dcache = 0u32;
    let mut dline = 16u32;
    let mut dways = 1u32;
    let mut format = InstrFormat::Fixed32;
    let mut trace = false;
    let mut record_trace = None;
    let mut json = false;
    let mut compare = false;
    let mut max_cycles = 500_000_000u64;
    let mut sweep = None;
    let mut jobs = 1usize;
    let mut resume = false;
    let mut store_dir = None;
    let mut strict = false;
    let mut events_dir = None;
    let mut inject = pipe_experiments::FaultInjection::default();

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--livermore" => livermore = true,
            "--fetch" => {
                fetch_kind = it
                    .next()
                    .ok_or("--fetch needs a value")?
                    .to_ascii_lowercase();
            }
            "--cache" => cache = parse_num("--cache", it.next())?,
            "--line" => line = parse_num("--line", it.next())?,
            "--iq" => iq = Some(parse_num("--iq", it.next())?),
            "--iqb" => iqb = Some(parse_num("--iqb", it.next())?),
            "--prefetch" => {
                prefetch = match it.next().map(String::as_str) {
                    Some("always") => ConvPrefetch::Always,
                    Some("on-miss") => ConvPrefetch::OnMissOnly,
                    Some("tagged") => ConvPrefetch::Tagged,
                    other => return Err(format!("--prefetch: unknown mode {other:?}")),
                };
            }
            "--access" => mem.access_cycles = parse_num("--access", it.next())?,
            "--bus" => mem.in_bus_bytes = parse_num("--bus", it.next())?,
            "--pipelined" => mem.pipelined = true,
            "--data-first" => mem.priority = PriorityPolicy::DataFirst,
            "--dcache" => dcache = parse_num("--dcache", it.next())?,
            "--dline" => dline = parse_num("--dline", it.next())?,
            "--dways" => dways = parse_num("--dways", it.next())?,
            "--from-asm" => from_asm = true,
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("fixed32") => InstrFormat::Fixed32,
                    Some("mixed") => InstrFormat::Mixed,
                    other => return Err(format!("--format: unknown format {other:?}")),
                };
            }
            "--trace" => trace = true,
            "--record-trace" => {
                record_trace = Some(it.next().ok_or("--record-trace needs a file")?.clone());
            }
            "--json" => json = true,
            "--compare" => compare = true,
            "--max-cycles" => {
                max_cycles = u64::from(parse_num("--max-cycles", it.next())?);
            }
            "--sweep" => {
                let id = it.next().ok_or("--sweep needs a figure id")?.clone();
                if !pipe_experiments::ALL_FIGURES.contains(&id.as_str())
                    && id != pipe_experiments::JOINT_ID_FIGURE
                {
                    return Err(format!("--sweep: unknown figure `{id}`"));
                }
                sweep = Some(id);
            }
            "--jobs" => jobs = parse_num("--jobs", it.next())? as usize,
            "--resume" => resume = true,
            "--store" => {
                store_dir = Some(it.next().ok_or("--store needs a directory")?.clone());
            }
            "--strict" => strict = true,
            "--events" => {
                events_dir = Some(it.next().ok_or("--events needs a directory")?.clone());
            }
            "--inject-panic" => {
                inject
                    .panic_jobs
                    .push(parse_num("--inject-panic", it.next())? as usize);
            }
            "--inject-store-fail" => {
                inject
                    .store_fail_jobs
                    .push(parse_num("--inject-store-fail", it.next())? as usize);
            }
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unknown flag `{other}`"))
            }
            path => {
                if input.is_some() {
                    return Err("more than one input file".into());
                }
                input = Some(path.to_string());
            }
        }
    }

    if sweep.is_some() && (input.is_some() || livermore) {
        return Err("--sweep conflicts with an input program".into());
    }
    if sweep.is_none() && input.is_none() && !livermore {
        return Err("no input program (give a file, --livermore, or --sweep)".into());
    }
    if input.is_some() && livermore {
        return Err("--livermore conflicts with an input file".into());
    }
    if record_trace.is_some() && (sweep.is_some() || compare) {
        return Err("--record-trace records a single run (not --sweep or --compare)".into());
    }
    if input.as_deref() == Some("-") && !from_asm {
        return Err("reading a program from stdin needs --from-asm".into());
    }

    if dcache > 0 {
        mem.d_cache = Some(DCacheConfig {
            size_bytes: dcache,
            line_bytes: dline,
            ways: dways,
        });
    }

    let kind = FetchKind::parse(&fetch_kind)
        .ok_or_else(|| format!("--fetch: unknown strategy `{fetch_kind}`"))?;
    let mut builder = EngineBuilder::new(kind)
        .cache_bytes(cache)
        .line_bytes(line)
        .prefetch(prefetch)
        .buffers(iq.unwrap_or(4))
        .buffer_cache(cache > 0);
    if let Some(iq) = iq {
        builder = builder.iq_bytes(iq);
    }
    if let Some(iqb) = iqb {
        builder = builder.iqb_bytes(iqb);
    }
    let fetch = builder.config().map_err(|e| e.to_string())?;

    let config = SimConfig {
        fetch,
        mem,
        max_cycles,
        ..SimConfig::default()
    };
    config.validate().map_err(|e| e.to_string())?;

    Ok(SimOptions {
        input,
        livermore,
        from_asm,
        config,
        format,
        trace,
        record_trace,
        json,
        compare,
        cache_bytes: cache,
        line_bytes: line,
        sweep,
        jobs,
        resume,
        store_dir,
        strict,
        events_dir,
        inject,
    })
}

/// Runs a `--sweep` figure reproduction on the parallel sweep engine and
/// returns the rendered table. Fault-tolerant by default: failed points
/// are listed below the table (and marked `-` in it) while every other
/// point completes. Under `--strict` the first failure aborts the sweep
/// and returns an error.
///
/// # Errors
///
/// Returns a user-facing message if the result store cannot be opened,
/// or if the sweep is strict and a point failed.
pub fn run_sweep(opts: &SimOptions) -> Result<String, String> {
    let id = opts.sweep.as_deref().expect("sweep mode");
    let mut runner = pipe_experiments::SweepRunner::new()
        .jobs(opts.jobs)
        .progress(true)
        .strict(opts.strict)
        .inject(opts.inject.clone());
    let store_root = if opts.resume || opts.store_dir.is_some() {
        let root = std::path::PathBuf::from(opts.store_dir.as_deref().unwrap_or("results"));
        let store = pipe_experiments::ResultStore::open(&root)
            .map_err(|e| format!("cannot open result store {}: {e}", root.display()))?;
        runner = runner.store(store).resume(opts.resume);
        Some(root)
    } else {
        None
    };
    if let Some(events) = opts
        .events_dir
        .as_ref()
        .map(std::path::PathBuf::from)
        .or(store_root)
    {
        runner = runner.events(events);
    }
    let run = if id == pipe_experiments::JOINT_ID_FIGURE {
        pipe_experiments::try_joint_id_figure_with(&runner).map_err(|e| e.to_string())?
    } else {
        pipe_experiments::try_figure_with(id, &runner).map_err(|e| e.to_string())?
    };
    let mut out = pipe_experiments::render_text(&run.figure);
    out.push_str(&pipe_experiments::render_failures(run.failed()));
    // Diagnostics go to stderr so stdout stays diffable against a
    // serial, store-less run.
    if let Some(path) = &run.outcome.events_path {
        eprintln!("  [events written to {}]", path.display());
    }
    Ok(out)
}

/// Options for `pipe-sim replay`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOptions {
    /// Path to the trace: binary `.ptr` or plain-text addresses.
    pub trace: String,
    /// Explicit backing program, for traces whose recorded workload this
    /// binary cannot rebuild.
    pub program: Option<String>,
    /// Instruction format for assembling `--program`.
    pub format: InstrFormat,
    /// The fetch engine to replay through.
    pub fetch: FetchStrategy,
    /// External memory timing.
    pub mem: MemConfig,
    /// Fail unless the replay reproduces the recorded totals exactly.
    pub verify: bool,
    /// Emit statistics as JSON.
    pub json: bool,
}

/// The usage string for `pipe-sim replay`.
pub const REPLAY_USAGE: &str = "\
usage: pipe-sim replay <trace> [options]

Replays a recorded instruction trace through a fetch engine without the
functional core. <trace> is a binary .ptr file (from --record-trace) or a
plain-text address trace (one fetch address per line, decimal or 0x hex,
`#` comments). For a binary trace the backing program is rebuilt from the
trace header when possible; otherwise pass --program.

options:
  --program FILE       the program the trace was recorded from
                       (fingerprint-checked against the trace header)
  --format fixed32|mixed   instruction format for --program
  --fetch pipe|conventional|tib|buffers|perfect   (default: pipe)
  --cache BYTES        cache size / TIB budget     (default: 128)
  --line BYTES         cache line size             (default: 16)
  --iq BYTES           PIPE instruction queue bytes
  --iqb BYTES          PIPE instruction queue buffer bytes
  --prefetch always|on-miss|tagged   conventional prefetch
  --access CYCLES      memory access time          (default: 1)
  --bus BYTES          input bus width             (default: 4)
  --pipelined          pipelined external memory
  --data-first         data beats instructions at the memory interface
  --verify             exit nonzero unless the replay reproduces the
                       recorded instruction/cycle/ifetch-stall totals
                       (requires replaying the recorded configuration)
  --json               emit statistics as JSON
";

/// Parses `pipe-sim replay` arguments (excluding the subcommand name).
///
/// # Errors
///
/// Returns a user-facing message for unknown flags, missing values, or a
/// missing trace path.
pub fn parse_replay_args(args: &[String]) -> Result<ReplayOptions, String> {
    let mut trace = None;
    let mut program = None;
    let mut format = InstrFormat::Fixed32;
    let mut fetch_kind = "pipe".to_string();
    let mut cache = 128u32;
    let mut line = 16u32;
    let mut iq = None;
    let mut iqb = None;
    let mut prefetch = ConvPrefetch::Always;
    let mut mem = MemConfig::default();
    let mut verify = false;
    let mut json = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--program" => {
                program = Some(it.next().ok_or("--program needs a file")?.clone());
            }
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("fixed32") => InstrFormat::Fixed32,
                    Some("mixed") => InstrFormat::Mixed,
                    other => return Err(format!("--format: unknown format {other:?}")),
                };
            }
            "--fetch" => {
                fetch_kind = it
                    .next()
                    .ok_or("--fetch needs a value")?
                    .to_ascii_lowercase();
            }
            "--cache" => cache = parse_num("--cache", it.next())?,
            "--line" => line = parse_num("--line", it.next())?,
            "--iq" => iq = Some(parse_num("--iq", it.next())?),
            "--iqb" => iqb = Some(parse_num("--iqb", it.next())?),
            "--prefetch" => {
                prefetch = match it.next().map(String::as_str) {
                    Some("always") => ConvPrefetch::Always,
                    Some("on-miss") => ConvPrefetch::OnMissOnly,
                    Some("tagged") => ConvPrefetch::Tagged,
                    other => return Err(format!("--prefetch: unknown mode {other:?}")),
                };
            }
            "--access" => mem.access_cycles = parse_num("--access", it.next())?,
            "--bus" => mem.in_bus_bytes = parse_num("--bus", it.next())?,
            "--pipelined" => mem.pipelined = true,
            "--data-first" => mem.priority = PriorityPolicy::DataFirst,
            "--verify" => verify = true,
            "--json" => json = true,
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            path => {
                if trace.is_some() {
                    return Err("more than one trace file".into());
                }
                trace = Some(path.to_string());
            }
        }
    }

    let kind = FetchKind::parse(&fetch_kind)
        .ok_or_else(|| format!("--fetch: unknown strategy `{fetch_kind}`"))?;
    let mut builder = EngineBuilder::new(kind)
        .cache_bytes(cache)
        .line_bytes(line)
        .prefetch(prefetch)
        .buffers(iq.unwrap_or(4))
        .buffer_cache(cache > 0);
    if let Some(iq) = iq {
        builder = builder.iq_bytes(iq);
    }
    if let Some(iqb) = iqb {
        builder = builder.iqb_bytes(iqb);
    }
    let fetch = builder.config().map_err(|e| e.to_string())?;

    Ok(ReplayOptions {
        trace: trace.ok_or("no trace file (give a .ptr or address-trace path)")?,
        program,
        format,
        fetch,
        mem,
        verify,
        json,
    })
}

/// Renders replay statistics as text.
pub fn render_replay_stats(stats: &pipe_icache::ReplayStats) -> String {
    format!(
        "{} instructions, {} cycles (CPI {:.3})\n\
         ifetch-stall cycles {}, recorded wait cycles {}\n\
         fetch: {} demand + {} prefetch requests, {} bytes, \
         {} hits / {} misses, {} redirects\n",
        stats.instructions,
        stats.cycles,
        stats.cpi(),
        stats.ifetch_stalls,
        stats.wait_cycles,
        stats.fetch.demand_requests,
        stats.fetch.prefetch_requests,
        stats.fetch.bytes_requested,
        stats.fetch.cache_hits,
        stats.fetch.cache_misses,
        stats.fetch.redirects,
    )
}

/// Serializes replay statistics as a JSON object.
pub fn replay_stats_json(stats: &pipe_icache::ReplayStats) -> String {
    format!(
        concat!(
            "{{\"cycles\":{},\"instructions\":{},\"cpi\":{:.4},",
            "\"ifetch_stalls\":{},\"wait_cycles\":{},",
            "\"fetch\":{{\"demand_requests\":{},\"prefetch_requests\":{},",
            "\"bytes_requested\":{},\"cache_hits\":{},\"cache_misses\":{},",
            "\"redirects\":{},\"wasted_requests\":{}}}}}"
        ),
        stats.cycles,
        stats.instructions,
        stats.cpi(),
        stats.ifetch_stalls,
        stats.wait_cycles,
        stats.fetch.demand_requests,
        stats.fetch.prefetch_requests,
        stats.fetch.bytes_requested,
        stats.fetch.cache_hits,
        stats.fetch.cache_misses,
        stats.fetch.redirects,
        stats.fetch.wasted_requests,
    )
}

/// Runs `pipe-sim replay`: loads the trace, rebuilds or loads the backing
/// program, replays it through the configured fetch engine, and returns
/// the rendered statistics. With `verify`, an inexact reproduction of the
/// recorded totals is an error.
///
/// # Errors
///
/// Returns a user-facing message for I/O failures, undecodable or
/// corrupt traces, program mismatches, stuck replays, and verification
/// failures.
pub fn run_replay(opts: &ReplayOptions) -> Result<String, String> {
    use pipe_experiments::tracerun;
    let path = std::path::Path::new(&opts.trace);
    let display = path.display();
    let binary =
        tracerun::is_binary_trace(path).map_err(|e| format!("cannot read {display}: {e}"))?;
    let mut out = String::new();
    let (stats, recorded) = if binary {
        let reader = pipe_trace::TraceReader::open(path).map_err(|e| format!("{display}: {e}"))?;
        let program = match &opts.program {
            Some(p) => load_program(p, opts.format)?,
            None => tracerun::trace_program(path)
                .map_err(|e| format!("{e} (pass --program <file> to supply it)"))?,
        };
        let meta = reader.meta().clone();
        let outcome = pipe_trace::replay_trace(reader, &program, &opts.fetch, &opts.mem)
            .map_err(|e| format!("{display}: {e}"))?;
        if !opts.json {
            out.push_str(&format!(
                "replaying {display} (workload {}, recorded under fetch {})\n\
                 replay engine: {}\n",
                meta.workload,
                meta.fetch_key,
                opts.fetch.label(),
            ));
        }
        (outcome.stats, outcome.recorded)
    } else {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {display}: {e}"))?;
        let addrs =
            pipe_trace::parse_address_trace(&text).map_err(|e| format!("{display}: {e}"))?;
        let program = match &opts.program {
            Some(p) => load_program(p, opts.format)?,
            None => {
                pipe_trace::synthesize_program(&addrs).map_err(|e| format!("{display}: {e}"))?
            }
        };
        let steps = pipe_trace::schedule_from_addresses(&addrs);
        let engine = opts
            .fetch
            .build(&program)
            .map_err(|e| format!("invalid replay configuration: {e}"))?;
        let mut harness =
            pipe_icache::ReplayHarness::new(engine, pipe_mem::MemorySystem::new(opts.mem));
        harness.run(steps).map_err(|e| format!("{display}: {e}"))?;
        if !opts.json {
            out.push_str(&format!(
                "replaying {display} ({} addresses, synthetic nop program)\n\
                 replay engine: {}\n",
                addrs.len(),
                opts.fetch.label(),
            ));
        }
        (harness.stats(), None)
    };
    if opts.json {
        out.push_str(&replay_stats_json(&stats));
        out.push('\n');
    } else {
        out.push_str(&render_replay_stats(&stats));
    }
    if opts.verify {
        let recorded =
            recorded.ok_or("--verify needs a binary trace with a complete end summary")?;
        if recorded.instructions != stats.instructions
            || recorded.cycles != stats.cycles
            || recorded.ifetch_stalls != stats.ifetch_stalls
        {
            return Err(format!(
                "verification failed: recorded {}/{}/{} \
                 (instructions/cycles/ifetch stalls), replay produced {}/{}/{} \
                 — is the replay configuration the recorded one?",
                recorded.instructions,
                recorded.cycles,
                recorded.ifetch_stalls,
                stats.instructions,
                stats.cycles,
                stats.ifetch_stalls,
            ));
        }
        out.push_str("[verify] replay reproduces the recorded run exactly\n");
    }
    Ok(out)
}

/// The usage string for `pipe-sim store`.
pub const STORE_USAGE: &str = "\
usage: pipe-sim store prune [--dry-run] [--store DIR]

prune: delete result-store entries that current code can never load —
entries recording a different format version, corrupt or truncated
entries, entries whose file name no longer matches their key's hash
(a stale key format), and leftover temp files from interrupted writes.
Valid entries are untouched.

  --dry-run            report what would be removed without deleting
                       anything
  --store DIR          result-store root            (default: results)
";

/// Runs a `pipe-sim store` action and returns the rendered report.
///
/// # Errors
///
/// Returns a user-facing message for unknown actions or store failures.
pub fn run_store_command(args: &[String]) -> Result<String, String> {
    let mut action = None;
    let mut store_dir = "results".to_string();
    let mut dry_run = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => {
                store_dir = it.next().ok_or("--store needs a directory")?.clone();
            }
            "--dry-run" => dry_run = true,
            "prune" if action.is_none() => action = Some("prune"),
            other => return Err(format!("store: unknown argument `{other}`")),
        }
    }
    match action {
        Some("prune") => {
            let root = std::path::PathBuf::from(&store_dir);
            let store = pipe_experiments::ResultStore::open(&root)
                .map_err(|e| format!("cannot open result store {}: {e}", root.display()))?;
            if dry_run {
                let report = store
                    .prune_dry_run()
                    .map_err(|e| format!("prune failed: {e}"))?;
                Ok(format!(
                    "would prune {}: {report} (dry run; nothing deleted)\n",
                    store.dir().display()
                ))
            } else {
                let report = store.prune().map_err(|e| format!("prune failed: {e}"))?;
                Ok(format!("pruned {}: {report}\n", store.dir().display()))
            }
        }
        None => Err("store needs an action (prune)".into()),
        Some(_) => unreachable!(),
    }
}

// The `--json` statistics shape now lives in the shared JSON module so
// the CLI and the simulation service emit byte-identical stats objects.
pub use pipe_experiments::stats_json;

/// Runs `program` under every fetch strategy at the given base
/// configuration and returns `(label, stats)` per strategy, in a fixed
/// presentation order. Strategies whose geometry is invalid for the
/// configured cache size are skipped.
pub fn run_comparison(
    program: &pipe_isa::Program,
    base: &SimConfig,
    cache: u32,
    line: u32,
) -> Vec<(String, pipe_core::SimStats)> {
    let strategies: Vec<FetchStrategy> = FetchKind::ALL
        .iter()
        .filter_map(|&kind| {
            EngineBuilder::new(kind)
                .cache_bytes(cache.max(line))
                .line_bytes(line)
                .config()
                .ok()
        })
        .collect();
    strategies
        .into_iter()
        .filter_map(|fetch| {
            let cfg = SimConfig {
                fetch,
                ..base.clone()
            };
            cfg.validate().ok()?;
            let stats = pipe_core::run_program(program, &cfg).ok()?;
            Some((fetch.label(), stats))
        })
        .collect()
}

/// Renders a comparison as a text table.
pub fn render_comparison(rows: &[(String, pipe_core::SimStats)]) -> String {
    let mut out = String::from(
        "strategy                                  cycles    CPI   ifetch-stall  bytes-fetched\n",
    );
    for (label, s) in rows {
        out.push_str(&format!(
            "{:<38} {:>9}  {:>5.2}  {:>12}  {:>13}\n",
            label,
            s.cycles,
            s.cpi(),
            s.stalls.ifetch,
            s.fetch.bytes_requested
        ));
    }
    out
}

/// Options for `pipe-asm`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmOptions {
    /// Path to the assembly source.
    pub input: String,
    /// Instruction format.
    pub format: InstrFormat,
    /// Print a hex dump of the parcels instead of a disassembly.
    pub hex: bool,
    /// Write the assembled program to this binary file.
    pub output: Option<String>,
}

/// The usage string for `pipe-asm`.
pub const ASM_USAGE: &str = "\
usage: pipe-asm <program.s> [--format fixed32|mixed] [--hex] [-o out.bin]

Assembles a PIPE program with the full pipe-asm grammar (labels with
forward references, .org/.word/.align layout) and prints its
round-trippable disassembly (default) or a parcel hex dump (--hex).
With -o, also writes a binary image that pipe-sim can run directly.
";

/// Parses `pipe-asm` arguments.
///
/// # Errors
///
/// Returns a user-facing message for unknown flags or a missing input.
pub fn parse_asm_args(args: &[String]) -> Result<AsmOptions, String> {
    let mut input = None;
    let mut format = InstrFormat::Fixed32;
    let mut hex = false;
    let mut output = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("fixed32") => InstrFormat::Fixed32,
                    Some("mixed") => InstrFormat::Mixed,
                    other => return Err(format!("--format: unknown format {other:?}")),
                };
            }
            "--hex" => hex = true,
            "-o" | "--output" => {
                output = Some(it.next().ok_or("-o needs a file name")?.to_string());
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            path => {
                if input.is_some() {
                    return Err("more than one input file".into());
                }
                input = Some(path.to_string());
            }
        }
    }
    Ok(AsmOptions {
        input: input.ok_or("no input program")?,
        format,
        hex,
        output,
    })
}

/// Loads a program from `path`: the PIPE binary container if the file
/// starts with its magic, assembly text otherwise.
///
/// # Errors
///
/// Returns a user-facing message for I/O, assembly, or container errors.
pub fn load_program(path: &str, format: InstrFormat) -> Result<pipe_isa::Program, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if bytes.starts_with(&pipe_isa::binfmt::MAGIC) {
        return pipe_isa::read_program(&bytes).map_err(|e| format!("{path}: {e}"));
    }
    let source = String::from_utf8(bytes).map_err(|_| format!("{path}: not UTF-8 assembly"))?;
    pipe_isa::Assembler::new(format)
        .assemble(&source)
        .map_err(|e| format!("{path}: {e}"))
}

/// Reads program input bytes for the `pipe-asm` front end: stdin for
/// `-`, the file at `path` if it exists, or the bundled program library
/// by name (`matmul`, `sort`, `memcpy`).
fn read_asm_input(path: &str) -> Result<(Vec<u8>, String), String> {
    if path == "-" {
        use std::io::Read;
        let mut bytes = Vec::new();
        std::io::stdin()
            .read_to_end(&mut bytes)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        return Ok((bytes, "<stdin>".to_string()));
    }
    match std::fs::read(path) {
        Ok(bytes) => Ok((bytes, path.to_string())),
        Err(e) => match pipe_asm::find_program(path) {
            Some(lib) => Ok((lib.source.as_bytes().to_vec(), format!("<bundled {path}>"))),
            None => Err(format!("cannot read {path}: {e}")),
        },
    }
}

/// Loads a program through the `pipe-asm` front end: a binary container
/// passes through untouched; text is assembled with the full grammar
/// (`.org`/`.word` layout, forward references). `path` may be a file,
/// a bundled program name, or `-` for stdin.
///
/// # Errors
///
/// Returns a user-facing message for I/O, assembly, or container errors.
pub fn load_asm_program(path: &str, format: InstrFormat) -> Result<pipe_isa::Program, String> {
    let (bytes, origin) = read_asm_input(path)?;
    if bytes.starts_with(&pipe_isa::binfmt::MAGIC) {
        return pipe_isa::read_program(&bytes).map_err(|e| format!("{origin}: {e}"));
    }
    let source = String::from_utf8(bytes).map_err(|_| format!("{origin}: not UTF-8 assembly"))?;
    pipe_asm::Assembler::new(format)
        .assemble(&source)
        .map_err(|e| format!("{origin}: {e}"))
}

/// Options for `pipe-sim asm`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmCmdOptions {
    /// Source: a file path, a bundled program name, or `-` for stdin.
    /// `None` is only valid with `--list`.
    pub input: Option<String>,
    /// Instruction format.
    pub format: InstrFormat,
    /// Print the round-trippable disassembly instead of the binary.
    pub disasm: bool,
    /// Print a parcel hex dump instead of the binary.
    pub hex: bool,
    /// Write the binary container to this file instead of stdout.
    pub output: Option<String>,
    /// List the bundled program library and exit.
    pub list: bool,
}

/// The usage string for `pipe-sim asm`.
pub const ASM_CMD_USAGE: &str = "\
usage: pipe-sim asm <program.s|name|-> [options]
       pipe-sim asm --list

Assembles a PIPE program with the pipe-asm front end (labels with forward
references, .org/.word/.align layout, column-precise diagnostics) and
writes the binary container to stdout, ready to pipe into
`pipe-sim run --from-asm -`. The input may be a file, the name of a
bundled program (see --list), or `-` for stdin.

  --format fixed32|mixed   instruction format       (default: fixed32)
  -o FILE              write the binary here instead of stdout
  --disasm             print the round-trippable disassembly instead
  --hex                print a parcel hex dump instead
  --list               list the bundled program library
";

/// Parses `pipe-sim asm` arguments (excluding the subcommand name).
///
/// # Errors
///
/// Returns a user-facing message for unknown flags or a missing input.
pub fn parse_asm_cmd_args(args: &[String]) -> Result<AsmCmdOptions, String> {
    let mut input = None;
    let mut format = InstrFormat::Fixed32;
    let mut disasm = false;
    let mut hex = false;
    let mut output = None;
    let mut list = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("fixed32") => InstrFormat::Fixed32,
                    Some("mixed") => InstrFormat::Mixed,
                    other => return Err(format!("--format: unknown format {other:?}")),
                };
            }
            "--disasm" => disasm = true,
            "--hex" => hex = true,
            "--list" => list = true,
            "-o" | "--output" => {
                output = Some(it.next().ok_or("-o needs a file name")?.to_string());
            }
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unknown flag `{other}`"))
            }
            path => {
                if input.is_some() {
                    return Err("more than one input".into());
                }
                input = Some(path.to_string());
            }
        }
    }
    if disasm && hex {
        return Err("--disasm conflicts with --hex".into());
    }
    if input.is_none() && !list {
        return Err("no input (give a file, a bundled name, `-`, or --list)".into());
    }
    Ok(AsmCmdOptions {
        input,
        format,
        disasm,
        hex,
        output,
        list,
    })
}

/// What `pipe-sim asm` should write to stdout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmCmdOutput {
    /// The binary program container (raw bytes).
    Binary(Vec<u8>),
    /// A text listing (disassembly, hex dump, library list, or a
    /// `wrote <file>` confirmation).
    Text(String),
}

/// Runs `pipe-sim asm` and returns what to print.
///
/// # Errors
///
/// Returns a user-facing message for I/O or assembly errors.
pub fn run_asm_command(opts: &AsmCmdOptions) -> Result<AsmCmdOutput, String> {
    if opts.list {
        let mut out = String::from("bundled programs (pipe-sim asm <name>):\n");
        for lib in pipe_asm::LIBRARY {
            out.push_str(&format!("  {:<8} {}\n", lib.name, lib.title));
        }
        return Ok(AsmCmdOutput::Text(out));
    }
    let input = opts.input.as_deref().expect("validated");
    let program = load_asm_program(input, opts.format)?;
    if opts.disasm {
        return Ok(AsmCmdOutput::Text(pipe_asm::disassemble(&program)));
    }
    if opts.hex {
        return Ok(AsmCmdOutput::Text(hex_dump(&program)));
    }
    let bytes = pipe_isa::write_program(&program);
    match &opts.output {
        Some(path) => {
            std::fs::write(path, &bytes).map_err(|e| format!("cannot write {path}: {e}"))?;
            Ok(AsmCmdOutput::Text(format!(
                "wrote {path}: {} instructions, {} code bytes\n",
                program.static_count(),
                program.code_bytes()
            )))
        }
        None => Ok(AsmCmdOutput::Binary(bytes)),
    }
}

/// Renders a parcel hex dump, 8 parcels per line with byte addresses.
pub fn hex_dump(program: &pipe_isa::Program) -> String {
    let mut out = String::new();
    for (i, chunk) in program.parcels().chunks(8).enumerate() {
        out.push_str(&format!("{:06x}:", program.base() as usize + i * 16));
        for p in chunk {
            out.push_str(&format!(" {p:04x}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn sim_defaults() {
        let o = parse_sim_args(&args("prog.s")).unwrap();
        assert_eq!(o.input.as_deref(), Some("prog.s"));
        assert!(!o.livermore);
        assert!(matches!(o.config.fetch, FetchStrategy::Pipe(_)));
        assert_eq!(o.format, InstrFormat::Fixed32);
    }

    #[test]
    fn sim_full_flags() {
        let o = parse_sim_args(&args(
            "--livermore --fetch conventional --cache 64 --line 16 --access 6 --bus 8 --pipelined --data-first --trace",
        ))
        .unwrap();
        assert!(o.livermore);
        assert!(
            matches!(o.config.fetch, FetchStrategy::Conventional(c) if c.cache.size_bytes == 64)
        );
        assert_eq!(o.config.mem.access_cycles, 6);
        assert_eq!(o.config.mem.in_bus_bytes, 8);
        assert!(o.config.mem.pipelined);
        assert_eq!(o.config.mem.priority, PriorityPolicy::DataFirst);
        assert!(o.trace);
    }

    #[test]
    fn sim_pipe_queue_sizes_default_to_line() {
        let o = parse_sim_args(&args("p.s --fetch pipe --cache 64 --line 32")).unwrap();
        match o.config.fetch {
            FetchStrategy::Pipe(c) => {
                assert_eq!(c.iq_bytes, 32);
                assert_eq!(c.iqb_bytes, 32);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sim_prefetch_modes() {
        let o = parse_sim_args(&args("p.s --fetch conventional --prefetch tagged")).unwrap();
        assert!(matches!(
            o.config.fetch,
            FetchStrategy::Conventional(c) if c.prefetch == ConvPrefetch::Tagged
        ));
    }

    #[test]
    fn sim_rejects_bad_input() {
        assert!(parse_sim_args(&args("")).is_err());
        assert!(parse_sim_args(&args("a.s b.s")).is_err());
        assert!(parse_sim_args(&args("a.s --livermore")).is_err());
        assert!(parse_sim_args(&args("a.s --fetch warp")).is_err());
        assert!(parse_sim_args(&args("a.s --cache")).is_err());
        assert!(parse_sim_args(&args("a.s --bogus")).is_err());
        // Invalid geometry caught by config validation.
        assert!(parse_sim_args(&args("a.s --cache 8 --line 16")).is_err());
    }

    #[test]
    fn asm_parsing() {
        let o = parse_asm_args(&args("p.s --format mixed --hex")).unwrap();
        assert_eq!(o.input, "p.s");
        assert_eq!(o.format, InstrFormat::Mixed);
        assert!(o.hex);
        assert!(parse_asm_args(&args("--hex")).is_err());
    }

    #[test]
    fn sweep_fault_tolerance_flags() {
        let o = parse_sim_args(&args(
            "--sweep 4a --jobs 2 --strict --events evdir --inject-panic 3 --inject-store-fail 5",
        ))
        .unwrap();
        assert_eq!(o.sweep.as_deref(), Some("4a"));
        assert!(o.strict);
        assert_eq!(o.events_dir.as_deref(), Some("evdir"));
        assert_eq!(o.inject.panic_jobs, vec![3]);
        assert_eq!(o.inject.store_fail_jobs, vec![5]);

        // Defaults: fault-tolerant, no events, no injection.
        let o = parse_sim_args(&args("--sweep 4a")).unwrap();
        assert!(!o.strict);
        assert!(o.events_dir.is_none());
        assert!(o.inject.is_empty());
        assert!(parse_sim_args(&args("--sweep 4a --inject-panic")).is_err());
        assert!(parse_sim_args(&args("--sweep 4a --events")).is_err());
    }

    #[test]
    fn json_and_compare_flags() {
        let o = parse_sim_args(&args("p.s --json --compare --cache 64 --line 16")).unwrap();
        assert!(o.json);
        assert!(o.compare);
        assert_eq!(o.cache_bytes, 64);
        assert_eq!(o.line_bytes, 16);
    }

    #[test]
    fn stats_json_is_valid_shape() {
        let stats = pipe_core::SimStats {
            cycles: 100,
            instructions_issued: 40,
            ..Default::default()
        };
        let j = stats_json(&stats);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"cycles\":100"));
        assert!(j.contains("\"cpi\":2.5000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn comparison_runs_every_strategy() {
        let p = pipe_isa::Assembler::new(InstrFormat::Fixed32)
            .assemble("lim r1, 3\nlbr b0, top\ntop: subi r1, r1, 1\npbr.nez b0, r1, 0\nhalt\n")
            .unwrap();
        let rows = run_comparison(&p, &SimConfig::default(), 64, 16);
        assert_eq!(rows.len(), 5);
        // Perfect fetch is the lower bound.
        let perfect = rows[0].1.cycles;
        assert!(rows.iter().all(|(_, s)| s.cycles >= perfect));
        let text = render_comparison(&rows);
        assert!(text.contains("perfect"));
        assert!(text.contains("tib"));
    }

    #[test]
    fn replay_args_parse() {
        let o = parse_replay_args(&args(
            "run.ptr --fetch conventional --cache 64 --line 16 --access 6 --bus 8 --verify --json",
        ))
        .unwrap();
        assert_eq!(o.trace, "run.ptr");
        assert!(matches!(o.fetch, FetchStrategy::Conventional(c) if c.cache.size_bytes == 64));
        assert_eq!(o.mem.access_cycles, 6);
        assert_eq!(o.mem.in_bus_bytes, 8);
        assert!(o.verify);
        assert!(o.json);
        assert!(o.program.is_none());

        let o = parse_replay_args(&args("addrs.txt --program p.s --format mixed")).unwrap();
        assert_eq!(o.trace, "addrs.txt");
        assert_eq!(o.program.as_deref(), Some("p.s"));
        assert_eq!(o.format, InstrFormat::Mixed);
        // Defaults mirror `pipe-sim run`: PIPE engine, 128 B cache.
        assert!(matches!(o.fetch, FetchStrategy::Pipe(_)));

        assert!(parse_replay_args(&args("")).is_err()); // no trace
        assert!(parse_replay_args(&args("a.ptr b.ptr")).is_err()); // two traces
        assert!(parse_replay_args(&args("a.ptr --bogus")).is_err());
    }

    #[test]
    fn record_trace_flag() {
        let o = parse_sim_args(&args("p.s --record-trace out.ptr")).unwrap();
        assert_eq!(o.record_trace.as_deref(), Some("out.ptr"));
        let o = parse_sim_args(&args("p.s")).unwrap();
        assert!(o.record_trace.is_none());
        // Recording is a single-run feature.
        assert!(parse_sim_args(&args("--sweep 4a --record-trace out.ptr")).is_err());
        assert!(parse_sim_args(&args("p.s --compare --record-trace out.ptr")).is_err());
        assert!(parse_sim_args(&args("p.s --record-trace")).is_err());
    }

    #[test]
    fn store_prune_command() {
        let tmp = std::env::temp_dir().join(format!("pipe-cli-prune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        let store = pipe_experiments::ResultStore::open(&tmp).unwrap();
        std::fs::write(store.dir().join("junk.json"), "not json").unwrap();
        let out = run_store_command(&args(&format!("prune --store {}", tmp.display()))).unwrap();
        assert!(out.contains("kept 0 entries"), "{out}");
        assert!(out.contains("removed 1"), "{out}");

        assert!(run_store_command(&args("")).is_err()); // no action
        assert!(run_store_command(&args("vacuum")).is_err()); // unknown action
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn replay_stats_json_shape() {
        let stats = pipe_icache::ReplayStats {
            cycles: 200,
            instructions: 100,
            ifetch_stalls: 0,
            wait_cycles: 0,
            fetch: pipe_icache::FetchStats::default(),
        };
        let j = replay_stats_json(&stats);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"cycles\":200"));
        assert!(j.contains("\"cpi\":2.0000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn hex_dump_format() {
        let p = pipe_isa::Assembler::new(InstrFormat::Fixed32)
            .assemble("nop\nhalt\n")
            .unwrap();
        let dump = hex_dump(&p);
        assert!(dump.starts_with("000000:"));
        assert_eq!(dump.lines().count(), 1);
    }
}
