//! `pipe-sim bench` — the in-repo benchmark harness.
//!
//! Runs pinned workloads (the full Livermore suite swept across fetch
//! engines and cache sizes, plus synthetic kernels) in-process and
//! measures *simulator throughput*: simulated cycles per wall-clock
//! second. Results are appended as labeled entries to `BENCH_<name>.json`
//! so the repo tracks its performance trajectory across commits
//! (`baseline` → `optimized` → ...).
//!
//! Two gates make the harness a correctness check as well as a stopwatch:
//!
//! * **repetition gate** — every point is simulated `reps` times and all
//!   repetitions must produce bit-identical [`SimStats`]; a divergence is
//!   a simulator-determinism bug and fails the bench.
//! * **cross-entry gate** — when a `BENCH_<name>.json` already holds
//!   entries, the new entry's per-point simulated cycle counts must match
//!   every recorded entry exactly. Timing may drift with the machine;
//!   *simulated* behaviour may not.
//!
//! No external dependencies (no criterion): plain [`Instant`] timing with
//! best-of-N repetitions, hand-rolled JSON.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pipe_core::{run_decoded, SimConfig, SimStats};
use pipe_experiments::{figure_mem, mem_key, StrategyKind};
use pipe_icache::PrefetchPolicy;
use pipe_isa::{DecodedProgram, InstrFormat, Program};
use pipe_mem::MemConfig;

/// The usage string for `pipe-sim bench`.
pub const BENCH_USAGE: &str = "\
usage: pipe-sim bench [options]

Measures simulator throughput (simulated cycles per wall-clock second) on
pinned workloads and writes BENCH_<name>.json files at the output
directory, appending one labeled entry per invocation so the performance
trajectory is tracked across commits.

benches:
  full_livermore       the full Livermore suite (150,575 instructions)
                       under figure-4a memory timing, swept across the
                       conventional, PIPE 16-16, and TIB engines and the
                       paper's cache sizes
  synthetic            synthetic kernels (tight loops, branch-heavy code)
                       across the same three engines
  asm_matmul           the bundled matmul assembly program (pipe-asm),
                       with and without a 128-byte write-through D-cache
                       competing for the memory port

options:
  --quick              reduced point set for CI smoke testing; writes
                       BENCH_<name>.quick.json so full results are not
                       disturbed
  --label NAME         label recorded on this entry   (default: current)
  --dir DIR            output directory               (default: .)
  --bench NAME         run a single bench (full_livermore | synthetic |
                       asm_matmul; default: all)
  --batch N            simulate up to N same-workload points per batched
                       kernel call instead of one at a time (default: 1,
                       the scalar path); per-point wall time is the
                       batch's wall divided by its lanes

Every point is simulated repeatedly and must reproduce bit-identical
statistics across repetitions, and against every entry already recorded
in the JSON file. A mismatch exits nonzero: simulated behaviour regressed.
Timing differences never fail the bench.
";

/// Options for `pipe-sim bench`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchOptions {
    /// Reduced point set (CI smoke); writes `BENCH_<name>.quick.json`.
    pub quick: bool,
    /// Label recorded on the new entry.
    pub label: String,
    /// Output directory for the JSON files.
    pub dir: String,
    /// Restrict to one bench by name.
    pub only: Option<String>,
    /// Maximum same-workload points per batched kernel call (1 = scalar).
    pub batch: usize,
}

/// Parses `pipe-sim bench` arguments (excluding the subcommand name).
///
/// # Errors
///
/// Returns a user-facing message for unknown flags or missing values.
pub fn parse_bench_args(args: &[String]) -> Result<BenchOptions, String> {
    let mut quick = false;
    let mut label = "current".to_string();
    let mut dir = ".".to_string();
    let mut only = None;
    let mut batch = 1usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--batch" => {
                let value = it.next().ok_or("--batch needs a lane count")?;
                batch = value
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--batch: invalid lane count `{value}`"))?;
            }
            "--label" => {
                label = it.next().ok_or("--label needs a value")?.clone();
                if label.is_empty() || !label.bytes().all(|b| b.is_ascii_graphic() && b != b'"') {
                    return Err(format!("--label: invalid label `{label}`"));
                }
            }
            "--dir" => dir = it.next().ok_or("--dir needs a directory")?.clone(),
            "--bench" => {
                let name = it.next().ok_or("--bench needs a name")?.clone();
                if !["full_livermore", "synthetic", "asm_matmul"].contains(&name.as_str()) {
                    return Err(format!("--bench: unknown bench `{name}`"));
                }
                only = Some(name);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(BenchOptions {
        quick,
        label,
        dir,
        only,
        batch,
    })
}

/// One measured point of a bench.
struct BenchPoint {
    engine: &'static str,
    cache_bytes: u32,
    workload: String,
    stats: SimStats,
    /// Best (minimum) wall time over the repetitions.
    wall: Duration,
}

/// The engines every bench sweeps: the paper's conventional cache, the
/// canonical PIPE 16-16 configuration, and the TIB.
const BENCH_STRATEGIES: [StrategyKind; 3] = [
    StrategyKind::Conventional,
    StrategyKind::Pipe16x16,
    StrategyKind::Tib16,
];

fn run_point(
    program: &Arc<DecodedProgram>,
    fetch: pipe_core::FetchStrategy,
    mem: &MemConfig,
    reps: u32,
) -> Result<(SimStats, Duration), String> {
    let cfg = SimConfig {
        fetch,
        mem: *mem,
        max_cycles: 2_000_000_000,
        ..SimConfig::default()
    };
    let mut best = Duration::MAX;
    let mut reference: Option<SimStats> = None;
    for rep in 0..reps.max(1) {
        let t0 = Instant::now();
        let stats = run_decoded(program, &cfg).map_err(|e| e.to_string())?;
        let wall = t0.elapsed();
        best = best.min(wall);
        match &reference {
            None => reference = Some(stats),
            Some(prev) => {
                if *prev != stats {
                    return Err(format!(
                        "determinism violation: repetition {rep} produced different \
                         statistics ({} vs {} cycles)",
                        stats.cycles, prev.cycles,
                    ));
                }
            }
        }
    }
    Ok((reference.expect("at least one rep"), best))
}

/// Measures a same-workload group of lanes through the batched kernel:
/// `reps` batched passes, every lane's statistics bit-identical across
/// repetitions, per-lane wall time an equal share of the best batch
/// wall. Errors name the offending lane.
fn run_lanes_batched(
    program: &Arc<DecodedProgram>,
    lanes: &[(StrategyKind, pipe_core::FetchStrategy, u32)],
    mem: &MemConfig,
    reps: u32,
) -> Result<Vec<(SimStats, Duration)>, String> {
    let batch_lanes: Vec<(pipe_core::FetchStrategy, u32)> = lanes
        .iter()
        .map(|&(_, fetch, size)| (fetch, size))
        .collect();
    let mut best = Duration::MAX;
    let mut reference: Option<Vec<SimStats>> = None;
    for rep in 0..reps.max(1) {
        let t0 = Instant::now();
        let results = pipe_experiments::try_run_points_batched(program, &batch_lanes, mem);
        let wall = t0.elapsed();
        best = best.min(wall);
        let mut stats = Vec::with_capacity(lanes.len());
        for (result, &(kind, _, size)) in results.into_iter().zip(lanes) {
            stats.push(
                result
                    .map(|p| p.stats)
                    .map_err(|e| format!("{} @ {size}B: {e}", kind.label()))?,
            );
        }
        match &reference {
            None => reference = Some(stats),
            Some(prev) => {
                if *prev != stats {
                    return Err(format!(
                        "determinism violation: batched repetition {rep} produced \
                         different statistics",
                    ));
                }
            }
        }
    }
    let per_lane = best / lanes.len().max(1) as u32;
    Ok(reference
        .expect("at least one rep")
        .into_iter()
        .map(|stats| (stats, per_lane))
        .collect())
}

/// Measures every `(strategy, fetch, size)` lane of one workload, either
/// point-at-a-time (`batch` <= 1) or in batched-kernel groups of up to
/// `batch` lanes. Both paths produce bit-identical statistics; only the
/// wall-time attribution differs (measured vs amortized).
fn measure_lanes(
    program: &Arc<DecodedProgram>,
    lanes: &[(StrategyKind, pipe_core::FetchStrategy, u32)],
    mem: &MemConfig,
    reps: u32,
    batch: usize,
) -> Result<Vec<(SimStats, Duration)>, String> {
    if batch <= 1 {
        return lanes
            .iter()
            .map(|&(kind, fetch, size)| {
                run_point(program, fetch, mem, reps)
                    .map_err(|e| format!("{} @ {size}B: {e}", kind.label()))
            })
            .collect();
    }
    let mut out = Vec::with_capacity(lanes.len());
    for group in lanes.chunks(batch) {
        out.extend(run_lanes_batched(program, group, mem, reps)?);
    }
    Ok(out)
}

fn livermore_points(quick: bool, reps: u32, batch: usize) -> Result<Vec<BenchPoint>, String> {
    let suite = pipe_workloads::livermore_benchmark();
    let program = Arc::new(DecodedProgram::new(suite.program().clone()));
    let (mem, _) = figure_mem("4a");
    let sizes: &[u32] = if quick {
        &[64]
    } else {
        pipe_experiments::sweep_sizes()
    };
    let mut lanes = Vec::new();
    for kind in BENCH_STRATEGIES {
        for &size in sizes {
            if let Some(fetch) = kind.fetch_for(size, PrefetchPolicy::TruePrefetch) {
                lanes.push((kind, fetch, size));
            }
        }
    }
    let measured = measure_lanes(&program, &lanes, &mem, reps, batch)?;
    Ok(lanes
        .iter()
        .zip(measured)
        .map(|(&(kind, _, size), (stats, wall))| BenchPoint {
            engine: kind.label(),
            cache_bytes: size,
            workload: "livermore".to_string(),
            stats,
            wall,
        })
        .collect())
}

fn synthetic_points(quick: bool, reps: u32, batch: usize) -> Result<Vec<BenchPoint>, String> {
    use pipe_workloads::synthetic::{branch_heavy, tight_loop};
    let kernels: Vec<(String, Program)> = if quick {
        vec![(
            "tight16".to_string(),
            tight_loop(16, 500, InstrFormat::Fixed32),
        )]
    } else {
        vec![
            (
                "tight16".to_string(),
                tight_loop(16, 5000, InstrFormat::Fixed32),
            ),
            (
                "tight64".to_string(),
                tight_loop(64, 2000, InstrFormat::Fixed32),
            ),
            (
                "branchy".to_string(),
                branch_heavy(2000, InstrFormat::Fixed32),
            ),
        ]
    };
    let mem = MemConfig::default();
    let mut points = Vec::new();
    for (name, program) in &kernels {
        let program = Arc::new(DecodedProgram::new(program.clone()));
        let lanes: Vec<(StrategyKind, pipe_core::FetchStrategy, u32)> = BENCH_STRATEGIES
            .into_iter()
            .filter_map(|kind| {
                kind.fetch_for(128, PrefetchPolicy::TruePrefetch)
                    .map(|fetch| (kind, fetch, 128))
            })
            .collect();
        let measured = measure_lanes(&program, &lanes, &mem, reps, batch)
            .map_err(|e| format!("{name}/{e}"))?;
        points.extend(
            lanes
                .iter()
                .zip(measured)
                .map(|(&(kind, _, _), (stats, wall))| BenchPoint {
                    engine: kind.label(),
                    cache_bytes: 128,
                    workload: name.clone(),
                    stats,
                    wall,
                }),
        );
    }
    Ok(points)
}

fn asm_matmul_points(quick: bool, reps: u32, batch: usize) -> Result<Vec<BenchPoint>, String> {
    let lib = pipe_asm::find_program("matmul").expect("matmul is bundled");
    let program = pipe_asm::Assembler::new(InstrFormat::Fixed32)
        .assemble(lib.source)
        .map_err(|e| format!("matmul: {e}"))?;
    let program = Arc::new(DecodedProgram::new(program));
    let (base, _) = figure_mem("4a");
    let sizes: &[u32] = if quick { &[128] } else { &[64, 128, 256] };
    let mut lanes = Vec::new();
    for kind in BENCH_STRATEGIES {
        for &size in sizes {
            if let Some(fetch) = kind.fetch_for(size, PrefetchPolicy::TruePrefetch) {
                lanes.push((kind, fetch, size));
            }
        }
    }
    // Two data-side settings per lane: no D-cache (every data access
    // competes for the port) and a 2-way 128-byte write-through D-cache.
    // Both exercise the assembler-produced program; the delta is the
    // port-contention relief the bench exists to track.
    let d128 = pipe_mem::DCacheConfig {
        size_bytes: 128,
        line_bytes: 16,
        ways: 2,
    };
    let mut points = Vec::new();
    for (d_cache, workload) in [(None, "matmul"), (Some(d128), "matmul+d128")] {
        let mem = MemConfig { d_cache, ..base };
        let measured = measure_lanes(&program, &lanes, &mem, reps, batch)
            .map_err(|e| format!("{workload}/{e}"))?;
        points.extend(
            lanes
                .iter()
                .zip(measured)
                .map(|(&(kind, _, size), (stats, wall))| BenchPoint {
                    engine: kind.label(),
                    cache_bytes: size,
                    workload: workload.to_string(),
                    stats,
                    wall,
                }),
        );
    }
    Ok(points)
}

fn render_entry(label: &str, reps: u32, points: &[BenchPoint]) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\"label\":\"{label}\",\"reps\":{reps},\"points\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let wall_ms = p.wall.as_secs_f64() * 1e3;
        let cps = p.stats.cycles as f64 / p.wall.as_secs_f64();
        let _ = write!(
            s,
            "{{\"engine\":\"{}\",\"cache_bytes\":{},\"workload\":\"{}\",\
             \"cycles\":{},\"instructions\":{},\"wall_ms\":{wall_ms:.3},\
             \"cycles_per_sec\":{cps:.0}}}",
            p.engine, p.cache_bytes, p.workload, p.stats.cycles, p.stats.instructions_issued,
        );
    }
    let sum_cycles: u64 = points.iter().map(|p| p.stats.cycles).sum();
    let sum_wall: f64 = points.iter().map(|p| p.wall.as_secs_f64()).sum();
    let cps = sum_cycles as f64 / sum_wall;
    let _ = write!(
        s,
        "],\"sum_cycles\":{sum_cycles},\"sum_wall_ms\":{:.3},\
         \"cycles_per_sec\":{cps:.0}}}",
        sum_wall * 1e3,
    );
    s
}

/// Extracts the verbatim JSON texts of the `"entries":[...]` array
/// elements of a bench file (the format is machine-written, so plain
/// brace counting is exact: no string value may contain braces).
fn extract_entries(json: &str) -> Vec<String> {
    let Some(start) = json.find("\"entries\":[") else {
        return Vec::new();
    };
    let body = &json[start + "\"entries\":[".len()..];
    let mut entries = Vec::new();
    let mut depth = 0usize;
    let mut begin = None;
    for (i, c) in body.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    begin = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(b) = begin.take() {
                        entries.push(body[b..=i].to_string());
                    }
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    entries
}

/// Extracts a string field from a machine-written JSON object.
fn extract_str<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = obj.find(&pat)? + pat.len();
    let end = obj[start..].find('"')?;
    Some(&obj[start..start + end])
}

/// Extracts a numeric field from a machine-written JSON object.
fn extract_num(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let end = obj[start..]
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(obj.len() - start);
    obj[start..start + end].parse().ok()
}

/// Extracts every point's `(engine, cache_bytes, workload, cycles)` from
/// an entry's JSON text, in order.
fn extract_point_cycles(entry: &str) -> Vec<(String, u64, String, u64)> {
    let mut out = Vec::new();
    let mut rest = entry;
    while let Some(pos) = rest.find("{\"engine\":") {
        let obj_start = &rest[pos..];
        let end = obj_start
            .find('}')
            .map(|e| e + 1)
            .unwrap_or(obj_start.len());
        let obj = &obj_start[..end];
        if let (Some(engine), Some(cache), Some(wl), Some(cycles)) = (
            extract_str(obj, "engine"),
            extract_num(obj, "cache_bytes"),
            extract_str(obj, "workload"),
            extract_num(obj, "cycles"),
        ) {
            out.push((
                engine.to_string(),
                cache as u64,
                wl.to_string(),
                cycles as u64,
            ));
        }
        rest = &obj_start[end..];
    }
    out
}

/// Verifies the new entry's simulated cycle counts against an existing
/// entry. Points present in both must agree exactly; a differing point
/// set (e.g. quick vs full) only checks the intersection.
fn check_cross_entry(prev: &str, new_entry: &str) -> Result<(), String> {
    let prev_label = extract_str(prev, "label").unwrap_or("?").to_string();
    let prev_points = extract_point_cycles(prev);
    for (engine, cache, wl, cycles) in extract_point_cycles(new_entry) {
        if let Some((.., prev_cycles)) = prev_points
            .iter()
            .find(|(e, c, w, _)| *e == engine && *c == cache && *w == wl)
        {
            if *prev_cycles != cycles {
                return Err(format!(
                    "bit-exactness regression: {engine} @ {cache}B ({wl}) simulated \
                     {cycles} cycles, but entry \"{prev_label}\" recorded {prev_cycles}",
                ));
            }
        }
    }
    Ok(())
}

/// Assembles the full bench JSON: header, prior entries (an entry with
/// the same label is replaced), the new entry, and — when a prior entry
/// under a different label exists — a `speedup` block comparing the new
/// entry's throughput against the most recent such entry, so successive
/// milestones chain (`baseline` → `optimized` → `batched`).
fn render_file(
    name: &str,
    mem: &MemConfig,
    prior: &[String],
    new_label: &str,
    new_entry: &str,
) -> String {
    let mut entries: Vec<&str> = prior
        .iter()
        .map(String::as_str)
        .filter(|e| extract_str(e, "label") != Some(new_label))
        .collect();
    entries.push(new_entry);
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"schema\":\"pipe-bench-v1\",\"name\":\"{name}\",\"mem\":\"{}\",\"entries\":[",
        mem_key(mem),
    );
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(e);
    }
    s.push(']');
    // Aggregate throughput from the per-entry sums: `sum_cycles` and
    // `sum_wall_ms` appear exactly once per entry, whereas
    // `cycles_per_sec` also names a per-point field.
    let entry_cps = |e: &str| -> Option<f64> {
        let cycles = extract_num(e, "sum_cycles")?;
        let wall_ms = extract_num(e, "sum_wall_ms")?;
        (wall_ms > 0.0).then(|| cycles / (wall_ms / 1e3))
    };
    // The reference is the most recent prior entry recorded under a
    // different label — so each milestone's entry reports its gain over
    // the one before it.
    let reference = entries
        .iter()
        .rev()
        .skip(1)
        .find(|e| extract_str(e, "label") != Some(new_label));
    let new_cps = entry_cps(new_entry);
    if let (Some(reference), Some(new)) = (reference, new_cps) {
        if let (Some(from), Some(base)) = (extract_str(reference, "label"), entry_cps(reference)) {
            if base > 0.0 {
                let _ = write!(
                    s,
                    ",\"speedup\":{{\"from\":\"{from}\",\"to\":\"{new_label}\",\
                     \"cycles_per_sec_ratio\":{:.3}}}",
                    new / base,
                );
            }
        }
    }
    s.push_str("}\n");
    s
}

fn bench_file_name(name: &str, quick: bool) -> String {
    if quick {
        format!("BENCH_{name}.quick.json")
    } else {
        format!("BENCH_{name}.json")
    }
}

/// Runs the benches and writes/updates the `BENCH_<name>.json` files.
/// Returns the human-readable summary for stdout.
///
/// # Errors
///
/// Returns a user-facing message on simulation failure, a determinism or
/// bit-exactness violation, or an unwritable output directory.
pub fn run_bench(opts: &BenchOptions) -> Result<String, String> {
    let reps: u32 = if opts.quick { 2 } else { 3 };
    let (mem_4a, _) = figure_mem("4a");
    let benches: Vec<(&str, MemConfig, Vec<BenchPoint>)> = {
        let mut b = Vec::new();
        let want = |n: &str| opts.only.as_deref().is_none_or(|o| o == n);
        if want("full_livermore") {
            b.push((
                "full_livermore",
                mem_4a,
                livermore_points(opts.quick, reps, opts.batch)?,
            ));
        }
        if want("synthetic") {
            b.push((
                "synthetic",
                MemConfig::default(),
                synthetic_points(opts.quick, reps, opts.batch)?,
            ));
        }
        if want("asm_matmul") {
            b.push((
                "asm_matmul",
                mem_4a,
                asm_matmul_points(opts.quick, reps, opts.batch)?,
            ));
        }
        b
    };

    let mut out = String::new();
    for (name, mem, points) in &benches {
        let entry = render_entry(&opts.label, reps, points);
        let path = std::path::Path::new(&opts.dir).join(bench_file_name(name, opts.quick));
        let prior = match std::fs::read_to_string(&path) {
            Ok(text) => extract_entries(&text),
            Err(_) => Vec::new(),
        };
        for prev in &prior {
            if extract_str(prev, "label") != Some(opts.label.as_str()) {
                check_cross_entry(prev, &entry).map_err(|e| format!("{name}: {e}"))?;
            }
        }
        let file = render_file(name, mem, &prior, &opts.label, &entry);
        std::fs::write(&path, &file)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;

        let sum_cycles: u64 = points.iter().map(|p| p.stats.cycles).sum();
        let sum_wall: f64 = points.iter().map(|p| p.wall.as_secs_f64()).sum();
        let _ = writeln!(
            out,
            "{name}: {} points, {sum_cycles} cycles in {:.1} ms \
             ({:.2} Mcycles/s) -> {}",
            points.len(),
            sum_wall * 1e3,
            sum_cycles as f64 / sum_wall / 1e6,
            path.display(),
        );
        if let Some(ratio) = extract_num(&file, "cycles_per_sec_ratio") {
            let from = extract_str(&file, "from").unwrap_or("baseline");
            let _ = writeln!(out, "{name}: speedup vs {from} {ratio:.3}x");
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn bench_args_parse() {
        let o = parse_bench_args(&args("--quick --label baseline --dir out")).unwrap();
        assert!(o.quick);
        assert_eq!(o.label, "baseline");
        assert_eq!(o.dir, "out");
        assert!(o.only.is_none());

        let o = parse_bench_args(&args("--bench synthetic")).unwrap();
        assert_eq!(o.only.as_deref(), Some("synthetic"));
        assert_eq!(o.label, "current");
        assert_eq!(o.batch, 1);

        let o = parse_bench_args(&args("--batch 16")).unwrap();
        assert_eq!(o.batch, 16);

        assert!(parse_bench_args(&args("--bench warp")).is_err());
        assert!(parse_bench_args(&args("--label")).is_err());
        assert!(parse_bench_args(&args("--batch 0")).is_err());
        assert!(parse_bench_args(&args("--batch riches")).is_err());
        assert!(parse_bench_args(&args("--bogus")).is_err());
    }

    fn fake_point(engine: &'static str, cache: u32, cycles: u64) -> BenchPoint {
        BenchPoint {
            engine,
            cache_bytes: cache,
            workload: "livermore".to_string(),
            stats: SimStats {
                cycles,
                instructions_issued: cycles / 2,
                ..SimStats::default()
            },
            wall: Duration::from_millis(10),
        }
    }

    #[test]
    fn entry_json_shape() {
        let points = vec![
            fake_point("conventional", 64, 1000),
            fake_point("16-16", 64, 900),
        ];
        let e = render_entry("baseline", 3, &points);
        assert!(e.starts_with("{\"label\":\"baseline\""));
        assert!(e.contains("\"sum_cycles\":1900"));
        assert_eq!(e.matches('{').count(), e.matches('}').count());
        assert_eq!(
            extract_point_cycles(&e),
            vec![
                (
                    "conventional".to_string(),
                    64,
                    "livermore".to_string(),
                    1000
                ),
                ("16-16".to_string(), 64, "livermore".to_string(), 900),
            ]
        );
    }

    #[test]
    fn file_roundtrip_preserves_entries() {
        let mem = MemConfig::default();
        let p1 = vec![fake_point("conventional", 64, 1000)];
        let e1 = render_entry("baseline", 3, &p1);
        let f1 = render_file("full_livermore", &mem, &[], "baseline", &e1);
        assert!(f1.contains("\"schema\":\"pipe-bench-v1\""));
        let prior = extract_entries(&f1);
        assert_eq!(prior, vec![e1.clone()]);

        let e2 = render_entry("optimized", 3, &p1);
        let f2 = render_file("full_livermore", &mem, &prior, "optimized", &e2);
        let both = extract_entries(&f2);
        assert_eq!(both.len(), 2);
        assert_eq!(extract_str(&both[0], "label"), Some("baseline"));
        assert_eq!(extract_str(&both[1], "label"), Some("optimized"));
        assert!(f2.contains("\"cycles_per_sec_ratio\":1.000"), "{f2}");

        // Re-running with the same label replaces, not duplicates.
        let f3 = render_file("full_livermore", &mem, &both, "optimized", &e2);
        assert_eq!(extract_entries(&f3).len(), 2);
    }

    #[test]
    fn cross_entry_gate_catches_cycle_drift() {
        let base = render_entry("baseline", 3, &[fake_point("conventional", 64, 1000)]);
        let same = render_entry("next", 3, &[fake_point("conventional", 64, 1000)]);
        let drift = render_entry("next", 3, &[fake_point("conventional", 64, 1001)]);
        let other = render_entry("next", 3, &[fake_point("conventional", 512, 7)]);
        assert!(check_cross_entry(&base, &same).is_ok());
        assert!(check_cross_entry(&base, &drift).is_err());
        // Disjoint point sets only compare the (empty) intersection.
        assert!(check_cross_entry(&base, &other).is_ok());
    }

    #[test]
    fn quick_files_are_separate() {
        assert_eq!(bench_file_name("synthetic", false), "BENCH_synthetic.json");
        assert_eq!(
            bench_file_name("synthetic", true),
            "BENCH_synthetic.quick.json"
        );
    }

    #[test]
    fn quick_synthetic_bench_runs_end_to_end() {
        let tmp = std::env::temp_dir().join(format!("pipe-bench-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        std::fs::create_dir_all(&tmp).unwrap();
        let opts = BenchOptions {
            quick: true,
            label: "t1".to_string(),
            dir: tmp.to_string_lossy().into_owned(),
            only: Some("synthetic".to_string()),
            batch: 1,
        };
        let out = run_bench(&opts).unwrap();
        assert!(out.contains("synthetic:"), "{out}");
        let text = std::fs::read_to_string(tmp.join("BENCH_synthetic.quick.json")).unwrap();
        assert!(text.contains("\"schema\":\"pipe-bench-v1\""));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        // Second run under a new label must pass the cross-entry gate and
        // accumulate a second entry.
        let opts2 = BenchOptions {
            label: "t2".to_string(),
            ..opts.clone()
        };
        run_bench(&opts2).unwrap();
        let text = std::fs::read_to_string(tmp.join("BENCH_synthetic.quick.json")).unwrap();
        assert_eq!(extract_entries(&text).len(), 2);
        // A batched run must pass the cross-entry gate against both
        // scalar entries: the lanes simulate bit-identically.
        let opts3 = BenchOptions {
            label: "t3-batched".to_string(),
            batch: 3,
            ..opts
        };
        run_bench(&opts3).unwrap();
        let text = std::fs::read_to_string(tmp.join("BENCH_synthetic.quick.json")).unwrap();
        assert_eq!(extract_entries(&text).len(), 3);
        // The speedup block chains from the most recent prior label.
        assert!(
            text.contains("\"from\":\"t2\",\"to\":\"t3-batched\""),
            "{text}"
        );
        let _ = std::fs::remove_dir_all(&tmp);
    }
}
