//! `pipe-asm` — assemble a PIPE program; print disassembly or hex.

use std::process::ExitCode;

use pipe_asm::{disassemble, Assembler};
use pipe_cli::{hex_dump, parse_asm_args, ASM_USAGE};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{ASM_USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_asm_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pipe-asm: {e}\n\n{ASM_USAGE}");
            return ExitCode::from(2);
        }
    };
    let source = match std::fs::read_to_string(&opts.input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pipe-asm: cannot read {}: {e}", opts.input);
            return ExitCode::FAILURE;
        }
    };
    let program = match Assembler::new(opts.format).assemble(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("pipe-asm: {}: {e}", opts.input);
            return ExitCode::FAILURE;
        }
    };
    if let Some(out) = &opts.output {
        if let Err(e) = std::fs::write(out, pipe_isa::write_program(&program)) {
            eprintln!("pipe-asm: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("; wrote {out}");
    }
    if opts.hex {
        print!("{}", hex_dump(&program));
    } else {
        print!("{}", disassemble(&program));
    }
    println!(
        "; {} instructions, {} bytes",
        program.static_count(),
        program.code_bytes()
    );
    ExitCode::SUCCESS
}
