//! `pipe-sim` — assemble and run a PIPE program. See `--help`.

use std::process::ExitCode;

use pipe_cli::{parse_sim_args, SIM_USAGE};
use pipe_core::{Processor, TextTrace};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{SIM_USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_sim_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pipe-sim: {e}\n\n{SIM_USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.sweep.is_some() {
        return match pipe_cli::run_sweep(&opts) {
            Ok(table) => {
                print!("{table}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("pipe-sim: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let program = if opts.livermore {
        let suite = pipe_workloads::livermore_benchmark();
        println!(
            "running the Livermore benchmark ({} instructions)",
            suite.expected_instructions()
        );
        suite.program().clone()
    } else {
        let path = opts.input.as_deref().expect("validated");
        match pipe_cli::load_program(path, opts.format) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("pipe-sim: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    if opts.compare {
        let rows =
            pipe_cli::run_comparison(&program, &opts.config, opts.cache_bytes, opts.line_bytes);
        print!("{}", pipe_cli::render_comparison(&rows));
        return ExitCode::SUCCESS;
    }

    let mut proc = match Processor::new(&program, &opts.config) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("pipe-sim: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.trace {
        proc.set_trace(Box::new(TextTrace::new(std::io::stderr())));
    }
    match proc.run() {
        Ok(stats) => {
            if opts.json {
                println!("{}", pipe_cli::stats_json(&stats));
            } else {
                println!("{stats}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pipe-sim: {e}");
            let [laq, ldq, saq, sdq, inflight, fpu] = proc.queue_snapshot();
            eprintln!(
                "state at abort: LAQ {laq}, LDQ {ldq}, SAQ {saq}, SDQ {sdq}, \
                 in-flight loads {inflight}, pending FPU {fpu}"
            );
            eprintln!("{}", proc.stats());
            ExitCode::FAILURE
        }
    }
}
