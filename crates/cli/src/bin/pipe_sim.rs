//! `pipe-sim` — assemble and run a PIPE program. See `--help`.

use std::cell::RefCell;
use std::process::ExitCode;
use std::rc::Rc;

use pipe_cli::{parse_sim_args, SimOptions, REPLAY_USAGE, SIM_USAGE, STORE_USAGE};
use pipe_core::{MultiSink, Processor, TextTrace, TraceSink};
use pipe_trace::{TraceMeta, TraceRecorder};

type FileRecorder = Rc<RefCell<TraceRecorder<std::io::BufWriter<std::fs::File>>>>;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // Subcommands first, so `pipe-sim replay --help` shows the replay
    // usage rather than the run usage.
    match args.first().map(String::as_str) {
        Some("replay") => return replay_main(&args[1..]),
        Some("store") => return store_main(&args[1..]),
        Some("bench") => return bench_main(&args[1..]),
        Some("serve") => return serve_main(&args[1..]),
        Some("request") => return request_main(&args[1..]),
        Some("cluster") => return cluster_main(&args[1..]),
        Some("asm") => return asm_main(&args[1..]),
        // `run` is an explicit alias for the default mode, so piped
        // invocations read naturally: pipe-sim asm m.s | pipe-sim run -
        Some("run") => {
            args.remove(0);
        }
        _ => {}
    }

    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{SIM_USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_sim_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pipe-sim: {e}\n\n{SIM_USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.sweep.is_some() {
        return match pipe_cli::run_sweep(&opts) {
            Ok(table) => {
                print!("{table}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("pipe-sim: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let (program, workload_key) = if opts.livermore {
        let suite = pipe_workloads::livermore_benchmark();
        println!(
            "running the Livermore benchmark ({} instructions)",
            suite.expected_instructions()
        );
        let key = pipe_experiments::WorkloadSpec::livermore().key();
        (suite.program().clone(), key)
    } else {
        let path = opts.input.as_deref().expect("validated");
        let loaded = if opts.from_asm {
            pipe_cli::load_asm_program(path, opts.format)
        } else {
            pipe_cli::load_program(path, opts.format)
        };
        match loaded {
            Ok(p) => (p, format!("file:{path}")),
            Err(e) => {
                eprintln!("pipe-sim: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    if opts.compare {
        let rows =
            pipe_cli::run_comparison(&program, &opts.config, opts.cache_bytes, opts.line_bytes);
        print!("{}", pipe_cli::render_comparison(&rows));
        return ExitCode::SUCCESS;
    }

    let proc = match Processor::new(&program, &opts.config) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("pipe-sim: {e}");
            return ExitCode::FAILURE;
        }
    };

    let recorder = match &opts.record_trace {
        Some(path) => {
            let meta = TraceMeta {
                workload: workload_key,
                program_fnv: pipe_trace::program_fnv(&program),
                entry_pc: program.entry(),
                fetch_key: opts.config.fetch.cache_key(),
                mem_key: pipe_experiments::mem_key(&opts.config.mem),
            };
            match TraceRecorder::create(std::path::Path::new(path), &meta) {
                Ok(rec) => Some(Rc::new(RefCell::new(rec))),
                Err(e) => {
                    eprintln!("pipe-sim: cannot record to {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    // With no sink requested, run the monomorphized no-trace processor;
    // otherwise switch to a boxed sink chosen at runtime.
    let sink: Option<Box<dyn TraceSink>> = match (&recorder, opts.trace) {
        (Some(rec), true) => {
            let mut sink = MultiSink::new();
            sink.push(Box::new(Rc::clone(rec)));
            sink.push(Box::new(TextTrace::new(std::io::stderr())));
            Some(Box::new(sink))
        }
        (Some(rec), false) => Some(Box::new(Rc::clone(rec))),
        (None, true) => Some(Box::new(TextTrace::new(std::io::stderr()))),
        (None, false) => None,
    };
    match sink {
        Some(sink) => run_and_report(proc.with_trace(sink), &recorder, &opts),
        None => run_and_report(proc, &recorder, &opts),
    }
}

fn run_and_report<S: TraceSink>(
    mut proc: Processor<S>,
    recorder: &Option<FileRecorder>,
    opts: &SimOptions,
) -> ExitCode {
    match proc.run() {
        Ok(()) => {
            let stats = proc.stats();
            if let (Some(rec), Some(path)) = (recorder, &opts.record_trace) {
                match rec.borrow_mut().finish(stats.cycles) {
                    Ok((_, summary)) => {
                        println!("recorded {} instructions to {path}", summary.instructions);
                    }
                    Err(e) => {
                        eprintln!("pipe-sim: cannot finish trace {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if opts.json {
                println!("{}", pipe_cli::stats_json(stats));
            } else {
                println!("{stats}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pipe-sim: {e}");
            let [laq, ldq, saq, sdq, inflight, fpu] = proc.queue_snapshot();
            eprintln!(
                "state at abort: LAQ {laq}, LDQ {ldq}, SAQ {saq}, SDQ {sdq}, \
                 in-flight loads {inflight}, pending FPU {fpu}"
            );
            eprintln!("{}", proc.stats());
            ExitCode::FAILURE
        }
    }
}

fn asm_main(args: &[String]) -> ExitCode {
    use std::io::Write;
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", pipe_cli::ASM_CMD_USAGE);
        return ExitCode::SUCCESS;
    }
    let opts = match pipe_cli::parse_asm_cmd_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pipe-sim asm: {e}\n\n{}", pipe_cli::ASM_CMD_USAGE);
            return ExitCode::from(2);
        }
    };
    match pipe_cli::run_asm_command(&opts) {
        Ok(pipe_cli::AsmCmdOutput::Text(out)) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Ok(pipe_cli::AsmCmdOutput::Binary(bytes)) => {
            let mut stdout = std::io::stdout().lock();
            if let Err(e) = stdout.write_all(&bytes).and_then(|()| stdout.flush()) {
                eprintln!("pipe-sim asm: cannot write stdout: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pipe-sim asm: {e}");
            ExitCode::FAILURE
        }
    }
}

fn bench_main(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", pipe_cli::BENCH_USAGE);
        return ExitCode::SUCCESS;
    }
    let opts = match pipe_cli::parse_bench_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pipe-sim bench: {e}\n\n{}", pipe_cli::BENCH_USAGE);
            return ExitCode::from(2);
        }
    };
    match pipe_cli::run_bench(&opts) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pipe-sim bench: {e}");
            ExitCode::FAILURE
        }
    }
}

fn replay_main(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{REPLAY_USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = match pipe_cli::parse_replay_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pipe-sim replay: {e}\n\n{REPLAY_USAGE}");
            return ExitCode::from(2);
        }
    };
    match pipe_cli::run_replay(&opts) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pipe-sim replay: {e}");
            ExitCode::FAILURE
        }
    }
}

fn serve_main(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", pipe_cli::SERVE_USAGE);
        return ExitCode::SUCCESS;
    }
    let opts = match pipe_cli::parse_serve_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pipe-sim serve: {e}\n\n{}", pipe_cli::SERVE_USAGE);
            return ExitCode::from(2);
        }
    };
    match pipe_cli::run_serve(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pipe-sim serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn request_main(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", pipe_cli::REQUEST_USAGE);
        return ExitCode::SUCCESS;
    }
    let opts = match pipe_cli::parse_request_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pipe-sim request: {e}\n\n{}", pipe_cli::REQUEST_USAGE);
            return ExitCode::from(2);
        }
    };
    match pipe_cli::run_request(&opts) {
        Ok((out, ok)) => {
            print!("{out}");
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("pipe-sim request: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cluster_main(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", pipe_cli::CLUSTER_USAGE);
        return ExitCode::SUCCESS;
    }
    let command = match pipe_cli::parse_cluster_args(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("pipe-sim cluster: {e}\n\n{}", pipe_cli::CLUSTER_USAGE);
            return ExitCode::from(2);
        }
    };
    match pipe_cli::run_cluster(&command) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pipe-sim cluster: {e}");
            ExitCode::FAILURE
        }
    }
}

fn store_main(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{STORE_USAGE}");
        return ExitCode::SUCCESS;
    }
    match pipe_cli::run_store_command(args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pipe-sim store: {e}\n\n{STORE_USAGE}");
            ExitCode::from(2)
        }
    }
}
