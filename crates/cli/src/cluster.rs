//! `pipe-sim cluster` — drive a sweep across `pipe-serve` workers.

use std::path::PathBuf;
use std::time::Duration;

use pipe_cluster::{check_worker, serve_metrics, ClusterOutcome, Coordinator, WorkerReport};
use pipe_experiments::{ResultStore, SweepSpec, WorkloadSpec, ALL_FIGURES};
use pipe_isa::InstrFormat;
use pipe_server::{spawn, ServerConfig, ServerHandle};

/// The usage string for `pipe-sim cluster`.
pub const CLUSTER_USAGE: &str = "\
usage: pipe-sim cluster sweep [options]
       pipe-sim cluster status --worker ADDR [--worker ADDR ...]

Shards a figure sweep across pipe-serve workers by consistent hashing
of each point's canonical store key, merges the results into one result
store (byte-identical regardless of topology), and fails a dead
worker's shard over to the survivors. See docs/CLUSTER.md.

worker selection (sweep and status):
  --worker ADDR        a worker's host:port; repeatable
  --workers-file FILE  one worker address per line (# comments allowed)
  --spawn N            additionally spawn N local workers on ephemeral
                       ports for the duration of the run
  --inject-delay-ms N  spawned workers stretch every simulation by N ms
                       (fault injection for failover testing)

sweep options:
  --figure ID          the figure panel to sweep (4a..6b; default: 4a)
  --scale N            divide Livermore iteration counts by N (default: 1)
  --store DIR          merged result-store root      (default: results)
  --no-store           dispatch only; do not merge into a store
  --resume             skip points already in the merged store
  --jobs N             dispatch threads              (default: 4)
  --retries N          attempts per worker per point (default: 3)
  --backoff-ms N       initial retry backoff        (default: 50)
  --timeout-ms N       per-request timeout          (default: 30000)
  --metrics-addr H:P   serve the coordinator's /metrics and /healthz
                       on this address for the duration of the run
  --progress           per-point progress lines on stderr
";

/// Which cluster subcommand to run.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterCommand {
    /// Run a sweep across the workers.
    Sweep(ClusterSweepOptions),
    /// Probe each worker's health and compatibility.
    Status(ClusterStatusOptions),
}

/// Options for `pipe-sim cluster sweep`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSweepOptions {
    /// Figure panel id ("4a".."6b").
    pub figure: String,
    /// Livermore iteration-count divisor.
    pub scale: u32,
    /// Explicit worker addresses.
    pub workers: Vec<String>,
    /// Local workers to spawn for the run.
    pub spawn: usize,
    /// Compute delay injected into spawned workers.
    pub inject_delay: Duration,
    /// Merged-store root (`None` with `--no-store`).
    pub store: Option<PathBuf>,
    /// Skip points already merged.
    pub resume: bool,
    /// Dispatch threads.
    pub jobs: usize,
    /// Attempts per worker per point.
    pub retries: u32,
    /// Initial retry backoff.
    pub backoff: Duration,
    /// Per-request timeout.
    pub timeout: Duration,
    /// Address for the coordinator's own metrics listener.
    pub metrics_addr: Option<String>,
    /// Per-point progress lines.
    pub progress: bool,
}

/// Options for `pipe-sim cluster status`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStatusOptions {
    /// Worker addresses to probe.
    pub workers: Vec<String>,
    /// Probe timeout.
    pub timeout: Duration,
}

/// Parses `pipe-sim cluster` arguments (excluding the subcommand name).
///
/// # Errors
///
/// Returns a user-facing message for unknown flags, missing values, or
/// an unreadable `--workers-file`.
pub fn parse_cluster_args(args: &[String]) -> Result<ClusterCommand, String> {
    let Some(verb) = args.first() else {
        return Err("no subcommand (sweep|status)".to_string());
    };
    let args = &args[1..];
    match verb.as_str() {
        "sweep" => parse_sweep(args).map(ClusterCommand::Sweep),
        "status" => parse_status(args).map(ClusterCommand::Status),
        other => Err(format!("unknown subcommand `{other}` (sweep|status)")),
    }
}

fn parse_sweep(args: &[String]) -> Result<ClusterSweepOptions, String> {
    let mut opts = ClusterSweepOptions {
        figure: "4a".to_string(),
        scale: 1,
        workers: Vec::new(),
        spawn: 0,
        inject_delay: Duration::ZERO,
        store: Some(PathBuf::from("results")),
        resume: false,
        jobs: 4,
        retries: 3,
        backoff: Duration::from_millis(50),
        timeout: Duration::from_secs(30),
        metrics_addr: None,
        progress: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--figure" => {
                let id = it.next().ok_or("--figure needs an id (4a..6b)")?;
                if !ALL_FIGURES.contains(&id.as_str()) {
                    return Err(format!("unknown figure `{id}` (4a..6b)"));
                }
                opts.figure = id.clone();
            }
            "--scale" => opts.scale = parse_u32("--scale", it.next())?.max(1),
            "--worker" => opts
                .workers
                .push(it.next().ok_or("--worker needs host:port")?.clone()),
            "--workers-file" => read_workers_file(it.next(), &mut opts.workers)?,
            "--spawn" => opts.spawn = parse_u32("--spawn", it.next())? as usize,
            "--inject-delay-ms" => {
                opts.inject_delay =
                    Duration::from_millis(parse_u64("--inject-delay-ms", it.next())?)
            }
            "--store" => {
                opts.store = Some(PathBuf::from(it.next().ok_or("--store needs a directory")?))
            }
            "--no-store" => opts.store = None,
            "--resume" => opts.resume = true,
            "--jobs" => opts.jobs = parse_u32("--jobs", it.next())?.max(1) as usize,
            "--retries" => opts.retries = parse_u32("--retries", it.next())?.max(1),
            "--backoff-ms" => {
                opts.backoff = Duration::from_millis(parse_u64("--backoff-ms", it.next())?)
            }
            "--timeout-ms" => {
                opts.timeout = Duration::from_millis(parse_u64("--timeout-ms", it.next())?.max(1))
            }
            "--metrics-addr" => {
                opts.metrics_addr = Some(it.next().ok_or("--metrics-addr needs host:port")?.clone())
            }
            "--progress" => opts.progress = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if opts.workers.is_empty() && opts.spawn == 0 {
        return Err("no workers (use --worker, --workers-file, or --spawn)".to_string());
    }
    Ok(opts)
}

fn parse_status(args: &[String]) -> Result<ClusterStatusOptions, String> {
    let mut opts = ClusterStatusOptions {
        workers: Vec::new(),
        timeout: Duration::from_secs(5),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--worker" => opts
                .workers
                .push(it.next().ok_or("--worker needs host:port")?.clone()),
            "--workers-file" => read_workers_file(it.next(), &mut opts.workers)?,
            "--timeout-ms" => {
                opts.timeout = Duration::from_millis(parse_u64("--timeout-ms", it.next())?.max(1))
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if opts.workers.is_empty() {
        return Err("no workers (use --worker or --workers-file)".to_string());
    }
    Ok(opts)
}

fn read_workers_file(path: Option<&String>, workers: &mut Vec<String>) -> Result<(), String> {
    let path = path.ok_or("--workers-file needs a file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    for line in text.lines() {
        let line = line.trim();
        if !line.is_empty() && !line.starts_with('#') {
            workers.push(line.to_string());
        }
    }
    Ok(())
}

fn parse_u32(flag: &str, value: Option<&String>) -> Result<u32, String> {
    let v = value.ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse()
        .map_err(|_| format!("{flag}: invalid number `{v}`"))
}

fn parse_u64(flag: &str, value: Option<&String>) -> Result<u64, String> {
    let v = value.ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse()
        .map_err(|_| format!("{flag}: invalid number `{v}`"))
}

/// Runs a cluster subcommand; returns the report text to print.
///
/// # Errors
///
/// Returns a user-facing message when the run cannot start (no workers,
/// incompatible workers, unbindable metrics address) or — for `sweep` —
/// when points failed (after printing what completed).
pub fn run_cluster(command: &ClusterCommand) -> Result<String, String> {
    match command {
        ClusterCommand::Sweep(opts) => run_cluster_sweep(opts),
        ClusterCommand::Status(opts) => Ok(run_cluster_status(opts)),
    }
}

fn run_cluster_sweep(opts: &ClusterSweepOptions) -> Result<String, String> {
    // Spawn local workers first so their addresses join the ring.
    let mut spawned: Vec<ServerHandle> = Vec::new();
    let mut addrs = opts.workers.clone();
    for _ in 0..opts.spawn {
        let handle = spawn(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            compute_delay: opts.inject_delay,
            ..ServerConfig::default()
        })
        .map_err(|e| format!("cannot spawn a local worker: {e}"))?;
        eprintln!("[cluster] spawned local worker on {}", handle.addr());
        addrs.push(handle.addr().to_string());
        spawned.push(handle);
    }

    let mut spec = SweepSpec::figure(&opts.figure);
    if opts.scale > 1 {
        spec.workload = WorkloadSpec::Livermore {
            format: InstrFormat::Fixed32,
            scale: opts.scale,
        };
    }

    let mut coordinator = Coordinator::new(addrs)
        .jobs(opts.jobs)
        .retry(opts.retries, opts.backoff)
        .timeout(opts.timeout)
        .resume(opts.resume)
        .progress(opts.progress);
    if let Some(root) = &opts.store {
        let store = ResultStore::open(root)
            .map_err(|e| format!("cannot open store {}: {e}", root.display()))?;
        coordinator = coordinator.store(store);
    }

    let metrics_server = match &opts.metrics_addr {
        Some(addr) => {
            let server = serve_metrics(addr, coordinator.metrics())
                .map_err(|e| format!("cannot serve metrics on {addr}: {e}"))?;
            eprintln!("[cluster] metrics on http://{}/metrics", server.addr());
            Some(server)
        }
        None => None,
    };

    let result = coordinator.run(&spec);

    if let Some(server) = metrics_server {
        server.shutdown();
    }
    for handle in spawned {
        let _ = handle.shutdown(opts.timeout);
    }

    let outcome = result.map_err(|e| e.to_string())?;
    let report = render_outcome(&spec.id, &outcome);
    if outcome.is_complete() {
        Ok(report)
    } else {
        // Print what completed, then fail the process.
        print!("{report}");
        Err(format!(
            "{} point(s) failed; first: {}",
            outcome.failed.len(),
            outcome.failed[0]
        ))
    }
}

/// Renders the sweep summary and the per-worker shard/latency table.
fn render_outcome(id: &str, outcome: &ClusterOutcome) -> String {
    let mut out = format!(
        "cluster sweep {id}: {} completed ({} worker cache hits), {} cached, \
         {} failed in {:.2}s{}\n\n",
        outcome.completed,
        outcome.worker_cache_hits,
        outcome.cached,
        outcome.failed.len(),
        outcome.wall.as_secs_f64(),
        if outcome.store_degraded {
            " [store degraded]"
        } else {
            ""
        },
    );
    out.push_str(&format!(
        "{:<22} {:<5} {:>8} {:>9} {:>7} {:>11} {:>7} {:>7}\n",
        "worker", "alive", "assigned", "completed", "retried", "failed-over", "mean-ms", "max-ms"
    ));
    for w in &outcome.workers {
        out.push_str(&render_worker_row(w));
    }
    for failed in &outcome.failed {
        out.push_str(&format!("FAILED {failed}\n"));
    }
    out
}

fn render_worker_row(w: &WorkerReport) -> String {
    format!(
        "{:<22} {:<5} {:>8} {:>9} {:>7} {:>11} {:>7} {:>7}\n",
        w.addr,
        if w.alive { "yes" } else { "DEAD" },
        w.assigned,
        w.completed,
        w.retried,
        w.failed_over,
        w.mean_ms(),
        w.max_ms,
    )
}

fn run_cluster_status(opts: &ClusterStatusOptions) -> String {
    let mut out = format!(
        "{:<22} {:<12} {:<10} {:>7} {:>9}  {}\n",
        "worker", "status", "version", "workers", "store", "detail"
    );
    for addr in &opts.workers {
        match check_worker(addr, opts.timeout) {
            Ok(info) => out.push_str(&format!(
                "{:<22} {:<12} {:<10} {:>7} {:>9}  store v{}\n",
                addr, "ok", info.version, info.workers, info.store_keys, info.store_version
            )),
            Err(e) => out.push_str(&format!(
                "{:<22} {:<12} {:<10} {:>7} {:>9}  {e}\n",
                addr, "UNAVAILABLE", "-", "-", "-"
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_args(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn sweep_defaults_and_flags() {
        let ClusterCommand::Sweep(opts) = parse_cluster_args(&to_args(&[
            "sweep",
            "--figure",
            "5b",
            "--scale",
            "20",
            "--worker",
            "10.0.0.1:7878",
            "--worker",
            "10.0.0.2:7878",
            "--jobs",
            "8",
            "--retries",
            "5",
            "--backoff-ms",
            "10",
            "--timeout-ms",
            "2000",
            "--resume",
            "--progress",
            "--metrics-addr",
            "127.0.0.1:0",
        ]))
        .unwrap() else {
            panic!("expected sweep");
        };
        assert_eq!(opts.figure, "5b");
        assert_eq!(opts.scale, 20);
        assert_eq!(opts.workers.len(), 2);
        assert_eq!(opts.jobs, 8);
        assert_eq!(opts.retries, 5);
        assert_eq!(opts.backoff, Duration::from_millis(10));
        assert_eq!(opts.timeout, Duration::from_secs(2));
        assert!(opts.resume && opts.progress);
        assert_eq!(opts.metrics_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(opts.store.as_deref(), Some("results".as_ref()));
    }

    #[test]
    fn sweep_requires_workers_and_valid_figure() {
        assert!(parse_cluster_args(&to_args(&["sweep"])).is_err());
        assert!(
            parse_cluster_args(&to_args(&["sweep", "--figure", "9z", "--spawn", "2"])).is_err()
        );
        assert!(parse_cluster_args(&to_args(&["sweep", "--spawn", "2"])).is_ok());
        assert!(parse_cluster_args(&to_args(&["teleport"])).is_err());
        assert!(parse_cluster_args(&[]).is_err());
    }

    #[test]
    fn workers_file_skips_comments_and_blanks() {
        let path = std::env::temp_dir().join(format!("pipe-workers-{}.txt", std::process::id()));
        std::fs::write(&path, "# fleet\n127.0.0.1:1\n\n  127.0.0.1:2  \n").unwrap();
        let ClusterCommand::Status(opts) = parse_cluster_args(&to_args(&[
            "status",
            "--workers-file",
            path.to_str().unwrap(),
        ]))
        .unwrap() else {
            panic!("expected status");
        };
        assert_eq!(opts.workers, vec!["127.0.0.1:1", "127.0.0.1:2"]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn status_renders_unreachable_workers() {
        let opts = ClusterStatusOptions {
            workers: vec!["127.0.0.1:1".to_string()],
            timeout: Duration::from_millis(200),
        };
        let out = run_cluster_status(&opts);
        assert!(out.contains("UNAVAILABLE"), "{out}");
    }
}
