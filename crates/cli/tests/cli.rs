//! End-to-end tests of the `pipe-sim` and `pipe-asm` binaries.

use std::io::Write;
use std::process::Command;

const PROGRAM: &str = "\
lim r1, 5
lbr b0, top
top: subi r1, r1, 1
pbr.nez b0, r1, 0
halt
";

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("pipe-cli-test-{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(contents.as_bytes()).expect("write temp file");
    path
}

fn pipe_sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pipe-sim"))
}

fn pipe_asm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pipe-asm"))
}

#[test]
fn sim_runs_a_program() {
    let src = write_temp("run.s", PROGRAM);
    let out = pipe_sim().arg(&src).output().expect("spawn pipe-sim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("instructions:  13"), "{stdout}");
}

#[test]
fn sim_json_output() {
    let src = write_temp("json.s", PROGRAM);
    let out = pipe_sim().arg(&src).arg("--json").output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"instructions\":13"), "{stdout}");
}

#[test]
fn sim_compare_lists_strategies() {
    let src = write_temp("cmp.s", PROGRAM);
    let out = pipe_sim()
        .args([src.to_str().unwrap(), "--compare", "--cache", "32"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for needle in ["perfect", "conventional", "pipe", "tib", "buffers"] {
        assert!(stdout.contains(needle), "missing {needle}: {stdout}");
    }
}

#[test]
fn sim_rejects_bad_flags_with_usage() {
    let out = pipe_sim().arg("--bogus").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn sim_reports_assembly_errors_with_line() {
    let src = write_temp("bad.s", "nop\nbogus r1\n");
    let out = pipe_sim().arg(&src).output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("line 2"), "{stderr}");
}

#[test]
fn asm_disassembles() {
    let src = write_temp("dis.s", PROGRAM);
    let out = pipe_asm().arg(&src).output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("top:"), "{stdout}");
    assert!(stdout.contains("pbr.nez"), "{stdout}");
    assert!(stdout.contains("5 instructions"), "{stdout}");
}

#[test]
fn asm_binary_roundtrips_through_sim() {
    let src = write_temp("bin.s", PROGRAM);
    let bin = std::env::temp_dir().join(format!("pipe-cli-test-{}.bin", std::process::id()));
    let out = pipe_asm()
        .args([src.to_str().unwrap(), "-o", bin.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = pipe_sim().arg(&bin).output().expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("instructions:  13"), "{stdout}");
}

#[test]
fn sim_timeout_reports_queue_snapshot() {
    // A store with no data deadlocks; the abort dump names the queues.
    let src = write_temp("stuck.s", "lim r1, 0x100\nsta r1, 0\nhalt\n");
    let out = pipe_sim()
        .args([src.to_str().unwrap(), "--max-cycles", "500"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("SAQ 1"), "{stderr}");
}

#[test]
fn help_flags() {
    for mut cmd in [pipe_sim(), pipe_asm()] {
        let out = cmd.arg("--help").output().expect("spawn");
        assert!(out.status.success());
        assert!(String::from_utf8(out.stdout).unwrap().contains("usage:"));
    }
}
