//! End-to-end fault tolerance: the ISSUE's acceptance scenario. A sweep
//! with one injected worker panic and one injected store-write failure
//! completes every other job, reports the failed point in both the
//! outcome and the JSONL event log, and keeps every successful cycle
//! count bit-identical to a serial, fault-free run.

use pipe_experiments::{
    FaultInjection, JobError, ResultStore, StrategyKind, SweepError, SweepRunner, SweepSpec,
    WorkloadSpec,
};
use pipe_icache::PrefetchPolicy;
use pipe_isa::InstrFormat;
use pipe_mem::MemConfig;

fn spec(id: &str) -> SweepSpec {
    SweepSpec {
        id: id.to_string(),
        strategies: vec![StrategyKind::Conventional, StrategyKind::Pipe16x16],
        cache_sizes: vec![32, 64, 128],
        mem: MemConfig {
            access_cycles: 3,
            ..MemConfig::default()
        },
        policy: PrefetchPolicy::TruePrefetch,
        workload: WorkloadSpec::TightLoop {
            body: 6,
            trips: 30,
            format: InstrFormat::Fixed32,
        },
    }
}

#[test]
fn panic_plus_store_failure_yields_partial_outcome_with_identical_survivors() {
    let dir = std::env::temp_dir().join(format!("pipe-ft-accept-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let serial: Vec<(String, u32, u64)> = SweepRunner::new()
        .run(&spec("accept"))
        .series
        .iter()
        .flat_map(|s| {
            s.points
                .iter()
                .map(|p| (s.label.clone(), p.cache_bytes, p.cycles))
                .collect::<Vec<_>>()
        })
        .collect();
    assert_eq!(serial.len(), 6);

    let outcome = SweepRunner::new()
        .jobs(4)
        .store(ResultStore::open(&dir).unwrap())
        .events(&dir)
        .inject(FaultInjection {
            panic_jobs: vec![2],
            store_fail_jobs: vec![4],
        })
        .run(&spec("accept"));

    // Exactly the panicked job failed; the store-failing job succeeded.
    assert_eq!(outcome.failed.len(), 1);
    assert_eq!(outcome.failed[0].index, 2);
    assert!(matches!(outcome.failed[0].error, JobError::Panic(_)));
    assert_eq!(outcome.computed, 5);
    assert!(outcome.store_degraded);

    // Every surviving point is bit-identical to the serial run.
    for s in &outcome.series {
        for p in &s.points {
            assert!(
                serial.contains(&(s.label.clone(), p.cache_bytes, p.cycles)),
                "{} @ {}B diverged from serial",
                s.label,
                p.cache_bytes
            );
        }
    }

    // The event log records the failure, the degradation, and a partial
    // run summary.
    let events = std::fs::read_to_string(outcome.events_path.as_ref().unwrap()).unwrap();
    assert_eq!(
        events
            .lines()
            .filter(|l| l.contains("\"event\":\"job_failed\""))
            .count(),
        1
    );
    assert!(events.contains("\"event\":\"store_degraded\""));
    let last = events.lines().last().unwrap();
    assert!(last.contains("\"event\":\"run_finish\"") && last.contains("\"failed\":1"));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn strict_mode_aborts_with_typed_error() {
    let err = SweepRunner::new()
        .strict(true)
        .inject(FaultInjection {
            panic_jobs: vec![0],
            ..FaultInjection::default()
        })
        .try_run(&spec("accept-strict"))
        .unwrap_err();
    let SweepError::Strict(partial) = &err;
    assert_eq!(partial.failed.len(), 1);
    assert!(!partial.is_complete());
}
