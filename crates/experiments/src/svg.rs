//! SVG rendering of reproduced figures — paper-style line charts with no
//! external dependencies.
//!
//! The paper plots total execution time (linear y) against cache size
//! (logarithmic x, 16–512 bytes). [`render_figure_svg`] reproduces that
//! layout: one polyline per strategy, point markers, axis ticks, and a
//! legend.

use crate::figures::Figure;
use crate::matrix::sweep_sizes;

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 480.0;
const MARGIN_LEFT: f64 = 90.0;
const MARGIN_RIGHT: f64 = 170.0;
const MARGIN_TOP: f64 = 60.0;
const MARGIN_BOTTOM: f64 = 60.0;

/// Curve colors, one per series (colorblind-safe-ish hues).
const COLORS: [&str; 6] = [
    "#444444", "#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00",
];

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Maps a cache size onto the logarithmic x axis.
fn x_pos(size: u32, sizes: &[u32]) -> f64 {
    let lo = (*sizes.first().expect("nonempty") as f64).log2();
    let hi = (*sizes.last().expect("nonempty") as f64).log2();
    let t = ((size as f64).log2() - lo) / (hi - lo);
    MARGIN_LEFT + t * (WIDTH - MARGIN_LEFT - MARGIN_RIGHT)
}

/// Maps a cycle count onto the linear y axis (0 at the bottom).
fn y_pos(cycles: u64, max: u64) -> f64 {
    let t = cycles as f64 / max as f64;
    HEIGHT - MARGIN_BOTTOM - t * (HEIGHT - MARGIN_TOP - MARGIN_BOTTOM)
}

/// Picks a round tick step so the y axis gets 4–8 labeled ticks.
fn y_tick_step(max: u64) -> u64 {
    let mut step = 1u64;
    loop {
        for mult in [1, 2, 5] {
            let candidate = step * mult;
            if max / candidate <= 8 {
                return candidate;
            }
        }
        step *= 10;
    }
}

/// Renders a [`Figure`] as a self-contained SVG document.
pub fn render_figure_svg(fig: &Figure) -> String {
    let sizes = sweep_sizes();
    let max_cycles = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.cycles))
        .max()
        .unwrap_or(1)
        .max(1);
    // Round the axis top up to a tick boundary.
    let step = y_tick_step(max_cycles);
    let y_max = max_cycles.div_ceil(step) * step;

    let mut svg = String::new();
    svg.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
    ));
    svg.push('\n');
    svg.push_str(&format!(
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    ));
    svg.push('\n');

    // Title.
    svg.push_str(&format!(
        r#"<text x="{}" y="28" font-size="15" text-anchor="middle">{}</text>"#,
        (MARGIN_LEFT + WIDTH - MARGIN_RIGHT) / 2.0,
        xml_escape(&fig.title)
    ));
    svg.push('\n');

    // Axes.
    let x0 = MARGIN_LEFT;
    let x1 = WIDTH - MARGIN_RIGHT;
    let y0 = HEIGHT - MARGIN_BOTTOM;
    let y1 = MARGIN_TOP;
    svg.push_str(&format!(
        r#"<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="black"/>"#
    ));
    svg.push_str(&format!(
        r#"<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="black"/>"#
    ));
    svg.push('\n');

    // X ticks: the swept cache sizes.
    for &size in sizes {
        let x = x_pos(size, sizes);
        svg.push_str(&format!(
            r#"<line x1="{x}" y1="{y0}" x2="{x}" y2="{}" stroke="black"/>"#,
            y0 + 5.0
        ));
        svg.push_str(&format!(
            r#"<text x="{x}" y="{}" font-size="12" text-anchor="middle">{size}</text>"#,
            y0 + 20.0
        ));
        svg.push('\n');
    }
    svg.push_str(&format!(
        r#"<text x="{}" y="{}" font-size="13" text-anchor="middle">cache size (bytes)</text>"#,
        (x0 + x1) / 2.0,
        HEIGHT - 15.0
    ));
    svg.push('\n');

    // Y ticks.
    let mut tick = 0u64;
    while tick <= y_max {
        let y = y_pos(tick, y_max);
        svg.push_str(&format!(
            r#"<line x1="{}" y1="{y}" x2="{x0}" y2="{y}" stroke="black"/>"#,
            x0 - 5.0
        ));
        svg.push_str(&format!(
            r##"<line x1="{x0}" y1="{y}" x2="{x1}" y2="{y}" stroke="#dddddd"/>"##
        ));
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" font-size="12" text-anchor="end">{}k</text>"#,
            x0 - 10.0,
            y + 4.0,
            tick / 1000
        ));
        svg.push('\n');
        tick += step;
    }
    svg.push_str(&format!(
        r#"<text x="20" y="{}" font-size="13" text-anchor="middle" transform="rotate(-90 20 {})">total cycles</text>"#,
        (y0 + y1) / 2.0,
        (y0 + y1) / 2.0
    ));
    svg.push('\n');

    // Series.
    for (i, s) in fig.series.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let pts: Vec<(f64, f64)> = s
            .points
            .iter()
            .map(|p| (x_pos(p.cache_bytes, sizes), y_pos(p.cycles, y_max)))
            .collect();
        if pts.len() > 1 {
            let path: Vec<String> = pts.iter().map(|(x, y)| format!("{x:.1},{y:.1}")).collect();
            svg.push_str(&format!(
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                path.join(" ")
            ));
            svg.push('\n');
        }
        for (x, y) in &pts {
            svg.push_str(&format!(
                r#"<circle cx="{x:.1}" cy="{y:.1}" r="3.5" fill="{color}"/>"#
            ));
        }
        svg.push('\n');
        // Legend entry.
        let ly = MARGIN_TOP + 20.0 * i as f64;
        let lx = WIDTH - MARGIN_RIGHT + 20.0;
        svg.push_str(&format!(
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
            lx + 24.0
        ));
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" font-size="12">{}</text>"#,
            lx + 30.0,
            ly + 4.0,
            xml_escape(&s.label)
        ));
        svg.push('\n');
    }

    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Series;
    use crate::matrix::StrategyKind;
    use crate::runner::ExperimentPoint;
    use pipe_core::SimStats;
    use pipe_mem::MemConfig;

    fn fake_figure() -> Figure {
        let mk = |kind: StrategyKind, pts: &[(u32, u64)]| Series {
            label: kind.label().to_string(),
            kind,
            points: pts
                .iter()
                .map(|&(cache_bytes, cycles)| ExperimentPoint {
                    cache_bytes,
                    cycles,
                    stats: SimStats::default(),
                })
                .collect(),
        };
        Figure {
            id: "test".into(),
            title: "Figure <test> & co".into(),
            mem: MemConfig::default(),
            series: vec![
                mk(
                    StrategyKind::Conventional,
                    &[(16, 1_400_000), (64, 1_000_000), (512, 450_000)],
                ),
                mk(StrategyKind::Pipe16x16, &[(16, 700_000), (512, 420_000)]),
            ],
        }
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = render_figure_svg(&fake_figure());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 5);
        // Title XML-escaped.
        assert!(svg.contains("&lt;test&gt; &amp; co"));
        // Legend labels present.
        assert!(svg.contains("conventional"));
        assert!(svg.contains("16-16"));
    }

    #[test]
    fn coordinates_stay_in_viewport() {
        let svg = render_figure_svg(&fake_figure());
        for cap in svg.split("cx=\"").skip(1) {
            let x: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=WIDTH).contains(&x), "x {x} out of viewport");
        }
        for cap in svg.split("cy=\"").skip(1) {
            let y: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=HEIGHT).contains(&y), "y {y} out of viewport");
        }
    }

    #[test]
    fn tick_steps_are_round() {
        assert_eq!(y_tick_step(7), 1);
        assert_eq!(y_tick_step(80), 10);
        assert_eq!(y_tick_step(450_000), 100_000);
        assert_eq!(y_tick_step(1_500_000), 200_000);
    }

    #[test]
    fn log_x_spacing() {
        let sizes = sweep_sizes();
        let a = x_pos(16, sizes);
        let b = x_pos(32, sizes);
        let c = x_pos(64, sizes);
        assert!((b - a - (c - b)).abs() < 1e-9, "doubling steps are equal");
    }
}
