//! Bounded retry with exponential backoff.
//!
//! The fault-tolerance machinery introduced with the sweep engine retries
//! transient failures — store writes, and now HTTP dispatch in the
//! request CLI and the cluster coordinator — a bounded number of times
//! with a doubling delay between attempts. [`BackoffPolicy`] is that
//! loop, extracted so every retry site shares one implementation and one
//! set of semantics:
//!
//! - `attempts` is the **total** number of tries (a policy of 3 sleeps at
//!   most twice),
//! - the delay starts at `initial` and doubles after every failed
//!   attempt,
//! - the caller's `on_retry` observer runs before each sleep and may
//!   override the delay (e.g. with a server-provided `Retry-After`), or
//!   veto further retries entirely.
//!
//! ```
//! use pipe_experiments::BackoffPolicy;
//! use std::time::Duration;
//!
//! let policy = BackoffPolicy::new(3, Duration::from_millis(1));
//! let mut calls = 0;
//! let result: Result<u32, &str> = policy.run(
//!     |_attempt| {
//!         calls += 1;
//!         if calls < 3 {
//!             Err("transient")
//!         } else {
//!             Ok(42)
//!         }
//!     },
//!     |_attempt, _err| pipe_experiments::backoff::Retry::After(None),
//! );
//! assert_eq!(result, Ok(42));
//! assert_eq!(calls, 3);
//! ```

use std::time::Duration;

/// What to do after a failed attempt, decided by the caller's `on_retry`
/// observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retry {
    /// Retry after the given delay, or after the policy's own doubling
    /// delay when `None`. A server-provided `Retry-After` plugs in here.
    After(Option<Duration>),
    /// The error is not transient; stop retrying and surface it now.
    Abort,
}

/// A bounded exponential-backoff retry policy: up to `attempts` total
/// tries, sleeping `initial`, `2·initial`, `4·initial`, ... between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    attempts: u32,
    initial: Duration,
}

impl BackoffPolicy {
    /// A policy of `attempts` total tries (clamped to at least 1) with a
    /// first inter-attempt delay of `initial`.
    pub fn new(attempts: u32, initial: Duration) -> BackoffPolicy {
        BackoffPolicy {
            attempts: attempts.max(1),
            initial,
        }
    }

    /// The policy the sweep engine has always used for store writes:
    /// 3 attempts starting at 10 ms.
    pub fn store_default() -> BackoffPolicy {
        BackoffPolicy::new(3, Duration::from_millis(10))
    }

    /// Total number of tries this policy makes.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// The delay slept after failed attempt `attempt` (1-based):
    /// `initial · 2^(attempt-1)`, saturating.
    pub fn delay_after(&self, attempt: u32) -> Duration {
        self.initial
            .saturating_mul(2u32.saturating_pow(attempt.saturating_sub(1)))
    }

    /// Runs `op` until it succeeds or the attempts are exhausted.
    ///
    /// `op` receives the 1-based attempt number. After each failure that
    /// is not the last attempt, `on_retry` observes the attempt number
    /// and the error; it returns a [`Retry`] directive — sleep the
    /// policy delay, sleep an overridden delay, or abort. The final
    /// attempt's error (or the error at abort) is returned as-is.
    ///
    /// # Errors
    ///
    /// The last error `op` produced, when no attempt succeeded.
    pub fn run<T, E>(
        &self,
        mut op: impl FnMut(u32) -> Result<T, E>,
        mut on_retry: impl FnMut(u32, &E) -> Retry,
    ) -> Result<T, E> {
        let mut attempt = 1;
        loop {
            match op(attempt) {
                Ok(value) => return Ok(value),
                Err(e) => {
                    if attempt >= self.attempts {
                        return Err(e);
                    }
                    match on_retry(attempt, &e) {
                        Retry::Abort => return Err(e),
                        Retry::After(delay) => {
                            std::thread::sleep(delay.unwrap_or_else(|| self.delay_after(attempt)));
                        }
                    }
                }
            }
            attempt += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast(attempts: u32) -> BackoffPolicy {
        BackoffPolicy::new(attempts, Duration::from_millis(1))
    }

    #[test]
    fn first_success_returns_immediately() {
        let mut calls = 0;
        let r: Result<_, ()> = fast(5).run(
            |_| {
                calls += 1;
                Ok("done")
            },
            |_, _| panic!("no retry on success"),
        );
        assert_eq!(r, Ok("done"));
        assert_eq!(calls, 1);
    }

    #[test]
    fn exhaustion_returns_the_last_error() {
        let mut retries = Vec::new();
        let r: Result<(), String> = fast(3).run(
            |attempt| Err(format!("fail {attempt}")),
            |attempt, _| {
                retries.push(attempt);
                Retry::After(None)
            },
        );
        assert_eq!(r, Err("fail 3".to_string()));
        // on_retry runs after every failure except the last.
        assert_eq!(retries, vec![1, 2]);
    }

    #[test]
    fn abort_stops_early() {
        let mut calls = 0;
        let r: Result<(), &str> = fast(10).run(
            |_| {
                calls += 1;
                Err("permanent")
            },
            |_, _| Retry::Abort,
        );
        assert_eq!(r, Err("permanent"));
        assert_eq!(calls, 1);
    }

    #[test]
    fn delays_double_and_saturate() {
        let p = BackoffPolicy::new(4, Duration::from_millis(10));
        assert_eq!(p.delay_after(1), Duration::from_millis(10));
        assert_eq!(p.delay_after(2), Duration::from_millis(20));
        assert_eq!(p.delay_after(3), Duration::from_millis(40));
        let huge = BackoffPolicy::new(2, Duration::from_secs(u64::MAX / 2));
        assert!(p.delay_after(200) >= p.delay_after(3));
        assert_eq!(huge.delay_after(100), Duration::MAX);
    }

    #[test]
    fn attempts_clamp_to_one() {
        assert_eq!(BackoffPolicy::new(0, Duration::ZERO).attempts(), 1);
        let mut calls = 0;
        let r: Result<(), &str> = BackoffPolicy::new(0, Duration::ZERO).run(
            |_| {
                calls += 1;
                Err("once")
            },
            |_, _| panic!("a single attempt never retries"),
        );
        assert_eq!(r, Err("once"));
        assert_eq!(calls, 1);
    }

    #[test]
    fn override_delay_is_used() {
        // Observable via wall clock: a 0 ms override on a policy whose
        // own delay would be long keeps the run fast.
        let p = BackoffPolicy::new(3, Duration::from_secs(60));
        let t0 = std::time::Instant::now();
        let r: Result<(), &str> = p.run(|_| Err("x"), |_, _| Retry::After(Some(Duration::ZERO)));
        assert_eq!(r, Err("x"));
        assert!(t0.elapsed() < Duration::from_secs(5));
    }
}
