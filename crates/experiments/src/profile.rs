//! Per-loop cycle attribution for the Livermore benchmark.
//!
//! Uses the trace [`RegionProfiler`] to charge every cycle of a benchmark
//! run to the Livermore loop executing at the time, giving a per-kernel
//! breakdown the paper's aggregate metric hides: which loops are
//! fetch-bound at a given cache size, and which are data/FPU-bound.

use pipe_core::{FetchStrategy, Processor, Region, RegionProfiler, SimConfig};
use pipe_mem::MemConfig;
use pipe_workloads::LivermoreSuite;

use std::cell::RefCell;
use std::rc::Rc;

/// One loop's share of a profiled run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopShare {
    /// 1-based loop number.
    pub index: usize,
    /// Kernel name.
    pub name: &'static str,
    /// Inner-loop size in bytes.
    pub inner_loop_bytes: u32,
    /// Cycles attributed to the loop body.
    pub cycles: u64,
    /// Instructions issued from the loop body.
    pub instructions: u64,
}

impl LoopShare {
    /// Cycles per instruction within this loop.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            f64::NAN
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }
}

/// A profiled benchmark run.
#[derive(Debug, Clone)]
pub struct LoopProfile {
    /// Strategy label.
    pub label: String,
    /// Per-loop shares, in loop order.
    pub shares: Vec<LoopShare>,
    /// Cycles outside any loop body (prologues, drain).
    pub other_cycles: u64,
    /// Whole-run total cycles.
    pub total_cycles: u64,
}

/// Runs the benchmark under (`fetch`, `mem`) and attributes cycles to each
/// Livermore loop body.
///
/// # Panics
///
/// Panics if the simulation fails — configurations are validated up
/// front, so a failure is a bug.
pub fn per_loop_profile(
    suite: &LivermoreSuite,
    fetch: FetchStrategy,
    mem: &MemConfig,
) -> LoopProfile {
    let regions: Vec<Region> = suite
        .loops()
        .iter()
        .map(|info| Region {
            name: format!("LL{}", info.index),
            start: info.top_address,
            end: info.top_address + info.inner_loop_bytes,
        })
        .collect();
    let profiler = Rc::new(RefCell::new(RegionProfiler::new(regions)));

    let cfg = SimConfig {
        fetch,
        mem: *mem,
        max_cycles: 2_000_000_000,
        ..SimConfig::default()
    };
    let proc = Processor::new(suite.program(), &cfg).expect("valid config");
    let mut proc = proc.with_trace(Rc::clone(&profiler));
    proc.run().expect("benchmark runs");
    let stats = proc.stats();

    let p = profiler.borrow();
    let shares = suite
        .loops()
        .iter()
        .zip(p.results())
        .map(|(info, (_, cycles, instructions))| LoopShare {
            index: info.index,
            name: info.name,
            inner_loop_bytes: info.inner_loop_bytes,
            cycles,
            instructions,
        })
        .collect();
    LoopProfile {
        label: fetch.label(),
        shares,
        other_cycles: p.other_cycles(),
        total_cycles: stats.cycles,
    }
}

/// Renders a profile as a text table.
pub fn render_profile(profile: &LoopProfile) -> String {
    let mut out = format!(
        "per-loop cycle breakdown — {} ({} total cycles)\nloop  bytes  instructions      cycles    CPI   share\n",
        profile.label, profile.total_cycles
    );
    for s in &profile.shares {
        out.push_str(&format!(
            "LL{:<3} {:>5}  {:>12}  {:>10}  {:>5.2}  {:>5.1}%\n",
            s.index,
            s.inner_loop_bytes,
            s.instructions,
            s.cycles,
            s.cpi(),
            100.0 * s.cycles as f64 / profile.total_cycles as f64
        ));
    }
    out.push_str(&format!(
        "other (prologues, drain): {} cycles\n",
        profile.other_cycles
    ));
    out
}

/// Renders a profile as CSV: one row per loop, then an `other` row for
/// cycles outside any loop body and a `total` row. The `share` column is
/// each row's fraction of total cycles (0..1).
pub fn render_profile_csv(profile: &LoopProfile) -> String {
    let share = |cycles: u64| cycles as f64 / profile.total_cycles as f64;
    let mut out = String::from("loop,name,inner_loop_bytes,instructions,cycles,cpi,share\n");
    for s in &profile.shares {
        out.push_str(&format!(
            "LL{},{},{},{},{},{:.4},{:.4}\n",
            s.index,
            s.name,
            s.inner_loop_bytes,
            s.instructions,
            s.cycles,
            s.cpi(),
            share(s.cycles),
        ));
    }
    out.push_str(&format!(
        "other,,,,{},,{:.4}\n",
        profile.other_cycles,
        share(profile.other_cycles),
    ));
    let instructions: u64 = profile.shares.iter().map(|s| s.instructions).sum();
    out.push_str(&format!(
        "total,,,{},{},,1.0000\n",
        instructions, profile.total_cycles,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::StrategyKind;
    use pipe_icache::PrefetchPolicy;
    use pipe_isa::InstrFormat;

    #[test]
    fn profile_accounts_for_all_cycles() {
        let suite = LivermoreSuite::build_scaled(InstrFormat::Fixed32, 20).unwrap();
        let fetch = StrategyKind::Pipe16x16
            .fetch_for(64, PrefetchPolicy::TruePrefetch)
            .unwrap();
        let profile = per_loop_profile(&suite, fetch, &MemConfig::default());
        let attributed: u64 = profile.shares.iter().map(|s| s.cycles).sum();
        assert_eq!(attributed + profile.other_cycles, profile.total_cycles);
        assert_eq!(profile.shares.len(), 14);
        for s in &profile.shares {
            assert!(s.instructions > 0, "LL{} never ran", s.index);
            assert!(s.cycles >= s.instructions, "LL{} CPI < 1", s.index);
        }
        let text = render_profile(&profile);
        assert!(text.contains("LL14"));

        // CSV form: header, 14 loop rows, `other`, `total` — and the
        // cycle column re-sums to the run total.
        let csv = render_profile_csv(&profile);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 14 + 2);
        assert!(lines[0].starts_with("loop,name,"));
        let cycles_of = |line: &str| line.split(',').nth(4).unwrap().parse::<u64>().unwrap();
        let body: u64 = lines[1..=14].iter().map(|l| cycles_of(l)).sum();
        assert_eq!(body + cycles_of(lines[15]), profile.total_cycles);
        assert!(lines[16].starts_with("total,"));
        assert!(lines[16].ends_with("1.0000"));
    }

    #[test]
    fn fetch_bound_loops_improve_with_cache_size() {
        // LL8 (732 B body) is fetch-bound at 64 B but not at 512 B.
        let suite = LivermoreSuite::build_scaled(InstrFormat::Fixed32, 20).unwrap();
        let mem = MemConfig {
            access_cycles: 6,
            in_bus_bytes: 8,
            ..MemConfig::default()
        };
        let small = per_loop_profile(
            &suite,
            StrategyKind::Pipe16x16
                .fetch_for(64, PrefetchPolicy::TruePrefetch)
                .unwrap(),
            &mem,
        );
        let large = per_loop_profile(
            &suite,
            StrategyKind::Pipe16x16
                .fetch_for(512, PrefetchPolicy::TruePrefetch)
                .unwrap(),
            &mem,
        );
        let ll8_small = small.shares[7].cpi();
        let ll8_large = large.shares[7].cpi();
        assert!(
            ll8_large < ll8_small,
            "LL8 CPI should drop with a larger cache: {ll8_small:.2} -> {ll8_large:.2}"
        );
    }
}
