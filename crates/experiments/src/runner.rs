//! Running a single experiment point.

use std::sync::Arc;

use pipe_core::{run_decoded, FetchStrategy, SimConfig, SimError, SimStats};
use pipe_isa::{DecodedProgram, Program};
use pipe_mem::MemConfig;

/// One measured point of a sweep.
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    /// Cache size in bytes.
    pub cache_bytes: u32,
    /// Total cycles for the benchmark — the paper's metric.
    pub cycles: u64,
    /// Full statistics, for deeper analysis.
    pub stats: SimStats,
}

/// Runs `program` under (`fetch`, `mem`) and returns the measured point,
/// or the typed simulation error. The fault-tolerant sweep engine uses
/// this form so one failing point becomes a recorded failure instead of
/// aborting the whole sweep.
///
/// # Errors
///
/// Returns the [`SimError`] the simulator reported (configuration,
/// decode, or timeout).
pub fn try_run_point(
    program: &Program,
    fetch: FetchStrategy,
    mem: &MemConfig,
    cache_bytes: u32,
) -> Result<ExperimentPoint, SimError> {
    let decoded = Arc::new(DecodedProgram::new(program.clone()));
    try_run_point_decoded(&decoded, fetch, mem, cache_bytes)
}

/// Like [`try_run_point`], but takes an already-predecoded program so
/// callers measuring many points over the same workload (the sweep
/// engine, the benchmark harness) decode each static instruction exactly
/// once instead of once per point.
///
/// # Errors
///
/// Returns the [`SimError`] the simulator reported (configuration,
/// decode, or timeout).
pub fn try_run_point_decoded(
    decoded: &Arc<DecodedProgram>,
    fetch: FetchStrategy,
    mem: &MemConfig,
    cache_bytes: u32,
) -> Result<ExperimentPoint, SimError> {
    let cfg = SimConfig {
        fetch,
        mem: *mem,
        max_cycles: 2_000_000_000,
        ..SimConfig::default()
    };
    let stats = run_decoded(decoded, &cfg)?;
    Ok(ExperimentPoint {
        cache_bytes,
        cycles: stats.cycles,
        stats,
    })
}

/// Runs `program` under (`fetch`, `mem`) and returns the measured point.
///
/// # Panics
///
/// Panics if the simulation errors — experiment configurations are
/// validated up front, so an error indicates a simulator bug and should
/// fail loudly rather than silently skew a result. Fault-tolerant callers
/// use [`try_run_point`].
pub fn run_point(
    program: &Program,
    fetch: FetchStrategy,
    mem: &MemConfig,
    cache_bytes: u32,
) -> ExperimentPoint {
    try_run_point(program, fetch, mem, cache_bytes)
        .unwrap_or_else(|e| panic!("experiment point failed ({fetch}, {cache_bytes}B): {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipe_icache::CacheConfig;
    use pipe_isa::InstrFormat;
    use pipe_workloads::synthetic::tight_loop;

    #[test]
    fn run_point_measures_cycles() {
        let p = tight_loop(4, 20, InstrFormat::Fixed32);
        let point = run_point(
            &p,
            FetchStrategy::conventional(CacheConfig::new(64, 16)),
            &MemConfig::default(),
            64,
        );
        assert!(point.cycles > 0);
        assert_eq!(point.cache_bytes, 64);
        assert_eq!(point.cycles, point.stats.cycles);
    }
}
