//! Running a single experiment point.

use std::sync::Arc;

use pipe_core::{run_batch, run_decoded, FetchStrategy, SimConfig, SimError, SimStats};
use pipe_isa::{DecodedProgram, Program};
use pipe_mem::MemConfig;

/// One measured point of a sweep.
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    /// Cache size in bytes.
    pub cache_bytes: u32,
    /// Total cycles for the benchmark — the paper's metric.
    pub cycles: u64,
    /// Full statistics, for deeper analysis.
    pub stats: SimStats,
}

/// Runs `program` under (`fetch`, `mem`) and returns the measured point,
/// or the typed simulation error. The fault-tolerant sweep engine uses
/// this form so one failing point becomes a recorded failure instead of
/// aborting the whole sweep.
///
/// # Errors
///
/// Returns the [`SimError`] the simulator reported (configuration,
/// decode, or timeout).
pub fn try_run_point(
    program: &Program,
    fetch: FetchStrategy,
    mem: &MemConfig,
    cache_bytes: u32,
) -> Result<ExperimentPoint, SimError> {
    let decoded = Arc::new(DecodedProgram::new(program.clone()));
    try_run_point_decoded(&decoded, fetch, mem, cache_bytes)
}

/// The simulation configuration every experiment point runs under.
/// Shared by the scalar ([`try_run_point_decoded`]) and batched
/// ([`try_run_points_batched`]) paths so they can never drift apart —
/// equal inputs simulate under bit-identical configurations either way.
pub fn point_config(fetch: FetchStrategy, mem: &MemConfig) -> SimConfig {
    SimConfig {
        fetch,
        mem: *mem,
        max_cycles: 2_000_000_000,
        ..SimConfig::default()
    }
}

/// Like [`try_run_point`], but takes an already-predecoded program so
/// callers measuring many points over the same workload (the sweep
/// engine, the benchmark harness) decode each static instruction exactly
/// once instead of once per point.
///
/// # Errors
///
/// Returns the [`SimError`] the simulator reported (configuration,
/// decode, or timeout).
pub fn try_run_point_decoded(
    decoded: &Arc<DecodedProgram>,
    fetch: FetchStrategy,
    mem: &MemConfig,
    cache_bytes: u32,
) -> Result<ExperimentPoint, SimError> {
    let stats = run_decoded(decoded, &point_config(fetch, mem))?;
    Ok(ExperimentPoint {
        cache_bytes,
        cycles: stats.cycles,
        stats,
    })
}

/// Batched form of [`try_run_point_decoded`]: every `(fetch, cache
/// bytes)` lane runs over the shared predecoded program in one
/// [`run_batch`] pass, returning per-lane results in order. Each lane's
/// point (or error) is bit-identical to the scalar path with the same
/// arguments; lanes are independent, so one failing lane does not
/// disturb the others.
pub fn try_run_points_batched(
    decoded: &Arc<DecodedProgram>,
    lanes: &[(FetchStrategy, u32)],
    mem: &MemConfig,
) -> Vec<Result<ExperimentPoint, SimError>> {
    let configs: Vec<SimConfig> = lanes
        .iter()
        .map(|&(fetch, _)| point_config(fetch, mem))
        .collect();
    run_batch(decoded, &configs)
        .into_iter()
        .zip(lanes)
        .map(|(result, &(_, cache_bytes))| {
            result.map(|stats| ExperimentPoint {
                cache_bytes,
                cycles: stats.cycles,
                stats,
            })
        })
        .collect()
}

/// Runs `program` under (`fetch`, `mem`) and returns the measured point.
///
/// # Panics
///
/// Panics if the simulation errors — experiment configurations are
/// validated up front, so an error indicates a simulator bug and should
/// fail loudly rather than silently skew a result. Fault-tolerant callers
/// use [`try_run_point`].
pub fn run_point(
    program: &Program,
    fetch: FetchStrategy,
    mem: &MemConfig,
    cache_bytes: u32,
) -> ExperimentPoint {
    try_run_point(program, fetch, mem, cache_bytes)
        .unwrap_or_else(|e| panic!("experiment point failed ({fetch}, {cache_bytes}B): {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipe_icache::CacheConfig;
    use pipe_isa::InstrFormat;
    use pipe_workloads::synthetic::tight_loop;

    #[test]
    fn batched_points_match_scalar() {
        let p = tight_loop(4, 20, InstrFormat::Fixed32);
        let decoded = Arc::new(DecodedProgram::new(p));
        let mem = MemConfig {
            access_cycles: 4,
            ..MemConfig::default()
        };
        let lanes = [
            (FetchStrategy::conventional(CacheConfig::new(32, 16)), 32),
            (FetchStrategy::conventional(CacheConfig::new(64, 16)), 64),
            (FetchStrategy::Perfect, 128),
        ];
        let batched = try_run_points_batched(&decoded, &lanes, &mem);
        assert_eq!(batched.len(), lanes.len());
        for (&(fetch, cache_bytes), lane) in lanes.iter().zip(&batched) {
            let scalar = try_run_point_decoded(&decoded, fetch, &mem, cache_bytes).unwrap();
            let lane = lane.as_ref().unwrap();
            assert_eq!(lane.cache_bytes, scalar.cache_bytes);
            assert_eq!(lane.stats, scalar.stats, "lane diverged under {fetch}");
        }
    }

    #[test]
    fn run_point_measures_cycles() {
        let p = tight_loop(4, 20, InstrFormat::Fixed32);
        let point = run_point(
            &p,
            FetchStrategy::conventional(CacheConfig::new(64, 16)),
            &MemConfig::default(),
            64,
        );
        assert!(point.cycles > 0);
        assert_eq!(point.cache_bytes, 64);
        assert_eq!(point.cycles, point.stats.cycles);
    }
}
