//! Figure definitions: the paper's six figure panels and the ablations.

use pipe_icache::PrefetchPolicy;
use pipe_isa::InstrFormat;
use pipe_mem::{DCacheConfig, MemConfig, PriorityPolicy};
use pipe_workloads::LivermoreSuite;

use crate::matrix::{sweep_sizes, StrategyKind, ALL_STRATEGIES};
use crate::runner::ExperimentPoint;
use crate::sweep::{FailedJob, SweepError, SweepOutcome, SweepRunner, SweepSpec, WorkloadSpec};

/// One curve of a figure: a strategy swept over cache sizes.
#[derive(Debug, Clone)]
pub struct Series {
    /// Curve label ("conventional", "8-8", ...).
    pub label: String,
    /// The strategy.
    pub kind: StrategyKind,
    /// Measured points, ascending cache size.
    pub points: Vec<ExperimentPoint>,
}

/// A reproduced figure panel.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier ("4a", "6b", "ablation-priority", ...).
    pub id: String,
    /// Human-readable description.
    pub title: String,
    /// The memory configuration the panel was measured under.
    pub mem: MemConfig,
    /// One series per strategy.
    pub series: Vec<Series>,
}

/// The paper's figure panels.
pub const ALL_FIGURES: [&str; 6] = ["4a", "4b", "5a", "5b", "6a", "6b"];

/// The ablation identifiers supported by [`ablation`].
pub const ALL_ABLATIONS: [&str; 5] = ["access", "priority", "prefetch", "format", "tib"];

fn mem_for(access: u32, bus: u32, pipelined: bool) -> MemConfig {
    MemConfig {
        access_cycles: access,
        pipelined,
        in_bus_bytes: bus,
        ..MemConfig::default()
    }
}

/// The memory configuration of a paper figure panel.
///
/// # Panics
///
/// Panics on an unknown id; use [`ALL_FIGURES`].
pub fn figure_mem(id: &str) -> (MemConfig, &'static str) {
    match id {
        "4a" => (
            mem_for(1, 4, false),
            "total execution time, 1-cycle memory, non-pipelined, 4-byte bus",
        ),
        "4b" => (
            mem_for(1, 8, false),
            "total execution time, 1-cycle memory, non-pipelined, 8-byte bus",
        ),
        "5a" => (
            mem_for(6, 4, false),
            "total execution time, 6-cycle memory, non-pipelined, 4-byte bus",
        ),
        "5b" => (
            mem_for(6, 8, false),
            "total execution time, 6-cycle memory, non-pipelined, 8-byte bus",
        ),
        "6a" => (
            mem_for(6, 8, false),
            "total execution time, 6-cycle memory, 8-byte bus, non-pipelined (same data as 5b)",
        ),
        "6b" => (
            mem_for(6, 8, true),
            "total execution time, 6-cycle memory, 8-byte bus, pipelined",
        ),
        other => panic!("unknown figure id {other:?}"),
    }
}

/// Sweeps all five strategies over the cache sizes under `mem`. This is
/// the serial entry point; it delegates to the [`SweepRunner`] engine
/// (one worker, no store), so the serial and parallel paths are the same
/// code.
pub fn sweep(
    suite: &LivermoreSuite,
    mem: &MemConfig,
    policy: PrefetchPolicy,
    strategies: &[StrategyKind],
) -> Vec<Series> {
    let spec = SweepSpec {
        id: "sweep".to_string(),
        strategies: strategies.to_vec(),
        cache_sizes: sweep_sizes().to_vec(),
        mem: *mem,
        policy,
        workload: WorkloadSpec::Livermore {
            format: suite.program().format(),
            scale: 1,
        },
    };
    SweepRunner::new().run(&spec).series
}

/// A reproduced figure panel plus the run's execution record — how many
/// points were simulated, loaded from the store, or failed.
#[derive(Debug, Clone)]
pub struct FigureRun {
    /// The (possibly partial) figure: failed points are missing from
    /// their series, never zeroed.
    pub figure: Figure,
    /// The sweep's execution record (counts, failed jobs, degradation,
    /// event-log path).
    pub outcome: SweepOutcome,
}

impl FigureRun {
    /// Jobs that failed, in expansion order (empty for a complete run).
    pub fn failed(&self) -> &[FailedJob] {
        &self.outcome.failed
    }
}

/// Reproduces one of the paper's figure panels using `runner` for
/// execution (worker count, result store, events, progress), returning
/// the partial figure and failed-job list rather than panicking when
/// jobs fail.
///
/// # Errors
///
/// Returns [`SweepError::Strict`] when the runner is strict and a job
/// failed; the error carries the partial outcome.
///
/// # Panics
///
/// Panics on an unknown id; valid ids are listed in [`ALL_FIGURES`].
pub fn try_figure_with(id: &str, runner: &SweepRunner) -> Result<FigureRun, SweepError> {
    let (mem, title) = figure_mem(id);
    let outcome = runner.try_run(&SweepSpec::figure(id))?;
    Ok(FigureRun {
        figure: Figure {
            id: format!("fig{id}"),
            title: format!("Figure {id}: {title}"),
            mem,
            series: outcome.series.clone(),
        },
        outcome,
    })
}

/// Reproduces one of the paper's figure panels with its workload replaced
/// — typically a [`WorkloadSpec::Trace`] so the whole sweep runs
/// trace-driven (`repro --from-trace`). The figure id, strategies, cache
/// sizes, and memory timing are unchanged; the title marks the
/// substituted workload and the store keys on the workload's content.
///
/// # Errors
///
/// Returns [`SweepError::Strict`] when the runner is strict and a job
/// failed; the error carries the partial outcome.
///
/// # Panics
///
/// Panics on an unknown id; valid ids are listed in [`ALL_FIGURES`].
pub fn try_figure_with_workload(
    id: &str,
    runner: &SweepRunner,
    workload: WorkloadSpec,
) -> Result<FigureRun, SweepError> {
    let (mem, title) = figure_mem(id);
    let mut spec = SweepSpec::figure(id);
    spec.workload = workload;
    let wl = spec.workload.key();
    let outcome = runner.try_run(&spec)?;
    Ok(FigureRun {
        figure: Figure {
            id: format!("fig{id}"),
            title: format!("Figure {id}: {title} [workload: {wl}]"),
            mem,
            series: outcome.series.clone(),
        },
        outcome,
    })
}

/// Reproduces one of the paper's figure panels using `runner` for
/// execution (worker count, result store, progress).
///
/// # Panics
///
/// Panics on an unknown id (valid ids are listed in [`ALL_FIGURES`]), or
/// when the runner is strict and a job failed — use [`try_figure_with`]
/// to handle partial outcomes.
pub fn figure_with(id: &str, runner: &SweepRunner) -> Figure {
    let (mem, title) = figure_mem(id);
    let outcome = runner.run(&SweepSpec::figure(id));
    Figure {
        id: format!("fig{id}"),
        title: format!("Figure {id}: {title}"),
        mem,
        series: outcome.series,
    }
}

/// Reproduces one of the paper's figure panels serially.
///
/// # Panics
///
/// Panics on an unknown id; valid ids are listed in [`ALL_FIGURES`].
pub fn figure(id: &str) -> Figure {
    figure_with(id, &SweepRunner::new())
}

/// The figure id of the joint I/D cache-size sweep (`--sweep id`) — not
/// one of the paper's panels, but the study its shared-memory-port model
/// makes possible once a data cache exists.
pub const JOINT_ID_FIGURE: &str = "id";

/// The D-cache settings the joint I/D sweep walks: none (the paper's
/// model — every data access arbitrates for the shared port), then
/// growing 2-way write-through caches with 16-byte lines.
fn joint_d_settings() -> Vec<(Option<DCacheConfig>, String)> {
    let mut settings = vec![(None, "no-d$".to_string())];
    for size in [64u32, 128, 256] {
        settings.push((
            Some(DCacheConfig {
                size_bytes: size,
                line_bytes: 16,
                ways: 2,
            }),
            format!("d${size}B"),
        ));
    }
    settings
}

/// Reproduces the joint I/D cache-size sweep on the assembled matrix
/// multiply (`programs/matmul.s`): each D-cache setting re-sweeps the
/// I-cache sizes for the conventional cache and PIPE 16-16, under a slow
/// narrow memory port (6-cycle access, 4-byte bus) where I-fetch and
/// D-miss traffic visibly contend. Series are labelled
/// `<strategy> | <d-cache>`.
///
/// # Errors
///
/// Returns [`SweepError::Strict`] when the runner is strict and a job
/// failed; the error carries the partial outcome of the failing
/// sub-sweep.
pub fn try_joint_id_figure_with(runner: &SweepRunner) -> Result<FigureRun, SweepError> {
    let workload =
        WorkloadSpec::asm("matmul", InstrFormat::Fixed32).expect("bundled program assembles");
    try_joint_id_figure_with_workload(runner, workload)
}

/// [`try_joint_id_figure_with`] with the workload replaced (any
/// [`WorkloadSpec`], e.g. another assembled program or Livermore).
///
/// # Errors
///
/// Returns [`SweepError::Strict`] when the runner is strict and a job
/// failed.
pub fn try_joint_id_figure_with_workload(
    runner: &SweepRunner,
    workload: WorkloadSpec,
) -> Result<FigureRun, SweepError> {
    let base = mem_for(6, 4, false);
    let strategies = vec![StrategyKind::Conventional, StrategyKind::Pipe16x16];
    let wl = workload.key();
    let mut merged: Option<SweepOutcome> = None;
    let mut series = Vec::new();
    for (d_cache, label) in joint_d_settings() {
        let spec = SweepSpec {
            id: format!("figid[{label}]"),
            strategies: strategies.clone(),
            cache_sizes: sweep_sizes().to_vec(),
            mem: MemConfig { d_cache, ..base },
            policy: PrefetchPolicy::TruePrefetch,
            workload: workload.clone(),
        };
        let outcome = runner.try_run(&spec)?;
        for s in &outcome.series {
            series.push(Series {
                label: format!("{} | {label}", s.label),
                kind: s.kind,
                points: s.points.clone(),
            });
        }
        merged = Some(match merged {
            None => outcome,
            Some(mut acc) => {
                acc.computed += outcome.computed;
                acc.cached += outcome.cached;
                acc.failed.extend(outcome.failed);
                acc.batches.extend(outcome.batches);
                acc.store_degraded |= outcome.store_degraded;
                acc.events_path = outcome.events_path.or(acc.events_path);
                acc.wall += outcome.wall;
                acc
            }
        });
    }
    let mut outcome = merged.expect("at least one D-cache setting");
    outcome.series = series.clone();
    Ok(FigureRun {
        figure: Figure {
            id: format!("fig{JOINT_ID_FIGURE}"),
            title: format!(
                "Joint I/D sweep: I-cache sizes x D-cache sizes, \
                 6-cycle memory, 4-byte bus [workload: {wl}]"
            ),
            mem: base,
            series,
        },
        outcome,
    })
}

/// Runs one of the ablation studies (see [`ALL_ABLATIONS`]):
///
/// * `"access"` — memory access times 2 and 3 (the paper reports these
///   "showed similar results" to access time 6); returns one panel per
///   access time at an 8-byte bus.
/// * `"priority"` — instruction-first vs data-first arbitration
///   (paper §5's selectable priority) at access 6, bus 8.
/// * `"prefetch"` — true prefetch vs the chip's guaranteed-execution-only
///   policy (paper §6, second paragraph) at access 6, bus 8.
/// * `"format"` — fixed 32-bit vs the chip's mixed 16/32-bit instruction
///   format (paper parameter 1) at access 6, bus 8.
/// * `"tib"` — a cache-less Target Instruction Buffer (paper §2.1) swept
///   over total hardware budgets, against the conventional cache and PIPE
///   16-16 at the same budgets; verifies §2.1's claims that a small TIB
///   can beat a small cache while generating far more off-chip traffic.
///
/// # Panics
///
/// Panics on an unknown id.
pub fn ablation(id: &str) -> Vec<Figure> {
    let suite = pipe_workloads::livermore_benchmark();
    match id {
        "access" => [2u32, 3]
            .iter()
            .map(|&access| {
                let mem = mem_for(access, 8, false);
                Figure {
                    id: format!("ablation-access{access}"),
                    title: format!("ablation: {access}-cycle memory, non-pipelined, 8-byte bus"),
                    series: sweep(&suite, &mem, PrefetchPolicy::TruePrefetch, &ALL_STRATEGIES),
                    mem,
                }
            })
            .collect(),
        "priority" => [PriorityPolicy::InstructionFirst, PriorityPolicy::DataFirst]
            .iter()
            .map(|&priority| {
                let mem = MemConfig {
                    priority,
                    ..mem_for(6, 8, false)
                };
                Figure {
                    id: format!("ablation-priority-{priority}"),
                    title: format!("ablation: {priority} arbitration, 6-cycle memory, 8-byte bus"),
                    series: sweep(&suite, &mem, PrefetchPolicy::TruePrefetch, &ALL_STRATEGIES),
                    mem,
                }
            })
            .collect(),
        "prefetch" => [
            (PrefetchPolicy::TruePrefetch, "true-prefetch"),
            (PrefetchPolicy::GuaranteedOnly, "guaranteed-only"),
        ]
        .iter()
        .map(|&(policy, name)| {
            let mem = mem_for(6, 8, false);
            let pipes: Vec<StrategyKind> =
                ALL_STRATEGIES.into_iter().filter(|s| s.is_pipe()).collect();
            Figure {
                id: format!("ablation-prefetch-{name}"),
                title: format!("ablation: {name} off-chip policy, 6-cycle memory, 8-byte bus"),
                series: sweep(&suite, &mem, policy, &pipes),
                mem,
            }
        })
        .collect(),
        "tib" => {
            let mem = mem_for(6, 8, false);
            vec![Figure {
                id: "ablation-tib".into(),
                title: "ablation: target instruction buffer vs cache strategies, 6-cycle memory, 8-byte bus".into(),
                series: sweep(
                    &suite,
                    &mem,
                    PrefetchPolicy::TruePrefetch,
                    &[
                        StrategyKind::Conventional,
                        StrategyKind::Tib16,
                        StrategyKind::Pipe16x16,
                    ],
                ),
                mem,
            }]
        }
        "format" => [InstrFormat::Fixed32, InstrFormat::Mixed]
            .iter()
            .map(|&format| {
                let fsuite = LivermoreSuite::build(format).expect("suite builds");
                let mem = mem_for(6, 8, false);
                Figure {
                    id: format!("ablation-format-{format}").replace('/', "-"),
                    title: format!(
                        "ablation: {format} instruction format, 6-cycle memory, 8-byte bus"
                    ),
                    series: sweep(&fsuite, &mem, PrefetchPolicy::TruePrefetch, &ALL_STRATEGIES),
                    mem,
                }
            })
            .collect(),
        other => panic!("unknown ablation id {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_mem_parameters() {
        let (m, _) = figure_mem("4a");
        assert_eq!(
            (m.access_cycles, m.in_bus_bytes, m.pipelined),
            (1, 4, false)
        );
        let (m, _) = figure_mem("6b");
        assert_eq!((m.access_cycles, m.in_bus_bytes, m.pipelined), (6, 8, true));
        let (a, _) = figure_mem("5b");
        let (b, _) = figure_mem("6a");
        assert_eq!(a, b, "6a re-plots 5b");
    }

    #[test]
    #[should_panic(expected = "unknown figure id")]
    fn unknown_figure_panics() {
        let _ = figure_mem("9z");
    }
}
