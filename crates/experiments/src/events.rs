//! Structured JSONL event log for sweep runs.
//!
//! A [`RunLog`] appends one JSON object per line to
//! `<root>/events/<run>.jsonl` as a sweep executes: run start/finish, per
//! job start / finish / cached / failed, and store incidents (retried
//! writes, degradation to store-less execution, mismatched entries). Long
//! sweeps become observable while they run (`tail -f`), and post-mortems
//! of a partial outcome read the event log instead of scraping stdout.
//!
//! Every event carries `ts_ms` (milliseconds since the Unix epoch) and
//! the run id; job events add the job's expansion `index`, strategy,
//! cache size, and the worker that executed it. Example:
//!
//! ```text
//! {"event":"run_start","ts_ms":...,"run":"fig5b","jobs":28,"workers":4,"strict":false}
//! {"event":"job_start","ts_ms":...,"run":"fig5b","index":3,"strategy":"conventional","cache_bytes":128,"worker":1}
//! {"event":"job_finish","ts_ms":...,"run":"fig5b","index":3,"strategy":"conventional","cache_bytes":128,"worker":1,"cycles":302905,"wall_ms":512}
//! {"event":"job_failed","ts_ms":...,"run":"fig5b","index":4,"strategy":"conventional","cache_bytes":256,"worker":2,"error":"..."}
//! {"event":"run_finish","ts_ms":...,"run":"fig5b","computed":27,"cached":0,"failed":1,"wall_ms":9182}
//! ```
//!
//! Logging is best-effort by design: an unwritable event never fails a
//! sweep (the write error is swallowed), and the shared file handle is
//! poison-proof — a worker that panics mid-log cannot wedge the others.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::escape as json_escape;

/// Milliseconds since the Unix epoch (0 if the clock is unavailable).
fn now_ms() -> u128 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

/// An append-only JSONL event log for one sweep run. Cloneable handles
/// are not needed: the log is shared by reference across worker threads
/// and serialises line writes internally.
#[derive(Debug)]
pub struct RunLog {
    path: PathBuf,
    run: String,
    file: Mutex<File>,
}

impl RunLog {
    /// Creates (truncating) `<root>/events/<run>.jsonl`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory or file cannot
    /// be created.
    pub fn create(root: &Path, run: &str) -> std::io::Result<RunLog> {
        let dir = root.join("events");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{run}.jsonl"));
        let file = File::create(&path)?;
        Ok(RunLog {
            path,
            run: run.to_string(),
            file: Mutex::new(file),
        })
    }

    /// Where this log is being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event line. `fields` is pre-rendered JSON (without the
    /// shared `event`/`ts_ms`/`run` envelope). Best-effort: errors are
    /// swallowed and a poisoned lock is recovered, so observability never
    /// takes a sweep down.
    fn emit(&self, event: &str, fields: &str) {
        let line = format!(
            "{{\"event\":\"{event}\",\"ts_ms\":{},\"run\":\"{}\"{}{fields}}}\n",
            now_ms(),
            json_escape(&self.run),
            if fields.is_empty() { "" } else { "," },
        );
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let _ = file.write_all(line.as_bytes());
    }

    /// Appends an arbitrary event line. `fields` is pre-rendered JSON
    /// (without the shared `event`/`ts_ms`/`run` envelope), e.g.
    /// `"\"addr\":\"127.0.0.1:7878\",\"workers\":4"`. This is how other
    /// subsystems — the simulation service in particular — reuse the
    /// sweep event-log format for their own lifecycle events.
    pub fn append(&self, event: &str, fields: &str) {
        self.emit(event, fields);
    }

    /// The sweep is starting: total job count, worker threads, strictness.
    pub fn run_start(&self, jobs: usize, workers: usize, strict: bool) {
        self.emit(
            "run_start",
            &format!("\"jobs\":{jobs},\"workers\":{workers},\"strict\":{strict}"),
        );
    }

    /// A worker picked up a job.
    pub fn job_start(&self, index: usize, strategy: &str, cache_bytes: u32, worker: usize) {
        self.emit(
            "job_start",
            &format!(
                "\"index\":{index},\"strategy\":\"{}\",\"cache_bytes\":{cache_bytes},\"worker\":{worker}",
                json_escape(strategy)
            ),
        );
    }

    /// A job was satisfied from the result store.
    pub fn job_cached(&self, index: usize, strategy: &str, cache_bytes: u32, cycles: u64) {
        self.emit(
            "job_cached",
            &format!(
                "\"index\":{index},\"strategy\":\"{}\",\"cache_bytes\":{cache_bytes},\"cycles\":{cycles}",
                json_escape(strategy)
            ),
        );
    }

    /// A job simulated successfully.
    pub fn job_finish(
        &self,
        index: usize,
        strategy: &str,
        cache_bytes: u32,
        worker: usize,
        cycles: u64,
        wall_ms: u128,
    ) {
        self.emit(
            "job_finish",
            &format!(
                "\"index\":{index},\"strategy\":\"{}\",\"cache_bytes\":{cache_bytes},\
                 \"worker\":{worker},\"cycles\":{cycles},\"wall_ms\":{wall_ms}",
                json_escape(strategy)
            ),
        );
    }

    /// A job failed (panic or simulation error); the sweep continues.
    pub fn job_failed(
        &self,
        index: usize,
        strategy: &str,
        cache_bytes: u32,
        worker: usize,
        error: &str,
    ) {
        self.emit(
            "job_failed",
            &format!(
                "\"index\":{index},\"strategy\":\"{}\",\"cache_bytes\":{cache_bytes},\
                 \"worker\":{worker},\"error\":\"{}\"",
                json_escape(strategy),
                json_escape(error)
            ),
        );
    }

    /// A store write failed and will be retried.
    pub fn store_retry(&self, index: usize, attempt: u32, error: &str) {
        self.emit(
            "store_retry",
            &format!(
                "\"index\":{index},\"attempt\":{attempt},\"error\":\"{}\"",
                json_escape(error)
            ),
        );
    }

    /// Store writes kept failing; the sweep degrades to store-less
    /// execution for its remainder.
    pub fn store_degraded(&self, index: usize, error: &str) {
        self.emit(
            "store_degraded",
            &format!("\"index\":{index},\"error\":\"{}\"", json_escape(error)),
        );
    }

    /// A stored entry could not be trusted (key mismatch); the point is
    /// recomputed.
    pub fn store_mismatch(&self, index: usize, error: &str) {
        self.emit(
            "store_mismatch",
            &format!("\"index\":{index},\"error\":\"{}\"", json_escape(error)),
        );
    }

    /// The sweep finished (possibly partially).
    pub fn run_finish(&self, computed: usize, cached: usize, failed: usize, wall_ms: u128) {
        self.emit(
            "run_finish",
            &format!(
                "\"computed\":{computed},\"cached\":{cached},\"failed\":{failed},\"wall_ms\":{wall_ms}"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_writes_one_json_object_per_line() {
        let dir = std::env::temp_dir().join(format!("pipe-events-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let log = RunLog::create(&dir, "t1").unwrap();
        log.run_start(4, 2, false);
        log.job_start(0, "16-16", 64, 1);
        log.job_finish(0, "16-16", 64, 1, 12345, 7);
        log.job_failed(1, "conv \"q\"", 32, 0, "panicked: \\ boom");
        log.run_finish(1, 0, 1, 99);

        let text = std::fs::read_to_string(log.path()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            assert!(line.contains("\"run\":\"t1\""));
        }
        assert!(lines[0].contains("\"event\":\"run_start\""));
        assert!(lines[3].contains("\"error\":\"panicked: \\\\ boom\""));
        assert!(lines[4].contains("\"failed\":1"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_emits_do_not_interleave() {
        let dir = std::env::temp_dir().join(format!("pipe-events-mt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let log = RunLog::create(&dir, "mt").unwrap();
        std::thread::scope(|scope| {
            for w in 0..4 {
                let log = &log;
                scope.spawn(move || {
                    for i in 0..50 {
                        log.job_start(i, "s", 64, w);
                    }
                });
            }
        });
        let text = std::fs::read_to_string(log.path()).unwrap();
        assert_eq!(text.lines().count(), 200);
        for line in text.lines() {
            assert!(line.starts_with("{\"event\":\"job_start\"") && line.ends_with('}'));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
