//! Minimal hand-rolled JSON helpers shared by the result store, the
//! JSONL event log, and the simulation service.
//!
//! The workspace deliberately has no external dependencies, so the few
//! places that speak JSON — store entries, event lines, service request
//! and response bodies — share this one implementation instead of
//! private copies. The model is deliberately small: flat objects whose
//! values are unsigned integers, booleans, or strings with the standard
//! escapes. Field extraction is by key search (`"field":`), which is
//! exactly right for the fixed, known-key objects these formats use and
//! wrong for arbitrary JSON; callers own their schemas.

use pipe_core::SimStats;

/// Escapes a string for embedding in a JSON string literal: `"` and `\`
/// get backslash escapes, control characters the standard short or
/// `\u00XX` forms.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The raw text immediately after `"field":`, or `None` when the field
/// is absent.
pub fn field_value<'a>(text: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\":");
    let at = text.find(&needle)?;
    Some(text[at + needle.len()..].trim_start())
}

/// Extracts an unsigned integer field from a flat JSON object.
pub fn field_u64(text: &str, field: &str) -> Option<u64> {
    let rest = field_value(text, field)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a boolean field from a flat JSON object.
pub fn field_bool(text: &str, field: &str) -> Option<bool> {
    let rest = field_value(text, field)?;
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Extracts and unescapes a string field from a flat JSON object.
/// Malformed input — an unterminated literal, an unknown escape, a bad
/// `\u` sequence, or a raw control character — returns `None` rather
/// than a silently mis-parsed value.
pub fn field_str(text: &str, field: &str) -> Option<String> {
    let rest = field_value(text, field)?.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c if (c as u32) < 0x20 => return None,
            c => out.push(c),
        }
    }
}

/// Serializes run statistics as a JSON object — the shape `pipe-sim
/// --json` prints and the simulation service returns. Hand-rolled; the
/// stats are all integers so no escaping is needed beyond the fixed
/// keys. Only the fields below are covered (queue occupancies and
/// memory-system counters are not), so two [`SimStats`] that agree on
/// them serialize identically.
pub fn stats_json(stats: &SimStats) -> String {
    format!(
        concat!(
            "{{\"cycles\":{},\"instructions\":{},\"cpi\":{:.4},",
            "\"loads\":{},\"stores\":{},\"fpu_ops\":{},",
            "\"branches_taken\":{},\"branches_not_taken\":{},",
            "\"stalls\":{{\"ifetch\":{},\"data_wait\":{},\"queue_full\":{},\"branch\":{}}},",
            "\"fetch\":{{\"demand_requests\":{},\"prefetch_requests\":{},",
            "\"bytes_requested\":{},\"cache_hits\":{},\"cache_misses\":{},",
            "\"redirects\":{},\"wasted_requests\":{}}},",
            "\"mem\":{{\"d_hits\":{},\"d_misses\":{},\"d_store_hits\":{},",
            "\"contended_cycles\":{}}}}}"
        ),
        stats.cycles,
        stats.instructions_issued,
        stats.cpi(),
        stats.loads,
        stats.stores,
        stats.fpu_ops,
        stats.branches_taken,
        stats.branches_not_taken,
        stats.stalls.ifetch,
        stats.stalls.data_wait,
        stats.stalls.queue_full,
        stats.stalls.branch,
        stats.fetch.demand_requests,
        stats.fetch.prefetch_requests,
        stats.fetch.bytes_requested,
        stats.fetch.cache_hits,
        stats.fetch.cache_misses,
        stats.fetch.redirects,
        stats.fetch.wasted_requests,
        stats.mem.d_hits,
        stats.mem.d_misses,
        stats.mem.d_store_hits,
        stats.mem.contended_cycles,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_field_str() {
        let nasty = "a\"b\\c\nd\te\rf\u{1}g";
        let obj = format!("{{\"k\":\"{}\"}}", escape(nasty));
        assert_eq!(field_str(&obj, "k").unwrap(), nasty);
    }

    #[test]
    fn field_extraction() {
        let obj = "{\"n\":42,\"flag\":true,\"off\":false,\"s\":\"hi\"}";
        assert_eq!(field_u64(obj, "n"), Some(42));
        assert_eq!(field_bool(obj, "flag"), Some(true));
        assert_eq!(field_bool(obj, "off"), Some(false));
        assert_eq!(field_str(obj, "s").as_deref(), Some("hi"));
        assert_eq!(field_u64(obj, "missing"), None);
        assert_eq!(field_bool(obj, "n"), None);
    }

    #[test]
    fn whitespace_after_colon_is_tolerated() {
        let obj = "{\"n\": 7, \"flag\": true, \"s\": \"x\"}";
        assert_eq!(field_u64(obj, "n"), Some(7));
        assert_eq!(field_bool(obj, "flag"), Some(true));
        assert_eq!(field_str(obj, "s").as_deref(), Some("x"));
    }

    #[test]
    fn malformed_strings_are_rejected_not_misparsed() {
        // Unterminated literal.
        assert!(field_str("{\"key\":\"abc", "key").is_none());
        // Unknown escape.
        assert!(field_str("{\"key\":\"a\\qb\"}", "key").is_none());
        // Truncated \u sequence.
        assert!(field_str("{\"key\":\"a\\u00\"}", "key").is_none());
        // Raw control character.
        assert!(field_str("{\"key\":\"a\nb\"}", "key").is_none());
        // Valid escapes parse.
        assert_eq!(
            field_str("{\"key\":\"a\\\"b\\\\c\\u0041\"}", "key").unwrap(),
            "a\"b\\cA"
        );
    }

    #[test]
    fn stats_json_is_valid_shape() {
        let stats = SimStats {
            cycles: 100,
            instructions_issued: 40,
            ..Default::default()
        };
        let j = stats_json(&stats);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"cycles\":100"));
        assert!(j.contains("\"cpi\":2.5000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
