//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--all] [--table1] [--table2] [--fig4a ... --fig6b]
//!       [--joint-id] [--ablation-access] [--ablation-priority]
//!       [--ablation-prefetch] [--ablation-format] [--check]
//!       [--csv-dir DIR] [--from-trace FILE]
//!       [--jobs N] [--resume] [--store DIR] [--progress]
//!       [--strict] [--events DIR]
//! ```
//!
//! With no arguments, runs everything except the ablations. `--check`
//! verifies the paper's qualitative expectations and exits nonzero on a
//! violation. `--csv-dir` additionally writes one CSV per figure (and,
//! with `--profile`, one per-loop CSV per profiled strategy).
//!
//! `--joint-id` runs the joint I/D size sweep (an extension): I-cache
//! sizes crossed with D-cache sizes on the assembled `matmul` program
//! under 6-cycle, 4-byte-bus memory. It renders, CSVs, and SVGs like
//! any figure; `pipe-sim --sweep id` is the CLI equivalent.
//!
//! `--from-trace FILE` runs the selected figure sweeps trace-driven:
//! every point replays the given trace (binary `.ptr` or plain-text
//! addresses) through its fetch engine instead of executing the
//! functional core, and the result store keys on the trace's content
//! hash. Record a trace with `pipe-sim --livermore --record-trace`.
//!
//! The figure sweeps run on the parallel sweep engine: `--jobs N` spreads
//! the points over N worker threads (cycle counts are bit-identical to a
//! serial run), `--store DIR` persists every measured point to a
//! content-addressed store under DIR (default `results/`), and
//! `--resume` loads previously stored points instead of re-simulating
//! them. `--progress` prints one line per point with its wall time.
//!
//! Sweeps are fault-tolerant: a failed point is reported (and marked
//! missing in the table) while every other point completes, and the run
//! exits 0. `--strict` restores fail-fast semantics — the first failed
//! point aborts with a nonzero exit. `--events DIR` appends a structured
//! JSONL event log per figure to `DIR/events/` (defaults to the store
//! root when a store is in use).

use std::path::PathBuf;
use std::process::ExitCode;

use pipe_experiments::figures::{
    ablation, try_figure_with, try_figure_with_workload, try_joint_id_figure_with, Figure,
    ALL_ABLATIONS, ALL_FIGURES,
};
use pipe_experiments::report::{check_expectations, render_csv, render_failures, render_text};
use pipe_experiments::store::ResultStore;
use pipe_experiments::sweep::{FailedJob, SweepRunner, WorkloadSpec};
use pipe_experiments::tables::{render_table1, render_table2};

struct Options {
    tables: Vec<&'static str>,
    figures: Vec<&'static str>,
    ablations: Vec<&'static str>,
    joint_id: bool,
    profile: bool,
    studies: bool,
    check: bool,
    csv_dir: Option<PathBuf>,
    svg_dir: Option<PathBuf>,
    from_trace: Option<PathBuf>,
    jobs: usize,
    resume: bool,
    store: Option<PathBuf>,
    progress: bool,
    strict: bool,
    events: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        tables: Vec::new(),
        figures: Vec::new(),
        ablations: Vec::new(),
        joint_id: false,
        profile: false,
        studies: false,
        check: false,
        csv_dir: None,
        svg_dir: None,
        from_trace: None,
        jobs: 1,
        resume: false,
        store: None,
        progress: false,
        strict: false,
        events: None,
    };
    let mut any = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--all" => {
                opts.tables = vec!["1", "2"];
                opts.figures = ALL_FIGURES.to_vec();
                opts.ablations = ALL_ABLATIONS.to_vec();
                opts.profile = true;
                opts.studies = true;
                any = true;
            }
            "--joint-id" => {
                opts.joint_id = true;
                any = true;
            }
            "--profile" => {
                opts.profile = true;
                any = true;
            }
            "--studies" => {
                opts.studies = true;
                any = true;
            }
            "--table1" => {
                opts.tables.push("1");
                any = true;
            }
            "--table2" => {
                opts.tables.push("2");
                any = true;
            }
            "--check" => opts.check = true,
            "--jobs" => {
                let n = args.next().ok_or("--jobs needs a count")?;
                opts.jobs = n
                    .parse()
                    .map_err(|_| format!("--jobs: invalid count `{n}`"))?;
            }
            "--resume" => opts.resume = true,
            "--store" => {
                let dir = args.next().ok_or("--store needs a directory")?;
                opts.store = Some(PathBuf::from(dir));
            }
            "--progress" => opts.progress = true,
            "--strict" => opts.strict = true,
            "--events" => {
                let dir = args.next().ok_or("--events needs a directory")?;
                opts.events = Some(PathBuf::from(dir));
            }
            "--csv-dir" => {
                let dir = args.next().ok_or("--csv-dir needs a directory")?;
                opts.csv_dir = Some(PathBuf::from(dir));
            }
            "--svg-dir" => {
                let dir = args.next().ok_or("--svg-dir needs a directory")?;
                opts.svg_dir = Some(PathBuf::from(dir));
            }
            "--from-trace" => {
                let file = args.next().ok_or("--from-trace needs a trace file")?;
                opts.from_trace = Some(PathBuf::from(file));
            }
            other => {
                if let Some(id) = other.strip_prefix("--fig") {
                    let id = ALL_FIGURES
                        .iter()
                        .find(|&&f| f == id)
                        .ok_or_else(|| format!("unknown figure {other}"))?;
                    opts.figures.push(id);
                    any = true;
                } else if let Some(id) = other.strip_prefix("--ablation-") {
                    let id = ALL_ABLATIONS
                        .iter()
                        .find(|&&a| a == id)
                        .ok_or_else(|| format!("unknown ablation {other}"))?;
                    opts.ablations.push(id);
                    any = true;
                } else {
                    return Err(format!("unknown argument {other}"));
                }
            }
        }
    }
    if !any {
        opts.tables = vec!["1", "2"];
        opts.figures = ALL_FIGURES.to_vec();
    }
    Ok(opts)
}

fn emit(fig: &Figure, failed: &[FailedJob], opts: &Options, violations: &mut Vec<String>) {
    println!("{}", render_text(fig));
    print!("{}", render_failures(failed));
    if let Some(dir) = &opts.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = dir.join(format!("{}.csv", fig.id));
        std::fs::write(&path, render_csv(fig)).expect("write csv");
        println!("  [csv written to {}]", path.display());
    }
    if let Some(dir) = &opts.svg_dir {
        std::fs::create_dir_all(dir).expect("create svg dir");
        let path = dir.join(format!("{}.svg", fig.id));
        std::fs::write(&path, pipe_experiments::render_figure_svg(fig)).expect("write svg");
        println!("  [svg written to {}]", path.display());
    }
    if opts.check {
        let v = check_expectations(fig);
        if v.is_empty() {
            println!("  [check] all paper expectations hold");
        }
        for msg in &v {
            println!("  [check] VIOLATION: {msg}");
        }
        violations.extend(v);
    }
    println!();
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("repro: {e}");
            return ExitCode::from(2);
        }
    };

    let mut violations = Vec::new();

    let mut runner = SweepRunner::new()
        .jobs(opts.jobs)
        .progress(opts.progress)
        .strict(opts.strict);
    let mut store_root = None;
    if opts.resume || opts.store.is_some() {
        let root = opts
            .store
            .clone()
            .unwrap_or_else(|| PathBuf::from("results"));
        match ResultStore::open(&root) {
            Ok(store) => runner = runner.store(store).resume(opts.resume),
            Err(e) => {
                eprintln!("repro: cannot open result store {}: {e}", root.display());
                return ExitCode::FAILURE;
            }
        }
        store_root = Some(root);
    }
    if let Some(events) = opts.events.clone().or(store_root) {
        runner = runner.events(events);
    }

    for t in &opts.tables {
        match *t {
            "1" => println!("{}", render_table1()),
            "2" => println!("{}", render_table2()),
            _ => unreachable!(),
        }
    }

    // Trace-driven mode: validate the trace once, then substitute it for
    // the Livermore workload in every selected figure sweep.
    let trace_workload = match &opts.from_trace {
        Some(path) => match WorkloadSpec::trace(path) {
            Ok(wl) => Some(wl),
            Err(e) => {
                eprintln!("repro: --from-trace: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let mut total_failed = 0usize;
    for id in &opts.figures {
        let result = match &trace_workload {
            Some(wl) => try_figure_with_workload(id, &runner, wl.clone()),
            None => try_figure_with(id, &runner),
        };
        match result {
            Ok(run) => {
                total_failed += run.failed().len();
                emit(&run.figure, run.failed(), &opts, &mut violations);
            }
            Err(e) => {
                // Strict fail-fast: report what completed, then abort.
                eprintln!("repro: {e}");
                print!("{}", render_failures(&e.partial().failed));
                return ExitCode::FAILURE;
            }
        }
    }

    // The joint I/D size sweep (extension): I-cache sizes x D-cache
    // sizes on the assembled matmul program.
    if opts.joint_id {
        match try_joint_id_figure_with(&runner) {
            Ok(run) => {
                total_failed += run.failed().len();
                emit(&run.figure, run.failed(), &opts, &mut violations);
            }
            Err(e) => {
                eprintln!("repro: {e}");
                print!("{}", render_failures(&e.partial().failed));
                return ExitCode::FAILURE;
            }
        }
    }

    for id in &opts.ablations {
        for fig in ablation(id) {
            emit(&fig, &[], &opts, &mut violations);
        }
    }

    if opts.profile {
        use pipe_experiments::profile::{per_loop_profile, render_profile, render_profile_csv};
        use pipe_experiments::StrategyKind;
        let suite = pipe_workloads::livermore_benchmark();
        let mem = pipe_mem::MemConfig {
            access_cycles: 6,
            in_bus_bytes: 8,
            ..pipe_mem::MemConfig::default()
        };
        for kind in [StrategyKind::Pipe16x16, StrategyKind::Conventional] {
            let fetch = kind
                .fetch_for(128, pipe_icache::PrefetchPolicy::TruePrefetch)
                .expect("valid");
            let profile = per_loop_profile(&suite, fetch, &mem);
            println!("{}", render_profile(&profile));
            if let Some(dir) = &opts.csv_dir {
                std::fs::create_dir_all(dir).expect("create csv dir");
                let path = dir.join(format!("profile_{}.csv", kind.label()));
                std::fs::write(&path, render_profile_csv(&profile)).expect("write profile csv");
                println!("  [csv written to {}]", path.display());
            }
        }
    }

    if opts.studies {
        use pipe_experiments::studies::{
            partial_line_study, queue_size_study, render_partial_line_study, render_queue_study,
        };
        let suite = pipe_workloads::livermore_benchmark();
        let mem = pipe_mem::MemConfig {
            access_cycles: 6,
            in_bus_bytes: 8,
            ..pipe_mem::MemConfig::default()
        };
        let sizes = [8u32, 16, 32];
        let cells = queue_size_study(&suite, 64, 16, &mem, &sizes);
        println!("{}", render_queue_study(&cells, &sizes));
        let narrow = pipe_mem::MemConfig {
            in_bus_bytes: 4,
            ..mem
        };
        let rows = partial_line_study(&suite, &narrow, &[16, 32, 64, 128, 256, 512]);
        println!("{}", render_partial_line_study(&rows));
        use pipe_experiments::studies::{hill_prefetch_study, render_hill_study};
        let rows = hill_prefetch_study(&suite, &mem, &[16, 32, 64, 128, 256, 512]);
        println!("{}", render_hill_study(&rows));
        use pipe_experiments::studies::{buffer_study, render_buffer_study};
        let pipelined = pipe_mem::MemConfig {
            pipelined: true,
            access_cycles: 4,
            ..mem
        };
        let rows = buffer_study(&suite, &pipelined, &[1, 2, 4, 8], None);
        println!("{}", render_buffer_study(&rows));
        use pipe_experiments::studies::{access_sweep_study, render_access_study};
        let rows = access_sweep_study(&suite, 32, 8, &[1, 2, 3, 4, 5, 6, 8]);
        println!("{}", render_access_study(&rows, 32));
        use pipe_experiments::studies::{external_cache_study, render_ext_cache_study};
        let rows = external_cache_study(&suite, &mem, 20, &[4096, 16384, 65536, 262144]);
        println!("{}", render_ext_cache_study(&rows, 20));
    }

    if total_failed > 0 {
        eprintln!(
            "repro: {total_failed} sweep point(s) failed (marked `-` above); \
             re-run with --strict to make this fatal"
        );
    }
    if opts.check && !violations.is_empty() {
        eprintln!("{} expectation violation(s)", violations.len());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
