//! Content-addressed, versioned storage of sweep results.
//!
//! Each measured experiment point persists as one small JSON file at
//! `<root>/store/v1/<hash>.json`, where `<hash>` is the FNV-1a 64-bit
//! digest of the point's canonical configuration key (see
//! [`crate::sweep::SweepJob::cache_key`]). The key covers every parameter
//! that affects the simulation — workload, memory timing, fetch geometry,
//! prefetch policy — so two configurations share a file only if they
//! simulate identically, and resuming a sweep is a per-point file
//! existence check. Bumping the layout or key format means a new `v2/`
//! directory; old stores are simply ignored, never migrated in place.
//!
//! Entries persist the headline statistics (cycles, instructions, fetch
//! traffic). Figure rendering and expectation checking consume only
//! `cycles`, so a point loaded from the store reconstructs an
//! [`ExperimentPoint`](crate::runner::ExperimentPoint) with those headline
//! fields filled in and the remaining statistics zeroed; re-run without
//! `--resume` when full statistics matter.
//!
//! The JSON is hand-rolled (flat object, integer/string values, no
//! escapes needed) because the workspace deliberately has no external
//! dependencies.

use std::io;
use std::path::{Path, PathBuf};

use pipe_core::SimStats;

use crate::runner::ExperimentPoint;

/// Store layout version; bump when the entry format or key scheme
/// changes.
pub const STORE_VERSION: u32 = 1;

/// FNV-1a 64-bit hash of `key` — stable across runs and platforms.
pub fn fnv1a64(key: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One persisted experiment point.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredPoint {
    /// The canonical configuration key the entry was stored under.
    pub key: String,
    /// Strategy label ("16-16", "conventional", ...).
    pub strategy: String,
    /// Cache size in bytes.
    pub cache_bytes: u32,
    /// Total benchmark cycles — the paper's metric.
    pub cycles: u64,
    /// Instructions issued.
    pub instructions: u64,
    /// Fetch-starved issue stalls.
    pub ifetch_stalls: u64,
    /// Off-chip instruction bytes requested.
    pub bytes_requested: u64,
    /// Instruction-cache hits.
    pub cache_hits: u64,
    /// Instruction-cache misses.
    pub cache_misses: u64,
    /// Wall-clock milliseconds the original simulation took.
    pub wall_ms: u64,
}

impl StoredPoint {
    /// Captures the persisted subset of a measured point.
    pub fn from_point(key: &str, strategy: &str, point: &ExperimentPoint, wall_ms: u64) -> Self {
        StoredPoint {
            key: key.to_string(),
            strategy: strategy.to_string(),
            cache_bytes: point.cache_bytes,
            cycles: point.cycles,
            instructions: point.stats.instructions_issued,
            ifetch_stalls: point.stats.stalls.ifetch,
            bytes_requested: point.stats.fetch.bytes_requested,
            cache_hits: point.stats.fetch.cache_hits,
            cache_misses: point.stats.fetch.cache_misses,
            wall_ms,
        }
    }

    /// Reconstructs an [`ExperimentPoint`] with the headline statistics
    /// filled in (everything else zeroed — see the module docs).
    pub fn to_point(&self) -> ExperimentPoint {
        let mut stats = SimStats {
            cycles: self.cycles,
            instructions_issued: self.instructions,
            ..SimStats::default()
        };
        stats.stalls.ifetch = self.ifetch_stalls;
        stats.fetch.bytes_requested = self.bytes_requested;
        stats.fetch.cache_hits = self.cache_hits;
        stats.fetch.cache_misses = self.cache_misses;
        ExperimentPoint {
            cache_bytes: self.cache_bytes,
            cycles: self.cycles,
            stats,
        }
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"version\":{},\"key\":\"{}\",\"strategy\":\"{}\",",
                "\"cache_bytes\":{},\"cycles\":{},\"instructions\":{},",
                "\"ifetch_stalls\":{},\"bytes_requested\":{},",
                "\"cache_hits\":{},\"cache_misses\":{},\"wall_ms\":{}}}\n"
            ),
            STORE_VERSION,
            self.key,
            self.strategy,
            self.cache_bytes,
            self.cycles,
            self.instructions,
            self.ifetch_stalls,
            self.bytes_requested,
            self.cache_hits,
            self.cache_misses,
            self.wall_ms,
        )
    }

    fn from_json(text: &str) -> Option<StoredPoint> {
        if json_u64(text, "version")? != u64::from(STORE_VERSION) {
            return None;
        }
        Some(StoredPoint {
            key: json_str(text, "key")?,
            strategy: json_str(text, "strategy")?,
            cache_bytes: u32::try_from(json_u64(text, "cache_bytes")?).ok()?,
            cycles: json_u64(text, "cycles")?,
            instructions: json_u64(text, "instructions")?,
            ifetch_stalls: json_u64(text, "ifetch_stalls")?,
            bytes_requested: json_u64(text, "bytes_requested")?,
            cache_hits: json_u64(text, "cache_hits")?,
            cache_misses: json_u64(text, "cache_misses")?,
            wall_ms: json_u64(text, "wall_ms")?,
        })
    }
}

/// Extracts an unsigned integer field from a flat JSON object.
fn json_u64(text: &str, field: &str) -> Option<u64> {
    let rest = field_value(text, field)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a string field (no escapes) from a flat JSON object.
fn json_str(text: &str, field: &str) -> Option<String> {
    let rest = field_value(text, field)?;
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn field_value<'a>(text: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\":");
    let at = text.find(&needle)?;
    Some(&text[at + needle.len()..])
}

/// A directory of persisted experiment points, keyed by configuration
/// content hash.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) the versioned store under `root` — the
    /// entries live at `<root>/store/v<N>/`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be
    /// created.
    pub fn open(root: &Path) -> io::Result<ResultStore> {
        let dir = root.join("store").join(format!("v{STORE_VERSION}"));
        std::fs::create_dir_all(&dir)?;
        Ok(ResultStore { dir })
    }

    /// The directory entries are stored in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.json", fnv1a64(key)))
    }

    /// Whether a point for `key` has already been computed.
    pub fn contains(&self, key: &str) -> bool {
        self.path_for(key).is_file()
    }

    /// Loads the point stored under `key`, if any. A corrupt, truncated,
    /// or version-mismatched entry reads as absent (the point is simply
    /// recomputed), except that a hash-collision entry whose recorded key
    /// differs is a hard error.
    pub fn load(&self, key: &str) -> Option<StoredPoint> {
        let text = std::fs::read_to_string(self.path_for(key)).ok()?;
        let entry = StoredPoint::from_json(&text)?;
        assert_eq!(
            entry.key, key,
            "result store hash collision: {:?} vs {:?}",
            entry.key, key
        );
        Some(entry)
    }

    /// Persists `entry` under its key, atomically (write to a temp file in
    /// the same directory, then rename), so a killed sweep never leaves a
    /// truncated entry behind.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn save(&self, entry: &StoredPoint) -> io::Result<()> {
        let path = self.path_for(&entry.key);
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, entry.to_json())?;
        std::fs::rename(&tmp, &path)
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the store has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(key: &str) -> StoredPoint {
        StoredPoint {
            key: key.to_string(),
            strategy: "16-16".to_string(),
            cache_bytes: 64,
            cycles: 123_456,
            instructions: 1000,
            ifetch_stalls: 17,
            bytes_requested: 2048,
            cache_hits: 900,
            cache_misses: 100,
            wall_ms: 42,
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn json_round_trips() {
        let entry = sample("v1|fetch=pipe:size=64");
        let parsed = StoredPoint::from_json(&entry.to_json()).unwrap();
        assert_eq!(parsed, entry);
    }

    #[test]
    fn version_mismatch_reads_as_absent() {
        let text = sample("k")
            .to_json()
            .replace("\"version\":1", "\"version\":999");
        assert!(StoredPoint::from_json(&text).is_none());
    }

    #[test]
    fn store_save_load_contains() {
        let dir = std::env::temp_dir().join(format!("pipe-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty());
        let entry = sample("v1|fetch=conventional:size=32");
        assert!(!store.contains(&entry.key));
        store.save(&entry).unwrap();
        assert!(store.contains(&entry.key));
        assert_eq!(store.load(&entry.key).unwrap(), entry);
        assert_eq!(store.len(), 1);
        // Overwrites are idempotent.
        store.save(&entry).unwrap();
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stored_point_reconstructs_headline_stats() {
        let p = sample("k").to_point();
        assert_eq!(p.cycles, 123_456);
        assert_eq!(p.cache_bytes, 64);
        assert_eq!(p.stats.instructions_issued, 1000);
        assert_eq!(p.stats.stalls.ifetch, 17);
        assert_eq!(p.stats.fetch.bytes_requested, 2048);
    }
}
