//! Content-addressed, versioned storage of sweep results.
//!
//! Each measured experiment point persists as one small JSON file at
//! `<root>/store/v1/<hash>.json`, where `<hash>` is the FNV-1a 64-bit
//! digest of the point's canonical configuration key (see
//! [`crate::sweep::SweepJob::cache_key`]). The key covers every parameter
//! that affects the simulation — workload, memory timing, fetch geometry,
//! prefetch policy — so two configurations share a file only if they
//! simulate identically, and resuming a sweep is a per-point file
//! existence check. Bumping the layout or key format means a new `v2/`
//! directory; old stores are simply ignored, never migrated in place.
//!
//! Entries persist every statistic the JSON report surface exposes (see
//! [`crate::json::stats_json`]): cycles, instructions, loads/stores/FPU
//! ops, branch counts, the full stall breakdown, and the fetch-engine
//! counters. A point loaded from the store therefore reconstructs
//! [`SimStats`] bit-identical to the original run on that surface —
//! which is what lets the simulation service answer repeated requests
//! from the store. Queue-occupancy and memory-system counters are not
//! persisted and read back as zero. Entries written before the extended
//! format (headline fields only) still load, with the extra fields
//! zeroed.
//!
//! The JSON is hand-rolled via [`crate::json`] (flat object,
//! integer/string values, the standard string escapes) because the
//! workspace deliberately has no external dependencies.

use std::error::Error;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use pipe_core::SimStats;
use pipe_icache::FetchStats;

use crate::json::{escape, field_str, field_u64};
use crate::runner::ExperimentPoint;

/// Store layout version; bump when the entry format or key scheme
/// changes.
pub const STORE_VERSION: u32 = 1;

/// How old a `.tmp.` file must be before [`ResultStore::prune`] treats
/// it as an interrupted-write leftover rather than an in-progress save.
/// Saves hold their temp file for microseconds, so a generous grace
/// period costs nothing: a genuinely orphaned temp file is collected by
/// the next prune after the grace elapses.
pub const TMP_GRACE: Duration = Duration::from_secs(60);

/// Whether a temp file is younger than [`TMP_GRACE`] (by mtime). A file
/// that vanished reads as not-fresh (the removal path skips NotFound);
/// an unreadable or future mtime reads as fresh, erring toward not
/// deleting a live writer's file.
fn tmp_is_fresh(path: &Path) -> bool {
    match std::fs::metadata(path) {
        Ok(meta) => match meta.modified().ok().and_then(|m| m.elapsed().ok()) {
            Some(age) => age < TMP_GRACE,
            None => true,
        },
        Err(e) if e.kind() == io::ErrorKind::NotFound => false,
        Err(_) => true,
    }
}

/// A typed result-store failure. Only conditions that indicate the store
/// holds *wrong* data (rather than merely missing or unreadable data) are
/// surfaced this way; corrupt, truncated, or version-mismatched entries
/// simply read as absent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The entry file for this key's hash records a *different* key — an
    /// FNV collision or a stale entry written under an old key format.
    /// Callers should treat the point as absent (recompute it) and warn,
    /// never trust the entry.
    KeyMismatch {
        /// The key the caller asked for.
        requested: String,
        /// The key recorded inside the entry file.
        found: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::KeyMismatch { requested, found } => write!(
                f,
                "result store key mismatch (hash collision or stale entry): \
                 requested {requested:?}, entry records {found:?}"
            ),
        }
    }
}

impl Error for StoreError {}

/// FNV-1a 64-bit hash of `key` — stable across runs and platforms.
pub fn fnv1a64(key: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One persisted experiment point.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredPoint {
    /// The canonical configuration key the entry was stored under.
    pub key: String,
    /// Strategy label ("16-16", "conventional", ...).
    pub strategy: String,
    /// Cache size in bytes.
    pub cache_bytes: u32,
    /// Wall-clock milliseconds the original simulation took.
    pub wall_ms: u64,
    /// The persisted statistics: every field of the JSON report surface
    /// is round-tripped exactly, plus the D-cache and port-contention
    /// counters; queue-occupancy and the remaining memory-system
    /// counters are zero.
    pub stats: SimStats,
}

/// The subset of `stats` the store persists: the JSON report surface
/// (see [`crate::json::stats_json`]) plus the D-cache and contention
/// counters, with queue and other memory counters dropped so a freshly
/// loaded entry compares equal to a re-saved one.
fn persisted_stats(stats: &SimStats) -> SimStats {
    let mut kept = SimStats {
        cycles: stats.cycles,
        instructions_issued: stats.instructions_issued,
        loads: stats.loads,
        stores: stats.stores,
        fpu_ops: stats.fpu_ops,
        branches_taken: stats.branches_taken,
        branches_not_taken: stats.branches_not_taken,
        stalls: stats.stalls.clone(),
        ..SimStats::default()
    };
    kept.fetch = FetchStats {
        demand_requests: stats.fetch.demand_requests,
        prefetch_requests: stats.fetch.prefetch_requests,
        bytes_requested: stats.fetch.bytes_requested,
        cache_hits: stats.fetch.cache_hits,
        cache_misses: stats.fetch.cache_misses,
        redirects: stats.fetch.redirects,
        wasted_requests: stats.fetch.wasted_requests,
        ..FetchStats::default()
    };
    kept.mem.d_hits = stats.mem.d_hits;
    kept.mem.d_misses = stats.mem.d_misses;
    kept.mem.d_store_hits = stats.mem.d_store_hits;
    kept.mem.contended_cycles = stats.mem.contended_cycles;
    kept
}

impl StoredPoint {
    /// Captures the persisted subset of a measured point.
    pub fn from_point(key: &str, strategy: &str, point: &ExperimentPoint, wall_ms: u64) -> Self {
        StoredPoint {
            key: key.to_string(),
            strategy: strategy.to_string(),
            cache_bytes: point.cache_bytes,
            wall_ms,
            stats: persisted_stats(&point.stats),
        }
    }

    /// Reconstructs an [`ExperimentPoint`] carrying the persisted
    /// statistics (queue and memory counters zeroed — see the module
    /// docs).
    pub fn to_point(&self) -> ExperimentPoint {
        ExperimentPoint {
            cache_bytes: self.cache_bytes,
            cycles: self.stats.cycles,
            stats: self.stats.clone(),
        }
    }

    fn to_json(&self) -> String {
        let s = &self.stats;
        format!(
            concat!(
                "{{\"version\":{},\"key\":\"{}\",\"strategy\":\"{}\",",
                "\"cache_bytes\":{},\"cycles\":{},\"instructions\":{},",
                "\"ifetch_stalls\":{},\"bytes_requested\":{},",
                "\"cache_hits\":{},\"cache_misses\":{},\"wall_ms\":{},",
                "\"loads\":{},\"stores\":{},\"fpu_ops\":{},",
                "\"branches_taken\":{},\"branches_not_taken\":{},",
                "\"data_wait_stalls\":{},\"queue_full_stalls\":{},\"branch_stalls\":{},",
                "\"demand_requests\":{},\"prefetch_requests\":{},",
                "\"redirects\":{},\"wasted_requests\":{},",
                "\"d_hits\":{},\"d_misses\":{},\"d_store_hits\":{},",
                "\"contended_cycles\":{}}}\n"
            ),
            STORE_VERSION,
            escape(&self.key),
            escape(&self.strategy),
            self.cache_bytes,
            s.cycles,
            s.instructions_issued,
            s.stalls.ifetch,
            s.fetch.bytes_requested,
            s.fetch.cache_hits,
            s.fetch.cache_misses,
            self.wall_ms,
            s.loads,
            s.stores,
            s.fpu_ops,
            s.branches_taken,
            s.branches_not_taken,
            s.stalls.data_wait,
            s.stalls.queue_full,
            s.stalls.branch,
            s.fetch.demand_requests,
            s.fetch.prefetch_requests,
            s.fetch.redirects,
            s.fetch.wasted_requests,
            s.mem.d_hits,
            s.mem.d_misses,
            s.mem.d_store_hits,
            s.mem.contended_cycles,
        )
    }

    fn from_json(text: &str) -> Option<StoredPoint> {
        // A complete entry ends with the closing brace; anything else is
        // a truncated write and must read as absent even if every
        // required field happens to survive the truncation.
        if !text.trim_end().ends_with('}') {
            return None;
        }
        if field_u64(text, "version")? != u64::from(STORE_VERSION) {
            return None;
        }
        // The original v1 fields are required; the extended statistics
        // are optional so entries written before the extension still
        // load (their extra fields read as zero).
        let opt = |field: &str| field_u64(text, field).unwrap_or(0);
        let mut stats = SimStats {
            cycles: field_u64(text, "cycles")?,
            instructions_issued: field_u64(text, "instructions")?,
            loads: opt("loads"),
            stores: opt("stores"),
            fpu_ops: opt("fpu_ops"),
            branches_taken: opt("branches_taken"),
            branches_not_taken: opt("branches_not_taken"),
            ..SimStats::default()
        };
        stats.stalls.ifetch = field_u64(text, "ifetch_stalls")?;
        stats.stalls.data_wait = opt("data_wait_stalls");
        stats.stalls.queue_full = opt("queue_full_stalls");
        stats.stalls.branch = opt("branch_stalls");
        stats.fetch.bytes_requested = field_u64(text, "bytes_requested")?;
        stats.fetch.cache_hits = field_u64(text, "cache_hits")?;
        stats.fetch.cache_misses = field_u64(text, "cache_misses")?;
        stats.fetch.demand_requests = opt("demand_requests");
        stats.fetch.prefetch_requests = opt("prefetch_requests");
        stats.fetch.redirects = opt("redirects");
        stats.fetch.wasted_requests = opt("wasted_requests");
        stats.mem.d_hits = opt("d_hits");
        stats.mem.d_misses = opt("d_misses");
        stats.mem.d_store_hits = opt("d_store_hits");
        stats.mem.contended_cycles = opt("contended_cycles");
        Some(StoredPoint {
            key: field_str(text, "key")?,
            strategy: field_str(text, "strategy")?,
            cache_bytes: u32::try_from(field_u64(text, "cache_bytes")?).ok()?,
            wall_ms: field_u64(text, "wall_ms")?,
            stats,
        })
    }
}

/// A directory of persisted experiment points, keyed by configuration
/// content hash.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) the versioned store under `root` — the
    /// entries live at `<root>/store/v<N>/`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be
    /// created.
    pub fn open(root: &Path) -> io::Result<ResultStore> {
        let dir = root.join("store").join(format!("v{STORE_VERSION}"));
        std::fs::create_dir_all(&dir)?;
        Ok(ResultStore { dir })
    }

    /// The directory entries are stored in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.json", fnv1a64(key)))
    }

    /// Whether a point for `key` has already been computed.
    pub fn contains(&self, key: &str) -> bool {
        self.path_for(key).is_file()
    }

    /// Loads the point stored under `key`, if any. A missing, corrupt,
    /// truncated, or version-mismatched entry reads as `Ok(None)` (the
    /// point is simply recomputed). An entry whose *recorded key* differs
    /// from the requested one — a hash collision or a stale entry from an
    /// old key format — is [`StoreError::KeyMismatch`]: the caller should
    /// warn and recompute, never use the entry.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::KeyMismatch`] as above.
    pub fn load(&self, key: &str) -> Result<Option<StoredPoint>, StoreError> {
        let Ok(text) = std::fs::read_to_string(self.path_for(key)) else {
            return Ok(None);
        };
        let Some(entry) = StoredPoint::from_json(&text) else {
            return Ok(None);
        };
        if entry.key != key {
            return Err(StoreError::KeyMismatch {
                requested: key.to_string(),
                found: entry.key,
            });
        }
        Ok(Some(entry))
    }

    /// Persists `entry` under its key, atomically (write to a temp file in
    /// the same directory, then rename), so a killed sweep never leaves a
    /// truncated entry behind. The temp name is unique per process and
    /// call, so concurrent writers — worker threads or separate processes
    /// sharing a store — never interleave on the same temp file; last
    /// rename wins with both entries valid.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn save(&self, entry: &StoredPoint) -> io::Result<()> {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let path = self.path_for(&entry.key);
        let tmp = self.dir.join(format!(
            "{:016x}.tmp.{}.{}",
            fnv1a64(&entry.key),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::write(&tmp, entry.to_json())?;
        std::fs::rename(&tmp, &path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the store has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deletes every entry that current code could never load: entries
    /// recording a different format version, entries that fail to parse,
    /// entries whose file name no longer matches the FNV hash of their
    /// recorded key (a stale key format), and leftover `.tmp` files from
    /// interrupted writes. Valid entries are untouched.
    ///
    /// Safe to run while writers are active: temp files younger than
    /// [`TMP_GRACE`] belong to in-progress [`save`](ResultStore::save)
    /// calls and are skipped (counted in
    /// [`PruneReport::skipped_active`]), and a file that vanishes between
    /// the directory listing and its removal — because a concurrent save
    /// renamed a temp file into place, or another prune got there first —
    /// is simply skipped, never an error.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the store directory cannot be
    /// listed or a stale file cannot be removed.
    pub fn prune(&self) -> io::Result<PruneReport> {
        self.prune_impl(false)
    }

    /// Like [`prune`](ResultStore::prune), but deletes nothing: the
    /// returned [`PruneReport`] describes what a real prune *would*
    /// remove, and the store is left byte-identical.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the store directory cannot be
    /// listed or an entry cannot be read.
    pub fn prune_dry_run(&self) -> io::Result<PruneReport> {
        self.prune_impl(true)
    }

    fn prune_impl(&self, dry_run: bool) -> io::Result<PruneReport> {
        let mut report = PruneReport::default();
        // Removes `path`, reporting whether a file was actually deleted.
        // "Already gone" is a skip, not an error: a concurrent save
        // renames its temp file away, and a concurrent prune may win the
        // race to any stale file.
        let remove = |path: &Path| -> io::Result<bool> {
            if dry_run {
                return Ok(true);
            }
            match std::fs::remove_file(path) {
                Ok(()) => Ok(true),
                Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
                Err(e) => Err(e),
            }
        };
        for dirent in std::fs::read_dir(&self.dir)? {
            let path = dirent?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.contains(".tmp.") {
                // A fresh temp file belongs to an in-progress save;
                // deleting it would break that writer's rename. Only
                // temp files older than the grace period are leftovers.
                if tmp_is_fresh(&path) {
                    report.skipped_active += 1;
                } else if remove(&path)? {
                    report.removed_tmp += 1;
                }
                continue;
            }
            if path.extension().is_none_or(|x| x != "json") {
                continue;
            }
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(_) => {
                    if remove(&path)? {
                        report.removed_corrupt += 1;
                    }
                    continue;
                }
            };
            match StoredPoint::from_json(&text) {
                None => {
                    let version_mismatch =
                        field_u64(&text, "version").is_some_and(|v| v != u64::from(STORE_VERSION));
                    if remove(&path)? {
                        if version_mismatch {
                            report.removed_version += 1;
                        } else {
                            report.removed_corrupt += 1;
                        }
                    }
                }
                Some(entry) => {
                    if name == format!("{:016x}.json", fnv1a64(&entry.key)) {
                        report.kept += 1;
                    } else if remove(&path)? {
                        report.removed_hash += 1;
                    }
                }
            }
        }
        Ok(report)
    }
}

/// What [`ResultStore::prune`] removed and kept (or, for
/// [`ResultStore::prune_dry_run`], would remove and keep).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Valid entries left in place.
    pub kept: usize,
    /// Entries recording a different format version.
    pub removed_version: usize,
    /// Entries that failed to parse (corrupt or truncated).
    pub removed_corrupt: usize,
    /// Entries whose file name no longer matches their key's hash.
    pub removed_hash: usize,
    /// Leftover temp files from interrupted writes.
    pub removed_tmp: usize,
    /// Temp files younger than [`TMP_GRACE`], left alone because they
    /// belong to an in-progress save.
    pub skipped_active: usize,
}

impl PruneReport {
    /// Total files removed.
    pub fn removed(&self) -> usize {
        self.removed_version + self.removed_corrupt + self.removed_hash + self.removed_tmp
    }
}

impl fmt::Display for PruneReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kept {} entr{}; removed {} ({} version-mismatched, {} corrupt, \
             {} hash-mismatched, {} temp file{})",
            self.kept,
            if self.kept == 1 { "y" } else { "ies" },
            self.removed(),
            self.removed_version,
            self.removed_corrupt,
            self.removed_hash,
            self.removed_tmp,
            if self.removed_tmp == 1 { "" } else { "s" },
        )?;
        if self.skipped_active > 0 {
            write!(
                f,
                "; skipped {} in-progress temp file{}",
                self.skipped_active,
                if self.skipped_active == 1 { "" } else { "s" },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(key: &str) -> StoredPoint {
        let mut stats = SimStats {
            cycles: 123_456,
            instructions_issued: 1000,
            loads: 120,
            stores: 60,
            fpu_ops: 14,
            branches_taken: 200,
            branches_not_taken: 40,
            ..SimStats::default()
        };
        stats.stalls.ifetch = 17;
        stats.stalls.data_wait = 5;
        stats.stalls.queue_full = 2;
        stats.stalls.branch = 9;
        stats.fetch.demand_requests = 300;
        stats.fetch.prefetch_requests = 80;
        stats.fetch.bytes_requested = 2048;
        stats.fetch.cache_hits = 900;
        stats.fetch.cache_misses = 100;
        stats.fetch.redirects = 12;
        stats.fetch.wasted_requests = 3;
        StoredPoint {
            key: key.to_string(),
            strategy: "16-16".to_string(),
            cache_bytes: 64,
            wall_ms: 42,
            stats,
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn json_round_trips() {
        let entry = sample("v1|fetch=pipe:size=64");
        let parsed = StoredPoint::from_json(&entry.to_json()).unwrap();
        assert_eq!(parsed, entry);
    }

    #[test]
    fn report_surface_round_trips_bit_identical() {
        // The JSON report surface (what `pipe-sim --json` and the
        // service emit) must survive a store round trip exactly.
        let entry = sample("v1|report-surface");
        let parsed = StoredPoint::from_json(&entry.to_json()).unwrap();
        assert_eq!(
            crate::json::stats_json(&parsed.stats),
            crate::json::stats_json(&entry.stats)
        );
    }

    #[test]
    fn legacy_headline_entries_still_load() {
        // An entry written before the extended format: only the original
        // v1 fields. It must load, with the extra statistics zeroed.
        let text = concat!(
            "{\"version\":1,\"key\":\"v1|old\",\"strategy\":\"8-8\",",
            "\"cache_bytes\":32,\"cycles\":777,\"instructions\":100,",
            "\"ifetch_stalls\":7,\"bytes_requested\":512,",
            "\"cache_hits\":90,\"cache_misses\":10,\"wall_ms\":3}"
        );
        let entry = StoredPoint::from_json(text).unwrap();
        assert_eq!(entry.key, "v1|old");
        assert_eq!(entry.stats.cycles, 777);
        assert_eq!(entry.stats.stalls.ifetch, 7);
        assert_eq!(entry.stats.loads, 0);
        assert_eq!(entry.stats.fetch.demand_requests, 0);
        assert_eq!(entry.to_point().cycles, 777);
    }

    #[test]
    fn version_mismatch_reads_as_absent() {
        let text = sample("k")
            .to_json()
            .replace("\"version\":1", "\"version\":999");
        assert!(StoredPoint::from_json(&text).is_none());
    }

    #[test]
    fn store_save_load_contains() {
        let dir = std::env::temp_dir().join(format!("pipe-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty());
        let entry = sample("v1|fetch=conventional:size=32");
        assert!(!store.contains(&entry.key));
        store.save(&entry).unwrap();
        assert!(store.contains(&entry.key));
        assert_eq!(store.load(&entry.key).unwrap().unwrap(), entry);
        assert_eq!(store.len(), 1);
        // Overwrites are idempotent.
        store.save(&entry).unwrap();
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn strings_with_quotes_and_backslashes_round_trip() {
        let mut entry = sample("v1|wl=\"weird\\path\"|fetch=x");
        entry.strategy = "16-16 \"q\" \\ tab\there\nnl".to_string();
        let parsed = StoredPoint::from_json(&entry.to_json()).unwrap();
        assert_eq!(parsed, entry);
    }

    #[test]
    fn corrupt_and_truncated_entries_read_as_absent() {
        let dir = std::env::temp_dir().join(format!("pipe-store-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let entry = sample("v1|corrupt-test");
        store.save(&entry).unwrap();
        let path = store
            .dir()
            .join(format!("{:016x}.json", fnv1a64(&entry.key)));

        // Truncated mid-file.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(store.load(&entry.key), Ok(None));

        // Arbitrary garbage.
        std::fs::write(&path, "not json at all").unwrap();
        assert_eq!(store.load(&entry.key), Ok(None));

        // Version mismatch.
        std::fs::write(&path, full.replace("\"version\":1", "\"version\":999")).unwrap();
        assert_eq!(store.load(&entry.key), Ok(None));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_mismatch_is_typed_error_not_panic() {
        let dir = std::env::temp_dir().join(format!("pipe-store-collide-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let entry = sample("v1|the-real-key");
        store.save(&entry).unwrap();
        // Simulate a hash collision: copy the entry file to the hash slot
        // of a different key.
        let other = "v1|a-colliding-key";
        std::fs::copy(
            store
                .dir()
                .join(format!("{:016x}.json", fnv1a64(&entry.key))),
            store.dir().join(format!("{:016x}.json", fnv1a64(other))),
        )
        .unwrap();
        match store.load(other) {
            Err(StoreError::KeyMismatch { requested, found }) => {
                assert_eq!(requested, other);
                assert_eq!(found, entry.key);
            }
            other => panic!("expected KeyMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_saves_of_same_key_both_succeed() {
        let dir = std::env::temp_dir().join(format!("pipe-store-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let entry = sample("v1|contended-key");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        store.save(&entry).expect("concurrent save");
                    }
                });
            }
        });
        // Every writer succeeded and the surviving entry is valid.
        assert_eq!(store.load(&entry.key).unwrap().unwrap(), entry);
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_mixed_load_save_same_key_never_tears() {
        // The service cache path: worker threads read a key while others
        // write it. Every load must observe either "absent" or a
        // complete, valid entry — never a torn or erroring read — and
        // once a reader has seen the entry, it stays visible.
        let dir = std::env::temp_dir().join(format!("pipe-store-rw-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let entry = sample("v1|rw-contended-key");
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        store.save(&entry).expect("concurrent save");
                    }
                });
            }
            for _ in 0..3 {
                scope.spawn(|| {
                    let mut seen = false;
                    for _ in 0..200 {
                        match store.load(&entry.key) {
                            Ok(Some(loaded)) => {
                                assert_eq!(loaded, entry, "complete entry, never torn");
                                seen = true;
                            }
                            Ok(None) => {
                                assert!(!seen, "entry vanished after becoming visible");
                            }
                            Err(e) => panic!("load under contention errored: {e}"),
                        }
                        std::hint::spin_loop();
                    }
                });
            }
        });
        assert_eq!(store.load(&entry.key).unwrap().unwrap(), entry);
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Backdates a file's mtime past [`TMP_GRACE`], so prune sees it as
    /// an interrupted-write leftover instead of an in-progress save.
    fn age_past_grace(path: &Path) {
        let earlier = std::time::SystemTime::now() - 2 * TMP_GRACE;
        std::fs::File::options()
            .write(true)
            .open(path)
            .unwrap()
            .set_modified(earlier)
            .unwrap();
    }

    /// Byte-for-byte snapshot of every file in the store directory.
    fn dir_snapshot(dir: &Path) -> Vec<(String, Vec<u8>)> {
        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| {
                let p = e.unwrap().path();
                (
                    p.file_name().unwrap().to_string_lossy().into_owned(),
                    std::fs::read(&p).unwrap(),
                )
            })
            .collect();
        files.sort();
        files
    }

    #[test]
    fn prune_dry_run_reports_without_deleting() {
        let dir = std::env::temp_dir().join(format!("pipe-store-dryrun-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        store.save(&sample("v1|keep-me")).unwrap();
        std::fs::write(store.dir().join("00000000deadbeef.json"), "{garbage").unwrap();
        let tmp = store.dir().join("0000000000000000.tmp.1.2");
        std::fs::write(&tmp, "partial").unwrap();
        age_past_grace(&tmp);

        let before = dir_snapshot(store.dir());
        let dry = store.prune_dry_run().unwrap();
        assert_eq!(
            dry,
            PruneReport {
                kept: 1,
                removed_version: 0,
                removed_corrupt: 1,
                removed_hash: 0,
                removed_tmp: 1,
                skipped_active: 0,
            }
        );
        // Dry run left the store byte-identical.
        assert_eq!(dir_snapshot(store.dir()), before);

        // A real prune removes exactly what the dry run predicted.
        let real = store.prune().unwrap();
        assert_eq!(real, dry);
        assert_ne!(dir_snapshot(store.dir()), before);
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_removes_only_unloadable_entries() {
        let dir = std::env::temp_dir().join(format!("pipe-store-prune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();

        // Two valid entries that must survive.
        let keep_a = sample("v1|keep-a");
        let keep_b = sample("v1|keep-b");
        store.save(&keep_a).unwrap();
        store.save(&keep_b).unwrap();

        // A version-mismatched entry (filed under its correct hash).
        let old = sample("v1|old-version");
        let old_json = old.to_json().replace("\"version\":1", "\"version\":999");
        std::fs::write(
            store.dir().join(format!("{:016x}.json", fnv1a64(&old.key))),
            old_json,
        )
        .unwrap();

        // A corrupt entry, an entry filed under the wrong hash, and a
        // stale (aged past the grace period) temp file.
        std::fs::write(store.dir().join("00000000deadbeef.json"), "{garbage").unwrap();
        std::fs::write(
            store.dir().join("0123456789abcdef.json"),
            sample("v1|misplaced").to_json(),
        )
        .unwrap();
        let tmp = store.dir().join("0000000000000000.tmp.1.2");
        std::fs::write(&tmp, "partial").unwrap();
        age_past_grace(&tmp);

        let report = store.prune().unwrap();
        assert_eq!(
            report,
            PruneReport {
                kept: 2,
                removed_version: 1,
                removed_corrupt: 1,
                removed_hash: 1,
                removed_tmp: 1,
                skipped_active: 0,
            }
        );
        assert_eq!(report.removed(), 4);
        assert_eq!(store.load(&keep_a.key).unwrap().unwrap(), keep_a);
        assert_eq!(store.load(&keep_b.key).unwrap().unwrap(), keep_b);
        assert_eq!(store.len(), 2);

        // A second prune is a no-op.
        let again = store.prune().unwrap();
        assert_eq!(again.kept, 2);
        assert_eq!(again.removed(), 0);
        assert!(store.prune().unwrap().to_string().contains("kept 2"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_skips_fresh_tmp_files_of_inflight_saves() {
        let dir = std::env::temp_dir().join(format!("pipe-store-fresh-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        store.save(&sample("v1|keep")).unwrap();
        // A temp file with a current mtime models a save between its
        // write and its rename: prune must leave it alone.
        let tmp = store.dir().join("00000000cafef00d.tmp.9.9");
        std::fs::write(&tmp, "in flight").unwrap();

        let report = store.prune().unwrap();
        assert_eq!(report.kept, 1);
        assert_eq!(report.removed(), 0);
        assert_eq!(report.skipped_active, 1);
        assert!(tmp.is_file(), "fresh temp file survives prune");
        assert!(report
            .to_string()
            .contains("skipped 1 in-progress temp file"));

        // Once aged past the grace period it is a leftover and goes.
        age_past_grace(&tmp);
        let report = store.prune().unwrap();
        assert_eq!(report.removed_tmp, 1);
        assert_eq!(report.skipped_active, 0);
        assert!(!tmp.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_tolerates_files_vanishing_mid_scan() {
        // A file listed by read_dir but gone by the time prune reaches
        // it (another prune won the race, or a save renamed its temp
        // away) must be skipped, not surfaced as an I/O error.
        let dir = std::env::temp_dir().join(format!("pipe-store-vanish-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        store.save(&sample("v1|stable")).unwrap();

        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            // Writers keep creating short-lived temp files and new keys
            // while prunes run concurrently.
            for w in 0..2 {
                let (store, stop) = (&store, &stop);
                scope.spawn(move || {
                    let mut i = 0u32;
                    while !stop.load(Ordering::Relaxed) {
                        store
                            .save(&sample(&format!("v1|churn-{w}-{i}")))
                            .expect("save during concurrent prune");
                        i += 1;
                    }
                });
            }
            for _ in 0..2 {
                let store = &store;
                scope.spawn(move || {
                    for _ in 0..50 {
                        store.prune().expect("prune during concurrent saves");
                    }
                });
            }
            std::thread::sleep(Duration::from_millis(100));
            stop.store(true, Ordering::Relaxed);
        });

        // Nothing valid was lost: every surviving entry still loads, and
        // the stable key written before the churn is intact.
        assert_eq!(
            store.load("v1|stable").unwrap().unwrap(),
            sample("v1|stable")
        );
        let report = store.prune().unwrap();
        assert_eq!(report.removed(), 0, "prune never removed a valid entry");
        assert_eq!(report.kept, store.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stored_point_reconstructs_stats() {
        let p = sample("k").to_point();
        assert_eq!(p.cycles, 123_456);
        assert_eq!(p.cache_bytes, 64);
        assert_eq!(p.stats.instructions_issued, 1000);
        assert_eq!(p.stats.stalls.ifetch, 17);
        assert_eq!(p.stats.fetch.bytes_requested, 2048);
        assert_eq!(p.stats.loads, 120);
        assert_eq!(p.stats.fetch.wasted_requests, 3);
    }
}
